#!/bin/sh
# Switch a checkout from the offline stand-in crates (vendor/) to the real
# crates-io dependencies named in [workspace.dependencies]:
#
#   1. rewrite .cargo/config.toml down to the xtask alias, dropping the
#      [patch.crates-io] redirection and [net] offline mode;
#   2. delete Cargo.lock, which was resolved against the stand-in versions,
#      so the next cargo invocation re-resolves from crates-io.
#
# CI runs this in every job except the offline-standin parity job. See
# vendor/README.md for what the stand-ins are and the golden-fixture caveat
# when swapping rand streams.
set -eu
cd "$(dirname "$0")/.."
printf '# `cargo xtask <lint|check|ci>` — workspace automation (see crates/xtask).\n[alias]\nxtask = "run --quiet -p xtask --"\n' > .cargo/config.toml
rm -f Cargo.lock
echo "switched to upstream crates-io dependencies (stand-in patch removed)"
