//! BC and the decomposition are label-independent: any vertex relabeling
//! must permute the scores and nothing else. This pins the reorder module
//! *and* catches any accidental id-order dependence in the algorithms.

use apgre::graph::reorder::{bfs_order, degree_order};
use apgre::prelude::*;
use apgre::workloads::{registry, Scale};

fn assert_close(ctx: &str, got: &[f64], want: &[f64]) {
    assert_eq!(got.len(), want.len(), "{ctx}");
    for i in 0..want.len() {
        assert!(
            (got[i] - want[i]).abs() <= 1e-6 * (1.0 + want[i].abs()),
            "{ctx}: vertex {i}: {} vs {}",
            got[i],
            want[i]
        );
    }
}

#[test]
fn apgre_commutes_with_reordering() {
    for spec in registry().into_iter().step_by(3) {
        let g = spec.graph(Scale::Tiny);
        let base = bc_apgre(&g);
        for (kind, p) in [("degree", degree_order(&g)), ("bfs", bfs_order(&g, 0))] {
            let rg = p.apply(&g);
            let scores = p.unpermute(&bc_apgre(&rg));
            assert_close(&format!("{}:{kind}", spec.name), &scores, &base);
        }
    }
}

#[test]
fn decomposition_shape_is_label_independent() {
    let g = registry()[0].graph(Scale::Tiny);
    let d0 = decompose(&g, &PartitionOptions::default());
    let p = degree_order(&g);
    let d1 = decompose(&p.apply(&g), &PartitionOptions::default());
    assert_eq!(d0.num_bccs, d1.num_bccs);
    assert_eq!(
        d0.is_articulation.iter().filter(|&&a| a).count(),
        d1.is_articulation.iter().filter(|&&a| a).count()
    );
    let mut s0: Vec<usize> = d0.subgraphs.iter().map(|s| s.num_vertices()).collect();
    let mut s1: Vec<usize> = d1.subgraphs.iter().map(|s| s.num_vertices()).collect();
    s0.sort_unstable();
    s1.sort_unstable();
    assert_eq!(s0, s1);
}

#[test]
fn serial_brandes_commutes_with_reordering() {
    let g = registry()[4].graph(Scale::Tiny); // wikitalk-like, directed
    let base = bc_serial(&g);
    let p = bfs_order(&g, 0);
    let scores = p.unpermute(&bc_serial(&p.apply(&g)));
    assert_close("wikitalk-reorder", &scores, &base);
}
