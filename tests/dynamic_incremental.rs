//! Incremental-vs-scratch equivalence (Issue 3 acceptance criteria).
//!
//! Drives [`DynamicBc`] with random mutation streams and asserts, **after
//! every batch**, that the maintained scores match a from-scratch APGRE run
//! on the current graph (1e-9 relative), and — for the forced-`Seq` kernel —
//! that the maintained scores are bitwise identical to
//! `bc_from_decomposition` on the engine's own maintained decomposition.
//! (A *fresh* decomposition may legitimately split a locally-edited
//! sub-graph at new internal articulation points, so the bitwise anchor is
//! the engine's decomposition; the fresh-scratch comparison uses the 1e-9
//! relative tolerance.)

use apgre::bc::bc_from_decomposition;
use apgre::graph::generators::{whiskered_community, WhiskeredCommunityParams};
use apgre::prelude::*;
use apgre_workloads::{registry, Scale};

fn assert_close(ctx: &str, got: &[f64], want: &[f64]) {
    assert_eq!(got.len(), want.len(), "{ctx}");
    for i in 0..want.len() {
        assert!(
            (got[i] - want[i]).abs() <= 1e-9 * (1.0 + got[i].abs().max(want[i].abs())),
            "{ctx}: vertex {i}: incremental {} vs scratch {}",
            got[i],
            want[i]
        );
    }
}

/// Deterministic xorshift64*: independent of which `rand` build is linked
/// (the offline stand-in and upstream `rand` have different streams).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// One random mutation against the current graph: biased toward edge adds
/// and removals (including whisker edges), with occasional vertex churn so
/// the stream exercises every classification path.
fn random_batch(rng: &mut Rng, engine: &DynamicBc) -> MutationBatch {
    let n = engine.num_vertices();
    let g = engine.current_graph();
    let roll = rng.below(100);
    if roll < 45 {
        // Random add: often creates chords (local) or bridges/articulation
        // points (structural). Duplicate picks are harmless no-ops.
        MutationBatch::new().add_edge(rng.below(n) as u32, rng.below(n) as u32)
    } else if roll < 85 {
        // Remove an existing edge (uniform over edges, so whisker edges are
        // picked at their natural frequency).
        let edges: Vec<(u32, u32)> =
            if g.is_directed() { g.arcs().collect() } else { g.undirected_edges().collect() };
        if edges.is_empty() {
            return MutationBatch::new().add_edge(0, (n - 1) as u32);
        }
        let (u, v) = edges[rng.below(edges.len())];
        MutationBatch::new().remove_edge(u, v)
    } else if roll < 93 {
        // Grow a fresh whisker: new vertex wired to a random host.
        MutationBatch::new().add_vertex().add_edge(n as u32, rng.below(n) as u32)
    } else {
        MutationBatch::new().remove_vertex(rng.below(n) as u32)
    }
}

/// The tentpole stream: ≥200 effective edits over a whiskered community
/// graph, scratch-checked after every batch.
#[test]
fn random_stream_matches_scratch_every_batch() {
    let g = whiskered_community(&WhiskeredCommunityParams {
        core_vertices: 60,
        core_attach: 2,
        community_count: 6,
        community_size: 10,
        community_density: 1.6,
        whiskers: 30,
        seed: 77,
    });
    let opts = ApgreOptions::default();
    let mut engine = DynamicBc::new(&g, opts.clone());
    let mut rng = Rng(0x1234_5678_9abc_def0);
    let mut applied = 0usize;
    let mut batches = 0usize;
    let mut classes = (0usize, 0usize, 0usize); // (noop, local, structural)
    let mut spliced = 0usize;
    let mut rebuilt = 0usize;
    while applied < 200 || batches < 210 {
        let batch = random_batch(&mut rng, &engine);
        let report = engine.apply(&batch);
        applied += report.applied_mutations;
        batches += 1;
        match report.class {
            BatchClass::Noop => classes.0 += 1,
            BatchClass::Local => classes.1 += 1,
            BatchClass::Structural => classes.2 += 1,
        }
        if report.rebuilt {
            rebuilt += 1;
        } else if report.class == BatchClass::Structural {
            spliced += 1;
        }
        let current = engine.current_graph();
        let (scratch, _) = bc_apgre_with(&current, &opts);
        assert_close(&format!("batch {batches} ({:?})", report.class), engine.scores(), &scratch);
        assert!(batches < 1000, "stream failed to accumulate 200 effective edits");
    }
    assert!(applied >= 200, "only {applied} effective edits");
    assert!(classes.1 > 0, "stream never exercised the local path: {classes:?}");
    assert!(classes.2 > 0, "stream never exercised the structural path: {classes:?}");
    // The incremental maintainer must carry the structural load: full
    // rebuilds are reserved for the rare batches it declines (multiple
    // component-bridging additions), not the common case.
    assert!(spliced > 0, "no structural batch was spliced in place");
    assert!(
        rebuilt <= classes.2 / 4,
        "rebuilds ({rebuilt}) should be rare next to splices ({spliced})"
    );
}

/// Forced-`Seq` engines must be bitwise identical to the batch driver run on
/// the engine's own maintained decomposition — the determinism half of the
/// acceptance criteria.
#[test]
fn forced_seq_stream_is_bitwise_vs_own_decomposition() {
    let g = whiskered_community(&WhiskeredCommunityParams {
        core_vertices: 50,
        core_attach: 2,
        community_count: 5,
        community_size: 8,
        community_density: 1.5,
        whiskers: 20,
        seed: 41,
    });
    let opts = ApgreOptions { kernel: KernelPolicy::Seq, ..Default::default() };
    let mut engine = DynamicBc::new(&g, opts.clone());
    let mut rng = Rng(0xfeed_beef_cafe_0042);
    for step in 0..60 {
        let batch = random_batch(&mut rng, &engine);
        engine.apply(&batch);
        let current = engine.current_graph();
        let (anchor, _) = bc_from_decomposition(&current, engine.decomposition(), &opts);
        assert_eq!(
            engine.scores(),
            &anchor[..],
            "step {step}: forced-Seq scores diverged bitwise from the batch driver"
        );
        // And the engine's decomposition stays *valid*: scores also match a
        // fresh scratch run within tolerance.
        let (scratch, _) = bc_apgre_with(&current, &opts);
        assert_close(&format!("step {step} scratch"), engine.scores(), &scratch);
    }
}

/// Short streams across the full workload zoo (directed graphs take the
/// structural path every batch; undirected ones mix local and structural).
#[test]
fn zoo_short_streams_match_scratch() {
    let opts = ApgreOptions::default();
    for spec in registry() {
        let g = spec.graph(Scale::Tiny);
        let mut engine = DynamicBc::new(&g, opts.clone());
        let mut rng = Rng(0x5151_0000 ^ spec.name.len() as u64);
        for step in 0..12 {
            let batch = random_batch(&mut rng, &engine);
            engine.apply(&batch);
            let current = engine.current_graph();
            let (scratch, _) = bc_apgre_with(&current, &opts);
            assert_close(&format!("{} step {step}", spec.name), engine.scores(), &scratch);
        }
    }
}

/// The incremental sampled estimator (PR 9): after **every** batch of a
/// random mutation stream, `DynamicBc::approx_snapshot` must be bitwise
/// identical to the from-scratch composed estimator
/// (`bc_sampled_from_decomposition`) over the engine's own decomposition —
/// the determinism contract, independent of which sub-graphs were
/// resampled vs carried.
#[test]
fn approx_stream_is_bitwise_vs_scratch_estimator_every_batch() {
    let g = whiskered_community(&WhiskeredCommunityParams {
        core_vertices: 50,
        core_attach: 2,
        community_count: 5,
        community_size: 9,
        community_density: 1.6,
        whiskers: 24,
        seed: 19,
    });
    let opts = ApgreOptions::default();
    let sopts = SampleOptions::uniform(6, 0xBEAD);
    let mut engine = DynamicBc::new(&g, opts.clone());
    engine.enable_approx(sopts.clone());
    assert!(engine.approx_enabled());
    let mut rng = Rng(0x0900_cafe_f00d_0042);
    let mut carried_any = false;
    for step in 0..60 {
        let batch = random_batch(&mut rng, &engine);
        engine.apply(&batch);
        let ap = engine.approx_snapshot().expect("estimator enabled");
        let want = bc_sampled_from_decomposition(engine.decomposition(), &opts, &sopts);
        let got = ap.estimates.to_vec();
        assert_eq!(got.len(), want.len(), "step {step}");
        for v in 0..want.len() {
            assert!(
                got[v].to_bits() == want[v].to_bits(),
                "step {step}: vertex {v}: incremental {} vs scratch estimator {}",
                got[v],
                want[v]
            );
        }
        assert_eq!(
            ap.refresh.resampled + ap.refresh.reused,
            engine.decomposition().num_subgraphs(),
            "step {step}: refresh accounting must cover every sub-graph"
        );
        carried_any |= ap.refresh.reused > 0;
    }
    assert!(carried_any, "no refresh ever reused a span — the store is not incremental");
}

/// `bc_dynamic` (the one-shot entry point) equals serial Brandes on the
/// final graph — the serial-oracle anchor for `xtask lint` rule R4.
#[test]
fn bc_dynamic_matches_serial_oracle() {
    let g = whiskered_community(&WhiskeredCommunityParams {
        core_vertices: 40,
        core_attach: 2,
        community_count: 4,
        community_size: 8,
        community_density: 1.5,
        whiskers: 16,
        seed: 9,
    });
    let batches = vec![
        MutationBatch::new().add_edge(1, 17),
        MutationBatch::new().remove_edge(1, 17),
        MutationBatch::new().add_vertex(),
        MutationBatch::new().add_edge(g.num_vertices() as u32, 3),
    ];
    let got = bc_dynamic(&g, &batches, &ApgreOptions::default());
    let mut overlay = GraphOverlay::from_graph(&g);
    overlay.add_edge(1, 17);
    overlay.remove_edge(1, 17);
    let w = overlay.add_vertex();
    overlay.add_edge(w, 3);
    let want = bc_serial(&overlay.to_graph());
    assert_close("bc_dynamic vs bc_serial", &got, &want);
}
