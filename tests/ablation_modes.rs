//! The ablation decomposition modes (merge-all, unfolded whiskers) must stay
//! exact: they disable an *optimization*, never correctness.

use apgre::prelude::*;
use apgre::workloads::{registry, Scale};

fn assert_close(ctx: &str, got: &[f64], want: &[f64]) {
    assert_eq!(got.len(), want.len(), "{ctx}");
    for i in 0..want.len() {
        assert!(
            (got[i] - want[i]).abs() <= 1e-6 * (1.0 + want[i].abs()),
            "{ctx}: vertex {i}: {} vs {}",
            got[i],
            want[i]
        );
    }
}

fn variants(g: &Graph, ctx: &str) {
    let want = bc_serial(g);
    for (merge_all, unfold) in [(true, false), (false, true), (true, true)] {
        let popts = PartitionOptions { merge_all, ..Default::default() };
        let mut d = decompose(g, &popts);
        if unfold {
            d.unfold_whiskers();
        }
        d.validate(g)
            .unwrap_or_else(|e| panic!("{ctx} merge_all={merge_all} unfold={unfold}: {e}"));
        let (got, report) =
            apgre::bc::apgre::bc_from_decomposition(g, &d, &ApgreOptions::default());
        assert_close(&format!("{ctx} merge_all={merge_all} unfold={unfold}"), &got, &want);
        if unfold {
            assert_eq!(report.total_whiskers, 0);
            assert_eq!(
                report.total_roots,
                d.subgraphs.iter().map(|s| s.num_vertices()).sum::<usize>()
            );
        }
        if merge_all {
            // One sub-graph per connected component with edges.
            let comps = apgre::graph::connectivity::connected_components(g);
            let nonempty = (0..comps.count())
                .filter(|&c| {
                    comps.members(c as u32).iter().any(|&v| g.out_degree(v) + g.in_degree(v) > 0)
                })
                .count();
            assert_eq!(report.num_subgraphs, nonempty, "{ctx}");
        }
    }
}

#[test]
fn ablation_modes_stay_exact_on_workloads() {
    for spec in registry().into_iter().step_by(2) {
        let g = spec.graph(Scale::Tiny);
        variants(&g, spec.name);
    }
}

#[test]
fn ablation_modes_on_worked_example() {
    variants(&apgre::workloads::paper_examples::paper_fig3(), "fig3");
}

#[test]
fn merge_all_has_no_boundary_points() {
    let g = registry()[0].graph(Scale::Tiny);
    let d = decompose(&g, &PartitionOptions { merge_all: true, ..Default::default() });
    for sg in &d.subgraphs {
        assert!(sg.boundary.is_empty(), "SG{}", sg.id);
        assert!(sg.alpha.iter().all(|&a| a == 0));
    }
}
