//! Determinism: generators are pure functions of their seed, and APGRE's
//! two-level parallel execution produces bitwise-identical scores run to run
//! (single-writer accumulation everywhere; merges in fixed order).

use apgre::prelude::*;
use apgre::workloads::{registry, Scale};

#[test]
fn apgre_is_bitwise_deterministic_across_runs() {
    for spec in registry().into_iter().take(4) {
        let g = spec.graph(Scale::Tiny);
        let a = bc_apgre(&g);
        let b = bc_apgre(&g);
        assert_eq!(a, b, "{}", spec.name);
    }
}

#[test]
fn apgre_level_sync_inner_is_bitwise_deterministic() {
    let g = registry()[0].graph(Scale::Tiny);
    let opts = ApgreOptions { kernel: KernelPolicy::LevelSync, grain: 1, ..Default::default() };
    let (a, _) = bc_apgre_with(&g, &opts);
    let (b, _) = bc_apgre_with(&g, &opts);
    assert_eq!(a, b);
}

#[test]
fn apgre_root_parallel_inner_is_bitwise_deterministic() {
    // The root-parallel kernel merges fixed chunks in chunk order, so it is
    // bitwise deterministic even though f64 addition is non-associative.
    let g = registry()[0].graph(Scale::Tiny);
    let opts = ApgreOptions { kernel: KernelPolicy::RootParallel, grain: 2, ..Default::default() };
    let (a, _) = bc_apgre_with(&g, &opts);
    let (b, _) = bc_apgre_with(&g, &opts);
    assert_eq!(a, b);
}

#[test]
fn succs_is_bitwise_deterministic() {
    let g = registry()[0].graph(Scale::Tiny);
    assert_eq!(bc_succs(&g), bc_succs(&g));
}

#[test]
fn thread_count_does_not_change_apgre_scores() {
    let g = registry()[2].graph(Scale::Tiny);
    let run = |threads: usize, kernel: KernelPolicy| {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        pool.install(|| bc_apgre_with(&g, &ApgreOptions { kernel, ..Default::default() }).0)
    };
    // Forced single-writer kernels are schedule-independent: bitwise equal
    // across pool sizes.
    for kernel in [KernelPolicy::Seq, KernelPolicy::LevelSync] {
        assert_eq!(run(1, kernel), run(4, kernel), "{kernel:?} must be schedule-independent");
    }
    // Root-parallel chunk boundaries and the Auto kernel decision are
    // functions of the worker count by design, so the f64 fold order may
    // differ between pool sizes; values stay numerically equivalent (and
    // each pool size on its own is bitwise deterministic, tested above).
    for kernel in [KernelPolicy::RootParallel, KernelPolicy::Auto] {
        let one = run(1, kernel);
        let four = run(4, kernel);
        assert!(apgre::bc::scores_close(&one, &four, 1e-9), "{kernel:?} diverged across pools");
    }
}

#[test]
fn workload_generation_is_seed_stable() {
    // A snapshot guard: if a generator's RNG usage changes, every recorded
    // experiment becomes incomparable — fail loudly.
    let g = registry()[0].graph(Scale::Tiny);
    assert!((400..=600).contains(&g.num_vertices()), "{}", g.num_vertices());
    let checksum: u64 = g
        .arcs()
        .map(|(u, v)| (u as u64).wrapping_mul(31).wrapping_add(v as u64))
        .fold(0u64, |acc, x| acc.wrapping_mul(1_000_003).wrapping_add(x));
    let g2 = registry()[0].graph(Scale::Tiny);
    let checksum2: u64 = g2
        .arcs()
        .map(|(u, v)| (u as u64).wrapping_mul(31).wrapping_add(v as u64))
        .fold(0u64, |acc, x| acc.wrapping_mul(1_000_003).wrapping_add(x));
    assert_eq!(checksum, checksum2);
}
