//! Integration tests for the extension modules (weighted, edge, approx,
//! memo) across the workload registry.

use apgre::bc::approx::{bc_approx_apgre, spearman_rank_correlation};
use apgre::bc::edge::{edge_bc, undirected_edge_scores};
use apgre::bc::memo::MemoizedBc;
use apgre::bc::weighted::{bc_weighted_apgre, bc_weighted_serial};
use apgre::graph::WeightedGraph;
use apgre::prelude::*;
use apgre::workloads::{registry, Scale};

#[test]
fn weighted_apgre_matches_weighted_serial_on_workloads() {
    for spec in registry().into_iter().step_by(4) {
        let g = spec.graph(Scale::Tiny);
        let wg = WeightedGraph::random_weights(g, 8, 77);
        let want = bc_weighted_serial(&wg);
        let got = bc_weighted_apgre(&wg);
        for (i, (a, b)) in got.iter().zip(&want).enumerate() {
            assert!(
                (a - b).abs() <= 1e-6 * (1.0 + b.abs()),
                "{} vertex {i}: {a} vs {b}",
                spec.name
            );
        }
    }
}

#[test]
fn unit_weighted_apgre_equals_unweighted_apgre() {
    let g = registry()[0].graph(Scale::Tiny);
    let wg = WeightedGraph::unit(g.clone());
    let a = bc_weighted_apgre(&wg);
    let b = bc_apgre(&g);
    for (x, y) in a.iter().zip(&b) {
        assert!((x - y).abs() <= 1e-7 * (1.0 + y.abs()));
    }
}

#[test]
fn edge_bc_total_mass_invariant_on_workloads() {
    // Σ EBC(e) = Σ_{s,t reachable} d(s,t) on every workload family.
    for spec in registry().into_iter().step_by(5) {
        let g = spec.graph(Scale::Tiny);
        let scores = edge_bc(&g);
        let total: f64 = scores.iter().sum();
        let mut dist_sum = 0f64;
        for s in g.vertices() {
            let d = apgre::graph::traversal::bfs_distances(g.csr(), s);
            for v in g.vertices() {
                if v != s && d[v as usize] != apgre::graph::UNREACHED {
                    dist_sum += d[v as usize] as f64;
                }
            }
        }
        assert!(
            (total - dist_sum).abs() < 1e-6 * (1.0 + dist_sum),
            "{}: {total} vs {dist_sum}",
            spec.name
        );
    }
}

#[test]
fn undirected_edge_scores_are_complete() {
    let g = registry()[0].graph(Scale::Tiny); // email-enron-like, undirected
    let scores = edge_bc(&g);
    let per_edge = undirected_edge_scores(&g, &scores);
    assert_eq!(per_edge.len(), g.num_edges());
    let arc_total: f64 = scores.iter().sum();
    let edge_total: f64 = per_edge.iter().map(|(_, s)| s).sum();
    assert!((arc_total - edge_total).abs() < 1e-6 * (1.0 + arc_total));
}

#[test]
fn approx_apgre_quality_on_workloads() {
    for name in ["youtube-like", "wikitalk-like"] {
        let g = apgre::workloads::get(name).unwrap().graph(Scale::Tiny);
        let exact = bc_serial(&g);
        let est = bc_approx_apgre(&g, 0.5, 11, &ApgreOptions::default());
        let rho = spearman_rank_correlation(&exact, &est);
        assert!(rho > 0.8, "{name}: spearman {rho}");
    }
}

#[test]
fn memo_survives_workload_sequence() {
    // Feed several distinct graphs through one cache: results stay exact and
    // repeated graphs are pure hits.
    let mut memo = MemoizedBc::new(PartitionOptions::default());
    let graphs: Vec<Graph> =
        registry().into_iter().step_by(6).map(|s| s.graph(Scale::Tiny)).collect();
    let mut firsts = Vec::new();
    for g in &graphs {
        firsts.push(memo.compute(g));
    }
    let misses_after_first_pass = memo.misses;
    for (g, first) in graphs.iter().zip(&firsts) {
        let again = memo.compute(g);
        assert_eq!(&again, first);
    }
    assert_eq!(memo.misses, misses_after_first_pass, "second pass must be all hits");
}
