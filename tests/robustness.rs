//! Robustness: dirty inputs and degenerate shapes must not break any
//! algorithm — and APGRE must stay exact on all of them.

use apgre::prelude::*;

fn assert_close(ctx: &str, got: &[f64], want: &[f64]) {
    assert_eq!(got.len(), want.len(), "{ctx}");
    for i in 0..want.len() {
        assert!(
            (got[i] - want[i]).abs() <= 1e-7 * (1.0 + want[i].abs()),
            "{ctx}: vertex {i}: {} vs {}",
            got[i],
            want[i]
        );
    }
}

fn check_all(ctx: &str, g: &Graph) {
    let want = bc_serial(g);
    assert_close(&format!("{ctx}/apgre"), &bc_apgre(g), &want);
    assert_close(&format!("{ctx}/succs"), &bc_succs(g), &want);
    assert_close(&format!("{ctx}/hybrid"), &bc_hybrid(g), &want);
}

#[test]
fn self_loops_are_ignored() {
    // Builder keeps self-loops when asked; they never lie on shortest paths.
    let g = GraphBuilder::directed()
        .keep_self_loops()
        .extend_edges([(0, 0), (0, 1), (1, 1), (1, 2), (2, 0), (2, 2)])
        .build();
    let no_loops = GraphBuilder::directed().extend_edges([(0, 1), (1, 2), (2, 0)]).build();
    let with = bc_apgre(&g);
    let without = bc_apgre(&no_loops);
    assert_close("self-loops", &with, &without);
    check_all("self-loops", &g);
}

#[test]
fn duplicate_directed_arcs_count_multiplicities_consistently() {
    // σ counts paths with edge multiplicity; APGRE must agree with Brandes
    // on what that means.
    let g = Graph::directed_from_edges(4, &[(0, 1), (0, 1), (1, 2), (1, 3), (2, 3)]);
    check_all("dup-arcs", &g);
}

#[test]
fn single_vertex_and_empty() {
    check_all("empty", &Graph::undirected_from_edges(0, &[]));
    check_all("singleton", &Graph::undirected_from_edges(1, &[]));
    check_all("two-isolated", &Graph::undirected_from_edges(2, &[]));
}

#[test]
fn isolated_edge_and_k2_forest() {
    check_all("k2", &Graph::undirected_from_edges(2, &[(0, 1)]));
    check_all("k2-forest", &Graph::undirected_from_edges(6, &[(0, 1), (2, 3), (4, 5)]));
}

#[test]
fn whisker_only_shapes() {
    check_all("star", &apgre::graph::generators::star(30));
    // Double star: two hubs joined by an edge, whiskers on both.
    let mut edges = vec![(0u32, 1u32)];
    for i in 0..10 {
        edges.push((0, 2 + i));
        edges.push((1, 12 + i));
    }
    check_all("double-star", &Graph::undirected_from_edges(22, &edges));
}

#[test]
fn directed_zero_reachability_sources() {
    // Sinks everywhere: many sources reach nothing.
    let g = Graph::directed_from_edges(6, &[(0, 5), (1, 5), (2, 5), (3, 5), (4, 5)]);
    check_all("all-sinks", &g);
    // A source that reaches everything, everything else reaches nothing.
    let g = Graph::directed_from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
    check_all("one-source", &g);
}

#[test]
fn long_path_no_stack_overflow() {
    // 50k-vertex path: recursive Tarjan would blow the stack; ours must not.
    let g = apgre::graph::generators::path(50_000);
    let d = decompose(&g, &PartitionOptions::default());
    d.validate(&g).unwrap();
    assert!(d.is_articulation[25_000]);
    // And the whole BC pipeline still works on a (smaller) path.
    let g = apgre::graph::generators::path(2_000);
    let bc = bc_apgre(&g);
    let mid = 1_000usize;
    assert_eq!(bc[mid], 2.0 * (mid as f64) * (999.0));
}

#[test]
fn two_cliques_sharing_a_vertex() {
    // The minimal partial-redundancy shape from the paper's introduction.
    let mut edges = Vec::new();
    for u in 0..8u32 {
        for v in (u + 1)..8 {
            edges.push((u, v));
        }
    }
    for u in 7..15u32 {
        for v in (u + 1)..15 {
            edges.push((u, v));
        }
    }
    let g = Graph::undirected_from_edges(15, &edges);
    let d = decompose(&g, &PartitionOptions { merge_threshold: 4, ..Default::default() });
    assert_eq!(d.num_subgraphs(), 2);
    assert!(d.is_articulation[7]);
    check_all("two-cliques", &g);
    // Vertex 7 carries all 7×7×2 cross pairs.
    let bc = bc_apgre(&g);
    assert_eq!(bc[7], 98.0);
}

#[test]
fn mixed_component_zoo() {
    let parts = apgre::graph::generators::disjoint_union(&[
        &apgre::graph::generators::complete(6),
        &apgre::graph::generators::star(8),
        &apgre::graph::generators::path(12),
        &apgre::graph::generators::cycle(7),
        &apgre::graph::generators::lollipop(4, 6),
    ]);
    check_all("component-zoo", &parts);
}
