//! Cross-crate equivalence: every algorithm must produce serial Brandes'
//! scores on every Table-1 workload stand-in.

use apgre::prelude::*;
use apgre::workloads::{registry, Scale};

fn assert_close(name: &str, got: &[f64], want: &[f64]) {
    assert_eq!(got.len(), want.len(), "{name}: length");
    for i in 0..want.len() {
        let (x, y) = (got[i], want[i]);
        assert!(
            (x - y).abs() <= 1e-6 * (1.0 + x.abs().max(y.abs())),
            "{name}: vertex {i}: got {x}, want {y}"
        );
    }
}

#[test]
fn all_algorithms_match_serial_on_all_workloads() {
    for spec in registry() {
        let g = spec.graph(Scale::Tiny);
        let want = bc_serial(&g);
        let algos: Vec<(&str, Box<dyn Fn(&Graph) -> Vec<f64>>)> = vec![
            ("preds", Box::new(bc_preds)),
            ("succs", Box::new(bc_succs)),
            ("lockSyncFree", Box::new(bc_lock_free)),
            ("coarse", Box::new(bc_coarse)),
            ("hybrid", Box::new(bc_hybrid)),
            ("apgre", Box::new(bc_apgre)),
        ];
        for (name, f) in algos {
            assert_close(&format!("{}/{}", spec.name, name), &f(&g), &want);
        }
    }
}

#[test]
fn hybrid_matches_serial_across_switch_policies() {
    use apgre::bc::parallel::{bc_hybrid_with, BcHybridPolicy};
    // Extreme policies pin both traversal directions: alpha = 0 never
    // triggers the bottom-up switch (top-down throughout); alpha = MAX
    // switches immediately and beta = 0 never switches back.
    let policies = [
        BcHybridPolicy::default(),
        BcHybridPolicy { alpha: 0, beta: usize::MAX },
        BcHybridPolicy { alpha: usize::MAX, beta: 0 },
    ];
    for spec in registry().into_iter().step_by(2) {
        let g = spec.graph(Scale::Tiny);
        let want = bc_serial(&g);
        for (i, &policy) in policies.iter().enumerate() {
            let got = bc_hybrid_with(&g, policy);
            assert_close(&format!("{}/hybrid-policy{i}", spec.name), &got, &want);
        }
    }
}

#[test]
fn apgre_matches_across_thresholds_on_workloads() {
    for spec in registry().into_iter().step_by(3) {
        let g = spec.graph(Scale::Tiny);
        let want = bc_serial(&g);
        for threshold in [1, 8, 64] {
            let opts = ApgreOptions {
                partition: PartitionOptions { merge_threshold: threshold, ..Default::default() },
                ..Default::default()
            };
            let (got, report) = bc_apgre_with(&g, &opts);
            assert_close(&format!("{}@t{threshold}", spec.name), &got, &want);
            assert!(report.num_subgraphs >= 1);
        }
    }
}

#[test]
fn decompositions_validate_on_all_workloads() {
    for spec in registry() {
        let g = spec.graph(Scale::Tiny);
        let d = decompose(&g, &PartitionOptions::default());
        d.validate(&g).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
    }
}

#[test]
fn redundancy_fractions_are_sane_on_all_workloads() {
    for spec in registry() {
        let g = spec.graph(Scale::Tiny);
        let d = decompose(&g, &PartitionOptions::default());
        let r = apgre::bc::redundancy::analyze(&g, &d);
        let total = r.total_fraction() + r.partial_fraction() + r.essential_fraction();
        assert!((total - 1.0).abs() < 1e-9, "{}: fractions sum to {total}", spec.name);
        assert!(r.essential_fraction() > 0.0, "{}", spec.name);
    }
}
