//! Golden regression tests: BC score checksums for fixed-seed workloads.
//!
//! Guards against silent behavioural drift anywhere in the pipeline
//! (generator RNG usage, CSR ordering, kernel formulas): if any of these
//! change, the checksum changes and the recorded experiments become
//! incomparable. Run with `APGRE_PRINT_GOLDEN=1` to print fresh values after
//! an *intentional* change, and update both the constants and `results/`.

use apgre::prelude::*;
use apgre::workloads::{get, Scale};

/// Order-stable checksum of a score vector: scores are rounded to 1e-6 to
/// stay robust to summation-order noise, then FNV-folded.
fn checksum(scores: &[f64]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &s in scores {
        let q = (s * 1e6).round() as i64 as u64;
        for b in q.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

/// The constants below are recorded against the vendored `rand` stand-in's
/// SplitMix64 stream; upstream `StdRng` (ChaCha12) generates different
/// graphs from the same seeds, so against upstream the pinned values are
/// meaningless. Detect which stream is linked by probing one draw from a
/// fixed seed (the stand-in's value is itself a recorded fixture).
fn standin_rand_stream() -> bool {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xA9C4_E6D2);
    let probe: u64 = rng.gen_range(0..u64::MAX);
    probe == STANDIN_PROBE
}

/// `StdRng::seed_from_u64(0xA9C4_E6D2).gen_range(0..u64::MAX)` under the
/// vendored stand-in; re-record with `APGRE_PRINT_GOLDEN=1` if the stand-in
/// stream ever changes intentionally.
const STANDIN_PROBE: u64 = 0x522f_403c_951b_1465;

fn check(name: &str, expected: u64) {
    let g = get(name).unwrap().graph(Scale::Tiny);
    let scores = bc_apgre(&g);
    let got = checksum(&scores);
    if std::env::var("APGRE_PRINT_GOLDEN").is_ok() {
        println!("(\"{name}\", 0x{got:016x}),");
        return;
    }
    if !standin_rand_stream() {
        // Upstream rand: the APGRE-vs-Brandes cross-check below still runs
        // (it is stream-independent); only the pinned constant is skipped.
        eprintln!("{name}: upstream rand stream detected — skipping stand-in golden constant");
        let serial = checksum(&bc_serial(&g));
        assert_eq!(got, serial, "{name}: apgre and serial diverge at 1e-6 rounding");
        return;
    }
    assert_eq!(
        got, expected,
        "{name}: BC checksum drifted (0x{got:016x} vs 0x{expected:016x}) — \
         if intentional, re-record with APGRE_PRINT_GOLDEN=1"
    );
    // And the checksum must match serial Brandes' checksum too.
    let serial = checksum(&bc_serial(&g));
    assert_eq!(got, serial, "{name}: apgre and serial diverge at 1e-6 rounding");
}

#[test]
fn golden_email_enron_like() {
    check("email-enron-like", GOLDEN[0].1);
}

#[test]
fn golden_wikitalk_like() {
    check("wikitalk-like", GOLDEN[1].1);
}

#[test]
fn golden_youtube_like() {
    check("youtube-like", GOLDEN[2].1);
}

#[test]
fn golden_road_ny_like() {
    check("usa-road-ny-like", GOLDEN[3].1);
}

/// Recorded with `APGRE_PRINT_GOLDEN=1 cargo test --test golden -- --nocapture`
/// against the vendored offline `rand` stand-in (SplitMix64 `StdRng`); the
/// stream differs from upstream ChaCha12, so these values are tied to the
/// vendored substrate (see vendor/README.md).
const GOLDEN: &[(&str, u64)] = &[
    ("email-enron-like", 0xfc39df40ff7cf5c0),
    ("wikitalk-like", 0x082f776035733551),
    ("youtube-like", 0xe9cb5216d2debeca),
    ("usa-road-ny-like", 0xe86a796b1c5962e2),
];
