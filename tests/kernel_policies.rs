//! Kernel-policy equivalence: every sub-graph kernel — `bc_in_subgraph_seq`,
//! `bc_in_subgraph_seq_with`, `bc_in_subgraph_root_par`,
//! `bc_in_subgraph_level_sync`, `bc_in_subgraph_level_sync_with` — and every
//! `KernelPolicy` must reproduce serial Brandes (`bc_serial`) on the
//! Table-1 workload stand-ins, across grains, pool sizes, and pooled
//! (recycled, oversized) workspaces.

use apgre::bc::apgre::kernel::{
    bc_in_subgraph_level_sync, bc_in_subgraph_level_sync_roots_with,
    bc_in_subgraph_level_sync_with, bc_in_subgraph_root_par, bc_in_subgraph_root_par_roots,
    bc_in_subgraph_seq, bc_in_subgraph_seq_roots_with, bc_in_subgraph_seq_with, SgParWs,
    SgWorkspace,
};
use apgre::prelude::*;
use apgre::workloads::{registry, Scale};

fn assert_close(name: &str, got: &[f64], want: &[f64]) {
    assert_eq!(got.len(), want.len(), "{name}: length");
    for i in 0..want.len() {
        let (x, y) = (got[i], want[i]);
        assert!(
            (x - y).abs() <= 1e-6 * (1.0 + x.abs().max(y.abs())),
            "{name}: vertex {i}: got {x}, want {y}"
        );
    }
}

/// Every forced policy and Auto must match serial Brandes end to end, and
/// the report must account for every sub-graph under the forced policies.
#[test]
fn all_policies_match_bc_serial_on_workloads() {
    for spec in registry().into_iter().step_by(2) {
        let g = spec.graph(Scale::Tiny);
        let want = bc_serial(&g);
        for (name, kernel, grain) in [
            ("auto", KernelPolicy::Auto, 256),
            ("seq", KernelPolicy::Seq, 256),
            ("rootpar", KernelPolicy::RootParallel, 1),
            ("levelsync", KernelPolicy::LevelSync, 1),
        ] {
            let opts = ApgreOptions { kernel, grain, ..Default::default() };
            let (got, report) = bc_apgre_with(&g, &opts);
            assert_close(&format!("{}/{name}", spec.name), &got, &want);
            let (s, r, l) = report.kernel_counts;
            assert_eq!(s + r + l, report.num_subgraphs, "{}/{name}", spec.name);
            match kernel {
                KernelPolicy::Seq => assert_eq!(s, report.num_subgraphs),
                KernelPolicy::RootParallel => assert_eq!(r, report.num_subgraphs),
                KernelPolicy::LevelSync => assert_eq!(l, report.num_subgraphs),
                KernelPolicy::Auto => {}
            }
        }
    }
}

/// Direct per-sub-graph comparison of all five kernel entry points,
/// including the pooled `_with` variants running on one shared, deliberately
/// oversized workspace recycled across sub-graphs of different sizes.
#[test]
fn subgraph_kernels_agree_with_each_other_and_bc_serial() {
    for spec in registry().into_iter().step_by(3) {
        let g = spec.graph(Scale::Tiny);
        let want = bc_serial(&g);
        let d = decompose(&g, &PartitionOptions::default());
        let mut pooled_seq = SgWorkspace::new(1);
        let mut pooled_par = SgParWs::new(1);
        let run = |f: &mut dyn FnMut(&SubGraph, &mut [f64]) -> u64| {
            let mut bc = vec![0.0f64; g.num_vertices()];
            for sg in &d.subgraphs {
                let mut local = vec![0.0f64; sg.num_vertices()];
                f(sg, &mut local);
                for (l, &score) in local.iter().enumerate() {
                    bc[sg.globals[l] as usize] += score;
                }
            }
            bc
        };
        let mut variants: Vec<(&str, Box<dyn FnMut(&SubGraph, &mut [f64]) -> u64>)> = vec![
            ("seq", Box::new(bc_in_subgraph_seq)),
            ("root_par", Box::new(|sg, l| bc_in_subgraph_root_par(sg, l, 2))),
            ("level_sync", Box::new(|sg, l| bc_in_subgraph_level_sync(sg, l, 1))),
            ("seq_with", Box::new(|sg, l| bc_in_subgraph_seq_with(sg, l, &mut pooled_seq))),
            (
                "level_sync_with",
                Box::new(|sg, l| bc_in_subgraph_level_sync_with(sg, l, 1, &mut pooled_par)),
            ),
        ];
        for (name, f) in &mut variants {
            assert_close(&format!("{}/{name}", spec.name), &run(f.as_mut()), &want);
        }
    }
}

/// The parallel kernels must also be exact inside a single-worker pool (the
/// degenerate scheduling case: every chunk and level runs on one thread).
#[test]
fn forced_parallel_kernels_match_bc_serial_on_one_thread() {
    let spec = &registry()[1];
    let g = spec.graph(Scale::Tiny);
    let want = bc_serial(&g);
    let pool = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    for kernel in [KernelPolicy::RootParallel, KernelPolicy::LevelSync] {
        let opts = ApgreOptions { kernel, grain: 1, ..Default::default() };
        let got = pool.install(|| bc_apgre_with(&g, &opts).0);
        assert_close(&format!("{}/{kernel:?}@1thread", spec.name), &got, &want);
    }
}

/// Exactness must not depend on the scheduling grain.
#[test]
fn grain_sweep_matches_bc_serial() {
    let spec = &registry()[4];
    let g = spec.graph(Scale::Tiny);
    let want = bc_serial(&g);
    for grain in [1, 3, 64, 1_000_000] {
        for kernel in [KernelPolicy::Auto, KernelPolicy::RootParallel, KernelPolicy::LevelSync] {
            let opts = ApgreOptions { kernel, grain, ..Default::default() };
            let (got, report) = bc_apgre_with(&g, &opts);
            assert_close(&format!("{}/{kernel:?}@g{grain}", spec.name), &got, &want);
            assert_eq!(report.grain, grain.max(1));
        }
    }
}

/// The explicit-roots kernel variants, handed the full `sg.roots`, must be
/// bitwise-identical to their implicit-roots counterparts (they are the
/// same sweeps in the same order), and composing them reproduces serial
/// Brandes (`bc_serial`) like every other kernel.
#[test]
fn roots_kernel_variants_match_their_full_kernels_and_bc_serial() {
    for spec in registry().into_iter().step_by(3) {
        let g = spec.graph(Scale::Tiny);
        let want = bc_serial(&g);
        let d = decompose(&g, &PartitionOptions::default());
        let mut composed = vec![0.0f64; g.num_vertices()];
        for sg in &d.subgraphs {
            let n = sg.num_vertices();
            let (mut full, mut roots) = (vec![0.0f64; n], vec![0.0f64; n]);
            bc_in_subgraph_seq(sg, &mut full);
            bc_in_subgraph_seq_roots_with(sg, &sg.roots, &mut roots, &mut SgWorkspace::new(n));
            assert_eq!(full, roots, "{}/SG{}: seq_roots_with", spec.name, sg.id);

            let (mut full, mut roots) = (vec![0.0f64; n], vec![0.0f64; n]);
            bc_in_subgraph_root_par(sg, &mut full, 2);
            bc_in_subgraph_root_par_roots(sg, &sg.roots, &mut roots, 2);
            assert_eq!(full, roots, "{}/SG{}: root_par_roots", spec.name, sg.id);

            let (mut full, mut lvl) = (vec![0.0f64; n], vec![0.0f64; n]);
            bc_in_subgraph_level_sync(sg, &mut full, 1);
            bc_in_subgraph_level_sync_roots_with(sg, &sg.roots, &mut lvl, 1, &mut SgParWs::new(n));
            assert_eq!(full, lvl, "{}/SG{}: level_sync_roots_with", spec.name, sg.id);

            for (l, &score) in lvl.iter().enumerate() {
                composed[sg.globals[l] as usize] += score;
            }
        }
        assert_close(&format!("{}/roots-composed", spec.name), &composed, &want);
    }
}

/// The sampled estimator must respect the kernel policy the same way the
/// exact pipeline does: with every sub-graph fully sampled (scale 1.0) its
/// estimates are **bitwise** the exact APGRE scores under every forced
/// policy, and the whole composition stays close to serial Brandes.
#[test]
fn sampled_estimator_full_draw_is_exact_under_every_policy() {
    for spec in registry().into_iter().step_by(4) {
        let g = spec.graph(Scale::Tiny);
        let want = bc_serial(&g);
        let full = SampleOptions::uniform(usize::MAX, 0xA99);
        for (name, kernel) in [
            ("seq", KernelPolicy::Seq),
            ("rootpar", KernelPolicy::RootParallel),
            ("levelsync", KernelPolicy::LevelSync),
        ] {
            let opts = ApgreOptions { kernel, grain: 2, ..Default::default() };
            let (exact, _) = bc_apgre_with(&g, &opts);
            let est = bc_sampled(&g, &opts, &full);
            assert_eq!(est.len(), exact.len());
            for v in 0..exact.len() {
                assert!(
                    est[v].to_bits() == exact[v].to_bits(),
                    "{}/{name}: vertex {v}: full-draw estimate {} != exact {}",
                    spec.name,
                    est[v],
                    exact[v]
                );
            }
            assert_close(&format!("{}/{name}/estimator", spec.name), &est, &want);
        }
    }
}

/// The estimator's parallel kernels must be exact and bitwise-stable in a
/// single-worker pool (the degenerate scheduling case), matching the
/// ambient-pool run of the same draw — the pooled-workspace anchor the
/// exact kernels already carry.
#[test]
fn sampled_estimator_is_bitwise_stable_in_a_one_thread_pool() {
    let spec = &registry()[1];
    let g = spec.graph(Scale::Tiny);
    let sopts = SampleOptions::uniform(4, 0x5EED);
    let pool = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    for kernel in [KernelPolicy::Seq, KernelPolicy::RootParallel, KernelPolicy::LevelSync] {
        let opts = ApgreOptions { kernel, grain: 1, ..Default::default() };
        let ambient = bc_sampled(&g, &opts, &sopts);
        let pooled = pool.install(|| bc_sampled(&g, &opts, &sopts));
        for v in 0..ambient.len() {
            assert!(
                ambient[v].to_bits() == pooled[v].to_bits(),
                "{}/{kernel:?}: vertex {v} diverges between pool sizes",
                spec.name
            );
        }
    }
}

/// The root-parallel kernel merges fixed chunks in chunk order, so repeated
/// runs are bitwise identical — f64 non-associativity notwithstanding.
#[test]
fn root_par_kernel_is_bitwise_deterministic_on_workloads() {
    for spec in registry().into_iter().step_by(4) {
        let g = spec.graph(Scale::Tiny);
        let d = decompose(&g, &PartitionOptions::default());
        for sg in &d.subgraphs {
            let mut a = vec![0.0f64; sg.num_vertices()];
            let mut b = vec![0.0f64; sg.num_vertices()];
            bc_in_subgraph_root_par(sg, &mut a, 2);
            bc_in_subgraph_root_par(sg, &mut b, 2);
            assert_eq!(a, b, "{}/SG{}", spec.name, sg.id);
        }
    }
}
