//! Property-based tests: APGRE ≡ Brandes on arbitrary graphs.
//!
//! These are the tests that pin down every formula in the four-dependency
//! kernel (including the whisker endpoint corrections — see DESIGN.md §3.3):
//! random graphs from several distributions, directed and undirected,
//! connected or not, swept across partition thresholds.

use apgre::prelude::*;
use proptest::prelude::*;

fn assert_close(ctx: &str, got: &[f64], want: &[f64]) {
    assert_eq!(got.len(), want.len(), "{ctx}: length");
    for i in 0..want.len() {
        let (x, y) = (got[i], want[i]);
        assert!(
            (x - y).abs() <= 1e-6 * (1.0 + x.abs().max(y.abs())),
            "{ctx}: vertex {i}: got {x}, want {y}"
        );
    }
}

/// Arbitrary edge list over up to `n_max` vertices.
fn edges_strategy(n_max: u32, m_max: usize) -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (2..n_max).prop_flat_map(move |n| {
        let edge = (0..n, 0..n);
        (Just(n), proptest::collection::vec(edge, 0..m_max))
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn apgre_matches_brandes_undirected((n, edges) in edges_strategy(48, 120), threshold in 0usize..20) {
        let g = Graph::undirected_from_edges(n as usize, &edges);
        let want = apgre::bc::brandes::bc_serial(&g);
        let opts = ApgreOptions {
            partition: PartitionOptions { merge_threshold: threshold, ..Default::default() },
            ..Default::default()
        };
        let (got, _) = bc_apgre_with(&g, &opts);
        assert_close(&format!("und n={n} m={} t={threshold}", edges.len()), &got, &want);
    }

    #[test]
    fn apgre_matches_brandes_directed((n, edges) in edges_strategy(40, 150), threshold in 0usize..20) {
        let g = Graph::directed_from_edges(
            n as usize,
            &edges.iter().copied().filter(|&(u, v)| u != v).collect::<Vec<_>>(),
        );
        let want = apgre::bc::brandes::bc_serial(&g);
        let opts = ApgreOptions {
            partition: PartitionOptions { merge_threshold: threshold, ..Default::default() },
            ..Default::default()
        };
        let (got, _) = bc_apgre_with(&g, &opts);
        assert_close(&format!("dir n={n} m={} t={threshold}", edges.len()), &got, &want);
    }

    #[test]
    fn apgre_matches_on_whiskered_trees(n in 3usize..60, seed in 0u64..5000) {
        // Trees maximize articulation structure: every internal vertex cuts.
        let g = apgre::graph::generators::random_tree(n, seed);
        let want = apgre::bc::brandes::bc_serial(&g);
        let got = bc_apgre(&g);
        assert_close(&format!("tree n={n} seed={seed}"), &got, &want);
    }

    #[test]
    fn apgre_matches_with_bfs_alpha_beta_directed((n, edges) in edges_strategy(32, 90)) {
        let g = Graph::directed_from_edges(
            n as usize,
            &edges.iter().copied().filter(|&(u, v)| u != v).collect::<Vec<_>>(),
        );
        let want = apgre::bc::brandes::bc_serial(&g);
        let opts = ApgreOptions {
            partition: PartitionOptions {
                merge_threshold: 2,
                alpha_beta: AlphaBetaMethod::BlockedBfs,
                ..Default::default()
            },
            ..Default::default()
        };
        let (got, _) = bc_apgre_with(&g, &opts);
        assert_close("bfs-ab", &got, &want);
    }

    #[test]
    fn parallel_baselines_match_serial((n, edges) in edges_strategy(36, 100)) {
        let g = Graph::undirected_from_edges(n as usize, &edges);
        let want = apgre::bc::brandes::bc_serial(&g);
        assert_close("succs", &bc_succs(&g), &want);
        assert_close("lock_free", &bc_lock_free(&g), &want);
        assert_close("coarse", &bc_coarse(&g), &want);
        assert_close("hybrid", &bc_hybrid(&g), &want);
    }

    #[test]
    fn decomposition_invariants_hold((n, edges) in edges_strategy(60, 150), threshold in 0usize..24) {
        let g = Graph::undirected_from_edges(n as usize, &edges);
        let d = decompose(&g, &PartitionOptions { merge_threshold: threshold, ..Default::default() });
        d.validate(&g).unwrap();
        // Undirected connected-component coverage: |SGi| + Σα = component size.
        let comps = apgre::graph::connectivity::connected_components(&g);
        for sg in &d.subgraphs {
            let comp = comps.comp[sg.globals[0] as usize];
            let comp_size = comps.sizes[comp as usize] as u64;
            let covered = sg.num_vertices() as u64 + sg.alpha.iter().sum::<u64>();
            prop_assert_eq!(covered, comp_size);
        }
    }

    #[test]
    fn sampled_estimator_stream_is_bitwise_vs_scratch(
        (n, edges) in edges_strategy(32, 70),
        ops in proptest::collection::vec((0u32..32, 0u32..32, proptest::bool::ANY), 1..10),
        k in 1usize..6,
        seed in 0u64..1000,
    ) {
        // PR 9 determinism contract under arbitrary mutation streams: after
        // every batch the incremental estimator must be bitwise the
        // from-scratch composed estimator over the engine's decomposition.
        let g = Graph::undirected_from_edges(n as usize, &edges);
        let opts = ApgreOptions::default();
        let sopts = SampleOptions::uniform(k, seed);
        let mut engine = DynamicBc::new(&g, opts.clone());
        engine.enable_approx(sopts.clone());
        for &(u, v, add) in &ops {
            let (u, v) = (u % n, v % n);
            let batch = if add {
                MutationBatch::new().add_edge(u, v)
            } else {
                MutationBatch::new().remove_edge(u, v)
            };
            engine.apply(&batch);
            let ap = engine.approx_snapshot().expect("estimator enabled");
            let got = ap.estimates.to_vec();
            let want = bc_sampled_from_decomposition(engine.decomposition(), &opts, &sopts);
            prop_assert_eq!(got.len(), want.len());
            for i in 0..want.len() {
                prop_assert!(
                    got[i].to_bits() == want[i].to_bits(),
                    "vertex {}: incremental {} vs scratch {}", i, got[i], want[i]
                );
            }
        }
    }

    #[test]
    fn alpha_beta_methods_agree_on_undirected((n, edges) in edges_strategy(48, 110)) {
        let g = Graph::undirected_from_edges(n as usize, &edges);
        let tree = decompose(&g, &PartitionOptions { merge_threshold: 4, alpha_beta: AlphaBetaMethod::BlockCutTree, ..Default::default() });
        let bfs = decompose(&g, &PartitionOptions { merge_threshold: 4, alpha_beta: AlphaBetaMethod::BlockedBfs, ..Default::default() });
        for (a, b) in tree.subgraphs.iter().zip(&bfs.subgraphs) {
            prop_assert_eq!(&a.alpha, &b.alpha);
            prop_assert_eq!(&a.beta, &b.beta);
        }
    }
}

mod extension_properties {
    use super::*;
    use apgre::bc::edge::edge_bc;
    use apgre::bc::weighted::{bc_weighted_apgre, bc_weighted_serial, naive_weighted_bc};
    use apgre::graph::WeightedGraph;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

        #[test]
        fn weighted_apgre_matches_weighted_serial(
            (n, edges) in edges_strategy(36, 90),
            max_w in 1u32..9,
            wseed in 0u64..1000,
            threshold in 0usize..12,
        ) {
            let g = Graph::undirected_from_edges(n as usize, &edges);
            let wg = WeightedGraph::random_weights(g, max_w, wseed);
            let want = bc_weighted_serial(&wg);
            let got = apgre::bc::weighted::bc_weighted_apgre_with(
                &wg,
                &PartitionOptions { merge_threshold: threshold, ..Default::default() },
            );
            assert_close("weighted-apgre", &got, &want);
        }

        #[test]
        fn weighted_serial_matches_definitional_oracle(
            (n, edges) in edges_strategy(20, 40),
            max_w in 1u32..6,
            wseed in 0u64..500,
        ) {
            let g = Graph::undirected_from_edges(n as usize, &edges);
            let wg = WeightedGraph::random_weights(g, max_w, wseed);
            assert_close("weighted-oracle", &bc_weighted_serial(&wg), &naive_weighted_bc(&wg));
        }

        #[test]
        fn weighted_apgre_directed((n, edges) in edges_strategy(30, 90), wseed in 0u64..500) {
            let g = Graph::directed_from_edges(
                n as usize,
                &edges.iter().copied().filter(|&(u, v)| u != v).collect::<Vec<_>>(),
            );
            let wg = WeightedGraph::random_weights(g, 5, wseed);
            let want = bc_weighted_serial(&wg);
            assert_close("weighted-apgre-dir", &bc_weighted_apgre(&wg), &want);
        }

        #[test]
        fn edge_bc_mass_equals_distance_sum((n, edges) in edges_strategy(40, 100)) {
            let g = Graph::undirected_from_edges(n as usize, &edges);
            let scores = edge_bc(&g);
            let total: f64 = scores.iter().sum();
            let mut dist_sum = 0f64;
            for s in g.vertices() {
                let d = apgre::graph::traversal::bfs_distances(g.csr(), s);
                for v in g.vertices() {
                    if v != s && d[v as usize] != apgre::graph::UNREACHED {
                        dist_sum += d[v as usize] as f64;
                    }
                }
            }
            prop_assert!((total - dist_sum).abs() <= 1e-6 * (1.0 + dist_sum));
        }

        #[test]
        fn vertex_bc_recoverable_from_edge_bc((n, edges) in edges_strategy(30, 70)) {
            // Brandes' identity: δ_s(v) = Σ_{out-arcs of v} arc-dependency,
            // so BC(v) = Σ over v's out-arcs of EBC − (# sources reaching v
            // as non-root interior start)… simplest exact form:
            // BC(v) = (Σ in-arc EBC of v) − (# ordered pairs (s,v) with a
            // path, s≠v). Verify it.
            let g = Graph::undirected_from_edges(n as usize, &edges);
            let arc_scores = edge_bc(&g);
            let vertex = apgre::bc::brandes::bc_serial(&g);
            let csr = g.csr();
            // reach_count[v] = number of sources s != v that reach v
            let mut reach = vec![0u64; g.num_vertices()];
            for s in g.vertices() {
                let d = apgre::graph::traversal::bfs_distances(csr, s);
                for v in g.vertices() {
                    if v != s && d[v as usize] != apgre::graph::UNREACHED {
                        reach[v as usize] += 1;
                    }
                }
            }
            // in-arc sum per vertex
            let mut in_sum = vec![0.0f64; g.num_vertices()];
            for (pos, (_, v)) in csr.edges().enumerate() {
                in_sum[v as usize] += arc_scores[pos];
            }
            for v in 0..g.num_vertices() {
                let expect = in_sum[v] - reach[v] as f64;
                prop_assert!(
                    (vertex[v] - expect).abs() <= 1e-6 * (1.0 + vertex[v].abs()),
                    "vertex {}: bc {} vs in-arc {} - reach {}",
                    v, vertex[v], in_sum[v], reach[v]
                );
            }
        }
    }
}
