//! Offline stand-in for `serde` (see `vendor/README.md`).
//!
//! Real serde abstracts over data formats; this workspace only ever
//! serializes to JSON, so the stand-in collapses the abstraction:
//! [`Serialize`] renders directly into the in-tree JSON [`value::Value`]
//! model, and the vendored `serde_json` pretty-prints it. `#[derive(Serialize)]`
//! comes from the vendored `serde_derive` proc-macro (enabled by the
//! `derive` feature, like upstream).

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

pub mod value;

/// A type that can render itself as a JSON value.
///
/// The single method replaces serde's `Serializer`-visitor dance: every
/// consumer in this workspace funnels into JSON anyway.
pub trait Serialize {
    /// Renders `self` as a JSON value tree.
    fn to_json_value(&self) -> value::Value;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> value::Value {
        (**self).to_json_value()
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> value::Value {
        value::Value::Bool(*self)
    }
}

macro_rules! impl_serialize_number {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> value::Value {
                value::Value::Number(*self as f64)
            }
        }
    )*};
}

impl_serialize_number!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for str {
    fn to_json_value(&self) -> value::Value {
        value::Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> value::Value {
        value::Value::String(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> value::Value {
        match self {
            Some(v) => v.to_json_value(),
            None => value::Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> value::Value {
        value::Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> value::Value {
        self.as_slice().to_json_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> value::Value {
        self.as_slice().to_json_value()
    }
}

impl Serialize for value::Value {
    fn to_json_value(&self) -> value::Value {
        self.clone()
    }
}

impl Serialize for value::Map {
    fn to_json_value(&self) -> value::Value {
        value::Value::Object(self.clone())
    }
}
