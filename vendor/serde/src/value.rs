//! The JSON value model shared by the vendored `serde` and `serde_json`.

/// A JSON value. Numbers are `f64`, as in JavaScript — ample for the
/// bench-record magnitudes this workspace emits.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Number(f64),
    /// A string.
    String(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// Key-value pairs, insertion-ordered.
    Object(Map),
}

impl Value {
    /// The value under `key`, if this is an object holding it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The float, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

/// An insertion-ordered string-keyed map (upstream `serde_json::Map` with
/// the `preserve_order` feature). The generic parameters exist only so the
/// spelled-out type `Map<String, Value>` keeps compiling; no other
/// instantiation is supported.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl Map<String, Value> {
    /// An empty map.
    pub fn new() -> Self {
        Map { entries: Vec::new() }
    }

    /// Inserts `value` under `key`, replacing (in place) any existing entry.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// The value under `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_replaces_in_place() {
        let mut m = Map::new();
        m.insert("a".into(), Value::Number(1.0));
        m.insert("b".into(), Value::Number(2.0));
        let old = m.insert("a".into(), Value::Number(3.0));
        assert_eq!(old, Some(Value::Number(1.0)));
        let keys: Vec<&String> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["a", "b"]);
        assert_eq!(m.get("a"), Some(&Value::Number(3.0)));
    }
}
