//! Offline stand-in for `parking_lot` (see `vendor/README.md`).
//!
//! Wraps `std::sync` primitives behind parking_lot's API shape: `lock()` /
//! `read()` / `write()` return guards directly (no `Result`). Poisoning is
//! ignored — a panicked critical section still yields the data, matching
//! parking_lot's non-poisoning semantics.

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion, parking_lot-style (`lock()` returns the guard).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock, parking_lot-style.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(l.into_inner(), 6);
    }
}
