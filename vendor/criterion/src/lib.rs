//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! Keeps the bench sources compiling and runnable: groups, benchmark IDs,
//! `bench_function` / `bench_with_input`, and `Bencher::iter`. Measurement
//! is a plain warm-up + timed-samples loop reporting mean and min — no
//! statistical analysis, HTML reports, or CLI filtering.

use std::time::{Duration, Instant};

/// Re-implementation of `criterion::black_box` (identity through an opaque
/// read, preventing the optimizer from deleting the measured work).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark context.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        eprintln!("\nbench group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_secs(1),
        }
    }
}

/// Identifier `function/parameter`, as in criterion.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function/parameter`.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Untimed warm-up budget before sampling.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Total timed budget; sampling stops early when exhausted.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().0;
        let mut b = Bencher::new(self.sample_size, self.warm_up_time, self.measurement_time);
        f(&mut b);
        b.report(&id);
        self
    }

    /// Benchmarks a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into().0;
        let mut b = Bencher::new(self.sample_size, self.warm_up_time, self.measurement_time);
        f(&mut b, input);
        b.report(&id);
        self
    }

    /// Ends the group (a reporting no-op here).
    pub fn finish(self) {}
}

/// Accepted benchmark identifiers: `&str` or [`BenchmarkId`].
pub struct BenchId(String);

impl From<&str> for BenchId {
    fn from(s: &str) -> Self {
        BenchId(s.to_string())
    }
}

impl From<String> for BenchId {
    fn from(s: String) -> Self {
        BenchId(s)
    }
}

impl From<BenchmarkId> for BenchId {
    fn from(id: BenchmarkId) -> Self {
        BenchId(id.id)
    }
}

/// Drives the measured closure.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize, warm_up_time: Duration, measurement_time: Duration) -> Self {
        Bencher { sample_size, warm_up_time, measurement_time, samples: Vec::new() }
    }

    /// Times `f`: warm-up until the warm-up budget elapses, then up to
    /// `sample_size` timed samples within the measurement budget.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            black_box(f());
        }
        let measure_start = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed());
            if measure_start.elapsed() > self.measurement_time {
                break;
            }
        }
        if self.samples.is_empty() {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed());
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            eprintln!("  {id}: no samples (closure never called iter)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        eprintln!("  {id}: mean {:?} / min {:?} over {} sample(s)", mean, min, self.samples.len());
    }
}

/// Bundles benchmark functions into one runnable group, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(10));
        let mut calls = 0u32;
        group.bench_function("inc", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
        group.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &x| b.iter(|| x * x));
        group.finish();
    }
}
