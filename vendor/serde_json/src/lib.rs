//! Offline stand-in for `serde_json` (see `vendor/README.md`).
//!
//! Re-exports the value model from the vendored `serde` and adds the
//! pieces this workspace calls: the [`json!`] macro, [`to_value`], and
//! [`to_string_pretty`]. Output is deterministic: maps keep insertion
//! order and numbers print integral-valued floats without a fraction.

pub use serde::value::{Map, Value};

/// Error type for API parity; no operation here can actually fail.
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("serde_json stand-in error")
    }
}

impl std::error::Error for Error {}

/// Renders any [`serde::Serialize`] type as a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_json_value())
}

/// Pretty-prints (2-space indent) any [`serde::Serialize`] type.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_json_value(), 0, &mut out);
    Ok(out)
}

/// Compact single-line rendering.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let pretty = to_string_pretty(value)?;
    // Cheap compaction is not worth a second printer here; keep pretty.
    Ok(pretty)
}

fn write_value(v: &Value, indent: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent + 1, out);
                write_value(item, indent + 1, out);
            }
            newline_indent(indent, out);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent + 1, out);
                write_string(k, out);
                out.push_str(": ");
                write_value(val, indent + 1, out);
            }
            newline_indent(indent, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: usize, out: &mut String) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; upstream errors out, the stand-in nulls.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builds a [`Value`] from JSON-ish syntax: `json!(null)`, object literals
/// with string-literal keys and arbitrary expression values (including
/// nested object literals), or any `serde::Serialize` expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($body:tt)* }) => {{
        let mut map = $crate::Map::new();
        $crate::json_object_munch!(map; $($body)*);
        $crate::Value::Object(map)
    }};
    ([ $($elems:tt)* ]) => {{
        let mut items: Vec<$crate::Value> = Vec::new();
        $crate::json_array_munch!(items; []; $($elems)*);
        $crate::Value::Array(items)
    }};
    ($other:expr) => {
        // By reference, as upstream does — `json!(x)` must not move `x`.
        $crate::to_value(&$other).expect("json! serialization")
    };
}

/// Implementation detail of [`json!`]: munches `"key": value` pairs.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_munch {
    ($map:ident;) => {};
    // Value is a nested object literal.
    ($map:ident; $key:literal : { $($obj:tt)* } , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::json!({ $($obj)* }));
        $crate::json_object_munch!($map; $($rest)*);
    };
    ($map:ident; $key:literal : { $($obj:tt)* }) => {
        $map.insert($key.to_string(), $crate::json!({ $($obj)* }));
    };
    // Value is an expression: accumulate tokens until a top-level comma.
    ($map:ident; $key:literal : $($rest:tt)*) => {
        $crate::json_value_munch!($map; $key; []; $($rest)*);
    };
}

/// Implementation detail of [`json!`]: accumulates one expression value.
#[doc(hidden)]
#[macro_export]
macro_rules! json_value_munch {
    ($map:ident; $key:literal; [$($val:tt)+]; , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::json!($($val)+));
        $crate::json_object_munch!($map; $($rest)*);
    };
    ($map:ident; $key:literal; [$($val:tt)+];) => {
        $map.insert($key.to_string(), $crate::json!($($val)+));
    };
    ($map:ident; $key:literal; [$($val:tt)*]; $t:tt $($rest:tt)*) => {
        $crate::json_value_munch!($map; $key; [$($val)* $t]; $($rest)*);
    };
}

/// Implementation detail of [`json!`]: munches array elements.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array_munch {
    ($items:ident; [$($val:tt)+]; , $($rest:tt)*) => {
        $items.push($crate::json!($($val)+));
        $crate::json_array_munch!($items; []; $($rest)*);
    };
    ($items:ident; [$($val:tt)+];) => {
        $items.push($crate::json!($($val)+));
    };
    ($items:ident; [];) => {};
    ($items:ident; [$($val:tt)*]; $t:tt $($rest:tt)*) => {
        $crate::json_array_munch!($items; [$($val)* $t]; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_macro_handles_exprs_and_nesting() {
        let x = 2.0f64;
        let v = json!({
            "name": "bc", "threads": 4usize,
            "ratio": 100.0 * x / 8.0,
            "nested": {"a": 1u32, "b": true},
        });
        assert_eq!(v.get("name").unwrap().as_str(), Some("bc"));
        assert_eq!(v.get("ratio").unwrap().as_f64(), Some(25.0));
        assert_eq!(v.get("nested").unwrap().get("b"), Some(&Value::Bool(true)));
    }

    #[test]
    fn value_and_vec_round_trip_through_to_value() {
        let rows = vec![json!({"i": 1u32}), json!({"i": 2u32})];
        let v = json!(rows);
        assert_eq!(v.as_array().unwrap().len(), 2);
    }

    #[test]
    fn pretty_printer_is_stable() {
        let mut m = Map::new();
        m.insert("n".into(), Value::Number(3.0));
        m.insert("f".into(), Value::Number(0.5));
        m.insert("s".into(), Value::String("a\"b".into()));
        let s = to_string_pretty(&m).unwrap();
        assert_eq!(s, "{\n  \"n\": 3,\n  \"f\": 0.5,\n  \"s\": \"a\\\"b\"\n}");
    }
}
