//! Offline stand-in for the `rand` 0.8 crate (see `vendor/README.md`).
//!
//! Implements the exact surface this workspace uses: [`SeedableRng`] with
//! `seed_from_u64`, [`rngs::StdRng`], [`Rng::gen_range`] over integer
//! ranges, [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`].
//!
//! The generator is SplitMix64 — a well-distributed 64-bit mixer, fully
//! deterministic per seed. Its stream differs from upstream `StdRng`
//! (ChaCha12), so seed-derived fixtures (e.g. golden checksums) are tied to
//! this stand-in and re-recorded in-repo.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of 64 random bits.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types uniformly samplable from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Widens to `u128` relative to `base` (the range start).
    fn delta_from(self, base: Self) -> u128;
    /// Offsets `base` by `delta` (inverse of [`SampleUniform::delta_from`]).
    fn offset(base: Self, delta: u128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn delta_from(self, base: Self) -> u128 {
                (self as i128).wrapping_sub(base as i128) as u128
            }
            fn offset(base: Self, delta: u128) -> Self {
                ((base as i128).wrapping_add(delta as i128)) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw in `[0, span)` by widening multiply (no modulo bias worth
/// noting at the spans this workspace uses; spans here are far below 2^64).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    // Widening-multiply range reduction on 64 random bits.
    (u128::from(rng.next_u64()) * span) >> 64
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end.delta_from(self.start);
        T::offset(self.start, uniform_below(rng, span))
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        let span = end.delta_from(start) + 1;
        T::offset(start, uniform_below(rng, span))
    }
}

/// Types drawable from the "standard" distribution via [`Rng::gen`].
pub trait StandardSample {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits -> uniform in [0, 1).
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// User-facing RNG methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws from the standard distribution (uniform `[0,1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform draw from an integer range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        // 53 random bits -> uniform f64 in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    //! Concrete generators.
    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`: SplitMix64.
    ///
    /// Statistically solid for workload generation; **not** the upstream
    /// ChaCha12 stream and not cryptographic.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One pre-mix step so seed 0 does not start at state 0.
            let mut rng = StdRng { state: seed };
            let _ = rng.next_u64();
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.
    use super::Rng;

    /// Slice extension trait, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10usize..20);
            assert!((10..20).contains(&x));
            let y: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left order unchanged");
    }
}
