//! Offline stand-in for the `rayon` crate.
//!
//! This container has no registry access, so the workspace vendors the
//! subset of rayon's API it actually uses (see `vendor/README.md`). Every
//! parallel iterator here executes **deterministically on the calling
//! thread** — semantically identical to rayon with a one-worker pool, which
//! is also the only configuration the 1-CPU build container could exploit.
//! The adapter signatures keep rayon's `Send`/`Sync` bounds so code written
//! against this stand-in still compiles against real rayon when the
//! `[patch.crates-io]` entry is removed on a networked machine.
//!
//! Thread-pool types are configuration-faithful: [`ThreadPoolBuilder`],
//! [`ThreadPool::install`] and [`current_num_threads`] report the requested
//! worker count (so scheduling heuristics keyed on it are exercisable), but
//! execution remains sequential.

use std::cell::Cell;
use std::sync::OnceLock;

pub mod prelude {
    //! The conversion traits, mirroring `rayon::prelude`.
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelExtend,
        ParallelIterator, ParallelSlice,
    };
}

/// Sequential stand-in for rayon's `ParallelIterator`.
///
/// One wrapper type implements the whole adapter surface; the inner value is
/// a plain [`Iterator`] driven eagerly by the consuming adapters.
pub struct ParIter<I>(I);

/// Conversion into a "parallel" iterator (sequential in this stand-in).
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The iterator produced.
    type Iter;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl<C: IntoIterator> IntoParallelIterator for C
where
    C::Item: Send,
{
    type Item = C::Item;
    type Iter = ParIter<C::IntoIter>;
    fn into_par_iter(self) -> Self::Iter {
        ParIter(self.into_iter())
    }
}

/// `par_iter()` by shared reference, mirroring rayon's blanket impl.
pub trait IntoParallelRefIterator<'data> {
    /// The element type.
    type Item: Send;
    /// The iterator produced.
    type Iter;
    /// Iterates `&self`.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, I: 'data + ?Sized> IntoParallelRefIterator<'data> for I
where
    &'data I: IntoParallelIterator,
{
    type Item = <&'data I as IntoParallelIterator>::Item;
    type Iter = <&'data I as IntoParallelIterator>::Iter;
    fn par_iter(&'data self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// `par_iter_mut()` by exclusive reference.
pub trait IntoParallelRefMutIterator<'data> {
    /// The element type.
    type Item: Send;
    /// The iterator produced.
    type Iter;
    /// Iterates `&mut self`.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, I: 'data + ?Sized> IntoParallelRefMutIterator<'data> for I
where
    &'data mut I: IntoParallelIterator,
{
    type Item = <&'data mut I as IntoParallelIterator>::Item;
    type Iter = <&'data mut I as IntoParallelIterator>::Iter;
    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// Marker + adapter trait so `use rayon::prelude::*` brings the methods in,
/// exactly like rayon. Implemented only by [`ParIter`].
pub trait ParallelIterator: Sized {
    /// The element type.
    type Item: Send;
    /// The underlying sequential iterator.
    type Inner: Iterator<Item = Self::Item>;
    /// Unwraps to the sequential iterator that drives everything.
    fn into_seq(self) -> Self::Inner;

    /// Maps each element.
    fn map<R, F>(self, f: F) -> ParIter<std::iter::Map<Self::Inner, F>>
    where
        F: Fn(Self::Item) -> R + Sync + Send,
        R: Send,
    {
        ParIter(self.into_seq().map(f))
    }

    /// Keeps elements matching the predicate.
    fn filter<F>(self, f: F) -> ParIter<std::iter::Filter<Self::Inner, F>>
    where
        F: Fn(&Self::Item) -> bool + Sync + Send,
    {
        ParIter(self.into_seq().filter(f))
    }

    /// Filter + map in one pass.
    fn filter_map<R, F>(self, f: F) -> ParIter<std::iter::FilterMap<Self::Inner, F>>
    where
        F: Fn(Self::Item) -> Option<R> + Sync + Send,
        R: Send,
    {
        ParIter(self.into_seq().filter_map(f))
    }

    /// Maps each element to a parallel iterator and flattens.
    fn flat_map<PI, F>(self, f: F) -> ParIter<std::vec::IntoIter<PI::Item>>
    where
        F: Fn(Self::Item) -> PI + Sync + Send,
        PI: IntoParallelIterator,
        PI::Iter: ParallelIterator<Item = PI::Item>,
    {
        let mut out = Vec::new();
        for x in self.into_seq() {
            out.extend(f(x).into_par_iter().into_seq());
        }
        ParIter(out.into_iter())
    }

    /// Maps each element to a *sequential* iterator and flattens — rayon's
    /// cheap-inner-loop variant.
    fn flat_map_iter<SI, F>(self, f: F) -> ParIter<std::vec::IntoIter<SI::Item>>
    where
        F: Fn(Self::Item) -> SI + Sync + Send,
        SI: IntoIterator,
        SI::Item: Send,
    {
        let mut out = Vec::new();
        for x in self.into_seq() {
            out.extend(f(x));
        }
        ParIter(out.into_iter())
    }

    /// Parallel fold: each worker folds its split with a private accumulator.
    /// The sequential stand-in is a single split, so this yields exactly one
    /// accumulator — rayon's documented one-thread behaviour.
    fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> ParIter<std::iter::Once<T>>
    where
        ID: Fn() -> T + Sync + Send,
        F: Fn(T, Self::Item) -> T + Sync + Send,
        T: Send,
    {
        let acc = self.into_seq().fold(identity(), fold_op);
        ParIter(std::iter::once(acc))
    }

    /// Reduces all elements with `op`, starting from `identity()`.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync + Send,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
    {
        self.into_seq().fold(identity(), op)
    }

    /// Runs `f` on every element.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        self.into_seq().for_each(f)
    }

    /// Sums the elements.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + Send,
    {
        self.into_seq().sum()
    }

    /// Largest element.
    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        self.into_seq().max()
    }

    /// Smallest element.
    fn min(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        self.into_seq().min()
    }

    /// Number of elements.
    fn count(self) -> usize {
        self.into_seq().count()
    }

    /// Collects into any `FromIterator` collection (rayon's
    /// `FromParallelIterator` targets are all `FromIterator` here).
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        self.into_seq().collect()
    }

    /// Groups elements into `Vec` chunks of at most `size`.
    fn chunks(self, size: usize) -> ParIter<std::vec::IntoIter<Vec<Self::Item>>> {
        assert!(size > 0, "chunk size must be non-zero");
        let mut chunks = Vec::new();
        let mut cur = Vec::with_capacity(size);
        for x in self.into_seq() {
            cur.push(x);
            if cur.len() == size {
                chunks.push(std::mem::replace(&mut cur, Vec::with_capacity(size)));
            }
        }
        if !cur.is_empty() {
            chunks.push(cur);
        }
        ParIter(chunks.into_iter())
    }

    /// Pairs each element with its index.
    fn enumerate(self) -> ParIter<std::iter::Enumerate<Self::Inner>> {
        ParIter(self.into_seq().enumerate())
    }

    /// Like [`ParallelIterator::map`], but each worker lazily creates one
    /// state value with `init` and reuses it across every element it
    /// processes — rayon's idiom for long-lived per-worker scratch buffers.
    fn map_init<T, R, INIT, F>(self, init: INIT, f: F) -> ParIter<MapInit<Self::Inner, T, F>>
    where
        INIT: Fn() -> T + Sync + Send,
        F: Fn(&mut T, Self::Item) -> R + Sync + Send,
        R: Send,
    {
        ParIter(MapInit { inner: self.into_seq(), state: init(), f })
    }

    /// Splitting-granularity hint; a no-op sequentially.
    fn with_min_len(self, _min: usize) -> Self {
        self
    }

    /// Tests whether any element matches.
    fn any<F>(self, f: F) -> bool
    where
        F: Fn(Self::Item) -> bool + Sync + Send,
    {
        let mut it = self.into_seq();
        it.any(|x| f(x))
    }

    /// Tests whether all elements match.
    fn all<F>(self, f: F) -> bool
    where
        F: Fn(Self::Item) -> bool + Sync + Send,
    {
        let mut it = self.into_seq();
        it.all(|x| f(x))
    }
}

impl<I: Iterator> ParallelIterator for ParIter<I>
where
    I::Item: Send,
{
    type Item = I::Item;
    type Inner = I;
    fn into_seq(self) -> I {
        self.0
    }
}

/// Lets a [`ParIter`] be consumed as a sequential iterator, which also makes
/// every adapter output satisfy [`IntoParallelIterator`] via the blanket impl
/// (rayon: every `ParallelIterator` is `IntoParallelIterator`).
impl<I: Iterator> IntoIterator for ParIter<I> {
    type Item = I::Item;
    type IntoIter = I;
    fn into_iter(self) -> I {
        self.0
    }
}

/// Iterator for [`ParallelIterator::map_init`]: one lazily-created state
/// threaded through every element (the sequential stand-in is a single
/// "worker", so one state instance covers the whole iteration — rayon's
/// documented one-thread behaviour).
pub struct MapInit<I, T, F> {
    inner: I,
    state: T,
    f: F,
}

impl<I: Iterator, T, R, F: Fn(&mut T, I::Item) -> R> Iterator for MapInit<I, T, F> {
    type Item = R;
    fn next(&mut self) -> Option<R> {
        self.inner.next().map(|x| (self.f)(&mut self.state, x))
    }
}

/// Slice-specific parallel iterators, mirroring `rayon::slice::ParallelSlice`.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over non-overlapping contiguous chunks of at most
    /// `chunk_size` elements. Chunk boundaries depend only on the slice
    /// length and `chunk_size`, never on scheduling.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParIter(self.chunks(chunk_size))
    }
}

/// Extending a collection from a parallel iterator, mirroring
/// `rayon::iter::ParallelExtend`. Lets callers reuse a collection's
/// allocation across repeated fills (`v.clear(); v.par_extend(..)`).
pub trait ParallelExtend<T: Send> {
    /// Extends the collection with the iterator's elements.
    fn par_extend<I>(&mut self, par_iter: I)
    where
        I: IntoParallelIterator<Item = T>,
        I::Iter: ParallelIterator<Item = T>;
}

impl<T: Send> ParallelExtend<T> for Vec<T> {
    fn par_extend<I>(&mut self, par_iter: I)
    where
        I: IntoParallelIterator<Item = T>,
        I::Iter: ParallelIterator<Item = T>,
    {
        self.extend(par_iter.into_par_iter().into_seq());
    }
}

// ------------------------------------------------------------- thread pool

static GLOBAL_THREADS: OnceLock<usize> = OnceLock::new();

thread_local! {
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Worker count of the current scope: the installed pool's, else the global
/// pool's, else the machine's available parallelism.
pub fn current_num_threads() -> usize {
    POOL_THREADS.with(|t| t.get()).unwrap_or_else(|| {
        *GLOBAL_THREADS
            .get_or_init(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
    })
}

/// Error returned when a pool cannot be built (only: the global pool was
/// already initialized).
#[derive(Debug)]
pub struct ThreadPoolBuildError(&'static str);

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// New builder with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests a worker count (0 = automatic, like rayon).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    fn resolved(&self) -> usize {
        match self.num_threads {
            Some(0) | None => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            Some(n) => n,
        }
    }

    /// Builds a scoped pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { threads: self.resolved() })
    }

    /// Initializes the global pool; errors if already initialized, exactly
    /// like rayon.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let n = self.resolved();
        GLOBAL_THREADS.set(n).map_err(|_| {
            ThreadPoolBuildError("the global thread pool has already been initialized")
        })
    }
}

/// A configured pool. Sequential execution; the worker count is visible via
/// [`current_num_threads`] inside [`ThreadPool::install`].
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Runs `f` "inside" the pool: `current_num_threads()` reports this
    /// pool's worker count for the duration of the call.
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        POOL_THREADS.with(|t| {
            let prev = t.replace(Some(self.threads));
            let out = f();
            t.set(prev);
            out
        })
    }

    /// This pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Runs two closures (sequentially here), returning both results — rayon's
/// structured-parallelism primitive, kept so kernels may use it.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn adapters_mirror_sequential_results() {
        let v: Vec<u32> =
            (0u32..10).into_par_iter().map(|x| x * 2).filter(|&x| x % 3 == 0).collect();
        assert_eq!(v, vec![0, 6, 12, 18]);
        let s: u32 = v.par_iter().sum();
        assert_eq!(s, 36);
        let f: Vec<u32> = v.par_iter().flat_map_iter(|&x| std::iter::repeat(x).take(2)).collect();
        assert_eq!(f.len(), 8);
    }

    #[test]
    fn fold_then_reduce_matches_rayon_one_thread() {
        let total = (1u64..=10)
            .into_par_iter()
            .chunks(3)
            .fold(Vec::new, |mut acc, chunk| {
                acc.push(chunk.iter().sum::<u64>());
                acc
            })
            .map(|partials| partials.iter().sum::<u64>())
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 55);
    }

    #[test]
    fn pool_scopes_thread_count() {
        let pool = crate::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(pool.install(crate::current_num_threads), 4);
    }

    #[test]
    fn par_chunks_boundaries_are_deterministic() {
        let v: Vec<u32> = (0..10).collect();
        let chunks: Vec<Vec<u32>> = v.par_chunks(4).map(|c| c.to_vec()).collect();
        assert_eq!(chunks, vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7], vec![8, 9]]);
    }

    #[test]
    fn map_init_reuses_one_state_per_worker() {
        let v: Vec<u32> = (0..6).collect();
        // The state counts how many items this worker has seen; sequentially
        // there is exactly one worker, so the counter runs 1..=6.
        let seen: Vec<u32> = v
            .par_chunks(2)
            .map_init(
                || 0u32,
                |count, chunk| {
                    *count += chunk.len() as u32;
                    *count
                },
            )
            .collect();
        assert_eq!(seen, vec![2, 4, 6]);
    }

    #[test]
    fn par_extend_reuses_the_allocation() {
        let mut buf: Vec<u32> = Vec::with_capacity(64);
        buf.par_extend((0u32..8).into_par_iter().map(|x| x * 2));
        assert_eq!(buf.len(), 8);
        let cap = buf.capacity();
        buf.clear();
        buf.par_extend((0u32..4).into_par_iter());
        assert_eq!(buf, vec![0, 1, 2, 3]);
        assert_eq!(buf.capacity(), cap, "clear + par_extend must not reallocate");
    }
}
