//! Offline stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! A syn-free `#[derive(Serialize)]` supporting exactly the shapes this
//! workspace derives on: plain (non-generic) structs with named fields.
//! The token stream is walked by hand and the impl is emitted as source
//! text, so the crate has zero dependencies and builds offline.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the vendored `serde::Serialize` (render-to-JSON-value) impl.
///
/// # Panics
/// Panics at compile time on unsupported shapes (enums, tuple structs,
/// generics) — extend the parser rather than silently mis-serializing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, fields) = parse_named_struct(input);
    let mut body = String::from("let mut map = serde::value::Map::new();\n");
    for f in &fields {
        body.push_str(&format!(
            "map.insert({f:?}.to_string(), serde::Serialize::to_json_value(&self.{f}));\n"
        ));
    }
    body.push_str("serde::value::Value::Object(map)");
    let impl_src = format!(
        "impl serde::Serialize for {name} {{\n\
         fn to_json_value(&self) -> serde::value::Value {{\n{body}\n}}\n}}\n"
    );
    impl_src.parse().expect("serde_derive stand-in emitted invalid Rust")
}

/// Extracts the struct name and its named-field identifiers.
fn parse_named_struct(input: TokenStream) -> (String, Vec<String>) {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes (`#[...]`, including doc comments) and visibility.
    let name = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                let _bracket = tokens.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // `pub(crate)` etc. carry a parenthesized scope.
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => match tokens.next() {
                Some(TokenTree::Ident(id)) => break id.to_string(),
                other => panic!("expected struct name, found {other:?}"),
            },
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                panic!("the vendored serde_derive only supports structs with named fields")
            }
            Some(other) => panic!("unexpected token before `struct`: {other}"),
            None => panic!("no `struct` keyword in derive input"),
        }
    };
    if !matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace) {
        panic!("the vendored serde_derive only supports non-generic named-field structs");
    }
    let Some(TokenTree::Group(body)) = tokens.next() else { unreachable!() };
    (name, field_names(body.stream()))
}

/// Field identifiers: the ident right before each top-level `:`, with
/// per-field attributes and visibility already skipped by position.
fn field_names(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut last_ident: Option<String> = None;
    let mut depth = 0usize; // inside a type like `Vec<(A, B)>` after `:`
    let mut in_type = false;
    for tt in body {
        match &tt {
            TokenTree::Punct(p) => match p.as_char() {
                ':' if !in_type && depth == 0 => {
                    fields.push(last_ident.take().expect("field `:` without a name"));
                    in_type = true;
                }
                '<' if in_type => depth += 1,
                '>' if in_type => depth = depth.saturating_sub(1),
                ',' if depth == 0 => in_type = false,
                _ => {}
            },
            TokenTree::Ident(id) if !in_type => {
                let s = id.to_string();
                if s != "pub" {
                    last_ident = Some(s);
                }
            }
            _ => {}
        }
    }
    fields
}
