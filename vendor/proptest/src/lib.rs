//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! Deterministic random-case property testing with the API subset this
//! workspace uses: the [`Strategy`] trait with `prop_flat_map`/`prop_map`,
//! integer-range and tuple strategies, [`collection::vec`], [`bool::ANY`],
//! [`Just`], the [`proptest!`] macro with optional `#![proptest_config]`,
//! and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! deterministic case seed instead — rerun reproduces it exactly), and no
//! rejection/filter machinery (nothing here uses `prop_filter`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod prelude {
    //! Common imports, mirroring `proptest::prelude`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

pub mod test_runner {
    //! Runner configuration.

    /// Run configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases per property.
        pub cases: u32,
        /// Upstream-compat knob; shrinking is not implemented here.
        pub max_shrink_iters: u32,
        /// Upstream-compat knob; rejection is not implemented here.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_shrink_iters: 0, max_global_rejects: 0 }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.
    use super::{Rng, StdRng};

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Feeds each generated value into `f` to pick a dependent strategy.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }

        /// Transforms each generated value.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { base: self, f }
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<B, F> {
        base: B,
        f: F,
    }

    impl<B, S, F> Strategy for FlatMap<B, F>
    where
        B: Strategy,
        S: Strategy,
        F: Fn(B::Value) -> S,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> S::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<B, F> {
        base: B,
        f: F,
    }

    impl<B, T, F> Strategy for Map<B, F>
    where
        B: Strategy,
        F: Fn(B::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (self.f)(self.base.generate(rng))
        }
    }

    impl<T> Strategy for std::ops::Range<T>
    where
        T: rand::SampleUniform + Copy,
    {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T> Strategy for std::ops::RangeInclusive<T>
    where
        T: rand::SampleUniform + Copy,
    {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

pub mod collection {
    //! Collection strategies.
    use super::strategy::Strategy;
    use super::{Rng, StdRng};

    /// Strategy for `Vec`s with a uniformly random length in `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.start >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.
    use super::strategy::Strategy;
    use super::{Rng, StdRng};

    /// Uniformly random booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The canonical boolean strategy, as in `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

/// Deterministic per-case RNG: FNV-1a of the test name mixed with the case
/// index, so every property replays identically run to run.
#[doc(hidden)]
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h ^ (u64::from(case) << 32) ^ u64::from(case))
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut rng = $crate::case_rng(stringify!($name), case);
                $(
                    let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                )*
                let run = std::panic::AssertUnwindSafe(|| $body);
                if let Err(panic) = std::panic::catch_unwind(run) {
                    eprintln!(
                        "proptest stand-in: property {} failed at case {case}/{} \
                         (deterministic; rerun reproduces it)",
                        stringify!($name),
                        config.cases,
                    );
                    std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

/// `assert!` that reports through the property-test runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// `assert_eq!` that reports through the property-test runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    #[test]
    fn cases_are_deterministic() {
        let strat =
            (2u32..50).prop_flat_map(|n| (Just(n), crate::collection::vec((0..n, 0..n), 0..30)));
        let a = strat.generate(&mut crate::case_rng("t", 7));
        let b = strat.generate(&mut crate::case_rng("t", 7));
        assert_eq!(a, b);
        let (n, edges) = a;
        assert!((2..50).contains(&n));
        assert!(edges.len() < 30);
        assert!(edges.iter().all(|&(u, v)| u < n && v < n));
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_binds_patterns((a, b) in (0u32..10, 0u32..10), flip in crate::bool::ANY) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(flip || !flip, true);
        }
    }
}
