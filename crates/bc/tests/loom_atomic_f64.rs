//! Exhaustive interleaving checks for the `AtomicF64` CAS loop.
//!
//! These run under plain `cargo test` through [`ModelAtomicF64`] — the same
//! macro-generated CAS loop as the production `AtomicF64`, instantiated over
//! the model-checked `AtomicU64`. Under `RUSTFLAGS="--cfg loom"` the facade's
//! own `AtomicF64` is model-backed too and gets checked directly.

use apgre_bc::sync::model;
use apgre_bc::sync::ModelAtomicF64;
use std::sync::Arc;

#[test]
fn concurrent_fetch_add_never_loses_an_update() {
    let report = model::check(|| {
        let a = Arc::new(ModelAtomicF64::new(0.0));
        let hs: Vec<_> = [1.0f64, 2.0]
            .into_iter()
            .map(|v| {
                let a = Arc::clone(&a);
                model::thread::spawn(move || {
                    let _ = a.fetch_add(v);
                })
            })
            .collect();
        for h in hs {
            h.join();
        }
        assert_eq!(a.load(), 3.0, "an update was lost");
    });
    // Each thread is load + CAS (with a possible retry); at least both
    // two-op orders must have been explored.
    assert!(report.schedules >= 2, "explored {} schedules", report.schedules);
}

#[test]
fn fetch_add_returns_the_previous_value_under_contention() {
    model::check(|| {
        let a = Arc::new(ModelAtomicF64::new(0.0));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let a = Arc::clone(&a);
                model::thread::spawn(move || a.fetch_add(1.0))
            })
            .collect();
        let mut prevs: Vec<f64> = hs.into_iter().map(|h| h.join()).collect();
        prevs.sort_by(f64::total_cmp);
        // Whatever the interleaving, the two RMWs are totally ordered on the
        // cell: one must observe 0.0, the other 1.0.
        assert_eq!(prevs, vec![0.0, 1.0], "previous values wrong: {prevs:?}");
        assert_eq!(a.load(), 2.0);
    });
}

#[test]
fn three_way_contention_sums_exactly() {
    model::check(|| {
        let a = Arc::new(ModelAtomicF64::new(0.0));
        let hs: Vec<_> = [1.0f64, 2.0, 4.0]
            .into_iter()
            .map(|v| {
                let a = Arc::clone(&a);
                model::thread::spawn(move || {
                    let _ = a.fetch_add(v);
                })
            })
            .collect();
        for h in hs {
            h.join();
        }
        assert_eq!(a.load(), 7.0);
    });
}

#[test]
fn naive_load_then_store_accumulation_is_caught() {
    // Negative control: the accumulation style the lint pass bans (`+=` via
    // separate load and store) must be rejected by the checker — if this
    // stops finding the lost update, the model checker itself is broken.
    let report = model::explore(|| {
        let a = Arc::new(ModelAtomicF64::new(0.0));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let a = Arc::clone(&a);
                model::thread::spawn(move || {
                    let cur = a.load();
                    a.store(cur + 1.0);
                })
            })
            .collect();
        for h in hs {
            h.join();
        }
        assert_eq!(a.load(), 2.0, "lost update");
    });
    let v = report.violation.expect("the lost-update interleaving must be found");
    assert!(v.message.contains("lost update"), "unexpected message: {}", v.message);
}

/// Under `--cfg loom` the facade's production `AtomicF64` is itself
/// model-backed; check it directly so the loom CI job exercises the exact
/// type the kernels use.
#[cfg(loom)]
#[test]
fn facade_atomic_f64_is_model_checked_under_loom() {
    use apgre_bc::sync::AtomicF64;
    model::check(|| {
        let a = Arc::new(AtomicF64::new(0.0));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let a = Arc::clone(&a);
                model::thread::spawn(move || {
                    let _ = a.fetch_add(1.0);
                })
            })
            .collect();
        for h in hs {
            h.join();
        }
        assert_eq!(a.load(), 2.0);
    });
}
