//! Exhaustive interleaving checks for the CAS-publish protocol of
//! `bc_lock_free` / `bc_hybrid` — the `dist` claim → `sigma` push window.
//!
//! The functions under test are the *production* protocol
//! (`apgre_bc::sync::protocol`), generic over the atomic cells, instantiated
//! here with model-checked atomics. The miniaturized scenario is the exact
//! shape of the race in the kernels: several frontier vertices at level `d`
//! share an out-neighbour `v`, each thread runs `discover_and_push` for its
//! edge, and afterwards `v` must sit at level `d + 1` with σ equal to the
//! *sum* of all parents' σ — one winner, zero lost contributions.

use apgre_bc::sync::model::{self, AtomicU32};
use apgre_bc::sync::protocol::{discover_and_push, discover_and_push_buggy, push_dependency};
use apgre_bc::sync::ModelAtomicF64;
use std::sync::Arc;

const UNREACHED: u32 = u32::MAX;

struct Cells {
    dist: Vec<AtomicU32>,
    sigma: Vec<ModelAtomicF64>,
}

impl Cells {
    /// One shared target vertex 0, unreached, with σ = 0.
    fn fresh_target() -> Arc<Cells> {
        Arc::new(Cells {
            dist: vec![AtomicU32::new(UNREACHED)],
            sigma: vec![ModelAtomicF64::new(0.0)],
        })
    }
}

/// The N-racing-parents scenario: every parent runs `discover_and_push` for
/// its edge into shared vertex 0, exactly one must win, and σ must equal the
/// sum of all parents' contributions.
fn racing_parents(sigmas: &'static [f64]) -> impl Fn() + Send + Sync + 'static {
    move || {
        let c = Cells::fresh_target();
        let hs: Vec<_> = sigmas
            .iter()
            .map(|&su| {
                let c = Arc::clone(&c);
                model::thread::spawn(move || {
                    discover_and_push(&c.dist, &c.sigma, 0, 1, UNREACHED, su)
                })
            })
            .collect();
        let wins: Vec<bool> = hs.into_iter().map(|h| h.join()).collect();
        assert_eq!(
            wins.iter().filter(|&&w| w).count(),
            1,
            "exactly one thread must win the claim: {wins:?}"
        );
        assert_eq!(c.dist[0].load(model::Ordering::Relaxed), 1, "v must land on level 1");
        let want: f64 = sigmas.iter().sum();
        assert_eq!(c.sigma[0].load(), want, "a σ contribution was lost in the race window");
    }
}

#[test]
fn two_parents_one_winner_no_lost_sigma() {
    let report = model::check(racing_parents(&[1.0, 2.0]));
    assert!(report.schedules >= 2, "explored {} schedules", report.schedules);
}

#[test]
fn two_parents_reduction_matches_exhaustive() {
    // Cross-check oracle: on the two-parent window the unreduced search is
    // still affordable; the sleep-set search must reach the same verdict
    // while completing no more schedules.
    let full = model::check_with(model::Mode::Exhaustive, racing_parents(&[1.0, 2.0]));
    let reduced = model::check(racing_parents(&[1.0, 2.0]));
    assert!(full.schedules >= 6, "exhaustive explored {} schedules", full.schedules);
    assert!(
        reduced.schedules <= full.schedules,
        "reduction completed more schedules ({}) than exhaustive ({})",
        reduced.schedules,
        full.schedules
    );
}

#[test]
fn three_parents_one_winner_no_lost_sigma() {
    // Three racing parents: at ~5 scheduling points per thread the unreduced
    // schedule space is multinomially explosive (minutes of wall clock),
    // which is why this check was historically capped at two threads. The
    // sleep-set reduction collapses the orderings that only commute dist and
    // σ operations, bringing three-way contention into the CI budget.
    let report = model::check(racing_parents(&[1.0, 2.0, 4.0]));
    assert!(report.schedules >= 6, "explored {} schedules", report.schedules);
    eprintln!(
        "three-parent window: {} schedules completed, {} pruned",
        report.schedules, report.pruned
    );
}

#[test]
fn racing_different_levels_claim_is_first_come() {
    // A claimed vertex must keep its first level: a straggler claiming for a
    // deeper level neither re-levels it nor pushes σ.
    model::check(|| {
        let c = Cells::fresh_target();
        let c1 = Arc::clone(&c);
        let h1 = model::thread::spawn(move || {
            discover_and_push(&c1.dist, &c1.sigma, 0, 1, UNREACHED, 1.0)
        });
        let c2 = Arc::clone(&c);
        let h2 = model::thread::spawn(move || {
            discover_and_push(&c2.dist, &c2.sigma, 0, 2, UNREACHED, 8.0)
        });
        let (w1, w2) = (h1.join(), h2.join());
        assert!(w1 ^ w2, "exactly one claim succeeds");
        let d = c.dist[0].load(model::Ordering::Relaxed);
        let s = c.sigma[0].load();
        if w1 {
            assert_eq!((d, s), (1, 1.0), "level-1 claim won");
        } else {
            assert_eq!((d, s), (2, 8.0), "level-2 claim won");
        }
    });
}

#[test]
fn backward_delta_push_sums_exactly() {
    // Two successors at level dw push δ into the same predecessor (level
    // dw - 1) concurrently — the δ mirror of the σ window.
    model::check(|| {
        let c = Arc::new(Cells {
            dist: vec![AtomicU32::new(0)],
            sigma: vec![ModelAtomicF64::new(2.0)],
        });
        let delta = Arc::new(vec![ModelAtomicF64::new(0.0)]);
        let hs: Vec<_> = [0.5f64, 0.25]
            .into_iter()
            .map(|coeff| {
                let c = Arc::clone(&c);
                let delta = Arc::clone(&delta);
                model::thread::spawn(move || {
                    push_dependency(&c.dist, &c.sigma, &delta, 0, 0, coeff);
                })
            })
            .collect();
        for h in hs {
            h.join();
        }
        // δ += σ·coeff from both successors: 2·0.5 + 2·0.25.
        assert_eq!(delta[0].load(), 1.5);
    });
}

#[test]
fn misordered_publish_is_caught() {
    // Negative control, under both search modes: the variant that reads the
    // level *before* claiming drops the winner's σ contribution. Each mode
    // must find a schedule where the total is wrong — on this protocol every
    // schedule is wrong, so the very first one already fails; the point of
    // running both is that the sleep-set reduction must not prune the
    // violating interleaving the exhaustive search finds.
    for mode in [model::Mode::SleepSets, model::Mode::Exhaustive] {
        let report = model::explore_with(mode, || {
            let c = Cells::fresh_target();
            let hs: Vec<_> = [1.0f64, 2.0]
                .into_iter()
                .map(|su| {
                    let c = Arc::clone(&c);
                    model::thread::spawn(move || {
                        discover_and_push_buggy(&c.dist, &c.sigma, 0, 1, UNREACHED, su)
                    })
                })
                .collect();
            for h in hs {
                h.join();
            }
            assert_eq!(c.sigma[0].load(), 3.0, "sigma dropped");
        });
        let v = report
            .violation
            .unwrap_or_else(|| panic!("{mode:?}: the dropped-σ schedule must be found"));
        assert!(v.message.contains("sigma dropped"), "{mode:?} message: {}", v.message);
    }
}
