//! Edge betweenness centrality and Girvan–Newman community detection.
//!
//! The paper's introduction motivates BC with community detection (§1,
//! reference \[7\] — Girvan & Newman), which actually needs the *edge* variant:
//! `EBC(e) = Σ_{s≠t} σ_st(e)/σ_st`. Brandes' accumulation yields it for free
//! — the term `σ_sv/σ_sw · (1 + δ_s(w))` that flows across the DAG arc
//! `v -> w` *is* that arc's dependency — so this module provides exact edge
//! BC plus the classic divisive clustering built on it.
//!
//! Edge BC is not APGRE-accelerated here: the four-dependency reuse applies
//! to edges inside a sub-graph the same way, but bridge edges between
//! sub-graphs need an extra accounting pass the paper never develops; we keep
//! the exact Brandes form and note the extension as future work.

use apgre_graph::connectivity::connected_components;
use apgre_graph::{Graph, VertexId, UNREACHED};
use std::collections::VecDeque;

/// Exact edge betweenness: one score per **arc** of the forward CSR, aligned
/// with `g.csr().targets()` positions. For undirected graphs, the score of
/// the undirected edge `{u, v}` is the sum over its two arcs (see
/// [`undirected_edge_scores`]).
pub fn edge_bc(g: &Graph) -> Vec<f64> {
    let n = g.num_vertices();
    let csr = g.csr();
    let mut scores = vec![0.0f64; csr.num_edges()];
    let mut dist = vec![UNREACHED; n];
    let mut sigma = vec![0.0f64; n];
    let mut delta = vec![0.0f64; n];
    let mut order: Vec<VertexId> = Vec::with_capacity(n);
    let mut queue = VecDeque::new();
    for s in 0..n as VertexId {
        dist[s as usize] = 0;
        sigma[s as usize] = 1.0;
        order.push(s);
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            let du = dist[u as usize];
            for &v in csr.neighbors(u) {
                if dist[v as usize] == UNREACHED {
                    dist[v as usize] = du + 1;
                    order.push(v);
                    queue.push_back(v);
                }
                if dist[v as usize] == du + 1 {
                    sigma[v as usize] += sigma[u as usize];
                }
            }
        }
        for &v in order.iter().rev() {
            let dv = dist[v as usize];
            let lo = csr.offsets()[v as usize];
            let mut acc = 0.0;
            for (i, &w) in csr.neighbors(v).iter().enumerate() {
                if dist[w as usize] == dv + 1 {
                    let c = sigma[v as usize] / sigma[w as usize] * (1.0 + delta[w as usize]);
                    scores[lo + i] += c;
                    acc += c;
                }
            }
            delta[v as usize] = acc;
        }
        for &v in &order {
            dist[v as usize] = UNREACHED;
            sigma[v as usize] = 0.0;
            delta[v as usize] = 0.0;
        }
        order.clear();
    }
    scores
}

/// Folds per-arc scores into per-undirected-edge scores: returns
/// `((u, v), score)` with `u < v`, score = both arc directions summed.
///
/// # Panics
/// Panics on directed graphs.
pub fn undirected_edge_scores(g: &Graph, arc_scores: &[f64]) -> Vec<((VertexId, VertexId), f64)> {
    assert!(!g.is_directed());
    let csr = g.csr();
    assert_eq!(arc_scores.len(), csr.num_edges());
    let mut out = Vec::with_capacity(csr.num_edges() / 2);
    for u in 0..g.num_vertices() as VertexId {
        let lo = csr.offsets()[u as usize];
        for (i, &v) in csr.neighbors(u).iter().enumerate() {
            if u < v {
                // Find the mirror arc v -> u.
                let vlo = csr.offsets()[v as usize];
                let j = csr.neighbors(v).partition_point(|&x| x < u);
                out.push(((u, v), arc_scores[lo + i] + arc_scores[vlo + j]));
            }
        }
    }
    out
}

/// Girvan–Newman divisive clustering: repeatedly remove the
/// highest-edge-betweenness edge and recompute, until the graph splits into
/// `target_communities` connected components (or runs out of edges).
/// Returns the per-vertex community labels. Undirected, exact —
/// `O(E · V·E)`, for analysis-sized graphs.
pub fn girvan_newman(g: &Graph, target_communities: usize) -> Vec<u32> {
    assert!(!g.is_directed(), "Girvan–Newman operates on undirected graphs");
    let mut edges: Vec<(VertexId, VertexId)> = g.undirected_edges().collect();
    let n = g.num_vertices();
    loop {
        let current = Graph::undirected_from_edges(n, &edges);
        let comps = connected_components(&current);
        if comps.count() >= target_communities || edges.is_empty() {
            return comps.comp;
        }
        let scores = edge_bc(&current);
        let ranked = undirected_edge_scores(&current, &scores);
        let ((u, v), _) =
            *ranked.iter().max_by(|a, b| a.1.total_cmp(&b.1)).expect("non-empty edge list");
        edges.retain(|&e| e != (u, v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apgre_graph::generators;

    /// `Σ_e EBC(e) = Σ_{s≠t, connected} d(s,t)`: every shortest path of
    /// length ℓ contributes exactly ℓ σ-weighted units across its edges.
    #[test]
    fn total_edge_bc_equals_total_distance() {
        let g = generators::gnm_undirected(40, 70, 3);
        let scores = edge_bc(&g);
        let total: f64 = scores.iter().sum();
        let mut dist_sum = 0u64;
        for s in g.vertices() {
            let d = apgre_graph::traversal::bfs_distances(g.csr(), s);
            for v in g.vertices() {
                if v != s && d[v as usize] != UNREACHED {
                    dist_sum += d[v as usize] as u64;
                }
            }
        }
        assert!((total - dist_sum as f64).abs() < 1e-6 * (1.0 + dist_sum as f64));
    }

    #[test]
    fn bridge_carries_all_cross_pairs() {
        // Two triangles joined by a bridge (2-3): the bridge carries
        // 3·3·2 = 18 ordered cross pairs.
        let g = Graph::undirected_from_edges(
            6,
            &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)],
        );
        let scores = edge_bc(&g);
        let per_edge = undirected_edge_scores(&g, &scores);
        let bridge = per_edge.iter().find(|((u, v), _)| (*u, *v) == (2, 3)).unwrap();
        assert_eq!(bridge.1, 18.0);
        for ((u, v), s) in &per_edge {
            if (*u, *v) != (2, 3) {
                assert!(*s < 18.0, "edge ({u},{v}) = {s}");
            }
        }
    }

    #[test]
    fn directed_chain_edge_scores() {
        // 0 -> 1 -> 2: arc (0,1) lies on paths 0→1, 0→2; arc (1,2) on 1→2, 0→2.
        let g = Graph::directed_from_edges(3, &[(0, 1), (1, 2)]);
        let scores = edge_bc(&g);
        assert_eq!(scores, vec![2.0, 2.0]);
    }

    #[test]
    fn girvan_newman_splits_two_cliques() {
        // Two K5s joined by one bridge: first removal is the bridge, giving
        // the planted communities.
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                edges.push((u, v));
                edges.push((u + 5, v + 5));
            }
        }
        edges.push((0, 5));
        let g = Graph::undirected_from_edges(10, &edges);
        let labels = girvan_newman(&g, 2);
        for v in 1..5 {
            assert_eq!(labels[v], labels[0]);
        }
        for v in 6..10 {
            assert_eq!(labels[v], labels[5]);
        }
        assert_ne!(labels[0], labels[5]);
    }

    #[test]
    fn girvan_newman_respects_target_count() {
        let g = generators::whiskered_community(&generators::WhiskeredCommunityParams {
            core_vertices: 20,
            core_attach: 2,
            community_count: 3,
            community_size: 6,
            community_density: 2.0,
            whiskers: 0,
            seed: 5,
        });
        let labels = girvan_newman(&g, 4);
        let distinct: std::collections::HashSet<u32> = labels.iter().copied().collect();
        assert!(distinct.len() >= 4);
    }

    #[test]
    fn empty_and_tiny() {
        let g = Graph::undirected_from_edges(0, &[]);
        assert!(edge_bc(&g).is_empty());
        let g = Graph::undirected_from_edges(2, &[(0, 1)]);
        let s = edge_bc(&g);
        let per_edge = undirected_edge_scores(&g, &s);
        assert_eq!(per_edge, vec![((0, 1), 2.0)]);
    }
}
