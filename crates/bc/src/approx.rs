//! Approximate betweenness centrality by source sampling.
//!
//! The paper positions APGRE against *exact* computation and cites the
//! sampling line of work (§6: Bader–Kintali–Madduri–Mihail WAW'07,
//! Brandes–Pich 2007; §5.2 compares against a GPU sampling implementation's
//! MTEPS). This module implements that family so the comparison can be run
//! locally:
//!
//! * [`bc_approx`] — the Brandes–Pich estimator: `k` uniformly sampled
//!   source pivots, dependencies extrapolated by `n/k`,
//! * [`bc_approx_adaptive`] — Bader et al.'s adaptive scheme for a single
//!   vertex: sample until the accumulated dependency of the target crosses
//!   `c·n`, giving small sample sizes for high-BC vertices,
//! * [`bc_approx_apgre`] — sampling composed with APGRE's decomposition:
//!   pivots are drawn per sub-graph root set, so whisker folding and the
//!   four-dependency reuse still apply to the sampled sweeps. Exact when
//!   every root is sampled.

use crate::apgre::ApgreOptions;
use crate::brandes::{accumulate_source, Workspace};
use apgre_graph::{Graph, VertexId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Brandes–Pich source-sampled BC: `k` pivots without replacement, scores
/// scaled by `n/k`. With `k == n` this is exact Brandes (scale 1).
pub fn bc_approx(g: &Graph, k: usize, seed: u64) -> Vec<f64> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let k = k.clamp(1, n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pivots: Vec<VertexId> = (0..n as VertexId).collect();
    pivots.shuffle(&mut rng);
    pivots.truncate(k);
    let mut bc = vec![0.0f64; n];
    let mut ws = Workspace::new(n);
    for &s in &pivots {
        accumulate_source(g, s, &mut ws, &mut bc);
        ws.reset_touched();
    }
    let scale = n as f64 / k as f64;
    for x in &mut bc {
        *x *= scale;
    }
    bc
}

/// Bader et al.'s adaptive sampling for one vertex `v`: sample pivots until
/// `Σ δ_s(v) ≥ c·n` (or all pivots are used), then extrapolate. Returns the
/// estimate and the number of samples spent. High-centrality vertices
/// converge after a handful of pivots — that is the scheme's point.
pub fn bc_approx_adaptive(g: &Graph, v: VertexId, c: f64, seed: u64) -> (f64, usize) {
    let n = g.num_vertices();
    assert!((v as usize) < n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pivots: Vec<VertexId> = (0..n as VertexId).collect();
    pivots.shuffle(&mut rng);
    let mut ws = Workspace::new(n);
    let mut scratch = vec![0.0f64; n];
    let mut acc = 0.0f64;
    let mut used = 0usize;
    for &s in &pivots {
        scratch[v as usize] = 0.0;
        if s != v {
            accumulate_source(g, s, &mut ws, &mut scratch);
            acc += scratch[v as usize];
            // accumulate_source adds into scratch everywhere; only v's cell
            // matters, and we reset it before each use.
        } else {
            // δ_v(v) = 0 by definition; still a spent sample.
            accumulate_source(g, s, &mut ws, &mut scratch);
        }
        ws.reset_touched();
        used += 1;
        if acc >= c * n as f64 {
            break;
        }
    }
    (acc * n as f64 / used as f64, used)
}

/// Sampling composed with APGRE: the decomposition is built once, then each
/// sub-graph sweeps a `fraction` of its root set (at least one root, chosen
/// uniformly per sub-graph) and extrapolates its local contributions by
/// `|R|/sampled`. Whisker folding (γ) rides along with the sampled roots.
/// `fraction >= 1.0` degenerates to exact APGRE.
pub fn bc_approx_apgre(g: &Graph, fraction: f64, seed: u64, opts: &ApgreOptions) -> Vec<f64> {
    assert!(fraction > 0.0);
    if fraction >= 1.0 {
        return crate::apgre::bc_apgre_with(g, opts).0;
    }
    let mut decomp = apgre_decomp::decompose(g, &opts.partition);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut scale = vec![1.0f64; decomp.subgraphs.len()];
    for sg in &mut decomp.subgraphs {
        let total = sg.roots.len();
        if total <= 1 {
            continue;
        }
        let keep = ((total as f64 * fraction).ceil() as usize).clamp(1, total);
        sg.roots.shuffle(&mut rng);
        sg.roots.truncate(keep);
        sg.roots.sort_unstable();
        scale[sg.id] = total as f64 / keep as f64;
    }
    // Uniform scale: one fused run then a global rescale. Mixed scales
    // (sub-graphs with different |R|/sampled ratios): merge each sub-graph's
    // contribution separately so it can carry its own factor.
    if scale.iter().all(|&s| s == scale[0]) {
        let (mut bc, _) = crate::apgre::bc_from_decomposition(g, &decomp, opts);
        if scale.first().copied().unwrap_or(1.0) != 1.0 {
            for x in &mut bc {
                *x *= scale[0];
            }
        }
        bc
    } else {
        merge_scaled(g, &decomp, opts, &scale)
    }
}

fn merge_scaled(
    g: &Graph,
    decomp: &apgre_decomp::Decomposition,
    opts: &ApgreOptions,
    scale: &[f64],
) -> Vec<f64> {
    // Run each sub-graph separately so its contribution can be scaled before
    // merging. (Used only by the sampling estimator; exact paths use the
    // fused driver.)
    let mut bc = vec![0.0f64; g.num_vertices()];
    for sg in &decomp.subgraphs {
        let single = apgre_decomp::Decomposition {
            num_vertices: decomp.num_vertices,
            is_articulation: decomp.is_articulation.clone(),
            subgraphs: vec![sg.clone()],
            top_subgraph: 0,
            subgraph_of_bcc: decomp.subgraph_of_bcc.clone(),
            num_bccs: decomp.num_bccs,
            timings: decomp.timings,
        };
        let (local_bc, _) = crate::apgre::bc_from_decomposition(g, &single, opts);
        for (v, &x) in local_bc.iter().enumerate() {
            bc[v] += x * scale[sg.id];
        }
    }
    bc
}

/// Spearman rank correlation between two score vectors — the standard
/// quality metric for approximate BC.
pub fn spearman_rank_correlation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let rank = |xs: &[f64]| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..xs.len()).collect();
        idx.sort_by(|&i, &j| xs[i].total_cmp(&xs[j]));
        let mut ranks = vec![0.0f64; xs.len()];
        let mut i = 0;
        while i < idx.len() {
            // average ranks for ties
            let mut j = i;
            while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
                j += 1;
            }
            let avg = (i + j) as f64 / 2.0;
            for &k in &idx[i..=j] {
                ranks[k] = avg;
            }
            i = j + 1;
        }
        ranks
    };
    let ra = rank(a);
    let rb = rank(b);
    let mean = (n as f64 - 1.0) / 2.0;
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for i in 0..n {
        let x = ra[i] - mean;
        let y = rb[i] - mean;
        num += x * y;
        da += x * x;
        db += y * y;
    }
    if da == 0.0 || db == 0.0 {
        return 1.0;
    }
    num / (da * db).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brandes::bc_serial;
    use apgre_graph::generators;

    #[test]
    fn full_sample_is_exact() {
        let g = generators::gnm_undirected(50, 90, 7);
        let exact = bc_serial(&g);
        let approx = bc_approx(&g, 50, 1);
        for (a, b) in approx.iter().zip(&exact) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn estimator_is_unbiased_on_star() {
        // Star: every pivot except the centre contributes k-1 to the centre;
        // any sample of leaf pivots extrapolates exactly.
        let g = generators::star(30);
        let exact = bc_serial(&g);
        let mut sum_err = 0.0;
        for seed in 0..20 {
            let est = bc_approx(&g, 10, seed);
            sum_err += est[0] - exact[0];
        }
        // Mean error small relative to the value (unbiasedness, loosely).
        assert!(
            (sum_err / 20.0).abs() < 0.2 * exact[0],
            "mean err {} vs {}",
            sum_err / 20.0,
            exact[0]
        );
    }

    #[test]
    fn half_sample_ranks_well() {
        let g = generators::whiskered_community(&generators::WhiskeredCommunityParams {
            core_vertices: 60,
            core_attach: 3,
            community_count: 4,
            community_size: 10,
            community_density: 1.8,
            whiskers: 30,
            seed: 2,
        });
        let exact = bc_serial(&g);
        let approx = bc_approx(&g, g.num_vertices() / 2, 3);
        let rho = spearman_rank_correlation(&exact, &approx);
        assert!(rho > 0.9, "spearman {rho}");
        // Top vertex must agree.
        let argmax =
            |xs: &[f64]| xs.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
        assert_eq!(argmax(&exact), argmax(&approx));
    }

    #[test]
    fn adaptive_converges_fast_for_hubs() {
        let g = generators::star(100);
        let exact = bc_serial(&g);
        let (est, used) = bc_approx_adaptive(&g, 0, 2.0, 5);
        assert!(used < 20, "hub should converge quickly, used {used}");
        assert!((est - exact[0]).abs() < 0.25 * exact[0], "est {est} vs {}", exact[0]);
    }

    #[test]
    fn approx_apgre_full_fraction_is_exact() {
        let g = generators::lollipop(8, 20);
        let exact = bc_serial(&g);
        let approx = bc_approx_apgre(&g, 1.0, 0, &ApgreOptions::default());
        for (a, b) in approx.iter().zip(&exact) {
            assert!((a - b).abs() < 1e-7 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn approx_apgre_half_fraction_ranks_well() {
        let g = generators::whiskered_community(&generators::WhiskeredCommunityParams {
            core_vertices: 60,
            core_attach: 3,
            community_count: 4,
            community_size: 10,
            community_density: 1.8,
            whiskers: 30,
            seed: 8,
        });
        let exact = bc_serial(&g);
        let approx = bc_approx_apgre(&g, 0.5, 4, &ApgreOptions::default());
        let rho = spearman_rank_correlation(&exact, &approx);
        assert!(rho > 0.85, "spearman {rho}");
    }

    #[test]
    fn spearman_basics() {
        assert_eq!(spearman_rank_correlation(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]), 1.0);
        assert_eq!(spearman_rank_correlation(&[1.0, 2.0, 3.0], &[30.0, 20.0, 10.0]), -1.0);
        assert_eq!(spearman_rank_correlation(&[], &[]), 1.0);
    }

    #[test]
    fn empty_graph() {
        let g = apgre_graph::Graph::undirected_from_edges(0, &[]);
        assert!(bc_approx(&g, 5, 0).is_empty());
    }
}
