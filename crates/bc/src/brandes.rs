//! Serial Brandes' algorithm (paper Figure 1) — the baseline every speedup
//! in the evaluation is measured against.

use apgre_graph::{Graph, VertexId, UNREACHED};
use std::collections::VecDeque;

/// Reusable per-source workspace for Brandes-style sweeps.
pub(crate) struct Workspace {
    pub dist: Vec<u32>,
    pub sigma: Vec<f64>,
    pub delta: Vec<f64>,
    /// BFS order (root first); the backward sweep walks it in reverse.
    pub order: Vec<VertexId>,
    pub queue: VecDeque<VertexId>,
}

impl Workspace {
    pub fn new(n: usize) -> Self {
        Workspace {
            dist: vec![UNREACHED; n],
            sigma: vec![0.0; n],
            delta: vec![0.0; n],
            order: Vec::with_capacity(n),
            queue: VecDeque::new(),
        }
    }

    /// Resets only the vertices touched by the previous source — `O(reached)`
    /// instead of `O(n)`, which matters on graphs with many small components.
    pub fn reset_touched(&mut self) {
        for &v in &self.order {
            self.dist[v as usize] = UNREACHED;
            self.sigma[v as usize] = 0.0;
            self.delta[v as usize] = 0.0;
        }
        self.order.clear();
    }
}

/// One Brandes iteration: BFS from `s` (σ, order), backward dependency
/// accumulation into `ws.delta`, scores into `bc`. Returns the number of
/// edges examined (forward + backward), the unit the redundancy analysis
/// counts in.
pub(crate) fn accumulate_source(g: &Graph, s: VertexId, ws: &mut Workspace, bc: &mut [f64]) -> u64 {
    let csr = g.csr();
    let mut edges = 0u64;
    ws.dist[s as usize] = 0;
    ws.sigma[s as usize] = 1.0;
    ws.order.push(s);
    ws.queue.push_back(s);
    while let Some(u) = ws.queue.pop_front() {
        let du = ws.dist[u as usize];
        for &v in csr.neighbors(u) {
            edges += 1;
            if ws.dist[v as usize] == UNREACHED {
                ws.dist[v as usize] = du + 1;
                ws.order.push(v);
                ws.queue.push_back(v);
            }
            if ws.dist[v as usize] == du + 1 {
                ws.sigma[v as usize] += ws.sigma[u as usize];
            }
        }
    }
    // Backward sweep in reverse BFS order, scanning successors (vertices one
    // level deeper); their δ values are already final.
    for &v in ws.order.iter().rev() {
        let dv = ws.dist[v as usize];
        let mut acc = 0.0;
        for &w in csr.neighbors(v) {
            edges += 1;
            if ws.dist[w as usize] == dv + 1 {
                acc += ws.sigma[v as usize] / ws.sigma[w as usize] * (1.0 + ws.delta[w as usize]);
            }
        }
        ws.delta[v as usize] = acc;
        if v != s {
            bc[v as usize] += acc;
        }
    }
    edges
}

/// Serial Brandes (successor-scan backward phase). `O(V·E)` time,
/// `O(V + E)` space.
pub fn bc_serial(g: &Graph) -> Vec<f64> {
    bc_serial_counted(g).0
}

/// [`bc_serial`] plus the total number of edges examined — used by the
/// redundancy breakdown (Figure 7) and the MTEPS accounting.
pub fn bc_serial_counted(g: &Graph) -> (Vec<f64>, u64) {
    let n = g.num_vertices();
    let mut bc = vec![0.0; n];
    let mut ws = Workspace::new(n);
    let mut edges = 0u64;
    for s in 0..n as VertexId {
        edges += accumulate_source(g, s, &mut ws, &mut bc);
        ws.reset_touched();
    }
    (bc, edges)
}

/// Serial Brandes with explicit predecessor lists — the exact structure of
/// the paper's Figure 1 / the SSCA v2.2 `preds-serial` reference. Kept
/// alongside [`bc_serial`] because the two serial baselines differ slightly
/// in constant factors and the harness reports the faster one, as the paper
/// does.
pub fn bc_serial_preds(g: &Graph) -> Vec<f64> {
    let n = g.num_vertices();
    let csr = g.csr();
    let mut bc = vec![0.0; n];
    let mut dist = vec![UNREACHED; n];
    let mut sigma = vec![0.0f64; n];
    let mut delta = vec![0.0f64; n];
    let mut preds: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    let mut order: Vec<VertexId> = Vec::with_capacity(n);
    let mut queue = VecDeque::new();
    for s in 0..n as VertexId {
        dist[s as usize] = 0;
        sigma[s as usize] = 1.0;
        order.push(s);
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            let du = dist[u as usize];
            for &v in csr.neighbors(u) {
                if dist[v as usize] == UNREACHED {
                    dist[v as usize] = du + 1;
                    order.push(v);
                    queue.push_back(v);
                }
                if dist[v as usize] == du + 1 {
                    sigma[v as usize] += sigma[u as usize];
                    preds[v as usize].push(u);
                }
            }
        }
        for &w in order.iter().rev() {
            for &v in &preds[w as usize] {
                delta[v as usize] +=
                    sigma[v as usize] / sigma[w as usize] * (1.0 + delta[w as usize]);
            }
            if w != s {
                bc[w as usize] += delta[w as usize];
            }
        }
        for &v in &order {
            dist[v as usize] = UNREACHED;
            sigma[v as usize] = 0.0;
            delta[v as usize] = 0.0;
            preds[v as usize].clear();
        }
        order.clear();
    }
    bc
}

#[cfg(test)]
mod tests {
    use super::*;
    use apgre_decomp::naive::naive_bc;
    use apgre_graph::generators;
    use apgre_graph::Graph;

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < 1e-9 * (1.0 + x.abs()), "vertex {i}: {x} vs {y}");
        }
    }

    #[test]
    fn matches_naive_on_small_undirected() {
        for seed in 0..10 {
            let g = generators::gnm_undirected(30, 45, seed);
            assert_close(&bc_serial(&g), &naive_bc(&g));
        }
    }

    #[test]
    fn matches_naive_on_small_directed() {
        for seed in 0..10 {
            let g = generators::gnm_directed(30, 70, seed);
            assert_close(&bc_serial(&g), &naive_bc(&g));
        }
    }

    #[test]
    fn preds_variant_matches() {
        for seed in 0..5 {
            let g = generators::gnm_undirected(40, 60, seed);
            assert_close(&bc_serial(&g), &bc_serial_preds(&g));
            let g = generators::gnm_directed(40, 90, seed);
            assert_close(&bc_serial(&g), &bc_serial_preds(&g));
        }
    }

    #[test]
    fn path_closed_form() {
        // Path of n: BC(v_i) = 2·i·(n-1-i) for ordered pairs.
        let n = 9;
        let g = generators::path(n);
        let bc = bc_serial(&g);
        for i in 0..n {
            assert_eq!(bc[i], 2.0 * (i as f64) * ((n - 1 - i) as f64), "vertex {i}");
        }
    }

    #[test]
    fn star_closed_form() {
        let g = generators::star(6);
        let bc = bc_serial(&g);
        assert_eq!(bc[0], 30.0); // k(k-1)
        assert!(bc[1..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn binary_tree_matches_naive() {
        let g = generators::binary_tree(15);
        assert_close(&bc_serial(&g), &naive_bc(&g));
    }

    #[test]
    fn disconnected_and_isolated() {
        let g = Graph::undirected_from_edges(6, &[(0, 1), (1, 2), (4, 5)]);
        let bc = bc_serial(&g);
        assert_eq!(bc, vec![0.0, 2.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(bc_serial(&Graph::undirected_from_edges(0, &[])).is_empty());
        assert_eq!(bc_serial(&Graph::undirected_from_edges(1, &[])), vec![0.0]);
    }

    #[test]
    fn edge_count_on_connected_undirected() {
        // Every source touches all 2m arcs twice (forward + backward).
        let g = generators::cycle(8);
        let (_, edges) = bc_serial_counted(&g);
        let n = 8u64;
        let arcs = 16u64;
        assert_eq!(edges, n * arcs * 2);
    }
}
