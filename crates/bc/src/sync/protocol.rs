//! The lock-free kernels' shared publish protocols, factored out so the
//! *production* code path is the one the model checker explores.
//!
//! Both `bc_lock_free` and `bc_hybrid`'s top-down phase discover the next
//! frontier with the same two-step protocol per edge `(u, v)`:
//!
//! 1. `dist[v].compare_exchange(UNREACHED, d + 1)` — at most one thread
//!    claims `v` for level `d + 1` (the winner enqueues it),
//! 2. `if dist[v] == d + 1 { sigma[v] += sigma[u] }` — **every** thread whose
//!    source `u` sits at level `d` contributes its σ, winner or not.
//!
//! The race window between the two steps is the protocol's crux: a loser's
//! load in step 2 must observe the winner's claim (it does — the loser's own
//! failed CAS already returned the written value, and under any
//! sequentially-consistent interleaving the subsequent load can only see
//! `d + 1`), and no contribution may be dropped or doubled however the
//! `fetch_add`s interleave. `tests/loom_publish.rs` explores exactly this
//! window exhaustively via [`crate::sync::model`]; a deliberately misordered
//! variant ([`discover_and_push_buggy`]) is kept as a negative control the
//! checker must reject.
//!
//! The functions are generic over [`DistCell`]/[`AccumCell`] so the same code
//! is instantiated with std atomics in the kernels and with model atomics in
//! the exhaustive tests (and, under `--cfg loom`, the kernels themselves are
//! instantiated with model atomics through the [`crate::sync`] facade).

/// A distance slot supporting the claim protocol (`AtomicU32`-shaped).
pub trait DistCell {
    /// Relaxed load of the level.
    fn load_relaxed(&self) -> u32;
    /// One-shot claim: CAS from `unclaimed` to `d`; `true` iff this caller
    /// won.
    fn try_claim(&self, unclaimed: u32, d: u32) -> bool;
}

/// An accumulation slot supporting contended adds (`AtomicF64`-shaped).
pub trait AccumCell {
    /// Relaxed load of the accumulated value.
    fn load_relaxed(&self) -> f64;
    /// Contended add; returns the previous value.
    fn add_relaxed(&self, v: f64) -> f64;
}

impl DistCell for core::sync::atomic::AtomicU32 {
    #[inline]
    fn load_relaxed(&self) -> u32 {
        self.load(core::sync::atomic::Ordering::Relaxed)
    }

    #[inline]
    fn try_claim(&self, unclaimed: u32, d: u32) -> bool {
        self.compare_exchange(
            unclaimed,
            d,
            core::sync::atomic::Ordering::Relaxed,
            core::sync::atomic::Ordering::Relaxed,
        )
        .is_ok()
    }
}

/// Forward-phase frontier discovery with σ push (the `lockSyncFree` /
/// top-down-hybrid protocol): claims `v` for level `next_d` and pushes `su`
/// into `sigma[v]` iff `v` lands on that level. Returns `true` iff this call
/// won the claim (the caller then owns enqueueing `v`).
#[inline]
pub fn discover_and_push<D: DistCell, A: AccumCell>(
    dist: &[D],
    sigma: &[A],
    v: usize,
    next_d: u32,
    unclaimed: u32,
    su: f64,
) -> bool {
    let fresh = dist[v].try_claim(unclaimed, next_d);
    if dist[v].load_relaxed() == next_d {
        sigma[v].add_relaxed(su);
    }
    fresh
}

/// Backward-phase dependency push: adds `sigma[v] * coeff` into `delta[v]`
/// iff `v` sits one level up (`upper`). The δ mirror of the σ protocol.
#[inline]
pub fn push_dependency<D: DistCell, A: AccumCell>(
    dist: &[D],
    sigma: &[A],
    delta: &[A],
    v: usize,
    upper: u32,
    coeff: f64,
) {
    if dist[v].load_relaxed() == upper {
        delta[v].add_relaxed(sigma[v].load_relaxed() * coeff);
    }
}

/// Deliberately broken discovery — reads the level *before* attempting the
/// claim, so the winning thread never observes its own claim and drops its σ
/// contribution. Never called by a kernel — it exists as the negative
/// control: the model checker must find the interleaving where σ goes
/// missing (see `tests/loom_publish.rs`).
pub fn discover_and_push_buggy<D: DistCell, A: AccumCell>(
    dist: &[D],
    sigma: &[A],
    v: usize,
    next_d: u32,
    unclaimed: u32,
    su: f64,
) -> bool {
    let level_before = dist[v].load_relaxed();
    let fresh = dist[v].try_claim(unclaimed, next_d);
    if level_before == next_d {
        sigma[v].add_relaxed(su);
    }
    fresh
}
