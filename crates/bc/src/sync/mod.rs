//! The synchronization facade: the **only** sanctioned import path for
//! atomics in this crate.
//!
//! Normal builds re-export the std atomics; `--cfg loom` builds re-export the
//! in-tree model-checked atomics from [`model`], so the parallel kernels (and
//! anything else built on this facade) can be run under exhaustive
//! interleaving exploration without touching kernel code — the loom idiom,
//! with [`model`] standing in for the loom crate (swapping the real `loom`
//! in under the same cfg is a drop-in change, tracked in ROADMAP.md).
//!
//! `cargo xtask lint` enforces the facade: raw `std::sync::atomic` imports
//! outside this module and its `apgre_graph::sync` mirror (that crate sits
//! below this one in the dependency graph, so it carries its own copy of
//! the facade) are build errors in CI.
//!
//! # The memory-ordering protocol, in one place
//!
//! Every atomic operation in the kernels is `Ordering::Relaxed`, and the
//! facade deliberately re-exports nothing stronger (`SeqCst`/`AcqRel` creep
//! is linted against). The soundness argument, previously scattered across
//! doc comments, lives here:
//!
//! 1. **Within a level**, the only concurrent accesses are (a) the
//!    `dist` claim CAS + σ `fetch_add` publish protocol
//!    ([`protocol::discover_and_push`]) and (b) the δ push
//!    ([`protocol::push_dependency`]). Both are single-location RMW
//!    protocols: atomic RMWs on one location always observe the latest value
//!    in the location's modification order, whatever the ordering, so no
//!    claim or contribution can be lost. This is the part comments cannot be
//!    trusted on — `tests/loom_atomic_f64.rs` and `tests/loom_publish.rs`
//!    verify it by exhaustive interleaving exploration, including a negative
//!    control the checker must reject.
//! 2. **Across levels** (e.g. `bc_lock_free`'s scoring loop reading the δ
//!    and σ cells the previous `par_iter` wrote, or the next level's reads
//!    of this level's σ), visibility comes from rayon's fork-join joins:
//!    every `par_iter().for_each(..)` ends with a join that forms a
//!    release/acquire edge between the workers and the continuation, so a
//!    `Relaxed` store before the join happens-before a `Relaxed` load after
//!    it. No `Release`/`Acquire` edge is missing *provided every cross-level
//!    read sits on the far side of a join* — which is a structural property
//!    of the level-synchronous kernels, re-checked at runtime by the
//!    `invariants` feature's level/single-writer validation
//!    (`crate::util::check_levels`).
//! 3. **Across sources**, the per-source loop is sequential on the calling
//!    thread; the same join edges apply.

pub mod model;
pub mod protocol;

mod atomic_f64;

pub use atomic_f64::{atomic_f64_vec, into_f64_vec, AtomicF64, ModelAtomicF64};

#[cfg(not(loom))]
pub use core::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize};

#[cfg(loom)]
pub use model::{AtomicU32, AtomicU64};

pub use core::sync::atomic::Ordering;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_f64_ops() {
        let a = AtomicF64::new(1.5);
        assert_eq!(a.load(), 1.5);
        a.store(2.0);
        assert_eq!(a.fetch_add(0.25), 2.0, "fetch_add returns the previous value");
        assert_eq!(a.load(), 2.25);
        assert_eq!(a.into_inner(), 2.25);
    }

    #[test]
    fn model_atomic_f64_matches_contract_outside_check() {
        let a = ModelAtomicF64::new(0.5);
        assert_eq!(a.fetch_add(1.0), 0.5);
        assert_eq!(a.load(), 1.5);
        assert_eq!(a.into_inner(), 1.5);
    }

    #[test]
    fn vec_helpers_round_trip() {
        let v = atomic_f64_vec(3);
        v[1].store(4.0);
        let _ = v[2].fetch_add(-1.0);
        assert_eq!(into_f64_vec(v), vec![0.0, 4.0, -1.0]);
    }

    #[test]
    fn protocol_on_std_atomics_sequentially() {
        use protocol::{discover_and_push, push_dependency};
        const UNREACHED: u32 = u32::MAX;
        let dist = [AtomicU32::new(0), AtomicU32::new(UNREACHED)];
        let sigma = atomic_f64_vec(2);
        sigma[0].store(1.0);
        // First edge into v=1 wins the claim and pushes σ.
        assert!(discover_and_push(&dist, &sigma, 1, 1, UNREACHED, 1.0));
        // Second edge from another level-0 vertex loses the claim but still
        // contributes.
        assert!(!discover_and_push(&dist, &sigma, 1, 1, UNREACHED, 2.0));
        assert_eq!(sigma[1].load(), 3.0);
        // Backward: push δ to a predecessor at the upper level.
        let delta = atomic_f64_vec(2);
        push_dependency(&dist, &sigma, &delta, 0, 0, 0.5);
        assert_eq!(delta[0].load(), 0.5);
        // Wrong level: no push.
        push_dependency(&dist, &sigma, &delta, 0, 7, 0.5);
        assert_eq!(delta[0].load(), 0.5);
    }
}
