//! A miniature stateless model checker for the kernels' atomics protocols.
//!
//! This is the engine behind the repo's loom-style tests: it reruns a closure
//! under **every** interleaving of its threads' atomic operations and fails if
//! any schedule panics. The exploration is CHESS-style — each run follows a
//! recorded schedule prefix, context switches happen exactly at the model
//! atomics' operations, and depth-first search over the per-step choice of
//! runnable thread enumerates the full schedule space.
//!
//! Scope and honesty:
//!
//! * Exploration is **exhaustive under sequential consistency**. That is the
//!   right tool for the bugs that actually threaten these kernels — lost
//!   `compare_exchange` publications, double discovery, σ accumulated before
//!   a distance is claimed — which are all *logic* races between atomic
//!   operations. It does **not** enumerate the weak-memory reorderings that
//!   `Ordering::Relaxed` additionally permits; the argument for why the
//!   kernels tolerate those (rayon's fork-join barriers publish everything
//!   between levels) lives in [`crate::sync`]'s module docs, and swapping in
//!   the real `loom` crate under `--cfg loom` remains the upgrade path.
//! * No partial-order reduction: schedule counts are multinomial in the
//!   number of operations, so keep modelled protocols miniaturized (two or
//!   three threads, a handful of operations each — exactly the shape of the
//!   CAS-publish window being verified).
//!
//! Outside [`check`]/[`explore`] the model atomics degrade to plain `SeqCst`
//! std atomics, so code instantiated with them still behaves correctly in
//! ordinary tests.
//!
//! ```
//! use apgre_bc::sync::model;
//! use std::sync::Arc;
//!
//! let report = model::check(|| {
//!     let x = Arc::new(model::AtomicU32::new(0));
//!     let handles: Vec<_> = (0..2)
//!         .map(|_| {
//!             let x = Arc::clone(&x);
//!             model::thread::spawn(move || {
//!                 let _ = x.fetch_add(1, model::Ordering::Relaxed);
//!             })
//!         })
//!         .collect();
//!     for h in handles {
//!         h.join();
//!     }
//!     assert_eq!(x.load(model::Ordering::Relaxed), 2);
//! });
//! assert!(report.schedules >= 2, "both orders explored");
//! ```

// The facade is the one sanctioned home of raw u64 atomics (clippy.toml
// bans them elsewhere); the model atomics pass through to std under SeqCst.
#![allow(clippy::disallowed_methods)]

use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic as std_atomic;
use std::sync::{Arc, Condvar, Mutex};

pub use std::sync::atomic::Ordering;

/// Hard cap on explored schedules: exceeding it aborts the check with a
/// panic telling you to miniaturize the protocol further.
pub const MAX_SCHEDULES: usize = 1 << 20;
/// Hard cap on scheduling decisions within one run (livelock guard).
const MAX_STEPS: usize = 1 << 16;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    /// At a scheduling point, waiting to be granted the floor.
    Ready,
    /// Holds the floor: executing between two scheduling points.
    Running,
    /// Waiting for thread `.0` to finish (a `join`).
    Blocked(usize),
    Finished,
}

struct SchedState {
    status: Vec<Status>,
    /// Thread currently granted the floor; `None` while the scheduler picks.
    turn: Option<usize>,
    /// DFS replay prefix for this run.
    prefix: Vec<usize>,
    /// Choice actually taken at each decision so far.
    choices: Vec<usize>,
    /// Number of ready threads at each decision (DFS branching factor).
    counts: Vec<usize>,
    violation: Option<String>,
    /// Set on violation/deadlock: wakes every parked thread for teardown.
    aborted: bool,
    handles: Vec<std::thread::JoinHandle<()>>,
}

struct ExecInner {
    m: Mutex<SchedState>,
    cv: Condvar,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<ExecInner>, usize)>> = const { RefCell::new(None) };
}

fn current() -> Option<(Arc<ExecInner>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Sentinel unwind payload used to tear managed threads down after an abort;
/// never reported as a violation.
struct AbortUnwind;

impl ExecInner {
    fn new(prefix: Vec<usize>) -> Self {
        ExecInner {
            m: Mutex::new(SchedState {
                status: Vec::new(),
                turn: None,
                prefix,
                choices: Vec::new(),
                counts: Vec::new(),
                violation: None,
                aborted: false,
                handles: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    fn register_thread(&self) -> usize {
        let mut st = self.m.lock().unwrap();
        st.status.push(Status::Ready);
        st.status.len() - 1
    }

    /// Releases the floor with `new_status` and parks until granted again.
    /// Every model atomic operation passes through here, making it the
    /// context-switch point of the exploration.
    fn yield_and_wait(&self, tid: usize, new_status: Status) {
        let mut st = self.m.lock().unwrap();
        // Only a `Running` thread holds the floor. At a start event the
        // thread arrives `Ready`; if the scheduler already granted it the
        // floor, the grant must be *consumed* by the wait loop below, not
        // handed back (releasing it would add a timing-dependent extra
        // scheduling decision and break deterministic replay).
        let held = st.status[tid] == Status::Running;
        st.status[tid] = new_status;
        if held && st.turn == Some(tid) {
            st.turn = None;
        }
        self.cv.notify_all();
        loop {
            if st.aborted {
                drop(st);
                panic::resume_unwind(Box::new(AbortUnwind));
            }
            if st.turn == Some(tid) {
                st.status[tid] = Status::Running;
                return;
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    fn finish(&self, tid: usize, violation: Option<String>) {
        let mut st = self.m.lock().unwrap();
        st.status[tid] = Status::Finished;
        if st.turn == Some(tid) {
            st.turn = None;
        }
        if let Some(v) = violation {
            if st.violation.is_none() {
                st.violation = Some(v);
            }
            st.aborted = true;
        }
        self.cv.notify_all();
    }

    /// Drives one run to completion on the calling thread; returns
    /// `(choices, counts, violation)`.
    fn scheduler(&self) -> (Vec<usize>, Vec<usize>, Option<String>) {
        let mut st = self.m.lock().unwrap();
        loop {
            while st.turn.is_some() && !st.aborted {
                st = self.cv.wait(st).unwrap();
            }
            if st.aborted {
                break;
            }
            // Joins resolve once their target finishes.
            for i in 0..st.status.len() {
                if let Status::Blocked(t) = st.status[i] {
                    if st.status[t] == Status::Finished {
                        st.status[i] = Status::Ready;
                    }
                }
            }
            let ready: Vec<usize> =
                (0..st.status.len()).filter(|&i| st.status[i] == Status::Ready).collect();
            if ready.is_empty() {
                if st.status.iter().all(|&s| s == Status::Finished) {
                    break;
                }
                if st.status.contains(&Status::Running) {
                    // A thread holds the floor but hasn't yielded yet (it is
                    // between the status flip and our wakeup); wait for it.
                    st = self.cv.wait(st).unwrap();
                    continue;
                }
                st.violation =
                    Some(format!("deadlock: no runnable thread (status {:?})", st.status));
                st.aborted = true;
                self.cv.notify_all();
                break;
            }
            if st.choices.len() >= MAX_STEPS {
                st.violation = Some(format!(
                    "livelock: more than {MAX_STEPS} scheduling decisions in one run"
                ));
                st.aborted = true;
                self.cv.notify_all();
                break;
            }
            let i = st.choices.len();
            let c = if i < st.prefix.len() { st.prefix[i] } else { 0 };
            assert!(
                c < ready.len(),
                "nondeterministic replay: decision {i} had {} ready threads, prefix chose {c} \
                 (does the checked closure depend on anything but model atomics?)",
                ready.len()
            );
            st.counts.push(ready.len());
            st.choices.push(c);
            st.turn = Some(ready[c]);
            self.cv.notify_all();
        }
        let handles = std::mem::take(&mut st.handles);
        let out = (st.choices.clone(), st.counts.clone(), st.violation.clone());
        drop(st);
        for h in handles {
            let _ = h.join();
        }
        out
    }
}

fn payload_to_string(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "thread panicked with a non-string payload".to_string()
    }
}

/// Launches a managed OS thread running `body` as model thread `tid`.
fn spawn_managed<T, F>(
    exec: &Arc<ExecInner>,
    tid: usize,
    slot: Arc<Mutex<Option<T>>>,
    body: F,
) -> std::thread::JoinHandle<()>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let e2 = Arc::clone(exec);
    std::thread::Builder::new()
        .name(format!("model-{tid}"))
        .spawn(move || {
            CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&e2), tid)));
            let result = panic::catch_unwind(AssertUnwindSafe(|| {
                // Start event: even a thread with no atomic operations holds
                // the floor for its whole body, keeping runs deterministic.
                e2.yield_and_wait(tid, Status::Ready);
                body()
            }));
            CURRENT.with(|c| *c.borrow_mut() = None);
            match result {
                Ok(v) => {
                    *slot.lock().unwrap() = Some(v);
                    e2.finish(tid, None);
                }
                Err(p) => {
                    if p.downcast_ref::<AbortUnwind>().is_some() {
                        e2.finish(tid, None);
                    } else {
                        e2.finish(tid, Some(payload_to_string(p)));
                    }
                }
            }
        })
        .expect("failed to spawn model thread")
}

/// Model-managed threads: the [`std::thread`] mirror used inside a check.
pub mod thread {
    use super::*;

    /// Handle to a thread spawned with [`spawn`]; [`join`](JoinHandle::join)
    /// blocks the model thread until the target finishes.
    pub struct JoinHandle<T> {
        tid: usize,
        slot: Arc<Mutex<Option<T>>>,
    }

    /// Spawns a model thread. Must be called from inside [`super::check`].
    pub fn spawn<T, F>(f: F) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let (exec, me) = current().expect("model::thread::spawn called outside model::check");
        // Spawning is itself a scheduling point of the parent.
        exec.yield_and_wait(me, Status::Ready);
        let tid = exec.register_thread();
        let slot = Arc::new(Mutex::new(None));
        let h = spawn_managed(&exec, tid, Arc::clone(&slot), f);
        exec.m.lock().unwrap().handles.push(h);
        JoinHandle { tid, slot }
    }

    impl<T> JoinHandle<T> {
        /// Parks the calling model thread until the target finishes, then
        /// returns its result.
        pub fn join(self) -> T {
            let (exec, me) = current().expect("join called outside model::check");
            exec.yield_and_wait(me, Status::Blocked(self.tid));
            let v = self.slot.lock().unwrap().take();
            v.expect("joined model thread produced no value")
        }
    }
}

/// One finished exploration: how many schedules ran, and the first violation
/// found (if any).
#[derive(Debug)]
pub struct Exploration {
    /// Number of complete schedules executed.
    pub schedules: usize,
    /// First violating schedule, if the property failed.
    pub violation: Option<Violation>,
}

/// A schedule that violated the checked property.
#[derive(Debug)]
pub struct Violation {
    /// The per-decision choices reproducing the failure.
    pub schedule: Vec<usize>,
    /// The panic message of the failing thread.
    pub message: String,
}

fn next_prefix(choices: &[usize], counts: &[usize]) -> Option<Vec<usize>> {
    let mut i = choices.len();
    while i > 0 {
        i -= 1;
        if choices[i] + 1 < counts[i] {
            let mut p = choices[..i].to_vec();
            p.push(choices[i] + 1);
            return Some(p);
        }
    }
    None
}

fn run_once(
    f: Arc<dyn Fn() + Send + Sync>,
    prefix: Vec<usize>,
) -> (Vec<usize>, Vec<usize>, Option<String>) {
    let exec = Arc::new(ExecInner::new(prefix));
    let tid = exec.register_thread();
    debug_assert_eq!(tid, 0);
    let slot = Arc::new(Mutex::new(None::<()>));
    let h = spawn_managed(&exec, tid, slot, move || f());
    exec.m.lock().unwrap().handles.push(h);
    exec.scheduler()
}

/// Explores every interleaving of `f`'s model-atomic operations; returns the
/// outcome without panicking (use [`check`] for the asserting form).
pub fn explore<F>(f: F) -> Exploration
where
    F: Fn() + Send + Sync + 'static,
{
    assert!(current().is_none(), "model::explore cannot be nested inside model::check");
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let mut prefix: Vec<usize> = Vec::new();
    let mut schedules = 0usize;
    loop {
        let (choices, counts, violation) = run_once(Arc::clone(&f), prefix);
        schedules += 1;
        if let Some(message) = violation {
            return Exploration {
                schedules,
                violation: Some(Violation { schedule: choices, message }),
            };
        }
        assert!(
            schedules <= MAX_SCHEDULES,
            "model checking exceeded {MAX_SCHEDULES} schedules; miniaturize the protocol"
        );
        match next_prefix(&choices, &counts) {
            Some(p) => prefix = p,
            None => break,
        }
    }
    Exploration { schedules, violation: None }
}

/// Exhaustively explores `f` and panics (with a reproducing schedule) if any
/// interleaving panics. Returns exploration statistics on success.
pub fn check<F>(f: F) -> Exploration
where
    F: Fn() + Send + Sync + 'static,
{
    let report = explore(f);
    if let Some(v) = &report.violation {
        panic!(
            "model check failed on schedule {} of {} explored\nschedule (per-step ready-thread index): {:?}\ncause: {}",
            report.schedules, report.schedules, v.schedule, v.message
        );
    }
    report
}

macro_rules! model_atomic {
    ($(#[$meta:meta])* $name:ident, $raw:ty, $prim:ty) => {
        $(#[$meta])*
        #[derive(Debug, Default)]
        pub struct $name($raw);

        impl $name {
            /// New cell holding `v`.
            pub fn new(v: $prim) -> Self {
                Self(<$raw>::new(v))
            }

            /// Registers a scheduling point if a check is running.
            #[inline]
            fn point(&self) {
                if let Some((exec, tid)) = current() {
                    exec.yield_and_wait(tid, Status::Ready);
                }
            }

            /// Load (a scheduling point; SC under the model).
            pub fn load(&self, _order: Ordering) -> $prim {
                self.point();
                self.0.load(std_atomic::Ordering::SeqCst)
            }

            /// Store (a scheduling point; SC under the model).
            pub fn store(&self, v: $prim, _order: Ordering) {
                self.point();
                self.0.store(v, std_atomic::Ordering::SeqCst)
            }

            /// Compare-exchange (a scheduling point; SC under the model).
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.point();
                self.0.compare_exchange(
                    current,
                    new,
                    std_atomic::Ordering::SeqCst,
                    std_atomic::Ordering::SeqCst,
                )
            }

            /// Like [`Self::compare_exchange`]; the model never fails
            /// spuriously, keeping the schedule space finite.
            pub fn compare_exchange_weak(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.compare_exchange(current, new, success, failure)
            }

            /// Fetch-add (a scheduling point; SC under the model).
            pub fn fetch_add(&self, v: $prim, _order: Ordering) -> $prim {
                self.point();
                self.0.fetch_add(v, std_atomic::Ordering::SeqCst)
            }

            /// Unwraps the cell.
            pub fn into_inner(self) -> $prim {
                self.0.into_inner()
            }
        }
    };
}

model_atomic!(
    /// Model-checked mirror of [`std::sync::atomic::AtomicU32`]: every
    /// operation is a scheduling point while a check runs, and a plain
    /// `SeqCst` atomic otherwise.
    AtomicU32,
    std_atomic::AtomicU32,
    u32
);
model_atomic!(
    /// Model-checked mirror of [`std::sync::atomic::AtomicU64`] (see
    /// [`AtomicU32`]).
    AtomicU64,
    std_atomic::AtomicU64,
    u64
);

impl crate::sync::protocol::DistCell for AtomicU32 {
    fn load_relaxed(&self) -> u32 {
        self.load(Ordering::Relaxed)
    }

    fn try_claim(&self, unclaimed: u32, d: u32) -> bool {
        self.compare_exchange(unclaimed, d, Ordering::Relaxed, Ordering::Relaxed).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passthrough_outside_check() {
        let a = AtomicU32::new(7);
        assert_eq!(a.load(Ordering::Relaxed), 7);
        a.store(9, Ordering::Relaxed);
        assert_eq!(a.fetch_add(1, Ordering::Relaxed), 9);
        assert_eq!(a.into_inner(), 10);
    }

    #[test]
    fn single_thread_single_schedule() {
        let report = check(|| {
            let a = AtomicU64::new(0);
            a.store(3, Ordering::Relaxed);
            assert_eq!(a.load(Ordering::Relaxed), 3);
        });
        assert_eq!(report.schedules, 1, "no concurrency, no branching");
    }

    #[test]
    fn two_increments_never_lose_updates() {
        let report = check(|| {
            let x = Arc::new(AtomicU32::new(0));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let x = Arc::clone(&x);
                    thread::spawn(move || {
                        let _ = x.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            for h in hs {
                h.join();
            }
            assert_eq!(x.load(Ordering::Relaxed), 2);
        });
        assert!(report.schedules >= 2, "explored {} schedules", report.schedules);
    }

    #[test]
    fn finds_the_classic_load_store_race() {
        // Non-atomic read-modify-write built from a load and a store: the
        // checker must find the interleaving that loses an update.
        let report = explore(|| {
            let x = Arc::new(AtomicU32::new(0));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let x = Arc::clone(&x);
                    thread::spawn(move || {
                        let v = x.load(Ordering::Relaxed);
                        x.store(v + 1, Ordering::Relaxed);
                    })
                })
                .collect();
            for h in hs {
                h.join();
            }
            assert_eq!(x.load(Ordering::Relaxed), 2, "lost update");
        });
        let v = report.violation.expect("the lost-update schedule must be found");
        assert!(v.message.contains("lost update"), "message: {}", v.message);
    }

    #[test]
    fn join_returns_value() {
        check(|| {
            let h = thread::spawn(|| 41u32 + 1);
            assert_eq!(h.join(), 42);
        });
    }

    #[test]
    fn three_threads_explore_all_orders() {
        // 3 threads, one store each to distinct cells: 3! = 6 interleavings
        // of the stores (plus start/finish bookkeeping decisions that do not
        // branch). The checker must count at least the 6.
        let report = check(|| {
            let cells = Arc::new([AtomicU32::new(0), AtomicU32::new(0), AtomicU32::new(0)]);
            let hs: Vec<_> = (0..3)
                .map(|i| {
                    let cells = Arc::clone(&cells);
                    thread::spawn(move || cells[i].store(1, Ordering::Relaxed))
                })
                .collect();
            for h in hs {
                h.join();
            }
        });
        assert!(report.schedules >= 6, "explored {} schedules", report.schedules);
    }
}
