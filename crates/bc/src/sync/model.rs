//! A miniature stateless model checker for the kernels' atomics protocols.
//!
//! This is the engine behind the repo's loom-style tests: it reruns a closure
//! under every *inequivalent* interleaving of its threads' atomic operations
//! and fails if any schedule panics. The exploration is CHESS-style — each
//! run follows a recorded schedule prefix, context switches happen exactly at
//! the model atomics' operations, and a depth-first search over the per-step
//! choice of runnable thread covers the schedule space, pruned by sleep sets
//! so that schedules differing only in the order of commuting operations run
//! once.
//!
//! Scope and honesty:
//!
//! * Exploration is **exhaustive under sequential consistency**. That is the
//!   right tool for the bugs that actually threaten these kernels — lost
//!   `compare_exchange` publications, double discovery, σ accumulated before
//!   a distance is claimed — which are all *logic* races between atomic
//!   operations. It does **not** enumerate the weak-memory reorderings that
//!   `Ordering::Relaxed` additionally permits; the argument for why the
//!   kernels tolerate those (rayon's fork-join barriers publish everything
//!   between levels) lives in [`crate::sync`]'s module docs, and swapping in
//!   the real `loom` crate under `--cfg loom` remains the upgrade path.
//! * Partial-order reduction by **sleep sets** (Godefroid): every scheduling
//!   point declares the object it is about to touch and whether it writes;
//!   two operations commute when they touch different objects or are both
//!   reads, and the DFS skips schedules that only reorder commuting
//!   operations. Sleep sets preserve every reachable state (and therefore
//!   every assertion violation) while cutting the multinomial schedule count
//!   down to the dependent interleavings — that is what lifts the
//!   two-racing-parents cap on the CAS-publish checks to three. The
//!   unreduced search survives behind [`Mode::Exhaustive`] (see
//!   [`explore_with`]) as the cross-check oracle.
//!
//! Outside [`check`]/[`explore`] the model atomics degrade to plain `SeqCst`
//! std atomics, so code instantiated with them still behaves correctly in
//! ordinary tests.
//!
//! ```
//! use apgre_bc::sync::model;
//! use std::sync::Arc;
//!
//! let report = model::check(|| {
//!     let x = Arc::new(model::AtomicU32::new(0));
//!     let handles: Vec<_> = (0..2)
//!         .map(|_| {
//!             let x = Arc::clone(&x);
//!             model::thread::spawn(move || {
//!                 let _ = x.fetch_add(1, model::Ordering::Relaxed);
//!             })
//!         })
//!         .collect();
//!     for h in handles {
//!         h.join();
//!     }
//!     assert_eq!(x.load(model::Ordering::Relaxed), 2);
//! });
//! assert!(report.schedules >= 2, "both orders explored");
//! ```

// The facade is the one sanctioned home of raw u64 atomics (clippy.toml
// bans them elsewhere); the model atomics pass through to std under SeqCst.
#![allow(clippy::disallowed_methods)]

use std::cell::RefCell;
use std::collections::HashSet;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic as std_atomic;
use std::sync::{Arc, Condvar, Mutex};

pub use std::sync::atomic::Ordering;

/// Hard cap on explored schedules (completed plus sleep-set-pruned):
/// exceeding it aborts the check with a panic telling you to miniaturize
/// the protocol further.
pub const MAX_SCHEDULES: usize = 1 << 20;
/// Hard cap on scheduling decisions within one run (livelock guard).
const MAX_STEPS: usize = 1 << 16;

/// Object ids at and above this value name thread-lifecycle "objects"
/// (`OBJ_THREAD_BASE + tid`); below it they name atomic cells, allocated
/// per run on first use. Spawn, start, and join events operate on the
/// lifecycle object of the thread they concern, so they commute with
/// everything except events on the same thread's lifecycle.
const OBJ_THREAD_BASE: usize = usize::MAX / 2;

/// What a thread is about to do at a scheduling point: which object it
/// touches and whether it writes. `None` (unannotated) is treated as
/// conflicting with everything — conservative, never unsound.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Op {
    obj: usize,
    write: bool,
}

impl Op {
    fn thread(tid: usize) -> Self {
        Op { obj: OBJ_THREAD_BASE + tid, write: true }
    }
}

/// Two operations are dependent (do not commute) when they touch the same
/// object and at least one writes. Reordering independent operations cannot
/// change any reachable state, which is what licenses sleep-set pruning.
fn dependent(a: Option<Op>, b: Option<Op>) -> bool {
    match (a, b) {
        (Some(a), Some(b)) => a.obj == b.obj && (a.write || b.write),
        _ => true,
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    /// At a scheduling point, waiting to be granted the floor.
    Ready,
    /// Holds the floor: executing between two scheduling points.
    Running,
    /// Waiting for thread `.0` to finish (a `join`).
    Blocked(usize),
    Finished,
}

struct SchedState {
    status: Vec<Status>,
    /// Thread currently granted the floor; `None` while the scheduler picks.
    turn: Option<usize>,
    /// DFS replay prefix for this run.
    prefix: Vec<usize>,
    /// Sleep set on arrival at the first decision past the prefix: threads
    /// whose pending op the DFS already explored in an equivalent order.
    init_sleep: Vec<usize>,
    /// Choice actually taken at each decision so far.
    choices: Vec<usize>,
    /// The `(tid, pending op)` of every ready thread at each decision.
    ready_ops: Vec<Vec<(usize, Option<Op>)>>,
    /// Per-thread declared next op (meaningful while the thread is parked).
    pending: Vec<Option<Op>>,
    /// Set when every ready thread past the prefix was asleep: the run is a
    /// redundant interleaving and counts as pruned, not explored.
    sleep_blocked: bool,
    violation: Option<String>,
    /// Set on violation/deadlock: wakes every parked thread for teardown.
    aborted: bool,
    handles: Vec<std::thread::JoinHandle<()>>,
}

/// Everything [`ExecInner::scheduler`] learned from one run.
struct RunResult {
    choices: Vec<usize>,
    ready_ops: Vec<Vec<(usize, Option<Op>)>>,
    sleep_blocked: bool,
    violation: Option<String>,
}

struct ExecInner {
    m: Mutex<SchedState>,
    cv: Condvar,
    /// Per-run allocator for atomic-cell object ids (0 means unassigned).
    next_obj: std_atomic::AtomicUsize,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<ExecInner>, usize)>> = const { RefCell::new(None) };
}

fn current() -> Option<(Arc<ExecInner>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Sentinel unwind payload used to tear managed threads down after an abort;
/// never reported as a violation.
struct AbortUnwind;

impl ExecInner {
    fn new(prefix: Vec<usize>, init_sleep: Vec<usize>) -> Self {
        ExecInner {
            m: Mutex::new(SchedState {
                status: Vec::new(),
                turn: None,
                prefix,
                init_sleep,
                choices: Vec::new(),
                ready_ops: Vec::new(),
                pending: Vec::new(),
                sleep_blocked: false,
                violation: None,
                aborted: false,
                handles: Vec::new(),
            }),
            cv: Condvar::new(),
            next_obj: std_atomic::AtomicUsize::new(1),
        }
    }

    fn register_thread(&self) -> usize {
        let mut st = self.m.lock().unwrap();
        st.status.push(Status::Ready);
        st.pending.push(None);
        st.status.len() - 1
    }

    /// Returns the cell's object id for this run, assigning from the per-run
    /// counter on first use. Only the floor-holding thread calls this, so the
    /// read-then-store pair cannot race; replay determinism makes assignment
    /// order — and hence ids — identical along a shared schedule prefix. A
    /// cell cached from an earlier run can collide with a fresh allocation,
    /// which only *merges* objects (more dependence, less pruning): sound.
    fn obj_id(&self, slot: &std_atomic::AtomicUsize) -> usize {
        let cur = slot.load(std_atomic::Ordering::SeqCst);
        if cur != 0 {
            return cur;
        }
        let id = self.next_obj.fetch_add(1, std_atomic::Ordering::SeqCst);
        slot.store(id, std_atomic::Ordering::SeqCst);
        id
    }

    /// Releases the floor with `new_status` and parks until granted again.
    /// Every model atomic operation passes through here, making it the
    /// context-switch point of the exploration. `op` declares what the
    /// thread will do once re-granted the floor; the sleep-set reduction
    /// reads it to decide which interleavings commute.
    fn yield_and_wait(&self, tid: usize, new_status: Status, op: Option<Op>) {
        let mut st = self.m.lock().unwrap();
        st.pending[tid] = op;
        // Only a `Running` thread holds the floor. At a start event the
        // thread arrives `Ready`; if the scheduler already granted it the
        // floor, the grant must be *consumed* by the wait loop below, not
        // handed back (releasing it would add a timing-dependent extra
        // scheduling decision and break deterministic replay).
        let held = st.status[tid] == Status::Running;
        st.status[tid] = new_status;
        if held && st.turn == Some(tid) {
            st.turn = None;
        }
        self.cv.notify_all();
        loop {
            if st.aborted {
                drop(st);
                panic::resume_unwind(Box::new(AbortUnwind));
            }
            if st.turn == Some(tid) {
                st.status[tid] = Status::Running;
                return;
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    fn finish(&self, tid: usize, violation: Option<String>) {
        let mut st = self.m.lock().unwrap();
        st.status[tid] = Status::Finished;
        if st.turn == Some(tid) {
            st.turn = None;
        }
        if let Some(v) = violation {
            if st.violation.is_none() {
                st.violation = Some(v);
            }
            st.aborted = true;
        }
        self.cv.notify_all();
    }

    /// Drives one run to completion on the calling thread.
    ///
    /// Decisions inside the replay prefix follow it verbatim. Past the
    /// prefix the scheduler maintains the sleep set itself: it starts from
    /// `init_sleep` (computed by the DFS for the first fresh decision),
    /// always grants the lowest-indexed ready thread that is not asleep,
    /// and after each grant wakes every sleeper whose pending op depends on
    /// the one just granted. If every ready thread is asleep the whole
    /// branch is a redundant reordering and the run aborts as pruned.
    fn scheduler(&self) -> RunResult {
        let mut cur_sleep: HashSet<usize> = HashSet::new();
        let mut st = self.m.lock().unwrap();
        loop {
            while st.turn.is_some() && !st.aborted {
                st = self.cv.wait(st).unwrap();
            }
            if st.aborted {
                break;
            }
            // Joins resolve once their target finishes.
            for i in 0..st.status.len() {
                if let Status::Blocked(t) = st.status[i] {
                    if st.status[t] == Status::Finished {
                        st.status[i] = Status::Ready;
                    }
                }
            }
            let ready: Vec<usize> =
                (0..st.status.len()).filter(|&i| st.status[i] == Status::Ready).collect();
            if ready.is_empty() {
                if st.status.iter().all(|&s| s == Status::Finished) {
                    break;
                }
                if st.status.contains(&Status::Running) {
                    // A thread holds the floor but hasn't yielded yet (it is
                    // between the status flip and our wakeup); wait for it.
                    st = self.cv.wait(st).unwrap();
                    continue;
                }
                st.violation =
                    Some(format!("deadlock: no runnable thread (status {:?})", st.status));
                st.aborted = true;
                self.cv.notify_all();
                break;
            }
            if st.choices.len() >= MAX_STEPS {
                st.violation = Some(format!(
                    "livelock: more than {MAX_STEPS} scheduling decisions in one run"
                ));
                st.aborted = true;
                self.cv.notify_all();
                break;
            }
            let i = st.choices.len();
            let c = if i < st.prefix.len() {
                st.prefix[i]
            } else {
                if i == st.prefix.len() {
                    cur_sleep = st.init_sleep.iter().copied().collect();
                }
                match (0..ready.len()).find(|&j| !cur_sleep.contains(&ready[j])) {
                    Some(j) => j,
                    None => {
                        // Sleep-set blocked: every continuation from here is
                        // a reordering of commuting ops the DFS already saw.
                        st.sleep_blocked = true;
                        st.aborted = true;
                        self.cv.notify_all();
                        break;
                    }
                }
            };
            assert!(
                c < ready.len(),
                "nondeterministic replay: decision {i} had {} ready threads, prefix chose {c} \
                 (does the checked closure depend on anything but model atomics?)",
                ready.len()
            );
            if i >= st.prefix.len() {
                let taken = st.pending[ready[c]];
                let pending = &st.pending;
                cur_sleep.retain(|&u| !dependent(pending[u], taken));
            }
            let ops: Vec<(usize, Option<Op>)> = ready.iter().map(|&t| (t, st.pending[t])).collect();
            st.ready_ops.push(ops);
            st.choices.push(c);
            st.turn = Some(ready[c]);
            self.cv.notify_all();
        }
        let handles = std::mem::take(&mut st.handles);
        let out = RunResult {
            choices: st.choices.clone(),
            ready_ops: st.ready_ops.clone(),
            sleep_blocked: st.sleep_blocked,
            violation: st.violation.clone(),
        };
        drop(st);
        for h in handles {
            let _ = h.join();
        }
        out
    }
}

fn payload_to_string(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "thread panicked with a non-string payload".to_string()
    }
}

/// Launches a managed OS thread running `body` as model thread `tid`.
fn spawn_managed<T, F>(
    exec: &Arc<ExecInner>,
    tid: usize,
    slot: Arc<Mutex<Option<T>>>,
    body: F,
) -> std::thread::JoinHandle<()>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let e2 = Arc::clone(exec);
    std::thread::Builder::new()
        .name(format!("model-{tid}"))
        .spawn(move || {
            CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&e2), tid)));
            let result = panic::catch_unwind(AssertUnwindSafe(|| {
                // Start event: even a thread with no atomic operations holds
                // the floor for its whole body, keeping runs deterministic.
                // It operates on this thread's own lifecycle object, so it
                // commutes with everything that is not about this thread.
                e2.yield_and_wait(tid, Status::Ready, Some(Op::thread(tid)));
                body()
            }));
            CURRENT.with(|c| *c.borrow_mut() = None);
            match result {
                Ok(v) => {
                    *slot.lock().unwrap() = Some(v);
                    e2.finish(tid, None);
                }
                Err(p) => {
                    if p.downcast_ref::<AbortUnwind>().is_some() {
                        e2.finish(tid, None);
                    } else {
                        e2.finish(tid, Some(payload_to_string(p)));
                    }
                }
            }
        })
        .expect("failed to spawn model thread")
}

/// Model-managed threads: the [`std::thread`] mirror used inside a check.
pub mod thread {
    use super::*;

    /// Handle to a thread spawned with [`spawn`]; [`join`](JoinHandle::join)
    /// blocks the model thread until the target finishes.
    pub struct JoinHandle<T> {
        tid: usize,
        slot: Arc<Mutex<Option<T>>>,
    }

    /// Spawns a model thread. Must be called from inside [`super::check`].
    pub fn spawn<T, F>(f: F) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let (exec, me) = current().expect("model::thread::spawn called outside model::check");
        // Spawning is itself a scheduling point of the parent, operating on
        // the child's lifecycle object. The child's tid is not assigned until
        // after the yield, so predict it from the current thread count; a
        // stale prediction only merges two spawns' objects (they then look
        // dependent), which is the conservative direction.
        let predicted = exec.m.lock().unwrap().status.len();
        exec.yield_and_wait(me, Status::Ready, Some(Op::thread(predicted)));
        let tid = exec.register_thread();
        let slot = Arc::new(Mutex::new(None));
        let h = spawn_managed(&exec, tid, Arc::clone(&slot), f);
        exec.m.lock().unwrap().handles.push(h);
        JoinHandle { tid, slot }
    }

    impl<T> JoinHandle<T> {
        /// Parks the calling model thread until the target finishes, then
        /// returns its result.
        pub fn join(self) -> T {
            let (exec, me) = current().expect("join called outside model::check");
            exec.yield_and_wait(me, Status::Blocked(self.tid), Some(Op::thread(self.tid)));
            let v = self.slot.lock().unwrap().take();
            v.expect("joined model thread produced no value")
        }
    }
}

/// One finished exploration: how many schedules ran, and the first violation
/// found (if any).
#[derive(Debug)]
pub struct Exploration {
    /// Number of complete schedules executed.
    pub schedules: usize,
    /// Number of runs cut short by the sleep-set reduction (each one a
    /// reordering of commuting operations already covered by a completed
    /// schedule). Always 0 under [`Mode::Exhaustive`].
    pub pruned: usize,
    /// First violating schedule, if the property failed.
    pub violation: Option<Violation>,
}

/// How much of the schedule space to enumerate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// Sleep-set partial-order reduction (the default): skips schedules that
    /// only reorder commuting operations. Every reachable state — and hence
    /// every assertion violation — is still visited.
    SleepSets,
    /// No reduction: every interleaving runs. The cross-check oracle for
    /// [`Mode::SleepSets`]; multinomially slower, so keep protocols tiny.
    Exhaustive,
}

/// A schedule that violated the checked property.
#[derive(Debug)]
pub struct Violation {
    /// The per-decision choices reproducing the failure.
    pub schedule: Vec<usize>,
    /// The panic message of the failing thread.
    pub message: String,
}

/// One node of the DFS path: the decision's ready set (with pending ops),
/// the choice currently being explored, and the node's sleep set (arrival
/// sleepers plus every sibling choice already fully explored).
struct Frame {
    ready: Vec<(usize, Option<Op>)>,
    chosen: usize,
    sleep: HashSet<usize>,
}

fn op_of(ready: &[(usize, Option<Op>)], tid: usize) -> Option<Op> {
    ready.iter().find(|(t, _)| *t == tid).and_then(|(_, op)| *op)
}

fn run_once(
    f: Arc<dyn Fn() + Send + Sync>,
    prefix: Vec<usize>,
    init_sleep: Vec<usize>,
) -> RunResult {
    let exec = Arc::new(ExecInner::new(prefix, init_sleep));
    let tid = exec.register_thread();
    debug_assert_eq!(tid, 0);
    let slot = Arc::new(Mutex::new(None::<()>));
    let h = spawn_managed(&exec, tid, slot, move || f());
    exec.m.lock().unwrap().handles.push(h);
    exec.scheduler()
}

/// Explores the interleavings of `f`'s model-atomic operations under `mode`;
/// returns the outcome without panicking (use [`check_with`] for the
/// asserting form).
///
/// This is Godefroid's sleep-set DFS run statelessly: each iteration replays
/// a prefix of choices, lets the scheduler extend it (skipping sleeping
/// threads), then backtracks to the deepest frame with an untried, awake
/// sibling. Moving from an explored choice to a sibling puts the explored
/// thread to sleep at that node; descending through a choice keeps only the
/// sleepers whose pending op commutes with it. [`Mode::Exhaustive`] is the
/// same loop with every pair of ops declared dependent, which makes the
/// sleep sets degenerate to "siblings already tried" — i.e. plain full DFS.
pub fn explore_with<F>(mode: Mode, f: F) -> Exploration
where
    F: Fn() + Send + Sync + 'static,
{
    assert!(current().is_none(), "model::explore cannot be nested inside model::check");
    let dep = move |a: Option<Op>, b: Option<Op>| match mode {
        Mode::Exhaustive => true,
        Mode::SleepSets => dependent(a, b),
    };
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let mut frames: Vec<Frame> = Vec::new();
    let mut prefix: Vec<usize> = Vec::new();
    let mut init_sleep: Vec<usize> = Vec::new();
    let mut schedules = 0usize;
    let mut pruned = 0usize;
    loop {
        let run = run_once(Arc::clone(&f), prefix.clone(), init_sleep.clone());
        if run.sleep_blocked {
            pruned += 1;
        } else {
            schedules += 1;
            if let Some(message) = run.violation {
                return Exploration {
                    schedules,
                    pruned,
                    violation: Some(Violation { schedule: run.choices, message }),
                };
            }
        }
        assert!(
            schedules + pruned <= MAX_SCHEDULES,
            "model checking exceeded {MAX_SCHEDULES} schedules; miniaturize the protocol"
        );
        // Materialize frames for the decisions past the old prefix, threading
        // the arrival sleep set down exactly as the scheduler did live.
        let start = frames.len();
        let mut arrival: HashSet<usize> = init_sleep.iter().copied().collect();
        for i in start..run.choices.len() {
            let ready = run.ready_ops[i].clone();
            let chosen = run.choices[i];
            let taken = ready[chosen].1;
            let next: HashSet<usize> =
                arrival.iter().copied().filter(|&u| !dep(op_of(&ready, u), taken)).collect();
            frames.push(Frame { ready, chosen, sleep: arrival });
            arrival = next;
        }
        // Backtrack: put each finished choice to sleep at its node, then take
        // the first still-awake sibling anywhere on the path (deepest first).
        let descended = loop {
            let Some(fr) = frames.last_mut() else { break false };
            let done_tid = fr.ready[fr.chosen].0;
            fr.sleep.insert(done_tid);
            if let Some(j) = (0..fr.ready.len()).find(|&j| !fr.sleep.contains(&fr.ready[j].0)) {
                fr.chosen = j;
                break true;
            }
            frames.pop();
        };
        if !descended {
            return Exploration { schedules, pruned, violation: None };
        }
        prefix = frames.iter().map(|fr| fr.chosen).collect();
        let last = frames.last().expect("descended implies a frame");
        let taken = last.ready[last.chosen].1;
        init_sleep =
            last.sleep.iter().copied().filter(|&u| !dep(op_of(&last.ready, u), taken)).collect();
    }
}

/// [`explore_with`] under the default [`Mode::SleepSets`].
pub fn explore<F>(f: F) -> Exploration
where
    F: Fn() + Send + Sync + 'static,
{
    explore_with(Mode::SleepSets, f)
}

/// Explores `f` under `mode` and panics (with a reproducing schedule) if any
/// interleaving panics. Returns exploration statistics on success.
pub fn check_with<F>(mode: Mode, f: F) -> Exploration
where
    F: Fn() + Send + Sync + 'static,
{
    let report = explore_with(mode, f);
    if let Some(v) = &report.violation {
        panic!(
            "model check failed on schedule {} of {} explored ({} pruned)\nschedule (per-step ready-thread index): {:?}\ncause: {}",
            report.schedules, report.schedules, report.pruned, v.schedule, v.message
        );
    }
    report
}

/// [`check_with`] under the default [`Mode::SleepSets`].
pub fn check<F>(f: F) -> Exploration
where
    F: Fn() + Send + Sync + 'static,
{
    check_with(Mode::SleepSets, f)
}

macro_rules! model_atomic {
    ($(#[$meta:meta])* $name:ident, $raw:ty, $prim:ty) => {
        $(#[$meta])*
        #[derive(Debug, Default)]
        pub struct $name {
            cell: $raw,
            /// This cell's object id for the sleep-set reduction; 0 until
            /// the first scheduling point assigns one from the run's counter.
            id: std_atomic::AtomicUsize,
        }

        impl $name {
            /// New cell holding `v`.
            pub fn new(v: $prim) -> Self {
                Self { cell: <$raw>::new(v), id: std_atomic::AtomicUsize::new(0) }
            }

            /// Registers a scheduling point if a check is running,
            /// declaring which object is touched and whether it is written.
            #[inline]
            fn point(&self, write: bool) {
                if let Some((exec, tid)) = current() {
                    let obj = exec.obj_id(&self.id);
                    exec.yield_and_wait(tid, Status::Ready, Some(Op { obj, write }));
                }
            }

            /// Load (a scheduling point; SC under the model).
            pub fn load(&self, _order: Ordering) -> $prim {
                self.point(false);
                self.cell.load(std_atomic::Ordering::SeqCst)
            }

            /// Store (a scheduling point; SC under the model).
            pub fn store(&self, v: $prim, _order: Ordering) {
                self.point(true);
                self.cell.store(v, std_atomic::Ordering::SeqCst)
            }

            /// Compare-exchange (a scheduling point; SC under the model).
            /// Declared a write even when it would fail: the failure branch
            /// still orders against concurrent writers.
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.point(true);
                self.cell.compare_exchange(
                    current,
                    new,
                    std_atomic::Ordering::SeqCst,
                    std_atomic::Ordering::SeqCst,
                )
            }

            /// Like [`Self::compare_exchange`]; the model never fails
            /// spuriously, keeping the schedule space finite.
            pub fn compare_exchange_weak(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.compare_exchange(current, new, success, failure)
            }

            /// Fetch-add (a scheduling point; SC under the model).
            pub fn fetch_add(&self, v: $prim, _order: Ordering) -> $prim {
                self.point(true);
                self.cell.fetch_add(v, std_atomic::Ordering::SeqCst)
            }

            /// Unwraps the cell.
            pub fn into_inner(self) -> $prim {
                self.cell.into_inner()
            }
        }
    };
}

model_atomic!(
    /// Model-checked mirror of [`std::sync::atomic::AtomicU32`]: every
    /// operation is a scheduling point while a check runs, and a plain
    /// `SeqCst` atomic otherwise.
    AtomicU32,
    std_atomic::AtomicU32,
    u32
);
model_atomic!(
    /// Model-checked mirror of [`std::sync::atomic::AtomicU64`] (see
    /// [`AtomicU32`]).
    AtomicU64,
    std_atomic::AtomicU64,
    u64
);

impl crate::sync::protocol::DistCell for AtomicU32 {
    fn load_relaxed(&self) -> u32 {
        self.load(Ordering::Relaxed)
    }

    fn try_claim(&self, unclaimed: u32, d: u32) -> bool {
        self.compare_exchange(unclaimed, d, Ordering::Relaxed, Ordering::Relaxed).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passthrough_outside_check() {
        let a = AtomicU32::new(7);
        assert_eq!(a.load(Ordering::Relaxed), 7);
        a.store(9, Ordering::Relaxed);
        assert_eq!(a.fetch_add(1, Ordering::Relaxed), 9);
        assert_eq!(a.into_inner(), 10);
    }

    #[test]
    fn single_thread_single_schedule() {
        let report = check(|| {
            let a = AtomicU64::new(0);
            a.store(3, Ordering::Relaxed);
            assert_eq!(a.load(Ordering::Relaxed), 3);
        });
        assert_eq!(report.schedules, 1, "no concurrency, no branching");
    }

    #[test]
    fn two_increments_never_lose_updates() {
        let report = check(|| {
            let x = Arc::new(AtomicU32::new(0));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let x = Arc::clone(&x);
                    thread::spawn(move || {
                        let _ = x.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            for h in hs {
                h.join();
            }
            assert_eq!(x.load(Ordering::Relaxed), 2);
        });
        assert!(report.schedules >= 2, "explored {} schedules", report.schedules);
    }

    #[test]
    fn finds_the_classic_load_store_race() {
        // Non-atomic read-modify-write built from a load and a store: the
        // checker must find the interleaving that loses an update.
        let report = explore(|| {
            let x = Arc::new(AtomicU32::new(0));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let x = Arc::clone(&x);
                    thread::spawn(move || {
                        let v = x.load(Ordering::Relaxed);
                        x.store(v + 1, Ordering::Relaxed);
                    })
                })
                .collect();
            for h in hs {
                h.join();
            }
            assert_eq!(x.load(Ordering::Relaxed), 2, "lost update");
        });
        let v = report.violation.expect("the lost-update schedule must be found");
        assert!(v.message.contains("lost update"), "message: {}", v.message);
    }

    #[test]
    fn join_returns_value() {
        check(|| {
            let h = thread::spawn(|| 41u32 + 1);
            assert_eq!(h.join(), 42);
        });
    }

    fn three_disjoint_stores(mode: Mode) -> Exploration {
        explore_with(mode, || {
            let cells = Arc::new([AtomicU32::new(0), AtomicU32::new(0), AtomicU32::new(0)]);
            let hs: Vec<_> = (0..3)
                .map(|i| {
                    let cells = Arc::clone(&cells);
                    thread::spawn(move || cells[i].store(1, Ordering::Relaxed))
                })
                .collect();
            for h in hs {
                h.join();
            }
        })
    }

    #[test]
    fn three_threads_explore_all_orders_exhaustively() {
        // 3 threads, one store each to distinct cells: 3! = 6 interleavings
        // of the stores (plus start/finish bookkeeping decisions that do not
        // branch). The unreduced search must count at least the 6.
        let report = three_disjoint_stores(Mode::Exhaustive);
        assert!(report.violation.is_none());
        assert_eq!(report.pruned, 0, "exhaustive mode never prunes");
        assert!(report.schedules >= 6, "explored {} schedules", report.schedules);
    }

    #[test]
    fn sleep_sets_prune_commuting_stores() {
        // Three disjoint stores: all store pairs (and all lifecycle events)
        // commute, so the sleep-set search must complete strictly fewer
        // schedules than the unreduced one — that is the whole point.
        let reduced = three_disjoint_stores(Mode::SleepSets);
        let full = three_disjoint_stores(Mode::Exhaustive);
        assert!(reduced.violation.is_none() && full.violation.is_none());
        assert!(
            reduced.schedules < full.schedules,
            "sleep sets completed {} schedules vs {} exhaustive — no reduction happened",
            reduced.schedules,
            full.schedules
        );
    }

    #[test]
    fn sleep_sets_and_exhaustive_agree_on_the_race() {
        // Negative-control equivalence: the reduction must not prune away
        // the lost-update interleaving that the full search finds.
        let lost_update = || {
            let x = Arc::new(AtomicU32::new(0));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let x = Arc::clone(&x);
                    thread::spawn(move || {
                        let v = x.load(Ordering::Relaxed);
                        x.store(v + 1, Ordering::Relaxed);
                    })
                })
                .collect();
            for h in hs {
                h.join();
            }
            assert_eq!(x.load(Ordering::Relaxed), 2, "lost update");
        };
        for mode in [Mode::SleepSets, Mode::Exhaustive] {
            let report = explore_with(mode, lost_update);
            let v = report
                .violation
                .unwrap_or_else(|| panic!("{mode:?} must find the lost-update schedule"));
            assert!(v.message.contains("lost update"), "{mode:?} message: {}", v.message);
        }
    }
}
