//! `AtomicF64`: an `f64` in an `AtomicU64` via bit casting, defined once by
//! macro and instantiated over both the real and the model-checked `u64`
//! atomic — so the CAS loop the kernels run is byte-for-byte the loop the
//! model checker explores.

macro_rules! define_atomic_f64 {
    ($(#[$meta:meta])* $name:ident, $au64:ty) => {
        $(#[$meta])*
        #[derive(Debug, Default)]
        pub struct $name($au64);

        #[allow(clippy::disallowed_methods)] // the facade is the one sanctioned home of raw u64 atomics
        impl $name {
            /// New cell holding `v`.
            #[inline]
            pub fn new(v: f64) -> Self {
                Self(<$au64>::new(v.to_bits()))
            }

            /// Relaxed load.
            #[inline]
            #[must_use]
            pub fn load(&self) -> f64 {
                f64::from_bits(self.0.load($crate::sync::Ordering::Relaxed))
            }

            /// Relaxed store.
            #[inline]
            pub fn store(&self, v: f64) {
                self.0.store(v.to_bits(), $crate::sync::Ordering::Relaxed);
            }

            /// Contended add via a compare-exchange loop (the only contended
            /// operation the "lock-free" baselines need). Returns the value
            /// **before** the add, matching the standard atomic contract.
            #[inline]
            pub fn fetch_add(&self, v: f64) -> f64 {
                let mut cur = self.0.load($crate::sync::Ordering::Relaxed);
                loop {
                    let next = (f64::from_bits(cur) + v).to_bits();
                    match self.0.compare_exchange_weak(
                        cur,
                        next,
                        $crate::sync::Ordering::Relaxed,
                        $crate::sync::Ordering::Relaxed,
                    ) {
                        Ok(prev) => return f64::from_bits(prev),
                        Err(actual) => cur = actual,
                    }
                }
            }

            /// Unwraps the cell.
            #[inline]
            #[must_use]
            pub fn into_inner(self) -> f64 {
                f64::from_bits(self.0.into_inner())
            }
        }

        impl $crate::sync::protocol::AccumCell for $name {
            #[inline]
            fn load_relaxed(&self) -> f64 {
                self.load()
            }

            #[inline]
            fn add_relaxed(&self, v: f64) -> f64 {
                self.fetch_add(v)
            }
        }
    };
}

#[cfg(not(loom))]
define_atomic_f64!(
    /// An `f64` stored in an `AtomicU64` via bit casting.
    ///
    /// All operations are `Relaxed`: the level-synchronous kernels get their
    /// cross-level happens-before edges from rayon's fork-join barriers (see
    /// [`crate::sync`] module docs), and `fetch_add`'s CAS loop needs no
    /// ordering of its own because it only publishes the bit-level sum.
    AtomicF64,
    core::sync::atomic::AtomicU64
);

#[cfg(loom)]
define_atomic_f64!(
    /// An `f64` stored in a model-checked `AtomicU64` (`--cfg loom` build:
    /// every kernel runs on model atomics).
    AtomicF64,
    crate::sync::model::AtomicU64
);

define_atomic_f64!(
    /// The model-checked instantiation of [`AtomicF64`], always available so
    /// plain `cargo test` can explore the CAS loop exhaustively without the
    /// `--cfg loom` build (see `tests/loom_atomic_f64.rs`).
    ModelAtomicF64,
    crate::sync::model::AtomicU64
);

/// A zeroed vector of atomic `f64`s.
pub fn atomic_f64_vec(n: usize) -> Vec<AtomicF64> {
    (0..n).map(|_| AtomicF64::new(0.0)).collect()
}

/// Unwraps a vector of atomic `f64`s.
pub fn into_f64_vec(v: Vec<AtomicF64>) -> Vec<f64> {
    v.into_iter().map(AtomicF64::into_inner).collect()
}
