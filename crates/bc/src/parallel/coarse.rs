//! `async` baseline stand-in: coarse-grained source-parallel BC.
//!
//! The paper's `async` baseline (Prountzos & Pingali, PPoPP'13) runs inside
//! the Galois runtime, extracting parallelism across sources with a global
//! asynchronous scheduler. The portable equivalent of that comparison axis is
//! coarse-grained source parallelism: each rayon task owns whole sources,
//! keeps a private Brandes workspace and a private score vector, and the
//! score vectors are reduced at the end (see DESIGN.md §5 for the
//! substitution note). Like the original — which handles undirected graphs
//! only — this baseline shines when there are many similar-cost sources and
//! no shared state is contended.

use crate::brandes::{accumulate_source, Workspace};
use crate::util::add_assign_scores;
use apgre_graph::{Graph, VertexId};
use rayon::prelude::*;

/// Coarse-grained source-parallel BC.
pub fn bc_coarse(g: &Graph) -> Vec<f64> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    (0..n as VertexId)
        .into_par_iter()
        .chunks(64.max(n / 256))
        .fold(
            || (vec![0.0f64; n], Workspace::new(n)),
            |(mut bc, mut ws), chunk| {
                for s in chunk {
                    accumulate_source(g, s, &mut ws, &mut bc);
                    ws.reset_touched();
                }
                (bc, ws)
            },
        )
        .map(|(bc, _)| bc)
        .reduce(
            || vec![0.0f64; n],
            |mut a, b| {
                add_assign_scores(&mut a, &b);
                a
            },
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::test_support::{assert_matches_serial, zoo};

    #[test]
    fn matches_serial_on_zoo() {
        for (name, g) in zoo() {
            assert_matches_serial(&name, &g, &bc_coarse(&g));
        }
    }

    #[test]
    fn empty() {
        assert!(bc_coarse(&apgre_graph::Graph::undirected_from_edges(0, &[])).is_empty());
    }
}
