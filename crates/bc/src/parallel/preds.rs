//! `preds` baseline: the first fine-grained parallel BC (Bader & Madduri,
//! ICPP'06; the structure of the SSCA v2.2 kernel). Predecessor lists are
//! built during the forward phase under per-vertex locks; the backward phase
//! walks each vertex's predecessor list and pushes δ contributions with
//! atomic adds. This is the slowest of the baselines on most inputs — the
//! per-edge lock traffic is the cost the later baselines remove — and the
//! paper's Table 2 shows the same ordering.

use super::{ParWs, PAR_GRAIN};
use crate::sync::Ordering;
use crate::util::{atomic_f64_vec, into_f64_vec};
use apgre_graph::{Graph, VertexId, UNREACHED};
use parking_lot::Mutex;
use rayon::prelude::*;

/// Fine-grained level-synchronous BC with predecessor lists and locks.
pub fn bc_preds(g: &Graph) -> Vec<f64> {
    let n = g.num_vertices();
    let bc = atomic_f64_vec(n);
    let mut ws = ParWs::new(n);
    let preds: Vec<Mutex<Vec<VertexId>>> = (0..n).map(|_| Mutex::new(Vec::new())).collect();
    let fwd = g.csr();
    for s in 0..n as VertexId {
        ws.dist[s as usize].store(0, Ordering::Relaxed);
        ws.sigma[s as usize].store(1.0);
        ws.levels.order.push(s);
        ws.levels.starts.push(0);
        let mut level_start = 0usize;
        let mut d = 0u32;
        loop {
            let frontier = &ws.levels.order[level_start..];
            if frontier.is_empty() {
                ws.levels.starts.pop();
                break;
            }
            let dist = &ws.dist;
            let sigma = &ws.sigma;
            let preds = &preds;
            let expand = |&u: &VertexId, next: &mut Vec<VertexId>| {
                let su = sigma[u as usize].load();
                for &v in fwd.neighbors(u) {
                    if dist[v as usize]
                        .compare_exchange(UNREACHED, d + 1, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                    {
                        next.push(v);
                    }
                    if dist[v as usize].load(Ordering::Relaxed) == d + 1 {
                        sigma[v as usize].fetch_add(su);
                        preds[v as usize].lock().push(u);
                    }
                }
            };
            let next: Vec<VertexId> = if frontier.len() < PAR_GRAIN {
                let mut next = Vec::new();
                for u in frontier {
                    expand(u, &mut next);
                }
                next
            } else {
                frontier
                    .par_iter()
                    .fold(Vec::new, |mut acc, u| {
                        expand(u, &mut acc);
                        acc
                    })
                    .reduce(Vec::new, |mut a, mut b| {
                        a.append(&mut b);
                        a
                    })
            };
            level_start = ws.levels.order.len();
            ws.levels.starts.push(level_start);
            ws.levels.order.extend_from_slice(&next);
            d += 1;
        }
        ws.levels.starts.push(ws.levels.order.len());
        #[cfg(feature = "invariants")]
        crate::util::check_levels(&ws.levels, &ws.dist, &ws.sigma, s);

        // Backward: for each vertex (deepest level first) push
        // σ_v/σ_w · (1 + δ_w) to every predecessor v.
        let sigma = &ws.sigma;
        let delta = &ws.delta;
        for dd in (1..ws.levels.num_levels()).rev() {
            let level = ws.levels.level(dd);
            let body = |&w: &VertexId| {
                let coeff = (1.0 + delta[w as usize].load()) / sigma[w as usize].load();
                for &v in preds[w as usize].lock().iter() {
                    delta[v as usize].fetch_add(sigma[v as usize].load() * coeff);
                }
                if w != s {
                    bc[w as usize].store(bc[w as usize].load() + delta[w as usize].load());
                }
            };
            if level.len() < PAR_GRAIN {
                level.iter().for_each(body);
            } else {
                level.par_iter().for_each(body);
            }
        }
        // Clear only what this source touched.
        for &v in &ws.levels.order {
            preds[v as usize].lock().clear();
        }
        ws.reset_touched();
    }
    into_f64_vec(bc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::test_support::{assert_matches_serial, zoo};

    #[test]
    fn matches_serial_on_zoo() {
        for (name, g) in zoo() {
            assert_matches_serial(&name, &g, &bc_preds(&g));
        }
    }
}
