//! `hybrid` baseline: BC with a direction-optimizing forward phase
//! (Shun & Blelloch's Ligra BC, PPoPP'13, built on Beamer's hybrid BFS).
//!
//! In dense middle levels of small-world graphs the forward phase switches
//! to bottom-up: every unvisited vertex scans its in-neighbours and pulls σ
//! from the frontier. Unlike a plain BFS, BC needs the *full* σ sum, so the
//! bottom-up step cannot early-exit on the first frontier parent — the
//! saving relative to top-down comes from skipping already-visited vertices.
//! The backward phase is the successor scan shared with `succs`.

use super::{backward_succ, ParWs, PAR_GRAIN};
use crate::sync::{protocol, Ordering};
use crate::util::{atomic_f64_vec, into_f64_vec};
use apgre_graph::{Graph, VertexId, UNREACHED};
use rayon::prelude::*;

/// Direction-switch policy, mirroring `HybridPolicy` of the graph crate.
#[derive(Clone, Copy, Debug)]
pub struct BcHybridPolicy {
    /// Switch to bottom-up when `frontier_out_edges · alpha > unexplored`.
    pub alpha: usize,
    /// Switch back to top-down when `frontier · beta < n`.
    pub beta: usize,
}

impl Default for BcHybridPolicy {
    fn default() -> Self {
        BcHybridPolicy { alpha: 14, beta: 24 }
    }
}

/// BC with direction-optimizing forward traversal (default policy).
pub fn bc_hybrid(g: &Graph) -> Vec<f64> {
    bc_hybrid_with(g, BcHybridPolicy::default())
}

/// BC with direction-optimizing forward traversal and an explicit policy.
pub fn bc_hybrid_with(g: &Graph, policy: BcHybridPolicy) -> Vec<f64> {
    let n = g.num_vertices();
    let bc = atomic_f64_vec(n);
    let mut ws = ParWs::new(n);
    let fwd = g.csr();
    let rev = g.rev_csr();
    let total_edges = fwd.num_edges();
    for s in 0..n as VertexId {
        ws.dist[s as usize].store(0, Ordering::Relaxed);
        ws.sigma[s as usize].store(1.0);
        ws.levels.order.push(s);
        ws.levels.starts.push(0);
        let mut level_start = 0usize;
        let mut d = 0u32;
        let mut bottom_up = false;
        let mut visited_edges = fwd.degree(s);
        loop {
            let frontier = &ws.levels.order[level_start..];
            if frontier.is_empty() {
                ws.levels.starts.pop();
                break;
            }
            let dist = &ws.dist;
            let sigma = &ws.sigma;
            if !bottom_up {
                let frontier_edges: usize = frontier.iter().map(|&u| fwd.degree(u)).sum();
                // Saturating: `usize::MAX` is a legal "switch immediately"
                // policy and must not overflow the comparison.
                if policy.alpha > 0
                    && frontier_edges.saturating_mul(policy.alpha)
                        > total_edges.saturating_sub(visited_edges) + 1
                {
                    bottom_up = true;
                }
            } else if policy.beta > 0 && frontier.len().saturating_mul(policy.beta) < n {
                bottom_up = false;
            }
            let next: Vec<VertexId> = if bottom_up {
                // Bottom-up: every unvisited vertex pulls σ from in-neighbours
                // on the frontier. Single writer per vertex — no atomic adds.
                (0..n as VertexId)
                    .into_par_iter()
                    .filter_map(|v| {
                        if dist[v as usize].load(Ordering::Relaxed) != UNREACHED {
                            return None;
                        }
                        let mut acc = 0.0;
                        for &u in rev.neighbors(v) {
                            if dist[u as usize].load(Ordering::Relaxed) == d {
                                acc += sigma[u as usize].load();
                            }
                        }
                        if acc > 0.0 {
                            dist[v as usize].store(d + 1, Ordering::Relaxed);
                            sigma[v as usize].store(acc);
                            Some(v)
                        } else {
                            None
                        }
                    })
                    .collect()
            } else {
                // Top-down push: the shared CAS-discovery + σ-push protocol
                // (model-checked in `crate::sync::protocol`).
                let expand = |&u: &VertexId, next: &mut Vec<VertexId>| {
                    let su = sigma[u as usize].load();
                    for &v in fwd.neighbors(u) {
                        if protocol::discover_and_push(
                            dist,
                            sigma,
                            v as usize,
                            d + 1,
                            UNREACHED,
                            su,
                        ) {
                            next.push(v);
                        }
                    }
                };
                if frontier.len() < PAR_GRAIN {
                    let mut next = Vec::new();
                    for u in frontier {
                        expand(u, &mut next);
                    }
                    next
                } else {
                    frontier
                        .par_iter()
                        .fold(Vec::new, |mut acc, u| {
                            expand(u, &mut acc);
                            acc
                        })
                        .reduce(Vec::new, |mut a, mut b| {
                            a.append(&mut b);
                            a
                        })
                }
            };
            visited_edges += next.iter().map(|&u| fwd.degree(u)).sum::<usize>();
            level_start = ws.levels.order.len();
            ws.levels.starts.push(level_start);
            ws.levels.order.extend_from_slice(&next);
            d += 1;
        }
        ws.levels.starts.push(ws.levels.order.len());
        #[cfg(feature = "invariants")]
        crate::util::check_levels(&ws.levels, &ws.dist, &ws.sigma, s);
        backward_succ(fwd, s, &ws, &bc);
        ws.reset_touched();
    }
    into_f64_vec(bc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::test_support::{assert_matches_serial, zoo};

    #[test]
    fn matches_serial_on_zoo() {
        for (name, g) in zoo() {
            assert_matches_serial(&name, &g, &bc_hybrid(&g));
        }
    }

    #[test]
    fn forced_bottom_up_matches() {
        // alpha huge => switch to bottom-up after the first level and stay.
        let policy = BcHybridPolicy { alpha: 1_000_000, beta: 0 };
        for (name, g) in zoo() {
            assert_matches_serial(&name, &g, &bc_hybrid_with(&g, policy));
        }
    }
}
