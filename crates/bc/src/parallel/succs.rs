//! `succs` baseline: level-synchronous parallelization using successors
//! instead of predecessor lists (Madduri, Ediger, Jiang, Bader,
//! Chavarría-Miranda, IPDPS'09). The backward phase scans each vertex's
//! out-neighbours one level deeper, so every δ cell has exactly one writer
//! and the second phase needs no locks — the same structure as the paper's
//! Algorithm 2.

use super::{backward_succ, forward_pull, ParWs};
use crate::util::{atomic_f64_vec, into_f64_vec};
use apgre_graph::{Graph, VertexId};

/// Fine-grained level-synchronous BC, successor method.
pub fn bc_succs(g: &Graph) -> Vec<f64> {
    let n = g.num_vertices();
    let bc = atomic_f64_vec(n);
    let mut ws = ParWs::new(n);
    let fwd = g.csr();
    let rev = g.rev_csr();
    for s in 0..n as VertexId {
        forward_pull(fwd, rev, s, &mut ws);
        backward_succ(fwd, s, &ws, &bc);
        ws.reset_touched();
    }
    into_f64_vec(bc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::test_support::{assert_matches_serial, zoo};

    #[test]
    fn matches_serial_on_zoo() {
        for (name, g) in zoo() {
            assert_matches_serial(&name, &g, &bc_succs(&g));
        }
    }

    #[test]
    fn empty_graph() {
        let g = apgre_graph::Graph::undirected_from_edges(0, &[]);
        assert!(bc_succs(&g).is_empty());
    }
}
