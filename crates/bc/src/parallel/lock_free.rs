//! `lockSyncFree` baseline: fine-grained parallel BC with no lock
//! synchronization (Tan, Tu, Sun, ICPP'09). Both phases push contributions
//! with atomic compare-exchange adds — σ is accumulated during frontier
//! expansion and δ is pushed from each vertex to its predecessors — so the
//! kernel trades the `succs` pull passes for contended atomics.

use super::{ParWs, PAR_GRAIN};
use crate::sync::{protocol, Ordering};
use crate::util::{atomic_f64_vec, into_f64_vec};
use apgre_graph::{Graph, VertexId, UNREACHED};
use rayon::prelude::*;

/// Fine-grained level-synchronous BC, lock-free push accumulation.
pub fn bc_lock_free(g: &Graph) -> Vec<f64> {
    let n = g.num_vertices();
    let bc = atomic_f64_vec(n);
    let mut ws = ParWs::new(n);
    let fwd = g.csr();
    let rev = g.rev_csr();
    for s in 0..n as VertexId {
        // Forward: push-style frontier expansion; σ via atomic fetch-add.
        ws.dist[s as usize].store(0, Ordering::Relaxed);
        ws.sigma[s as usize].store(1.0);
        ws.levels.order.push(s);
        ws.levels.starts.push(0);
        let mut level_start = 0usize;
        let mut d = 0u32;
        loop {
            let frontier = &ws.levels.order[level_start..];
            if frontier.is_empty() {
                ws.levels.starts.pop();
                break;
            }
            let dist = &ws.dist;
            let sigma = &ws.sigma;
            // The CAS-claim → σ-push window here is the protocol the loom
            // tests explore exhaustively (see `crate::sync::protocol`).
            let expand = |&u: &VertexId, next: &mut Vec<VertexId>| {
                let su = sigma[u as usize].load();
                for &v in fwd.neighbors(u) {
                    if protocol::discover_and_push(dist, sigma, v as usize, d + 1, UNREACHED, su) {
                        next.push(v);
                    }
                }
            };
            let next: Vec<VertexId> = if frontier.len() < PAR_GRAIN {
                let mut next = Vec::new();
                for u in frontier {
                    expand(u, &mut next);
                }
                next
            } else {
                frontier
                    .par_iter()
                    .fold(Vec::new, |mut acc, u| {
                        expand(u, &mut acc);
                        acc
                    })
                    .reduce(Vec::new, |mut a, mut b| {
                        a.append(&mut b);
                        a
                    })
            };
            level_start = ws.levels.order.len();
            ws.levels.starts.push(level_start);
            ws.levels.order.extend_from_slice(&next);
            d += 1;
        }
        ws.levels.starts.push(ws.levels.order.len());
        #[cfg(feature = "invariants")]
        crate::util::check_levels(&ws.levels, &ws.dist, &ws.sigma, s);

        // Backward: push δ contributions to in-neighbours one level up.
        let dist = &ws.dist;
        let sigma = &ws.sigma;
        let delta = &ws.delta;
        for dd in (1..ws.levels.num_levels()).rev() {
            let level = ws.levels.level(dd);
            let dw = dd as u32;
            let body = |&w: &VertexId| {
                let coeff = (1.0 + delta[w as usize].load()) / sigma[w as usize].load();
                for &v in rev.neighbors(w) {
                    protocol::push_dependency(dist, sigma, delta, v as usize, dw - 1, coeff);
                }
            };
            if level.len() < PAR_GRAIN {
                level.iter().for_each(body);
            } else {
                level.par_iter().for_each(body);
            }
            // δ of this level is now final; fold it into the scores. Audit
            // note: this Relaxed load/store pair is sound without a
            // Release/Acquire edge because (a) the δ values it reads were
            // published by the `for_each` join right above (rayon's join is
            // the release/acquire edge — see `crate::sync` §2), and (b) each
            // `bc[w]` has a single writer here: `w` ranges over one level,
            // levels are disjoint (checked by `--features invariants`), and
            // the source loop is sequential.
            let bc = &bc;
            let score = |&w: &VertexId| {
                if w != s {
                    bc[w as usize].store(bc[w as usize].load() + delta[w as usize].load());
                }
            };
            if level.len() < PAR_GRAIN {
                level.iter().for_each(score);
            } else {
                level.par_iter().for_each(score);
            }
        }
        ws.reset_touched();
    }
    into_f64_vec(bc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::test_support::{assert_matches_serial, zoo};

    #[test]
    fn matches_serial_on_zoo() {
        for (name, g) in zoo() {
            assert_matches_serial(&name, &g, &bc_lock_free(&g));
        }
    }
}
