//! The fine-grained parallel BC baselines of the paper's evaluation (§5.1).
//!
//! All four level-synchronous baselines share the same outer structure —
//! sources are processed one at a time, parallelism lives *inside* the
//! per-source BFS and the backward dependency sweep — and differ in how they
//! synchronize the accumulation, which is exactly the axis the original
//! papers explored:
//!
//! * [`bc_preds`] — predecessor lists guarded by per-vertex locks plus atomic
//!   σ/δ accumulation (Bader & Madduri, ICPP'06),
//! * [`bc_succs`] — successor scans; every δ cell has a single writer, so no
//!   locks or CAS at all (Madduri et al., IPDPS'09),
//! * [`bc_lock_free`] — no predecessor lists, push-style atomic CAS
//!   accumulation in both phases (Tan et al., ICPP'09),
//! * [`bc_hybrid`] — direction-optimizing (top-down/bottom-up) forward phase
//!   (Ligra-style; Shun & Blelloch, PPoPP'13),
//! * [`bc_coarse`] — coarse-grained source-parallel execution, our stand-in
//!   for the Galois-based `async` baseline (see DESIGN.md §5).
//!
//! Small BFS levels fall back to sequential loops (`PAR_GRAIN`): on the road
//! graphs the frontiers are tiny and fork-join overhead would otherwise
//! dominate, which is also what the reference implementations do.

mod coarse;
mod hybrid;
mod lock_free;
mod preds;
mod succs;

pub use coarse::bc_coarse;
pub use hybrid::{bc_hybrid, bc_hybrid_with, BcHybridPolicy};
pub use lock_free::bc_lock_free;
pub use preds::bc_preds;
pub use succs::bc_succs;

use crate::sync::{AtomicU32, Ordering};
use crate::util::{atomic_f64_vec, AtomicF64, Levels};
use apgre_graph::{Csr, VertexId, UNREACHED};
use rayon::prelude::*;

/// Below this many vertices a level is processed sequentially.
pub(crate) const PAR_GRAIN: usize = 256;

/// Shared per-source state for the level-synchronous kernels.
pub(crate) struct ParWs {
    pub dist: Vec<AtomicU32>,
    pub sigma: Vec<AtomicF64>,
    pub delta: Vec<AtomicF64>,
    pub levels: Levels,
}

impl ParWs {
    pub fn new(n: usize) -> Self {
        ParWs {
            dist: (0..n).map(|_| AtomicU32::new(UNREACHED)).collect(),
            sigma: atomic_f64_vec(n),
            delta: atomic_f64_vec(n),
            levels: Levels::default(),
        }
    }

    /// Resets only the vertices reached by the previous source.
    pub fn reset_touched(&mut self) {
        for &v in &self.levels.order {
            self.dist[v as usize].store(UNREACHED, Ordering::Relaxed);
            self.sigma[v as usize].store(0.0);
            self.delta[v as usize].store(0.0);
        }
        self.levels.clear();
    }
}

/// Level-synchronous forward phase with **pull-based σ**: the next frontier
/// is discovered by compare-exchange on the distance array, then each newly
/// discovered vertex pulls σ from its in-neighbours one level up — single
/// writer per cell, no contended adds. Fills `ws.levels`.
pub(crate) fn forward_pull(fwd: &Csr, rev: &Csr, s: VertexId, ws: &mut ParWs) {
    ws.dist[s as usize].store(0, Ordering::Relaxed);
    ws.sigma[s as usize].store(1.0);
    ws.levels.order.push(s);
    ws.levels.starts.push(0);
    let mut level_start = 0usize;
    let mut d = 0u32;
    loop {
        let frontier = &ws.levels.order[level_start..];
        if frontier.is_empty() {
            break;
        }
        let dist = &ws.dist;
        let sigma = &ws.sigma;
        let next: Vec<VertexId> = if frontier.len() < PAR_GRAIN {
            let mut next = Vec::new();
            for &u in frontier {
                for &v in fwd.neighbors(u) {
                    if dist[v as usize]
                        .compare_exchange(UNREACHED, d + 1, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                    {
                        next.push(v);
                    }
                }
            }
            next
        } else {
            frontier
                .par_iter()
                .flat_map_iter(|&u| {
                    fwd.neighbors(u).iter().copied().filter(|&v| {
                        dist[v as usize]
                            .compare_exchange(
                                UNREACHED,
                                d + 1,
                                Ordering::Relaxed,
                                Ordering::Relaxed,
                            )
                            .is_ok()
                    })
                })
                .collect()
        };
        let pull = |&w: &VertexId| {
            let mut acc = 0.0;
            for &u in rev.neighbors(w) {
                if dist[u as usize].load(Ordering::Relaxed) == d {
                    acc += sigma[u as usize].load();
                }
            }
            sigma[w as usize].store(acc);
        };
        if next.len() < PAR_GRAIN {
            next.iter().for_each(pull);
        } else {
            next.par_iter().for_each(pull);
        }
        level_start = ws.levels.order.len();
        ws.levels.starts.push(level_start);
        ws.levels.order.extend_from_slice(&next);
        d += 1;
    }
    // `starts` currently ends at the last non-empty level's start; close it.
    ws.levels.starts.push(ws.levels.order.len());
    dedup_trailing_start(&mut ws.levels);
    #[cfg(feature = "invariants")]
    crate::util::check_levels(&ws.levels, &ws.dist, &ws.sigma, s);
}

fn dedup_trailing_start(levels: &mut Levels) {
    while levels.starts.len() >= 2
        && levels.starts[levels.starts.len() - 1] == levels.starts[levels.starts.len() - 2]
    {
        levels.starts.pop();
    }
}

/// Successor-scan backward sweep (single-writer δ): shared by `succs` and
/// `hybrid`. Adds dependencies of source `s` into `bc`.
pub(crate) fn backward_succ(fwd: &Csr, s: VertexId, ws: &ParWs, bc: &[AtomicF64]) {
    let dist = &ws.dist;
    let sigma = &ws.sigma;
    let delta = &ws.delta;
    for d in (0..ws.levels.num_levels()).rev() {
        let level = ws.levels.level(d);
        let dv = d as u32;
        let body = |&v: &VertexId| {
            let mut acc = 0.0;
            let sv = sigma[v as usize].load();
            for &w in fwd.neighbors(v) {
                if dist[w as usize].load(Ordering::Relaxed) == dv + 1 {
                    acc += sv / sigma[w as usize].load() * (1.0 + delta[w as usize].load());
                }
            }
            delta[v as usize].store(acc);
            if v != s {
                bc[v as usize].store(bc[v as usize].load() + acc);
            }
        };
        if level.len() < PAR_GRAIN {
            level.iter().for_each(body);
        } else {
            level.par_iter().for_each(body);
        }
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use apgre_graph::{generators, Graph};

    /// The graph zoo every parallel baseline is checked against serial
    /// Brandes on.
    pub fn zoo() -> Vec<(String, Graph)> {
        let mut v: Vec<(String, Graph)> = vec![
            ("path".into(), generators::path(30)),
            ("cycle".into(), generators::cycle(24)),
            ("star".into(), generators::star(40)),
            ("grid".into(), generators::grid2d(9, 11)),
            ("tree".into(), generators::random_tree(120, 7)),
            ("lollipop".into(), generators::lollipop(9, 20)),
            ("er-und".into(), generators::erdos_renyi_undirected(90, 0.06, 3)),
            ("er-dir".into(), generators::erdos_renyi_directed(80, 0.05, 5)),
            ("gnm-dir".into(), generators::gnm_directed(120, 360, 11)),
            ("ba".into(), generators::barabasi_albert(150, 2, 13)),
            ("rmat-dir".into(), generators::rmat_directed(7, 6, 17)),
        ];
        v.push((
            "whiskered".into(),
            generators::whiskered_community(&generators::WhiskeredCommunityParams {
                core_vertices: 70,
                core_attach: 2,
                community_count: 5,
                community_size: 10,
                community_density: 1.7,
                whiskers: 35,
                seed: 19,
            }),
        ));
        v.push((
            "disconnected".into(),
            generators::disjoint_union(&[
                &generators::cycle(12),
                &generators::random_tree(20, 23),
                &generators::star(6),
            ]),
        ));
        v.push((
            "dir-whiskers".into(),
            generators::attach_directed_whiskers(
                &generators::rmat_directed(6, 5, 29),
                40,
                0.25,
                31,
            ),
        ));
        v
    }

    pub fn assert_matches_serial(name: &str, g: &Graph, got: &[f64]) {
        let want = crate::brandes::bc_serial(g);
        assert_eq!(got.len(), want.len(), "{name}: length");
        for i in 0..want.len() {
            let (x, y) = (got[i], want[i]);
            assert!(
                (x - y).abs() <= 1e-7 * (1.0 + x.abs().max(y.abs())),
                "{name}: vertex {i}: got {x}, want {y}"
            );
        }
    }
}
