//! APGRE — articulation-points-guided redundancy elimination for BC
//! (the paper's Figure 5 driver plus the two-level parallelization of §4).
//!
//! Three steps:
//!
//! 1. decompose the graph through articulation points
//!    ([`apgre_decomp::decompose`] — Algorithm 1 + α/β/γ counting),
//! 2. for every sub-graph, run the four-dependency kernel
//!    (the [`kernel`] module — Algorithm 2),
//! 3. merge per-sub-graph scores: an articulation point's BC is the sum of
//!    its local scores (Equation 8).
//!
//! Parallelism is two-level: **coarse-grained asynchronous across
//! sub-graphs** (a rayon parallel iterator, largest sub-graph first so the
//! dominant task starts immediately) and, within a sub-graph, one of the
//! [`kernel`] module's implementations, selected per sub-graph by
//! [`KernelPolicy`] from its root count and size (DESIGN.md §3.7). All
//! levels share one rayon pool, so inner parallelism of the top sub-graph
//! soaks up workers once the small sub-graphs drain — the behaviour §5.4
//! describes.
//!
//! The driver threads a [buffer pool](BufferPool) through the sub-graph
//! loop: per-sub-graph score vectors and both kernel workspaces are checked
//! out, grown in place if needed, and returned, so steady-state processing
//! of the long tail of small sub-graphs performs no `O(n)` allocations.
//! Merging goes through a reorder buffer that scatters finished sub-graphs
//! in **ascending index order** regardless of completion order — the
//! floating-point fold order is fixed, keeping whole-run results bitwise
//! deterministic (and the golden checksums stable).

pub mod kernel;

use apgre_decomp::{decompose, Decomposition, PartitionOptions, SubGraph};
use apgre_graph::Graph;
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Default scheduling grain: minimum roots per root-parallel chunk and
/// minimum frontier width before the level-synchronous kernel forks a level.
pub const DEFAULT_GRAIN: usize = 256;

/// Per-sub-graph kernel scheduling policy (DESIGN.md §3.7).
///
/// The three forced variants pin every sub-graph to one kernel; [`Auto`]
/// picks per sub-graph from the decomposition statistics. Replaces the old
/// single `inner_parallel_min_vertices` threshold, which could only express
/// "level-sync above N vertices" and always paid atomic-traffic overhead on
/// sub-graphs whose abundant roots made coarse parallelism free.
///
/// [`Auto`]: KernelPolicy::Auto
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelPolicy {
    /// Always the sequential kernel ([`kernel::bc_in_subgraph_seq_with`]).
    Seq,
    /// Always the root-parallel kernel
    /// ([`kernel::bc_in_subgraph_root_par`]).
    RootParallel,
    /// Always the level-synchronous kernel
    /// ([`kernel::bc_in_subgraph_level_sync_with`]).
    LevelSync,
    /// Choose per sub-graph — see [`KernelPolicy::choose`].
    Auto,
}

/// The kernel actually dispatched for one sub-graph (the resolution of a
/// [`KernelPolicy`], reported in [`ApgreReport::kernel_counts`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelChoice {
    /// Sequential sweep.
    Seq,
    /// Coarse-grained root-parallel sweep.
    RootParallel,
    /// Fine-grained level-synchronous sweep.
    LevelSync,
}

impl KernelPolicy {
    /// Resolves the policy for one sub-graph.
    ///
    /// The `Auto` heuristic, in order:
    ///
    /// 1. **Too small to parallelize at all** — one worker available, fewer
    ///    vertices than one grain, or total sweep work (`roots · edges`)
    ///    under ~8 grain² edge visits: the fork overhead cannot amortize, run
    ///    [`Seq`](KernelChoice::Seq).
    /// 2. **Root-rich** — at least two roots per worker: chunked roots feed
    ///    every worker with whole sequential sweeps, so take the
    ///    atomic-free coarse kernel
    ///    ([`RootParallel`](KernelChoice::RootParallel)).
    /// 3. **Root-starved but big** — few roots over a big vertex set (the
    ///    paper's top-sub-graph regime): only intra-sweep parallelism can
    ///    use the machine, take [`LevelSync`](KernelChoice::LevelSync) when
    ///    there are at least `16 · grain` vertices (with the default grain
    ///    that is 4096, the old `inner_parallel_min_vertices` default).
    /// 4. Otherwise sequential.
    pub fn choose(
        self,
        roots: usize,
        vertices: usize,
        edges: usize,
        threads: usize,
        grain: usize,
    ) -> KernelChoice {
        let grain = grain.max(1);
        match self {
            KernelPolicy::Seq => KernelChoice::Seq,
            KernelPolicy::RootParallel => KernelChoice::RootParallel,
            KernelPolicy::LevelSync => KernelChoice::LevelSync,
            KernelPolicy::Auto => {
                let work = roots.saturating_mul(edges.max(1));
                let min_work = grain.saturating_mul(grain).saturating_mul(8);
                if threads <= 1 || vertices < grain || work < min_work {
                    KernelChoice::Seq
                } else if roots >= threads.saturating_mul(2) {
                    KernelChoice::RootParallel
                } else if vertices >= grain.saturating_mul(16) {
                    KernelChoice::LevelSync
                } else {
                    KernelChoice::Seq
                }
            }
        }
    }
}

impl std::str::FromStr for KernelPolicy {
    type Err = String;

    /// Parses the CLI spellings `auto`, `seq`, `rootpar`, `levelsync`.
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "auto" => Ok(KernelPolicy::Auto),
            "seq" => Ok(KernelPolicy::Seq),
            "rootpar" | "root-parallel" => Ok(KernelPolicy::RootParallel),
            "levelsync" | "level-sync" => Ok(KernelPolicy::LevelSync),
            other => {
                Err(format!("unknown kernel policy `{other}` (want auto|seq|rootpar|levelsync)"))
            }
        }
    }
}

/// Options for [`bc_apgre_with`].
#[derive(Clone, Debug)]
pub struct ApgreOptions {
    /// Decomposition options (merge threshold, α/β method).
    pub partition: PartitionOptions,
    /// Process sub-graphs in parallel (the coarse level).
    pub outer_parallel: bool,
    /// Per-sub-graph kernel selection.
    pub kernel: KernelPolicy,
    /// Scheduling grain: minimum roots per root-parallel chunk, minimum
    /// frontier/level width before the level-synchronous kernel goes
    /// parallel, and the unit of the `Auto` size thresholds.
    pub grain: usize,
}

impl Default for ApgreOptions {
    fn default() -> Self {
        ApgreOptions {
            partition: PartitionOptions::default(),
            outer_parallel: true,
            kernel: KernelPolicy::Auto,
            grain: DEFAULT_GRAIN,
        }
    }
}

/// Phase breakdown and decomposition statistics of one APGRE run — the data
/// behind the paper's Figure 8 and Table 4.
#[derive(Clone, Debug)]
pub struct ApgreReport {
    /// Algorithm 1 (BCC finding, merging, sub-graph construction).
    pub partition_time: Duration,
    /// α/β counting.
    pub alpha_beta_time: Duration,
    /// All sub-graph BC kernels (wall clock of the whole phase).
    pub bc_time: Duration,
    /// BC kernel time of the largest sub-graph alone.
    pub top_subgraph_bc_time: Duration,
    /// Number of sub-graphs.
    pub num_subgraphs: usize,
    /// Number of articulation points in the graph.
    pub num_articulation_points: usize,
    /// Vertices / edges of the top sub-graph.
    pub top_subgraph_vertices: usize,
    /// Edges of the top sub-graph.
    pub top_subgraph_edges: usize,
    /// Total roots swept (Σ |R_sgi|) — Brandes would sweep |V|.
    pub total_roots: usize,
    /// Total whiskers folded by γ.
    pub total_whiskers: usize,
    /// Edges examined across all kernels (forward + backward scans).
    pub edges_traversed: u64,
    /// The policy the run was configured with.
    pub kernel_policy: KernelPolicy,
    /// The scheduling grain the run was configured with.
    pub grain: usize,
    /// Kernel dispatched for the largest sub-graph (`None` when the graph is
    /// empty).
    pub top_subgraph_kernel: Option<KernelChoice>,
    /// How many sub-graphs ran each kernel: `(seq, root_parallel,
    /// level_sync)`.
    pub kernel_counts: (usize, usize, usize),
}

impl KernelChoice {
    /// Stable lower-case label for logs and metrics exporters
    /// (`seq` / `root_parallel` / `level_sync`).
    pub fn name(self) -> &'static str {
        match self {
            KernelChoice::Seq => "seq",
            KernelChoice::RootParallel => "root_parallel",
            KernelChoice::LevelSync => "level_sync",
        }
    }
}

impl ApgreReport {
    /// The per-kernel dispatch counts of [`ApgreReport::kernel_counts`]
    /// paired with their [`KernelChoice::name`] labels, in the fixed
    /// `(seq, root_parallel, level_sync)` order — the shape metrics
    /// exporters want.
    pub fn kernel_counts_named(&self) -> [(&'static str, usize); 3] {
        let (seq, rootpar, levelsync) = self.kernel_counts;
        [
            (KernelChoice::Seq.name(), seq),
            (KernelChoice::RootParallel.name(), rootpar),
            (KernelChoice::LevelSync.name(), levelsync),
        ]
    }

    /// Partition + α/β counting: everything that happens before the first
    /// kernel runs (the paper's "extra computations").
    pub fn decomposition_time(&self) -> Duration {
        self.partition_time + self.alpha_beta_time
    }

    /// Decomposition plus all kernel time.
    pub fn total_time(&self) -> Duration {
        self.decomposition_time() + self.bc_time
    }
}

/// Runs the sequential sub-graph kernel for the memoization layer
/// (`crate::memo`); returns nothing extra — the memo cache stores only the
/// local score vector.
pub(crate) fn kernel_for_memo(sg: &SubGraph, bc_local: &mut [f64]) {
    kernel::bc_in_subgraph_seq(sg, bc_local);
}

/// Reusable per-sub-graph buffers, shared by all workers of the outer
/// parallel loop. Workers check a buffer out under a short lock, run a whole
/// kernel on it lock-free, and return it; `ensure`/`resize` grows a recycled
/// buffer in place when a larger sub-graph draws it. Score vectors come back
/// through [`Merger::submit`] once their sub-graph has been scattered.
#[derive(Default)]
struct BufferPool {
    seq: Mutex<Vec<kernel::SgWorkspace>>,
    par: Mutex<Vec<kernel::SgParWs>>,
    locals: Mutex<Vec<Vec<f64>>>,
}

impl BufferPool {
    // Pool locks recover from poisoning: the pooled buffers are overwritten
    // before reuse, so a worker that panicked mid-kernel cannot corrupt a
    // later checkout — and a second panic here would abort the process.
    fn take_local(&self, n: usize) -> Vec<f64> {
        let mut v = self.locals.lock().unwrap_or_else(|p| p.into_inner()).pop().unwrap_or_default();
        v.clear();
        v.resize(n, 0.0);
        v
    }

    fn put_local(&self, v: Vec<f64>) {
        self.locals.lock().unwrap_or_else(|p| p.into_inner()).push(v);
    }

    fn take_seq(&self, n: usize) -> kernel::SgWorkspace {
        let mut ws = self
            .seq
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .pop()
            .unwrap_or_else(|| kernel::SgWorkspace::new(n));
        ws.ensure(n);
        ws
    }

    fn put_seq(&self, ws: kernel::SgWorkspace) {
        self.seq.lock().unwrap_or_else(|p| p.into_inner()).push(ws);
    }

    fn take_par(&self, n: usize) -> kernel::SgParWs {
        let mut ws = self
            .par
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .pop()
            .unwrap_or_else(|| kernel::SgParWs::new(n));
        ws.ensure(n);
        ws
    }

    fn put_par(&self, ws: kernel::SgParWs) {
        self.par.lock().unwrap_or_else(|p| p.into_inner()).push(ws);
    }
}

/// One finished sub-graph, waiting in the reorder buffer.
struct SubResult {
    local: Vec<f64>,
    edges: u64,
    time: Duration,
    choice: KernelChoice,
}

/// Reorder-buffer merger: sub-graphs finish in completion order (largest
/// first under the outer parallel loop), but Equation 8's scatter into the
/// global score vector must happen in **ascending sub-graph index order** so
/// the floating-point sums fold identically run to run. Results arriving
/// early park in `pending`.
///
/// The `O(n)` scatter itself runs **outside** the state lock: a submitter
/// that finds the ready prefix pops the whole batch under the lock, releases
/// it, scatters, then re-acquires only to advance `next_index` and fold the
/// batch statistics — so workers finishing small sub-graphs park their
/// result and move on instead of serializing behind the top sub-graph's
/// merge. Popping `next_index` is the exclusivity token: the index only
/// advances after its batch has landed, so at most one worker scatters at a
/// time and the index order is preserved.
struct Merger<'a> {
    decomp: &'a Decomposition,
    /// Global score vector. The `next_index` token protocol already makes
    /// the scatter exclusive; the mutex (uncontended by construction) keeps
    /// that exclusivity checkable without `unsafe`.
    bc: Mutex<Vec<f64>>,
    state: Mutex<MergeState>,
}

struct MergeState {
    next_index: usize,
    pending: BTreeMap<usize, SubResult>,
    edges_traversed: u64,
    top_time: Duration,
    top_choice: Option<KernelChoice>,
    counts: (usize, usize, usize),
}

impl<'a> Merger<'a> {
    fn new(decomp: &'a Decomposition, n: usize) -> Self {
        Merger {
            decomp,
            bc: Mutex::new(vec![0.0f64; n]),
            state: Mutex::new(MergeState {
                next_index: 0,
                pending: BTreeMap::new(),
                edges_traversed: 0,
                top_time: Duration::ZERO,
                top_choice: None,
                counts: (0, 0, 0),
            }),
        }
    }

    fn submit(&self, index: usize, result: SubResult, pool: &BufferPool) {
        let mut st = self.state.lock().unwrap();
        st.pending.insert(index, result);
        loop {
            // Pop the ready prefix. Empty means either `next_index` hasn't
            // arrived yet or another worker popped it and is mid-scatter;
            // either way that worker re-checks `pending` after advancing,
            // so this one can leave.
            let start = st.next_index;
            let mut batch: Vec<SubResult> = Vec::new();
            while let Some(res) = st.pending.remove(&(start + batch.len())) {
                batch.push(res);
            }
            if batch.is_empty() {
                return;
            }
            drop(st);

            let mut edges = 0u64;
            let mut counts = (0usize, 0usize, 0usize);
            let mut top: Option<(Duration, KernelChoice)> = None;
            {
                let mut bc = self.bc.lock().unwrap();
                for (offset, res) in batch.iter().enumerate() {
                    let i = start + offset;
                    let sg = &self.decomp.subgraphs[i];
                    for (l, &score) in res.local.iter().enumerate() {
                        bc[sg.globals[l] as usize] += score;
                    }
                    edges += res.edges;
                    match res.choice {
                        KernelChoice::Seq => counts.0 += 1,
                        KernelChoice::RootParallel => counts.1 += 1,
                        KernelChoice::LevelSync => counts.2 += 1,
                    }
                    if i == self.decomp.top_subgraph {
                        top = Some((res.time, res.choice));
                    }
                }
            }
            let drained = batch.len();
            for res in batch {
                pool.put_local(res.local);
            }

            st = self.state.lock().unwrap();
            st.next_index = start + drained;
            st.edges_traversed += edges;
            st.counts.0 += counts.0;
            st.counts.1 += counts.1;
            st.counts.2 += counts.2;
            if let Some((time, choice)) = top {
                st.top_time = time;
                st.top_choice = Some(choice);
            }
            // More results may have parked while this batch scattered; loop
            // to claim them, since their submitters saw a stale prefix.
        }
    }

    fn finish(self) -> (Vec<f64>, MergeState) {
        let st = self.state.into_inner().unwrap();
        debug_assert!(st.pending.is_empty(), "merger drained before every submit");
        (self.bc.into_inner().unwrap(), st)
    }
}

/// APGRE with default options.
pub fn bc_apgre(g: &Graph) -> Vec<f64> {
    bc_apgre_with(g, &ApgreOptions::default()).0
}

/// APGRE with explicit options; returns scores plus the phase report.
pub fn bc_apgre_with(g: &Graph, opts: &ApgreOptions) -> (Vec<f64>, ApgreReport) {
    let decomp = decompose(g, &opts.partition);
    bc_from_decomposition(g, &decomp, opts)
}

/// Runs only steps 2–3 on a pre-built decomposition. Exposed so the harness
/// can sweep kernel options without re-decomposing, and so incremental
/// callers can reuse a decomposition across BC computations.
pub fn bc_from_decomposition(
    g: &Graph,
    decomp: &Decomposition,
    opts: &ApgreOptions,
) -> (Vec<f64>, ApgreReport) {
    let bc_start = Instant::now();
    let threads = rayon::current_num_threads().max(1);
    let grain = opts.grain.max(1);
    // Largest-first order: the top sub-graph dominates (Table 4), so it must
    // start immediately.
    let mut order: Vec<usize> = (0..decomp.subgraphs.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(decomp.subgraphs[i].num_vertices()));

    let pool = BufferPool::default();
    let merger = Merger::new(decomp, g.num_vertices());
    let run_one = |&i: &usize| {
        let sg = &decomp.subgraphs[i];
        let n = sg.num_vertices();
        let t = Instant::now();
        let mut local = pool.take_local(n);
        let choice = opts.kernel.choose(sg.roots.len(), n, sg.num_edges(), threads, grain);
        let edges = match choice {
            KernelChoice::Seq => {
                let mut ws = pool.take_seq(n);
                let e = kernel::bc_in_subgraph_seq_with(sg, &mut local, &mut ws);
                pool.put_seq(ws);
                e
            }
            KernelChoice::RootParallel => kernel::bc_in_subgraph_root_par(sg, &mut local, grain),
            KernelChoice::LevelSync => {
                let mut ws = pool.take_par(n);
                let e = kernel::bc_in_subgraph_level_sync_with(sg, &mut local, grain, &mut ws);
                pool.put_par(ws);
                e
            }
        };
        merger.submit(i, SubResult { local, edges, time: t.elapsed(), choice }, &pool);
    };
    if opts.outer_parallel {
        order.par_iter().for_each(run_one);
    } else {
        order.iter().for_each(run_one);
    }
    let (bc, merged) = merger.finish();
    let bc_time = bc_start.elapsed();

    let top = decomp.subgraphs.get(decomp.top_subgraph);
    let report = ApgreReport {
        partition_time: decomp.timings.partition,
        alpha_beta_time: decomp.timings.alpha_beta,
        bc_time,
        top_subgraph_bc_time: merged.top_time,
        num_subgraphs: decomp.num_subgraphs(),
        num_articulation_points: decomp.is_articulation.iter().filter(|&&a| a).count(),
        top_subgraph_vertices: top.map_or(0, |sg| sg.num_vertices()),
        top_subgraph_edges: top.map_or(0, |sg| sg.num_edges()),
        total_roots: decomp.subgraphs.iter().map(|sg| sg.roots.len()).sum(),
        total_whiskers: decomp
            .subgraphs
            .iter()
            .map(|sg| sg.is_whisker.iter().filter(|&&w| w).count())
            .sum(),
        edges_traversed: merged.edges_traversed,
        kernel_policy: opts.kernel,
        grain,
        top_subgraph_kernel: merged.top_choice,
        kernel_counts: merged.counts,
    };
    (bc, report)
}

/// The outcome of running one sub-graph's kernel through
/// [`run_subgraph_kernels`]: the local score vector (indexed by local vertex
/// id, scatter via `sg.globals`) plus per-run statistics.
#[derive(Clone, Debug)]
pub struct SubgraphKernelRun {
    /// Index of the sub-graph within the decomposition.
    pub index: usize,
    /// Local BC contribution of this sub-graph (Equation 8 summand),
    /// indexed by local vertex id.
    pub local: Vec<f64>,
    /// Edges examined by the kernel (forward + backward scans).
    pub edges: u64,
    /// The kernel actually dispatched.
    pub choice: KernelChoice,
    /// Wall clock of this sub-graph's kernel.
    pub time: Duration,
}

/// Runs the per-sub-graph BC kernel for exactly the sub-graphs named by
/// `indices`, returning their local score vectors **without** scattering
/// them into a global vector.
///
/// This is step 2 of the pipeline factored out of [`bc_from_decomposition`]
/// for callers that own the merge — the incremental engine stores each
/// sub-graph's contribution so a later batch can replace just the dirty ones
/// and refold. Scheduling matches the batch driver: largest-first dispatch,
/// one shared [`BufferPool`] for kernel workspaces (score vectors are not
/// pooled — they are the return value), `opts.kernel`/`opts.grain` policy
/// resolution per sub-graph, and the outer rayon loop when
/// `opts.outer_parallel`. Each returned vector is produced by the same
/// kernel the batch driver would pick, so per-sub-graph results are bitwise
/// identical to a batch run's (for `Seq`/`LevelSync` unconditionally; for
/// `RootParallel` per pool size).
///
/// Results are sorted by ascending sub-graph index before returning, so a
/// caller folding them in list order reproduces the batch driver's
/// deterministic merge order.
pub fn run_subgraph_kernels(
    decomp: &Decomposition,
    indices: &[usize],
    opts: &ApgreOptions,
) -> Vec<SubgraphKernelRun> {
    let threads = rayon::current_num_threads().max(1);
    let grain = opts.grain.max(1);
    let mut order: Vec<usize> = indices.to_vec();
    // Callers pass sub-graph ids taken from this same decomposition.
    order.sort_by_key(|&i| std::cmp::Reverse(decomp.subgraphs[i].num_vertices())); // lint:allow(panic_path)

    let pool = BufferPool::default();
    let out: Mutex<Vec<SubgraphKernelRun>> = Mutex::new(Vec::with_capacity(order.len()));
    let run_one = |&i: &usize| {
        let sg = &decomp.subgraphs[i]; // lint:allow(panic_path) — same contract as the sort above
        let n = sg.num_vertices();
        let t = Instant::now();
        let mut local = vec![0.0f64; n];
        let choice = opts.kernel.choose(sg.roots.len(), n, sg.num_edges(), threads, grain);
        let edges = match choice {
            KernelChoice::Seq => {
                let mut ws = pool.take_seq(n);
                let e = kernel::bc_in_subgraph_seq_with(sg, &mut local, &mut ws);
                pool.put_seq(ws);
                e
            }
            KernelChoice::RootParallel => kernel::bc_in_subgraph_root_par(sg, &mut local, grain),
            KernelChoice::LevelSync => {
                let mut ws = pool.take_par(n);
                let e = kernel::bc_in_subgraph_level_sync_with(sg, &mut local, grain, &mut ws);
                pool.put_par(ws);
                e
            }
        };
        let run = SubgraphKernelRun { index: i, local, edges, choice, time: t.elapsed() };
        // Recover from poisoning: a panicking sibling kernel must not turn
        // into a second panic here — completed runs are still valid.
        out.lock().unwrap_or_else(|p| p.into_inner()).push(run);
    };
    if opts.outer_parallel {
        order.par_iter().for_each(run_one);
    } else {
        order.iter().for_each(run_one);
    }
    let mut runs = out.into_inner().unwrap_or_else(|p| p.into_inner());
    runs.sort_by_key(|r| r.index);
    runs
}

/// [`run_subgraph_kernels`] over explicit per-sub-graph root slices instead
/// of each sub-graph's full `roots` — the engine of the sampled estimator.
///
/// Each job `(index, roots)` sweeps exactly `roots` (compacted local ids of
/// sub-graph `index`) through the same kernel the batch driver would pick,
/// with the policy resolved on the *sampled* root count, the same shared
/// [`BufferPool`], largest-first dispatch, and the outer rayon loop when
/// `opts.outer_parallel`. The returned local vectors are the exact
/// Equation-7 contribution of those roots — unscaled; the caller applies the
/// sampling scale. Results come back sorted by ascending sub-graph index, so
/// a list-order fold reproduces the deterministic batch merge order, and for
/// a given root slice the per-sub-graph vectors are bitwise reproducible
/// (`Seq`/`LevelSync` unconditionally; `RootParallel` per pool size).
pub fn run_sampled_subgraph_kernels(
    decomp: &Decomposition,
    jobs: &[(usize, &[apgre_graph::VertexId])],
    opts: &ApgreOptions,
) -> Vec<SubgraphKernelRun> {
    let threads = rayon::current_num_threads().max(1);
    let grain = opts.grain.max(1);
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    // Callers pass sub-graph ids taken from this same decomposition.
    order.sort_by_key(|&j| std::cmp::Reverse(decomp.subgraphs[jobs[j].0].num_vertices())); // lint:allow(panic_path)

    let pool = BufferPool::default();
    let out: Mutex<Vec<SubgraphKernelRun>> = Mutex::new(Vec::with_capacity(order.len()));
    let run_one = |&j: &usize| {
        let (i, roots) = jobs[j]; // lint:allow(panic_path) — j comes from the order permutation
        let sg = &decomp.subgraphs[i]; // lint:allow(panic_path) — same contract as the sort above
        let n = sg.num_vertices();
        let t = Instant::now();
        let mut local = vec![0.0f64; n];
        let choice = opts.kernel.choose(roots.len(), n, sg.num_edges(), threads, grain);
        let edges = match choice {
            KernelChoice::Seq => {
                let mut ws = pool.take_seq(n);
                let e = kernel::bc_in_subgraph_seq_roots_with(sg, roots, &mut local, &mut ws);
                pool.put_seq(ws);
                e
            }
            KernelChoice::RootParallel => {
                kernel::bc_in_subgraph_root_par_roots(sg, roots, &mut local, grain)
            }
            KernelChoice::LevelSync => {
                let mut ws = pool.take_par(n);
                let e = kernel::bc_in_subgraph_level_sync_roots_with(
                    sg, roots, &mut local, grain, &mut ws,
                );
                pool.put_par(ws);
                e
            }
        };
        let run = SubgraphKernelRun { index: i, local, edges, choice, time: t.elapsed() };
        // Recover from poisoning: a panicking sibling kernel must not turn
        // into a second panic here — completed runs are still valid.
        out.lock().unwrap_or_else(|p| p.into_inner()).push(run);
    };
    if opts.outer_parallel {
        order.par_iter().for_each(run_one);
    } else {
        order.iter().for_each(run_one);
    }
    let mut runs = out.into_inner().unwrap_or_else(|p| p.into_inner());
    runs.sort_by_key(|r| r.index);
    runs
}

/// [`run_sampled_subgraph_kernels`] plus per-root contribution statistics —
/// the kernel side of the variance-guided budget allocator.
///
/// Each job's roots are swept by the *observed sequential* kernel
/// ([`kernel::bc_in_subgraph_seq_roots_observed`]): per-root Welford
/// accumulation needs the roots in a fixed order, and only the sequential
/// sweep visits them in slice order, so the per-sub-graph statistics are a
/// pure function of `(sub-graph content, root slice)` regardless of policy,
/// thread count, or scheduling. Parallelism still applies *across* jobs
/// (`opts.outer_parallel`), which is where the sampled workload's
/// concurrency lives anyway. The returned `local` span is bitwise identical
/// to a `KernelPolicy::Seq` run of [`run_sampled_subgraph_kernels`] over the
/// same roots.
#[derive(Clone, Debug)]
pub struct SubgraphSampleStats {
    /// Index of the sub-graph within the decomposition.
    pub index: usize,
    /// Unscaled Equation-7 contribution of the swept roots (local ids).
    pub local: Vec<f64>,
    /// Per-local-vertex Welford `M2` of the per-root contributions: the
    /// sample variance of root `r`'s contribution to vertex `v` is
    /// `vertex_m2[v] / (roots − 1)` (0 when fewer than two roots).
    pub vertex_m2: Vec<f64>,
    /// Welford mean of the per-root total contribution mass `Σ_v c_r(v)`.
    pub mass_mean: f64,
    /// Welford `M2` of the per-root total contribution mass.
    pub mass_m2: f64,
    /// Number of roots swept.
    pub roots: usize,
    /// Edges examined by the kernel (forward + backward scans).
    pub edges: u64,
    /// Wall clock of this sub-graph's kernel.
    pub time: Duration,
}

/// Runs the observed sequential kernel over explicit per-sub-graph root
/// slices, returning each sub-graph's span *and* the running per-root
/// contribution statistics ([`SubgraphSampleStats`]). Results come back
/// sorted by ascending sub-graph index, like every other dispatcher here.
pub fn run_sampled_subgraph_kernels_stats(
    decomp: &Decomposition,
    jobs: &[(usize, &[apgre_graph::VertexId])],
    opts: &ApgreOptions,
) -> Vec<SubgraphSampleStats> {
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    // Callers pass sub-graph ids taken from this same decomposition.
    order.sort_by_key(|&j| std::cmp::Reverse(decomp.subgraphs[jobs[j].0].num_vertices())); // lint:allow(panic_path)

    let pool = BufferPool::default();
    let out: Mutex<Vec<SubgraphSampleStats>> = Mutex::new(Vec::with_capacity(order.len()));
    let run_one = |&j: &usize| {
        let (i, roots) = jobs[j]; // lint:allow(panic_path) — j comes from the order permutation
        let sg = &decomp.subgraphs[i]; // lint:allow(panic_path) — same contract as the sort above
        let n = sg.num_vertices();
        let t = Instant::now();
        let mut local = vec![0.0f64; n];
        let mut contrib = vec![0.0f64; n];
        let mut mean = vec![0.0f64; n];
        let mut vertex_m2 = vec![0.0f64; n];
        let (mut mass_mean, mut mass_m2) = (0.0f64, 0.0f64);
        let mut count = 0usize;
        let mut ws = pool.take_seq(n);
        let edges = kernel::bc_in_subgraph_seq_roots_observed(
            sg,
            roots,
            &mut local,
            &mut ws,
            &mut contrib,
            |c| {
                count += 1;
                let k = count as f64;
                let mut mass = 0.0f64;
                // Audited: `c` is the dense contribution vector of length n,
                // and mean / vertex_m2 were allocated at n above.
                // lint:allow(hot_index)
                for v in 0..n {
                    let x = c[v];
                    mass += x;
                    let d = x - mean[v];
                    mean[v] += d / k;
                    vertex_m2[v] += d * (x - mean[v]);
                }
                let d = mass - mass_mean;
                mass_mean += d / k;
                mass_m2 += d * (mass - mass_mean);
            },
        );
        pool.put_seq(ws);
        let run = SubgraphSampleStats {
            index: i,
            local,
            vertex_m2,
            mass_mean,
            mass_m2,
            roots: roots.len(),
            edges,
            time: t.elapsed(),
        };
        // Recover from poisoning: a panicking sibling kernel must not turn
        // into a second panic here — completed runs are still valid.
        out.lock().unwrap_or_else(|p| p.into_inner()).push(run);
    };
    if opts.outer_parallel {
        order.par_iter().for_each(run_one);
    } else {
        order.iter().for_each(run_one);
    }
    let mut runs = out.into_inner().unwrap_or_else(|p| p.into_inner());
    runs.sort_by_key(|r| r.index);
    runs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brandes::bc_serial;
    use crate::parallel::test_support::zoo;
    use apgre_decomp::AlphaBetaMethod;
    use apgre_graph::generators;

    fn assert_close(name: &str, got: &[f64], want: &[f64]) {
        assert_eq!(got.len(), want.len(), "{name}");
        for i in 0..want.len() {
            let (x, y) = (got[i], want[i]);
            assert!(
                (x - y).abs() <= 1e-6 * (1.0 + x.abs().max(y.abs())),
                "{name}: vertex {i}: apgre {x}, brandes {y}"
            );
        }
    }

    #[test]
    fn matches_brandes_on_zoo() {
        for (name, g) in zoo() {
            let want = bc_serial(&g);
            assert_close(&name, &bc_apgre(&g), &want);
        }
    }

    #[test]
    fn matches_brandes_across_thresholds() {
        for (name, g) in zoo() {
            let want = bc_serial(&g);
            for threshold in [0, 1, 2, 4, 16, 1_000_000] {
                let opts = ApgreOptions {
                    partition: PartitionOptions {
                        merge_threshold: threshold,
                        ..Default::default()
                    },
                    ..Default::default()
                };
                let (got, _) = bc_apgre_with(&g, &opts);
                assert_close(&format!("{name}@t{threshold}"), &got, &want);
            }
        }
    }

    #[test]
    fn matches_with_bfs_alpha_beta() {
        for (name, g) in zoo() {
            let want = bc_serial(&g);
            let opts = ApgreOptions {
                partition: PartitionOptions {
                    merge_threshold: 4,
                    alpha_beta: AlphaBetaMethod::BlockedBfs,
                    ..Default::default()
                },
                ..Default::default()
            };
            let (got, _) = bc_apgre_with(&g, &opts);
            assert_close(&format!("{name}+bfsab"), &got, &want);
        }
    }

    #[test]
    fn forced_level_sync_matches() {
        for (name, g) in zoo() {
            let want = bc_serial(&g);
            let opts =
                ApgreOptions { kernel: KernelPolicy::LevelSync, grain: 1, ..Default::default() };
            let (got, report) = bc_apgre_with(&g, &opts);
            assert_close(&format!("{name}+levelsync"), &got, &want);
            assert_eq!(report.kernel_counts.2, report.num_subgraphs, "{name}");
        }
    }

    #[test]
    fn forced_root_parallel_matches() {
        for (name, g) in zoo() {
            let want = bc_serial(&g);
            let opts =
                ApgreOptions { kernel: KernelPolicy::RootParallel, grain: 1, ..Default::default() };
            let (got, report) = bc_apgre_with(&g, &opts);
            assert_close(&format!("{name}+rootpar"), &got, &want);
            assert_eq!(report.kernel_counts.1, report.num_subgraphs, "{name}");
        }
    }

    #[test]
    fn forced_seq_matches() {
        for (name, g) in zoo() {
            let want = bc_serial(&g);
            let opts = ApgreOptions { kernel: KernelPolicy::Seq, ..Default::default() };
            let (got, report) = bc_apgre_with(&g, &opts);
            assert_close(&format!("{name}+seq"), &got, &want);
            assert_eq!(report.kernel_counts.0, report.num_subgraphs, "{name}");
        }
    }

    #[test]
    fn serial_outer_matches() {
        for (name, g) in zoo() {
            let want = bc_serial(&g);
            let opts = ApgreOptions { outer_parallel: false, ..Default::default() };
            let (got, _) = bc_apgre_with(&g, &opts);
            assert_close(&format!("{name}+seqouter"), &got, &want);
        }
    }

    #[test]
    fn auto_policy_heuristic() {
        let p = KernelPolicy::Auto;
        let g = DEFAULT_GRAIN;
        // One thread: always sequential, whatever the size.
        assert_eq!(p.choose(10_000, 100_000, 500_000, 1, g), KernelChoice::Seq);
        // Tiny sub-graph: sequential.
        assert_eq!(p.choose(10, 12, 30, 8, g), KernelChoice::Seq);
        // Root-rich and big: root-parallel.
        assert_eq!(p.choose(10_000, 100_000, 500_000, 8, g), KernelChoice::RootParallel);
        // Root-starved top sub-graph: level-sync.
        assert_eq!(p.choose(4, 100_000, 500_000, 8, g), KernelChoice::LevelSync);
        // Root-starved and mid-sized: not worth forking.
        assert_eq!(p.choose(4, 2 * g, 500_000, 8, g), KernelChoice::Seq);
        // Forced policies ignore the statistics.
        assert_eq!(KernelPolicy::Seq.choose(0, 0, 0, 64, g), KernelChoice::Seq);
        assert_eq!(KernelPolicy::RootParallel.choose(0, 0, 0, 1, g), KernelChoice::RootParallel);
        assert_eq!(KernelPolicy::LevelSync.choose(0, 0, 0, 1, g), KernelChoice::LevelSync);
    }

    #[test]
    fn auto_policy_saturates_at_extreme_inputs() {
        let p = KernelPolicy::Auto;
        // A usize::MAX grain must not overflow the work thresholds: every
        // multiply saturates, so the policy degrades to Seq instead of
        // panicking in debug builds.
        assert_eq!(p.choose(10_000, 100_000, 500_000, 8, usize::MAX), KernelChoice::Seq);
        // usize::MAX thread count: `threads * 2` saturates, the root-rich
        // branch can no longer trigger, and the size branch decides.
        assert_eq!(p.choose(4, 100_000, 500_000, usize::MAX, 64), KernelChoice::LevelSync);
        // usize::MAX roots and edges: `roots * edges` saturates instead of
        // wrapping to something below `min_work`.
        assert_eq!(p.choose(usize::MAX, 100_000, usize::MAX, 8, 64), KernelChoice::RootParallel);
    }

    #[test]
    fn kernel_policy_parses() {
        for (s, want) in [
            ("auto", KernelPolicy::Auto),
            ("seq", KernelPolicy::Seq),
            ("rootpar", KernelPolicy::RootParallel),
            ("levelsync", KernelPolicy::LevelSync),
        ] {
            assert_eq!(s.parse::<KernelPolicy>().unwrap(), want);
        }
        assert!("fancy".parse::<KernelPolicy>().is_err());
    }

    #[test]
    fn report_accounts_match_decomposition() {
        let g = generators::whiskered_community(&generators::WhiskeredCommunityParams {
            core_vertices: 90,
            core_attach: 2,
            community_count: 7,
            community_size: 10,
            community_density: 1.6,
            whiskers: 45,
            seed: 33,
        });
        let (bc, report) = bc_apgre_with(&g, &ApgreOptions::default());
        assert_eq!(bc.len(), g.num_vertices());
        assert!(report.num_subgraphs >= 1);
        assert!(report.total_whiskers >= 40, "whiskers folded: {}", report.total_whiskers);
        assert!(report.total_roots < g.num_vertices());
        assert!(report.edges_traversed > 0);
        let (s, r, l) = report.kernel_counts;
        assert_eq!(s + r + l, report.num_subgraphs, "every sub-graph dispatched exactly once");
        assert!(report.top_subgraph_kernel.is_some());
        assert_eq!(report.kernel_policy, KernelPolicy::Auto);
        assert_eq!(report.grain, DEFAULT_GRAIN);
        // Redundancy elimination means strictly less sweep work than
        // Brandes' n·2m·2 on this articulation-rich graph.
        let brandes_edges = (g.num_vertices() as u64) * (g.num_arcs() as u64) * 2;
        assert!(report.edges_traversed < brandes_edges / 2);
    }

    #[test]
    fn run_subgraph_kernels_refolds_to_batch_result() {
        for (name, g) in zoo() {
            let opts = ApgreOptions::default();
            let decomp = decompose(&g, &opts.partition);
            let (want, _) = bc_from_decomposition(&g, &decomp, &opts);
            let runs = run_subgraph_kernels(
                &decomp,
                &(0..decomp.num_subgraphs()).collect::<Vec<_>>(),
                &opts,
            );
            assert_eq!(runs.len(), decomp.num_subgraphs(), "{name}");
            let mut got = vec![0.0f64; g.num_vertices()];
            // Ascending-index fold = the Merger's scatter order, so the sums
            // must be bitwise identical for deterministic kernels.
            for (k, run) in runs.iter().enumerate() {
                assert_eq!(run.index, k, "{name}: sorted ascending");
                let sg = &decomp.subgraphs[run.index];
                for (l, &score) in run.local.iter().enumerate() {
                    got[sg.globals[l] as usize] += score;
                }
            }
            for v in 0..got.len() {
                assert!(
                    (got[v] - want[v]).abs() <= 1e-9 * (1.0 + want[v].abs()),
                    "{name}: vertex {v}: {} vs {}",
                    got[v],
                    want[v]
                );
            }
        }
    }

    #[test]
    fn run_subgraph_kernels_seq_is_bitwise() {
        for (name, g) in zoo() {
            let opts = ApgreOptions { kernel: KernelPolicy::Seq, ..Default::default() };
            let decomp = decompose(&g, &opts.partition);
            let (want, _) = bc_from_decomposition(&g, &decomp, &opts);
            let all: Vec<usize> = (0..decomp.num_subgraphs()).collect();
            let runs = run_subgraph_kernels(&decomp, &all, &opts);
            let mut got = vec![0.0f64; g.num_vertices()];
            for run in &runs {
                let sg = &decomp.subgraphs[run.index];
                for (l, &score) in run.local.iter().enumerate() {
                    got[sg.globals[l] as usize] += score;
                }
            }
            assert_eq!(got, want, "{name}: forced-Seq refold must be bitwise");
        }
    }

    #[test]
    fn run_sampled_subgraph_kernels_full_roots_is_bitwise_to_unsampled() {
        for (name, g) in zoo() {
            let opts = ApgreOptions { kernel: KernelPolicy::Seq, ..Default::default() };
            let decomp = decompose(&g, &opts.partition);
            let all: Vec<usize> = (0..decomp.num_subgraphs()).collect();
            let want = run_subgraph_kernels(&decomp, &all, &opts);
            let jobs: Vec<(usize, &[u32])> =
                all.iter().map(|&i| (i, decomp.subgraphs[i].roots.as_slice())).collect();
            let got = run_sampled_subgraph_kernels(&decomp, &jobs, &opts);
            assert_eq!(got.len(), want.len(), "{name}");
            for (a, b) in got.iter().zip(&want) {
                assert_eq!(a.index, b.index, "{name}");
                assert_eq!(
                    a.local, b.local,
                    "{name}: SG{} full-roots sample must be bitwise",
                    a.index
                );
                assert_eq!(a.edges, b.edges, "{name}");
            }
        }
    }

    #[test]
    fn sampled_root_subsets_sum_to_full_sweep() {
        // Root additivity: sweeping a partition of the roots in two sampled
        // calls folds (in slice order) to the full sequential sweep.
        let g = generators::whiskered_community(&generators::WhiskeredCommunityParams {
            core_vertices: 70,
            core_attach: 2,
            community_count: 5,
            community_size: 9,
            community_density: 1.7,
            whiskers: 30,
            seed: 77,
        });
        let opts = ApgreOptions { kernel: KernelPolicy::Seq, ..Default::default() };
        let decomp = decompose(&g, &opts.partition);
        for (i, sg) in decomp.subgraphs.iter().enumerate() {
            let mid = sg.roots.len() / 2;
            let (front, back) = sg.roots.split_at(mid);
            let jobs = [(i, front), (i, back)];
            let halves = run_sampled_subgraph_kernels(&decomp, &jobs, &opts);
            let mut folded = vec![0.0f64; sg.num_vertices()];
            for run in &halves {
                for (l, &x) in run.local.iter().enumerate() {
                    folded[l] += x;
                }
            }
            let mut full = vec![0.0f64; sg.num_vertices()];
            kernel::bc_in_subgraph_seq(sg, &mut full);
            for l in 0..full.len() {
                assert!(
                    (folded[l] - full[l]).abs() <= 1e-9 * (1.0 + full[l].abs()),
                    "SG{i} local {l}: {} vs {}",
                    folded[l],
                    full[l]
                );
            }
        }
    }

    #[test]
    fn stats_runs_are_bitwise_to_seq_and_welford_consistent() {
        for (name, g) in zoo() {
            let opts = ApgreOptions { kernel: KernelPolicy::Seq, ..Default::default() };
            let decomp = decompose(&g, &opts.partition);
            let jobs: Vec<(usize, &[u32])> = decomp
                .subgraphs
                .iter()
                .enumerate()
                .map(|(i, sg)| (i, sg.roots.as_slice()))
                .collect();
            let want = run_sampled_subgraph_kernels(&decomp, &jobs, &opts);
            let got = run_sampled_subgraph_kernels_stats(&decomp, &jobs, &opts);
            assert_eq!(got.len(), want.len(), "{name}");
            for (a, b) in got.iter().zip(&want) {
                assert_eq!(a.index, b.index, "{name}");
                assert_eq!(
                    a.local, b.local,
                    "{name}: SG{} observed sweep must be bitwise to the plain one",
                    a.index
                );
                assert_eq!(a.edges, b.edges, "{name}");
                assert_eq!(a.roots, decomp.subgraphs[a.index].roots.len(), "{name}");
                // The Welford mass mean times the root count is the span
                // total (up to fp association), and M2 is non-negative.
                let total: f64 = a.local.iter().sum();
                let welford_total = a.mass_mean * a.roots as f64;
                assert!(
                    (total - welford_total).abs() <= 1e-9 * (1.0 + total.abs()),
                    "{name}: SG{}: span total {total} vs Welford {welford_total}",
                    a.index
                );
                assert!(a.mass_m2 >= 0.0, "{name}");
                assert!(a.vertex_m2.iter().all(|&x| x >= 0.0), "{name}");
            }
        }
    }

    #[test]
    fn whisker_on_articulation_point_regression() {
        // Whisker u attached to an articulation point s that borders another
        // sub-graph: exercises the `+α(s)` root correction.
        // 0 (whisker) - 1 - [triangle 1,2,3] - 3 - [triangle 3,4,5]
        let g = apgre_graph::Graph::undirected_from_edges(
            6,
            &[(0, 1), (1, 2), (2, 3), (1, 3), (3, 4), (4, 5), (3, 5)],
        );
        let want = bc_serial(&g);
        for threshold in [0, 1, 4, 100] {
            let opts = ApgreOptions {
                partition: PartitionOptions { merge_threshold: threshold, ..Default::default() },
                ..Default::default()
            };
            let (got, _) = bc_apgre_with(&g, &opts);
            assert_close(&format!("whisker-art@t{threshold}"), &got, &want);
        }
    }

    #[test]
    fn directed_whisker_on_articulation_point() {
        // Directed analogue: whisker 0 -> 1 where 1 is a cut vertex between
        // two directed cycles.
        let g = apgre_graph::Graph::directed_from_edges(
            6,
            &[(0, 1), (1, 2), (2, 3), (3, 1), (3, 4), (4, 5), (5, 3)],
        );
        let want = bc_serial(&g);
        let (got, _) = bc_apgre_with(&g, &ApgreOptions::default());
        assert_close("dir-whisker-art", &got, &want);
    }

    #[test]
    fn star_exact() {
        let g = generators::star(25);
        let bc = bc_apgre(&g);
        assert_eq!(bc[0], 25.0 * 24.0);
        assert!(bc[1..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn path_exact() {
        let n = 12;
        let g = generators::path(n);
        let bc = bc_apgre(&g);
        for i in 0..n {
            let want = 2.0 * (i as f64) * ((n - 1 - i) as f64);
            assert!((bc[i] - want).abs() < 1e-9, "vertex {i}: {} vs {want}", bc[i]);
        }
    }

    #[test]
    fn empty_and_isolated() {
        let g = apgre_graph::Graph::undirected_from_edges(0, &[]);
        assert!(bc_apgre(&g).is_empty());
        let g = apgre_graph::Graph::undirected_from_edges(4, &[(1, 2)]);
        assert_eq!(bc_apgre(&g), vec![0.0; 4]);
    }
}
