//! APGRE — articulation-points-guided redundancy elimination for BC
//! (the paper's Figure 5 driver plus the two-level parallelization of §4).
//!
//! Three steps:
//!
//! 1. decompose the graph through articulation points
//!    ([`apgre_decomp::decompose`] — Algorithm 1 + α/β/γ counting),
//! 2. for every sub-graph, run the four-dependency kernel
//!    (the kernel module — Algorithm 2),
//! 3. merge per-sub-graph scores: an articulation point's BC is the sum of
//!    its local scores (Equation 8).
//!
//! Parallelism is two-level: **coarse-grained asynchronous across
//! sub-graphs** (a rayon parallel iterator, largest sub-graph first so the
//! dominant task starts immediately) and **fine-grained level-synchronous
//! within a sub-graph** (used only above a size threshold; small sub-graphs
//! run the sequential kernel to avoid fork-join overhead). Both levels share
//! one rayon pool, so inner parallelism of the top sub-graph soaks up workers
//! once the small sub-graphs drain — the behaviour §5.4 describes.

mod kernel;

use apgre_decomp::{decompose, Decomposition, PartitionOptions, SubGraph};
use apgre_graph::Graph;
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// Options for [`bc_apgre_with`].
#[derive(Clone, Debug)]
pub struct ApgreOptions {
    /// Decomposition options (merge threshold, α/β method).
    pub partition: PartitionOptions,
    /// Process sub-graphs in parallel (the coarse level).
    pub outer_parallel: bool,
    /// Sub-graphs with at least this many vertices use the level-synchronous
    /// parallel kernel; smaller ones run sequentially.
    pub inner_parallel_min_vertices: usize,
}

impl Default for ApgreOptions {
    fn default() -> Self {
        ApgreOptions {
            partition: PartitionOptions::default(),
            outer_parallel: true,
            inner_parallel_min_vertices: 4096,
        }
    }
}

/// Phase breakdown and decomposition statistics of one APGRE run — the data
/// behind the paper's Figure 8 and Table 4.
#[derive(Clone, Debug)]
pub struct ApgreReport {
    /// Algorithm 1 (BCC finding, merging, sub-graph construction).
    pub partition_time: Duration,
    /// α/β counting.
    pub alpha_beta_time: Duration,
    /// All sub-graph BC kernels (wall clock of the whole phase).
    pub bc_time: Duration,
    /// BC kernel time of the largest sub-graph alone.
    pub top_subgraph_bc_time: Duration,
    /// Number of sub-graphs.
    pub num_subgraphs: usize,
    /// Number of articulation points in the graph.
    pub num_articulation_points: usize,
    /// Vertices / edges of the top sub-graph.
    pub top_subgraph_vertices: usize,
    /// Edges of the top sub-graph.
    pub top_subgraph_edges: usize,
    /// Total roots swept (Σ |R_sgi|) — Brandes would sweep |V|.
    pub total_roots: usize,
    /// Total whiskers folded by γ.
    pub total_whiskers: usize,
    /// Edges examined across all kernels (forward + backward scans).
    pub edges_traversed: u64,
}

/// Runs the sequential sub-graph kernel for the memoization layer
/// (`crate::memo`); returns nothing extra — the memo cache stores only the
/// local score vector.
pub(crate) fn kernel_for_memo(sg: &SubGraph, bc_local: &mut [f64]) {
    kernel::bc_in_subgraph_seq(sg, bc_local);
}

/// APGRE with default options.
pub fn bc_apgre(g: &Graph) -> Vec<f64> {
    bc_apgre_with(g, &ApgreOptions::default()).0
}

/// APGRE with explicit options; returns scores plus the phase report.
pub fn bc_apgre_with(g: &Graph, opts: &ApgreOptions) -> (Vec<f64>, ApgreReport) {
    let decomp = decompose(g, &opts.partition);
    bc_from_decomposition(g, &decomp, opts)
}

/// Runs only steps 2–3 on a pre-built decomposition. Exposed so the harness
/// can sweep kernel options without re-decomposing, and so incremental
/// callers can reuse a decomposition across BC computations.
pub fn bc_from_decomposition(
    g: &Graph,
    decomp: &Decomposition,
    opts: &ApgreOptions,
) -> (Vec<f64>, ApgreReport) {
    let bc_start = Instant::now();
    // Largest-first order: the top sub-graph dominates (Table 4), so it must
    // start immediately.
    let mut order: Vec<usize> = (0..decomp.subgraphs.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(decomp.subgraphs[i].num_vertices()));

    let run_one = |&i: &usize| {
        let sg = &decomp.subgraphs[i];
        let t = Instant::now();
        let mut local = vec![0.0f64; sg.num_vertices()];
        let edges = if sg.num_vertices() >= opts.inner_parallel_min_vertices {
            kernel::bc_in_subgraph_par(sg, &mut local)
        } else {
            kernel::bc_in_subgraph_seq(sg, &mut local)
        };
        (i, local, edges, t.elapsed())
    };
    let results: Vec<(usize, Vec<f64>, u64, Duration)> = if opts.outer_parallel {
        order.par_iter().map(run_one).collect()
    } else {
        order.iter().map(run_one).collect()
    };

    // Merge (Equation 8) in sub-graph index order for determinism.
    let mut merged: Vec<(usize, Vec<f64>, u64, Duration)> = results;
    merged.sort_by_key(|&(i, ..)| i);
    let mut bc = vec![0.0f64; g.num_vertices()];
    let mut edges_traversed = 0u64;
    let mut top_time = Duration::ZERO;
    for (i, local, edges, t) in &merged {
        let sg = &decomp.subgraphs[*i];
        for (l, &score) in local.iter().enumerate() {
            bc[sg.globals[l] as usize] += score;
        }
        edges_traversed += edges;
        if *i == decomp.top_subgraph {
            top_time = *t;
        }
    }
    let bc_time = bc_start.elapsed();

    let top = decomp.subgraphs.get(decomp.top_subgraph);
    let report = ApgreReport {
        partition_time: decomp.timings.partition,
        alpha_beta_time: decomp.timings.alpha_beta,
        bc_time,
        top_subgraph_bc_time: top_time,
        num_subgraphs: decomp.num_subgraphs(),
        num_articulation_points: decomp.is_articulation.iter().filter(|&&a| a).count(),
        top_subgraph_vertices: top.map_or(0, |sg| sg.num_vertices()),
        top_subgraph_edges: top.map_or(0, |sg| sg.num_edges()),
        total_roots: decomp.subgraphs.iter().map(|sg| sg.roots.len()).sum(),
        total_whiskers: decomp
            .subgraphs
            .iter()
            .map(|sg| sg.is_whisker.iter().filter(|&&w| w).count())
            .sum(),
        edges_traversed,
    };
    (bc, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brandes::bc_serial;
    use crate::parallel::test_support::zoo;
    use apgre_decomp::AlphaBetaMethod;
    use apgre_graph::generators;

    fn assert_close(name: &str, got: &[f64], want: &[f64]) {
        assert_eq!(got.len(), want.len(), "{name}");
        for i in 0..want.len() {
            let (x, y) = (got[i], want[i]);
            assert!(
                (x - y).abs() <= 1e-6 * (1.0 + x.abs().max(y.abs())),
                "{name}: vertex {i}: apgre {x}, brandes {y}"
            );
        }
    }

    #[test]
    fn matches_brandes_on_zoo() {
        for (name, g) in zoo() {
            let want = bc_serial(&g);
            assert_close(&name, &bc_apgre(&g), &want);
        }
    }

    #[test]
    fn matches_brandes_across_thresholds() {
        for (name, g) in zoo() {
            let want = bc_serial(&g);
            for threshold in [0, 1, 2, 4, 16, 1_000_000] {
                let opts = ApgreOptions {
                    partition: PartitionOptions {
                        merge_threshold: threshold,
                        ..Default::default()
                    },
                    ..Default::default()
                };
                let (got, _) = bc_apgre_with(&g, &opts);
                assert_close(&format!("{name}@t{threshold}"), &got, &want);
            }
        }
    }

    #[test]
    fn matches_with_bfs_alpha_beta() {
        for (name, g) in zoo() {
            let want = bc_serial(&g);
            let opts = ApgreOptions {
                partition: PartitionOptions {
                    merge_threshold: 4,
                    alpha_beta: AlphaBetaMethod::BlockedBfs,
                    ..Default::default()
                },
                ..Default::default()
            };
            let (got, _) = bc_apgre_with(&g, &opts);
            assert_close(&format!("{name}+bfsab"), &got, &want);
        }
    }

    #[test]
    fn forced_parallel_inner_matches() {
        for (name, g) in zoo() {
            let want = bc_serial(&g);
            let opts = ApgreOptions { inner_parallel_min_vertices: 0, ..Default::default() };
            let (got, _) = bc_apgre_with(&g, &opts);
            assert_close(&format!("{name}+parinner"), &got, &want);
        }
    }

    #[test]
    fn serial_outer_matches() {
        for (name, g) in zoo() {
            let want = bc_serial(&g);
            let opts = ApgreOptions { outer_parallel: false, ..Default::default() };
            let (got, _) = bc_apgre_with(&g, &opts);
            assert_close(&format!("{name}+seqouter"), &got, &want);
        }
    }

    #[test]
    fn report_accounts_match_decomposition() {
        let g = generators::whiskered_community(&generators::WhiskeredCommunityParams {
            core_vertices: 90,
            core_attach: 2,
            community_count: 7,
            community_size: 10,
            community_density: 1.6,
            whiskers: 45,
            seed: 33,
        });
        let (bc, report) = bc_apgre_with(&g, &ApgreOptions::default());
        assert_eq!(bc.len(), g.num_vertices());
        assert!(report.num_subgraphs >= 1);
        assert!(report.total_whiskers >= 40, "whiskers folded: {}", report.total_whiskers);
        assert!(report.total_roots < g.num_vertices());
        assert!(report.edges_traversed > 0);
        // Redundancy elimination means strictly less sweep work than
        // Brandes' n·2m·2 on this articulation-rich graph.
        let brandes_edges = (g.num_vertices() as u64) * (g.num_arcs() as u64) * 2;
        assert!(report.edges_traversed < brandes_edges / 2);
    }

    #[test]
    fn whisker_on_articulation_point_regression() {
        // Whisker u attached to an articulation point s that borders another
        // sub-graph: exercises the `+α(s)` root correction.
        // 0 (whisker) - 1 - [triangle 1,2,3] - 3 - [triangle 3,4,5]
        let g = apgre_graph::Graph::undirected_from_edges(
            6,
            &[(0, 1), (1, 2), (2, 3), (1, 3), (3, 4), (4, 5), (3, 5)],
        );
        let want = bc_serial(&g);
        for threshold in [0, 1, 4, 100] {
            let opts = ApgreOptions {
                partition: PartitionOptions { merge_threshold: threshold, ..Default::default() },
                ..Default::default()
            };
            let (got, _) = bc_apgre_with(&g, &opts);
            assert_close(&format!("whisker-art@t{threshold}"), &got, &want);
        }
    }

    #[test]
    fn directed_whisker_on_articulation_point() {
        // Directed analogue: whisker 0 -> 1 where 1 is a cut vertex between
        // two directed cycles.
        let g = apgre_graph::Graph::directed_from_edges(
            6,
            &[(0, 1), (1, 2), (2, 3), (3, 1), (3, 4), (4, 5), (5, 3)],
        );
        let want = bc_serial(&g);
        let (got, _) = bc_apgre_with(&g, &ApgreOptions::default());
        assert_close("dir-whisker-art", &got, &want);
    }

    #[test]
    fn star_exact() {
        let g = generators::star(25);
        let bc = bc_apgre(&g);
        assert_eq!(bc[0], 25.0 * 24.0);
        assert!(bc[1..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn path_exact() {
        let n = 12;
        let g = generators::path(n);
        let bc = bc_apgre(&g);
        for i in 0..n {
            let want = 2.0 * (i as f64) * ((n - 1 - i) as f64);
            assert!((bc[i] - want).abs() < 1e-9, "vertex {i}: {} vs {want}", bc[i]);
        }
    }

    #[test]
    fn empty_and_isolated() {
        let g = apgre_graph::Graph::undirected_from_edges(0, &[]);
        assert!(bc_apgre(&g).is_empty());
        let g = apgre_graph::Graph::undirected_from_edges(4, &[(1, 2)]);
        assert_eq!(bc_apgre(&g), vec![0.0; 4]);
    }
}
