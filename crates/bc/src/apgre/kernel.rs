//! The per-sub-graph BC kernel — the paper's Algorithm 2 (`BCinSG`).
//!
//! For every root `s ∈ R_sgi` the kernel runs one BFS over the sub-graph's
//! local CSR and one backward sweep that accumulates the four dependencies of
//! §3.1.1 simultaneously:
//!
//! * `δ_i2i` — Brandes' classic dependency, restricted to the sub-graph
//!   (Equation 3),
//! * `δ_i2o` — paths ending beyond a boundary articulation point, weighted by
//!   `α` (Equation 4),
//! * `δ_o2o` — paths crossing the sub-graph between two boundary points,
//!   weighted by `β(s)·α(t)` (Equation 6; only when `s` is itself a boundary
//!   point),
//! * `δ_o2i` — sources beyond `s`; never materialized as an array because
//!   Equation 5 reduces it to `β(s)·δ_i2i(v)` (the `sizeO2I` factor of
//!   Algorithm 2).
//!
//! The `δ^init` terms of Equations 4/6 are folded into the backward sweep
//! lazily (when a vertex is popped) rather than pre-initialized as in the
//! paper's phase 0 — same recursion, but the workspace reset stays
//! `O(reached)`.
//!
//! Scores merge per Equation 7. One deviation from the paper as printed, with
//! rationale in DESIGN.md §3.3: for **undirected** whiskers the root's own
//! score uses `γ(s)·(δ_i2i(s) − 1 + δ_i2o(s) + α(s))` — the `−1` excludes the
//! whisker itself from its derived target set, and the `+α(s)` restores the
//! `δ^init_i2o` term at the root that Algorithm 2's `i != s` guard drops.
//! Both corrections are pinned by the `apgre ≡ brandes` property tests.

use crate::sync::{AtomicU32, Ordering};
use crate::util::{atomic_f64_vec, into_f64_vec, AtomicF64, Levels};
use apgre_decomp::SubGraph;
use apgre_graph::{VertexId, UNREACHED};
use rayon::prelude::*;
use std::collections::VecDeque;

/// Sequential workspace for one sub-graph.
pub(crate) struct SgWorkspace {
    dist: Vec<u32>,
    sigma: Vec<f64>,
    d_i2i: Vec<f64>,
    d_i2o: Vec<f64>,
    d_o2o: Vec<f64>,
    order: Vec<VertexId>,
    queue: VecDeque<VertexId>,
}

impl SgWorkspace {
    pub fn new(n: usize) -> Self {
        SgWorkspace {
            dist: vec![UNREACHED; n],
            sigma: vec![0.0; n],
            d_i2i: vec![0.0; n],
            d_i2o: vec![0.0; n],
            d_o2o: vec![0.0; n],
            order: Vec::with_capacity(n),
            queue: VecDeque::new(),
        }
    }

    fn reset_touched(&mut self) {
        for &v in &self.order {
            self.dist[v as usize] = UNREACHED;
            self.sigma[v as usize] = 0.0;
            self.d_i2i[v as usize] = 0.0;
            self.d_i2o[v as usize] = 0.0;
            self.d_o2o[v as usize] = 0.0;
        }
        self.order.clear();
    }
}

/// Sequential Algorithm 2 over one sub-graph. Returns the number of edges
/// examined (forward + backward scans).
pub(crate) fn bc_in_subgraph_seq(sg: &SubGraph, bc_local: &mut [f64]) -> u64 {
    let n = sg.num_vertices();
    debug_assert_eq!(bc_local.len(), n);
    let mut ws = SgWorkspace::new(n);
    let csr = sg.graph.csr();
    let directed = sg.graph.is_directed();
    let mut edges = 0u64;
    for &s in &sg.roots {
        // Phase 1: forward BFS (σ and order).
        ws.dist[s as usize] = 0;
        ws.sigma[s as usize] = 1.0;
        ws.order.push(s);
        ws.queue.push_back(s);
        while let Some(u) = ws.queue.pop_front() {
            let du = ws.dist[u as usize];
            for &v in csr.neighbors(u) {
                edges += 1;
                if ws.dist[v as usize] == UNREACHED {
                    ws.dist[v as usize] = du + 1;
                    ws.order.push(v);
                    ws.queue.push_back(v);
                }
                if ws.dist[v as usize] == du + 1 {
                    ws.sigma[v as usize] += ws.sigma[u as usize];
                }
            }
        }
        // Phase 2: backward accumulation of the four dependencies and the
        // score merge (Equation 7).
        let s_boundary = sg.is_boundary[s as usize];
        let beta_s = if s_boundary { sg.beta[s as usize] as f64 } else { 0.0 };
        let gamma_s = sg.gamma[s as usize] as f64;
        for idx in (0..ws.order.len()).rev() {
            let v = ws.order[idx];
            let vu = v as usize;
            let dv = ws.dist[vu];
            let sv = ws.sigma[vu];
            let boundary_v = sg.is_boundary[vu] && v != s;
            let mut i2i = 0.0;
            let mut i2o = if boundary_v { sg.alpha[vu] as f64 } else { 0.0 };
            let mut o2o = if s_boundary && boundary_v { beta_s * sg.alpha[vu] as f64 } else { 0.0 };
            for &w in csr.neighbors(v) {
                edges += 1;
                if ws.dist[w as usize] == dv + 1 {
                    let c = sv / ws.sigma[w as usize];
                    i2i += c * (1.0 + ws.d_i2i[w as usize]);
                    i2o += c * ws.d_i2o[w as usize];
                    if s_boundary {
                        o2o += c * ws.d_o2o[w as usize];
                    }
                }
            }
            ws.d_i2i[vu] = i2i;
            ws.d_i2o[vu] = i2o;
            ws.d_o2o[vu] = o2o;
            if v != s {
                bc_local[vu] += (1.0 + gamma_s) * (i2i + i2o) + beta_s * i2i + o2o;
            } else if gamma_s > 0.0 {
                let alpha_s = if s_boundary { sg.alpha[vu] as f64 } else { 0.0 };
                let whisker_self = if directed { 0.0 } else { 1.0 };
                bc_local[vu] += gamma_s * ((i2i - whisker_self) + i2o + alpha_s);
            }
        }
        ws.reset_touched();
    }
    edges
}

/// Parallel workspace: the level-synchronous mirror of [`SgWorkspace`].
struct SgParWs {
    dist: Vec<AtomicU32>,
    sigma: Vec<AtomicF64>,
    d_i2i: Vec<AtomicF64>,
    d_i2o: Vec<AtomicF64>,
    d_o2o: Vec<AtomicF64>,
    levels: Levels,
}

impl SgParWs {
    fn new(n: usize) -> Self {
        SgParWs {
            dist: (0..n).map(|_| AtomicU32::new(UNREACHED)).collect(),
            sigma: atomic_f64_vec(n),
            d_i2i: atomic_f64_vec(n),
            d_i2o: atomic_f64_vec(n),
            d_o2o: atomic_f64_vec(n),
            levels: Levels::default(),
        }
    }

    fn reset_touched(&mut self) {
        for &v in &self.levels.order {
            self.dist[v as usize].store(UNREACHED, Ordering::Relaxed);
            self.sigma[v as usize].store(0.0);
            self.d_i2i[v as usize].store(0.0);
            self.d_i2o[v as usize].store(0.0);
            self.d_o2o[v as usize].store(0.0);
        }
        self.levels.clear();
    }
}

/// Below this many vertices a level runs sequentially.
const PAR_GRAIN: usize = 256;

/// Level-synchronous parallel Algorithm 2 over one sub-graph — the paper's
/// fine-grained inner level of the two-level parallelization. Forward σ is
/// pulled per level (single writer per cell), the backward sweep scans
/// successors; no locks anywhere, exactly as in Algorithm 2's successor
/// method. Returns the number of edges examined.
pub(crate) fn bc_in_subgraph_par(sg: &SubGraph, bc_local: &mut [f64]) -> u64 {
    let n = sg.num_vertices();
    let mut ws = SgParWs::new(n);
    let bc: Vec<AtomicF64> = bc_local.iter().map(|&x| AtomicF64::new(x)).collect();
    let csr = sg.graph.csr();
    let rev = sg.graph.rev_csr();
    let directed = sg.graph.is_directed();
    let mut edges = 0u64;

    for &s in &sg.roots {
        // Phase 1: frontier discovery by CAS; σ pulled per level.
        ws.dist[s as usize].store(0, Ordering::Relaxed);
        ws.sigma[s as usize].store(1.0);
        ws.levels.order.push(s);
        ws.levels.starts.push(0);
        let mut level_start = 0usize;
        let mut d = 0u32;
        loop {
            let frontier = &ws.levels.order[level_start..];
            if frontier.is_empty() {
                ws.levels.starts.pop();
                break;
            }
            let dist = &ws.dist;
            let sigma = &ws.sigma;
            let next: Vec<VertexId> = if frontier.len() < PAR_GRAIN {
                let mut next = Vec::new();
                for &u in frontier {
                    for &v in csr.neighbors(u) {
                        if dist[v as usize]
                            .compare_exchange(
                                UNREACHED,
                                d + 1,
                                Ordering::Relaxed,
                                Ordering::Relaxed,
                            )
                            .is_ok()
                        {
                            next.push(v);
                        }
                    }
                }
                next
            } else {
                frontier
                    .par_iter()
                    .flat_map_iter(|&u| {
                        csr.neighbors(u).iter().copied().filter(|&v| {
                            dist[v as usize]
                                .compare_exchange(
                                    UNREACHED,
                                    d + 1,
                                    Ordering::Relaxed,
                                    Ordering::Relaxed,
                                )
                                .is_ok()
                        })
                    })
                    .collect()
            };
            let pull = |&w: &VertexId| {
                let mut acc = 0.0;
                for &u in rev.neighbors(w) {
                    if dist[u as usize].load(Ordering::Relaxed) == d {
                        acc += sigma[u as usize].load();
                    }
                }
                sigma[w as usize].store(acc);
            };
            if next.len() < PAR_GRAIN {
                next.iter().for_each(pull);
            } else {
                next.par_iter().for_each(pull);
            }
            level_start = ws.levels.order.len();
            ws.levels.starts.push(level_start);
            ws.levels.order.extend_from_slice(&next);
            d += 1;
        }
        ws.levels.starts.push(ws.levels.order.len());
        #[cfg(feature = "invariants")]
        crate::util::check_levels(&ws.levels, &ws.dist, &ws.sigma, s);

        // Phase 2: backward sweep, one level at a time, single writer per
        // vertex; δ of deeper levels is final thanks to the fork-join
        // barrier between levels.
        let s_boundary = sg.is_boundary[s as usize];
        let beta_s = if s_boundary { sg.beta[s as usize] as f64 } else { 0.0 };
        let gamma_s = sg.gamma[s as usize] as f64;
        let dist = &ws.dist;
        let sigma = &ws.sigma;
        let d_i2i = &ws.d_i2i;
        let d_i2o = &ws.d_i2o;
        let d_o2o = &ws.d_o2o;
        let bc_ref = &bc;
        for dd in (0..ws.levels.num_levels()).rev() {
            let level = ws.levels.level(dd);
            let dv = dd as u32;
            let body = |&v: &VertexId| {
                let vu = v as usize;
                let sv = sigma[vu].load();
                let boundary_v = sg.is_boundary[vu] && v != s;
                let mut i2i = 0.0;
                let mut i2o = if boundary_v { sg.alpha[vu] as f64 } else { 0.0 };
                let mut o2o =
                    if s_boundary && boundary_v { beta_s * sg.alpha[vu] as f64 } else { 0.0 };
                for &w in csr.neighbors(v) {
                    if dist[w as usize].load(Ordering::Relaxed) == dv + 1 {
                        let c = sv / sigma[w as usize].load();
                        i2i += c * (1.0 + d_i2i[w as usize].load());
                        i2o += c * d_i2o[w as usize].load();
                        if s_boundary {
                            o2o += c * d_o2o[w as usize].load();
                        }
                    }
                }
                d_i2i[vu].store(i2i);
                d_i2o[vu].store(i2o);
                d_o2o[vu].store(o2o);
                let cell = &bc_ref[vu];
                if v != s {
                    cell.store(cell.load() + (1.0 + gamma_s) * (i2i + i2o) + beta_s * i2i + o2o);
                } else if gamma_s > 0.0 {
                    let alpha_s = if s_boundary { sg.alpha[vu] as f64 } else { 0.0 };
                    let whisker_self = if directed { 0.0 } else { 1.0 };
                    cell.store(cell.load() + gamma_s * ((i2i - whisker_self) + i2o + alpha_s));
                }
            };
            if level.len() < PAR_GRAIN {
                level.iter().for_each(body);
            } else {
                level.par_iter().for_each(body);
            }
        }
        // Forward and backward both scan the out-edges of every reached
        // vertex once.
        edges += 2 * ws.levels.order.iter().map(|&v| csr.degree(v) as u64).sum::<u64>();
        ws.reset_touched();
    }
    let merged = into_f64_vec(bc);
    bc_local.copy_from_slice(&merged);
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use apgre_decomp::{decompose, PartitionOptions};
    use apgre_graph::generators;

    /// Sequential and parallel kernels must agree sub-graph by sub-graph.
    #[test]
    fn seq_and_par_kernels_agree() {
        let g = generators::whiskered_community(&generators::WhiskeredCommunityParams {
            core_vertices: 80,
            core_attach: 3,
            community_count: 6,
            community_size: 12,
            community_density: 1.8,
            whiskers: 40,
            seed: 21,
        });
        let d = decompose(&g, &PartitionOptions { merge_threshold: 8, ..Default::default() });
        for sg in &d.subgraphs {
            let mut seq = vec![0.0; sg.num_vertices()];
            let mut par = vec![0.0; sg.num_vertices()];
            bc_in_subgraph_seq(sg, &mut seq);
            bc_in_subgraph_par(sg, &mut par);
            for l in 0..seq.len() {
                assert!(
                    (seq[l] - par[l]).abs() <= 1e-7 * (1.0 + seq[l].abs()),
                    "SG{} local {l}: {} vs {}",
                    sg.id,
                    seq[l],
                    par[l]
                );
            }
        }
    }

    #[test]
    fn kernel_edge_counts_match() {
        let g = generators::lollipop(10, 30);
        let d = decompose(&g, &PartitionOptions { merge_threshold: 8, ..Default::default() });
        for sg in &d.subgraphs {
            let mut a = vec![0.0; sg.num_vertices()];
            let mut b = vec![0.0; sg.num_vertices()];
            let e_seq = bc_in_subgraph_seq(sg, &mut a);
            let e_par = bc_in_subgraph_par(sg, &mut b);
            // Connected undirected sub-graph: both kernels touch all local
            // arcs twice per root.
            assert_eq!(e_seq, e_par, "SG{}", sg.id);
        }
    }
}
