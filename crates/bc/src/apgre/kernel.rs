//! The per-sub-graph BC kernels — the paper's Algorithm 2 (`BCinSG`).
//!
//! For every root `s ∈ R_sgi` a kernel runs one BFS over the sub-graph's
//! local CSR and one backward sweep that accumulates the four dependencies of
//! §3.1.1 simultaneously:
//!
//! * `δ_i2i` — Brandes' classic dependency, restricted to the sub-graph
//!   (Equation 3),
//! * `δ_i2o` — paths ending beyond a boundary articulation point, weighted by
//!   `α` (Equation 4),
//! * `δ_o2o` — paths crossing the sub-graph between two boundary points,
//!   weighted by `β(s)·α(t)` (Equation 6; only when `s` is itself a boundary
//!   point),
//! * `δ_o2i` — sources beyond `s`; never materialized as an array because
//!   Equation 5 reduces it to `β(s)·δ_i2i(v)` (the `sizeO2I` factor of
//!   Algorithm 2).
//!
//! The `δ^init` terms of Equations 4/6 are folded into the backward sweep
//! lazily (when a vertex is popped) rather than pre-initialized as in the
//! paper's phase 0 — same recursion, but the workspace reset stays
//! `O(reached)`.
//!
//! Scores merge per Equation 7. One deviation from the paper as printed, with
//! rationale in DESIGN.md §3.3: for **undirected** whiskers the root's own
//! score uses `γ(s)·(δ_i2i(s) − 1 + δ_i2o(s) + α(s))` — the `−1` excludes the
//! whisker itself from its derived target set, and the `+α(s)` restores the
//! `δ^init_i2o` term at the root that Algorithm 2's `i != s` guard drops.
//! Both corrections are pinned by the `apgre ≡ brandes` property tests.
//!
//! # Three kernels, one sweep
//!
//! The module ships three interchangeable implementations, selected per
//! sub-graph by [`super::KernelPolicy`] (see DESIGN.md §3.7):
//!
//! * [`bc_in_subgraph_seq`] — one thread, plain `f64`, the shared
//!   [`sweep_root`] loop body;
//! * [`bc_in_subgraph_root_par`] — coarse-grained **root-parallel**: roots are
//!   split into fixed chunks, each chunk swept with the *same* sequential
//!   sweep into a private partial score vector (zero atomics on the hot
//!   path), and the partials are merged in chunk order — bitwise
//!   deterministic regardless of scheduling;
//! * [`bc_in_subgraph_level_sync`] — fine-grained **level-synchronous**: the
//!   paper's inner level of the two-level parallelization, for the
//!   few-roots-but-huge sub-graph regime where root supply cannot feed the
//!   workers.
//!
//! Every kernel has a `*_with` variant taking a caller-owned workspace so the
//! driver's buffer pool can recycle the `O(n)` scratch arrays across
//! sub-graphs instead of reallocating them per call.

use crate::sync::{AtomicU32, Ordering};
use crate::util::{add_assign_scores, atomic_f64_vec, AtomicF64, Levels};
use apgre_decomp::SubGraph;
use apgre_graph::{VertexId, UNREACHED};
use rayon::prelude::*;
use std::collections::VecDeque;

/// Sequential workspace for one sub-graph: the BFS and four-dependency
/// arrays of Algorithm 2, sized for the sub-graph's vertex count and reset
/// in `O(reached)` between roots so it can be reused across roots, chunks,
/// and (via the driver's pool) whole sub-graphs.
pub struct SgWorkspace {
    dist: Vec<u32>,
    sigma: Vec<f64>,
    d_i2i: Vec<f64>,
    d_i2o: Vec<f64>,
    d_o2o: Vec<f64>,
    order: Vec<VertexId>,
    queue: VecDeque<VertexId>,
}

impl SgWorkspace {
    /// Workspace covering sub-graphs of up to `n` vertices.
    pub fn new(n: usize) -> Self {
        SgWorkspace {
            dist: vec![UNREACHED; n],
            sigma: vec![0.0; n],
            d_i2i: vec![0.0; n],
            d_i2o: vec![0.0; n],
            d_o2o: vec![0.0; n],
            order: Vec::with_capacity(n),
            queue: VecDeque::new(),
        }
    }

    /// Grows the workspace to cover `n` vertices. Cells keep the reset-clean
    /// invariant (`dist = UNREACHED`, everything else zero), so a pooled
    /// workspace can serve sub-graphs of any size up to its capacity.
    pub fn ensure(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, UNREACHED);
            self.sigma.resize(n, 0.0);
            self.d_i2i.resize(n, 0.0);
            self.d_i2o.resize(n, 0.0);
            self.d_o2o.resize(n, 0.0);
        }
    }

    fn reset_touched(&mut self) {
        for &v in &self.order {
            self.dist[v as usize] = UNREACHED;
            self.sigma[v as usize] = 0.0;
            self.d_i2i[v as usize] = 0.0;
            self.d_i2o[v as usize] = 0.0;
            self.d_o2o[v as usize] = 0.0;
        }
        self.order.clear();
    }
}

/// One root's forward BFS plus backward four-dependency sweep — Algorithm 2's
/// loop body, shared verbatim by the sequential and root-parallel kernels so
/// they cannot drift apart. Accumulates into `bc_local`, returns the number
/// of edges examined, and leaves `ws` reset for the next root.
fn sweep_root(sg: &SubGraph, s: VertexId, ws: &mut SgWorkspace, bc_local: &mut [f64]) -> u64 {
    let edges = sweep_root_core(sg, s, ws, bc_local, None);
    ws.reset_touched();
    edges
}

/// The sweep body proper. When `contrib` is given, the root's own Equation-7
/// term for every touched vertex is *also* recorded there (`contrib[v] =
/// term` before the `bc_local[v] += term` add, so the accumulated span stays
/// bitwise identical to the unobserved sweep). Does **not** reset the
/// workspace — the caller decides when, so an observer can still read
/// `ws.order` / `contrib` after the sweep.
fn sweep_root_core(
    sg: &SubGraph,
    s: VertexId,
    ws: &mut SgWorkspace,
    bc_local: &mut [f64],
    mut contrib: Option<&mut [f64]>,
) -> u64 {
    let csr = sg.graph.csr();
    let directed = sg.graph.is_directed();
    let mut edges = 0u64;
    // Phase 1: forward BFS (σ and order).
    ws.dist[s as usize] = 0;
    ws.sigma[s as usize] = 1.0;
    ws.order.push(s);
    ws.queue.push_back(s);
    // Audited: every id is a compacted sub-graph id `< sg.n` by construction,
    // and all workspace arrays are sized to sg.n. lint:allow(hot_index)
    while let Some(u) = ws.queue.pop_front() {
        let du = ws.dist[u as usize];
        for &v in csr.neighbors(u) {
            edges += 1;
            if ws.dist[v as usize] == UNREACHED {
                ws.dist[v as usize] = du + 1;
                ws.order.push(v);
                ws.queue.push_back(v);
            }
            if ws.dist[v as usize] == du + 1 {
                ws.sigma[v as usize] += ws.sigma[u as usize];
            }
        }
    }
    // Phase 2: backward accumulation of the four dependencies and the
    // score merge (Equation 7).
    let s_boundary = sg.is_boundary[s as usize];
    let beta_s = if s_boundary { sg.beta[s as usize] as f64 } else { 0.0 };
    let gamma_s = sg.gamma[s as usize] as f64;
    // Audited: same compacted-id invariant as phase 1; `order` holds only
    // ids the BFS itself pushed. lint:allow(hot_index)
    for idx in (0..ws.order.len()).rev() {
        let v = ws.order[idx];
        let vu = v as usize;
        let dv = ws.dist[vu];
        let sv = ws.sigma[vu];
        let boundary_v = sg.is_boundary[vu] && v != s;
        let mut i2i = 0.0;
        let mut i2o = if boundary_v { sg.alpha[vu] as f64 } else { 0.0 };
        let mut o2o = if s_boundary && boundary_v { beta_s * sg.alpha[vu] as f64 } else { 0.0 };
        for &w in csr.neighbors(v) {
            edges += 1;
            if ws.dist[w as usize] == dv + 1 {
                let c = sv / ws.sigma[w as usize];
                i2i += c * (1.0 + ws.d_i2i[w as usize]);
                i2o += c * ws.d_i2o[w as usize];
                if s_boundary {
                    o2o += c * ws.d_o2o[w as usize];
                }
            }
        }
        ws.d_i2i[vu] = i2i;
        ws.d_i2o[vu] = i2o;
        ws.d_o2o[vu] = o2o;
        if v != s {
            let term = (1.0 + gamma_s) * (i2i + i2o) + beta_s * i2i + o2o;
            if let Some(c) = contrib.as_deref_mut() {
                c[vu] = term;
            }
            bc_local[vu] += term;
        } else if gamma_s > 0.0 {
            let alpha_s = if s_boundary { sg.alpha[vu] as f64 } else { 0.0 };
            let whisker_self = if directed { 0.0 } else { 1.0 };
            let term = gamma_s * ((i2i - whisker_self) + i2o + alpha_s);
            if let Some(c) = contrib.as_deref_mut() {
                c[vu] = term;
            }
            bc_local[vu] += term;
        }
    }
    edges
}

/// Sequential Algorithm 2 over one sub-graph, with a freshly allocated
/// workspace. Returns the number of edges examined (forward + backward
/// scans). Pinned against serial Brandes by the zoo equivalence tests.
pub fn bc_in_subgraph_seq(sg: &SubGraph, bc_local: &mut [f64]) -> u64 {
    bc_in_subgraph_seq_with(sg, bc_local, &mut SgWorkspace::new(sg.num_vertices()))
}

/// [`bc_in_subgraph_seq`] with a caller-owned (typically pooled) workspace.
pub fn bc_in_subgraph_seq_with(sg: &SubGraph, bc_local: &mut [f64], ws: &mut SgWorkspace) -> u64 {
    bc_in_subgraph_seq_roots_with(sg, &sg.roots, bc_local, ws)
}

/// [`bc_in_subgraph_seq_with`] over an explicit root slice instead of the
/// full `sg.roots` — the sampling entry point. Each root must be one of the
/// sub-graph's compacted local ids; sweeping a subset yields that subset's
/// exact Equation-7 contribution (the sampled estimator rescales it).
pub fn bc_in_subgraph_seq_roots_with(
    sg: &SubGraph,
    roots: &[VertexId],
    bc_local: &mut [f64],
    ws: &mut SgWorkspace,
) -> u64 {
    let n = sg.num_vertices();
    debug_assert_eq!(bc_local.len(), n);
    ws.ensure(n);
    let mut edges = 0u64;
    for &s in roots {
        edges += sweep_root(sg, s, ws, bc_local);
    }
    edges
}

/// [`bc_in_subgraph_seq_roots_with`] that additionally surfaces each root's
/// *own* Equation-7 contribution vector — the per-root hook of the adaptive
/// sampling estimator. After every root's backward sweep, `observe` is
/// called with the dense per-local-vertex contribution of that root alone
/// (`contrib[v] == 0` for vertices the root did not reach); the kernel then
/// zeroes the touched cells so `contrib` is clean for the next root.
///
/// `contrib` is caller scratch of length ≥ `sg.num_vertices()` that must
/// arrive zeroed. `bc_local` receives exactly the same single per-vertex add
/// per root as the unobserved sweep, so the accumulated span is **bitwise
/// identical** to [`bc_in_subgraph_seq_roots_with`] over the same roots —
/// observing costs an extra O(reached) store/reset per root, never a
/// different rounding.
///
/// Roots are observed in slice order (the estimator draws them sorted
/// ascending), which fixes the fold order of any streaming statistics the
/// observer accumulates — the determinism anchor of the variance-guided
/// budget allocator.
pub fn bc_in_subgraph_seq_roots_observed(
    sg: &SubGraph,
    roots: &[VertexId],
    bc_local: &mut [f64],
    ws: &mut SgWorkspace,
    contrib: &mut [f64],
    mut observe: impl FnMut(&[f64]),
) -> u64 {
    let n = sg.num_vertices();
    debug_assert_eq!(bc_local.len(), n);
    debug_assert!(contrib.len() >= n);
    ws.ensure(n);
    let mut edges = 0u64;
    // Audited: `contrib[..n]` is a length-n slice take with n ≤ contrib.len()
    // asserted at entry; the reset loop writes only compacted ids the BFS
    // pushed, all `< n ≤ contrib.len()`. lint:allow(hot_index)
    for &s in roots {
        edges += sweep_root_core(sg, s, ws, bc_local, Some(contrib));
        observe(&contrib[..n]);
        for &v in &ws.order {
            contrib[v as usize] = 0.0;
        }
        ws.reset_touched();
    }
    edges
}

/// Root-parallel Algorithm 2 — the coarse-grained inner kernel.
///
/// `sg.roots` is split into fixed contiguous chunks (boundaries depend only
/// on `|roots|`, `grain` and the pool's worker count, never on scheduling).
/// Each worker lazily creates one long-lived [`SgWorkspace`] (`map_init`) and
/// sweeps whole chunks with the same sequential [`sweep_root`] body the
/// sequential kernel uses, accumulating into a **private** plain-`f64`
/// partial score vector — zero atomics, zero CAS traffic, zero per-level
/// fork-join on the hot path. The per-chunk partials are then merged by a
/// **pairwise tree reduction** of fixed shape: round `r` adds partial
/// `2^r·(2k+1)` into partial `2^r·2k` for every `k`, in parallel across
/// pairs, until one vector remains, which folds into `bc_local`. The tree's
/// shape depends only on the chunk count — itself a function of `|roots|`,
/// `grain`, and the pool's worker count — so the floating-point fold order
/// is fixed and two runs on the same pool size produce bitwise-identical
/// scores, while the merge drops from `O(chunks·n)` sequential work to
/// `O(log(chunks))` parallel rounds.
///
/// `grain` is the minimum number of roots per chunk; chunks also target ~4
/// per worker so stealing can balance uneven sweep costs.
pub fn bc_in_subgraph_root_par(sg: &SubGraph, bc_local: &mut [f64], grain: usize) -> u64 {
    bc_in_subgraph_root_par_roots(sg, &sg.roots, bc_local, grain)
}

/// [`bc_in_subgraph_root_par`] over an explicit root slice — same fixed
/// chunking and pairwise tree reduction, so for a given root slice, grain and
/// pool size the result is bitwise deterministic.
pub fn bc_in_subgraph_root_par_roots(
    sg: &SubGraph,
    roots: &[VertexId],
    bc_local: &mut [f64],
    grain: usize,
) -> u64 {
    let n = sg.num_vertices();
    debug_assert_eq!(bc_local.len(), n);
    if roots.is_empty() {
        return 0;
    }
    let threads = rayon::current_num_threads().max(1);
    // Fixed, deterministic chunking: at least `grain` roots per chunk (one
    // partial vector is allocated per chunk), at most ~4 chunks per worker.
    let chunk = roots.len().div_ceil(4 * threads).max(grain.max(1));
    let mut partials: Vec<(Vec<f64>, u64)> = roots
        .par_chunks(chunk)
        .map_init(
            || SgWorkspace::new(n),
            |ws, roots| {
                let mut part = vec![0.0f64; n];
                let mut edges = 0u64;
                for &s in roots {
                    edges += sweep_root(sg, s, ws, &mut part);
                }
                (part, edges)
            },
        )
        .collect();
    // Pairwise tree reduction over the chunk partials. Each round pairs
    // neighbours — partial 2k absorbs 2k+1, the pair merges running in
    // parallel — so the reduction tree, and therefore the f64 fold order, is
    // a pure function of the chunk count. The u64 edge tallies are exact
    // under any association; they ride along with the surviving partial.
    while partials.len() > 1 {
        let mut pairs: Vec<((Vec<f64>, u64), Option<(Vec<f64>, u64)>)> =
            Vec::with_capacity(partials.len().div_ceil(2));
        let mut it = partials.into_iter();
        while let Some(a) = it.next() {
            pairs.push((a, it.next()));
        }
        partials = pairs
            .into_par_iter()
            .map(|((mut a, mut edges), b)| {
                if let Some((bv, be)) = b {
                    add_assign_scores(&mut a, &bv);
                    edges += be;
                }
                (a, edges)
            })
            .collect();
    }
    let (part, edges) = partials.pop().expect("roots non-empty implies at least one chunk");
    add_assign_scores(bc_local, &part);
    edges
}

/// Level-synchronous workspace: the parallel mirror of [`SgWorkspace`], plus
/// the shared `bc` accumulation mirror (reused across every root of a call
/// instead of being rebuilt per call) and the back frontier buffer (`next`)
/// of the double-buffered frontier — `levels.order` holds the settled front,
/// `next` is refilled in place each level, so frontier expansion allocates
/// nothing after warm-up.
pub struct SgParWs {
    dist: Vec<AtomicU32>,
    sigma: Vec<AtomicF64>,
    d_i2i: Vec<AtomicF64>,
    d_i2o: Vec<AtomicF64>,
    d_o2o: Vec<AtomicF64>,
    bc: Vec<AtomicF64>,
    next: Vec<VertexId>,
    levels: Levels,
}

impl SgParWs {
    /// Workspace covering sub-graphs of up to `n` vertices.
    pub fn new(n: usize) -> Self {
        SgParWs {
            dist: (0..n).map(|_| AtomicU32::new(UNREACHED)).collect(),
            sigma: atomic_f64_vec(n),
            d_i2i: atomic_f64_vec(n),
            d_i2o: atomic_f64_vec(n),
            d_o2o: atomic_f64_vec(n),
            bc: atomic_f64_vec(n),
            next: Vec::new(),
            levels: Levels::default(),
        }
    }

    /// Grows the workspace to cover `n` vertices (pool reuse across
    /// sub-graphs of different sizes); existing cells keep the reset-clean
    /// invariant.
    pub fn ensure(&mut self, n: usize) {
        let len = self.dist.len();
        if len < n {
            self.dist.extend((len..n).map(|_| AtomicU32::new(UNREACHED)));
            self.sigma.extend((len..n).map(|_| AtomicF64::new(0.0)));
            self.d_i2i.extend((len..n).map(|_| AtomicF64::new(0.0)));
            self.d_i2o.extend((len..n).map(|_| AtomicF64::new(0.0)));
            self.d_o2o.extend((len..n).map(|_| AtomicF64::new(0.0)));
            self.bc.extend((len..n).map(|_| AtomicF64::new(0.0)));
        }
    }

    fn reset_touched(&mut self) {
        for &v in &self.levels.order {
            self.dist[v as usize].store(UNREACHED, Ordering::Relaxed);
            self.sigma[v as usize].store(0.0);
            self.d_i2i[v as usize].store(0.0);
            self.d_i2o[v as usize].store(0.0);
            self.d_o2o[v as usize].store(0.0);
        }
        self.levels.clear();
    }
}

/// Level-synchronous parallel Algorithm 2 over one sub-graph, with a freshly
/// allocated workspace — the paper's fine-grained inner level of the
/// two-level parallelization. Forward σ is pulled per level (single writer
/// per cell), the backward sweep scans successors; no locks anywhere,
/// exactly as in Algorithm 2's successor method. Levels narrower than
/// `grain` vertices run sequentially to dodge fork-join overhead. Returns
/// the number of edges examined.
pub fn bc_in_subgraph_level_sync(sg: &SubGraph, bc_local: &mut [f64], grain: usize) -> u64 {
    bc_in_subgraph_level_sync_with(sg, bc_local, grain, &mut SgParWs::new(sg.num_vertices()))
}

/// [`bc_in_subgraph_level_sync`] with a caller-owned (typically pooled)
/// workspace.
pub fn bc_in_subgraph_level_sync_with(
    sg: &SubGraph,
    bc_local: &mut [f64],
    grain: usize,
    ws: &mut SgParWs,
) -> u64 {
    bc_in_subgraph_level_sync_roots_with(sg, &sg.roots, bc_local, grain, ws)
}

/// [`bc_in_subgraph_level_sync_with`] over an explicit root slice — the
/// sampling entry point for the root-starved-but-huge regime.
pub fn bc_in_subgraph_level_sync_roots_with(
    sg: &SubGraph,
    roots: &[VertexId],
    bc_local: &mut [f64],
    grain: usize,
    ws: &mut SgParWs,
) -> u64 {
    let n = sg.num_vertices();
    debug_assert_eq!(bc_local.len(), n);
    ws.ensure(n);
    let grain = grain.max(1);
    let csr = sg.graph.csr();
    let rev = sg.graph.rev_csr();
    let directed = sg.graph.is_directed();
    let mut edges = 0u64;

    // Seed the shared bc mirror once per call; it then accumulates across
    // every root (cells ≥ n are stale pool leftovers and never read).
    for (cell, &x) in ws.bc.iter().zip(bc_local.iter()) {
        cell.store(x);
    }

    // Audited: roots and neighbors are compacted sub-graph ids `< sg.n`;
    // `ensure(n)` above sizes every shared array. lint:allow(hot_index)
    for &s in roots {
        // Split borrows: the frontier is a slice of `levels.order`, the back
        // buffer `next` refills in place, the atomic arrays are shared.
        let SgParWs { dist, sigma, d_i2i, d_i2o, d_o2o, bc, next, levels } = &mut *ws;
        let (dist, sigma) = (&*dist, &*sigma);

        // Phase 1: frontier discovery by CAS; σ pulled per level.
        dist[s as usize].store(0, Ordering::Relaxed);
        sigma[s as usize].store(1.0);
        levels.order.push(s);
        levels.starts.push(0);
        let mut level_start = 0usize;
        let mut d = 0u32;
        loop {
            let frontier = &levels.order[level_start..];
            if frontier.is_empty() {
                levels.starts.pop();
                break;
            }
            next.clear();
            if frontier.len() < grain {
                for &u in frontier {
                    for &v in csr.neighbors(u) {
                        if dist[v as usize]
                            .compare_exchange(
                                UNREACHED,
                                d + 1,
                                Ordering::Relaxed,
                                Ordering::Relaxed,
                            )
                            .is_ok()
                        {
                            next.push(v);
                        }
                    }
                }
            } else {
                next.par_extend(frontier.par_iter().flat_map_iter(|&u| {
                    csr.neighbors(u).iter().copied().filter(|&v| {
                        dist[v as usize]
                            .compare_exchange(
                                UNREACHED,
                                d + 1,
                                Ordering::Relaxed,
                                Ordering::Relaxed,
                            )
                            .is_ok()
                    })
                }));
            }
            let pull = |&w: &VertexId| {
                let mut acc = 0.0;
                for &u in rev.neighbors(w) {
                    if dist[u as usize].load(Ordering::Relaxed) == d {
                        acc += sigma[u as usize].load();
                    }
                }
                sigma[w as usize].store(acc);
            };
            if next.len() < grain {
                next.iter().for_each(pull);
            } else {
                next.par_iter().for_each(pull);
            }
            level_start = levels.order.len();
            levels.starts.push(level_start);
            levels.order.extend_from_slice(next);
            d += 1;
        }
        levels.starts.push(levels.order.len());
        #[cfg(feature = "invariants")]
        crate::util::check_levels(levels, dist, sigma, s);

        // Phase 2: backward sweep, one level at a time, single writer per
        // vertex; δ of deeper levels is final thanks to the fork-join
        // barrier between levels.
        let s_boundary = sg.is_boundary[s as usize];
        let beta_s = if s_boundary { sg.beta[s as usize] as f64 } else { 0.0 };
        let gamma_s = sg.gamma[s as usize] as f64;
        let (d_i2i, d_i2o, d_o2o, bc_ref) = (&*d_i2i, &*d_i2o, &*d_o2o, &*bc);
        for dd in (0..levels.num_levels()).rev() {
            let level = levels.level(dd);
            let dv = dd as u32;
            let body = |&v: &VertexId| {
                let vu = v as usize;
                let sv = sigma[vu].load();
                let boundary_v = sg.is_boundary[vu] && v != s;
                let mut i2i = 0.0;
                let mut i2o = if boundary_v { sg.alpha[vu] as f64 } else { 0.0 };
                let mut o2o =
                    if s_boundary && boundary_v { beta_s * sg.alpha[vu] as f64 } else { 0.0 };
                for &w in csr.neighbors(v) {
                    if dist[w as usize].load(Ordering::Relaxed) == dv + 1 {
                        let c = sv / sigma[w as usize].load();
                        i2i += c * (1.0 + d_i2i[w as usize].load());
                        i2o += c * d_i2o[w as usize].load();
                        if s_boundary {
                            o2o += c * d_o2o[w as usize].load();
                        }
                    }
                }
                d_i2i[vu].store(i2i);
                d_i2o[vu].store(i2o);
                d_o2o[vu].store(o2o);
                let cell = &bc_ref[vu];
                if v != s {
                    cell.store(cell.load() + (1.0 + gamma_s) * (i2i + i2o) + beta_s * i2i + o2o);
                } else if gamma_s > 0.0 {
                    let alpha_s = if s_boundary { sg.alpha[vu] as f64 } else { 0.0 };
                    let whisker_self = if directed { 0.0 } else { 1.0 };
                    cell.store(cell.load() + gamma_s * ((i2i - whisker_self) + i2o + alpha_s));
                }
            };
            if level.len() < grain {
                level.iter().for_each(body);
            } else {
                level.par_iter().for_each(body);
            }
        }
        // Forward and backward both scan the out-edges of every reached
        // vertex once.
        edges += 2 * ws.levels.order.iter().map(|&v| csr.degree(v) as u64).sum::<u64>();
        ws.reset_touched();
    }
    for (dst, cell) in bc_local.iter_mut().zip(ws.bc.iter()) {
        *dst = cell.load();
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use apgre_decomp::{decompose, PartitionOptions};
    use apgre_graph::generators;

    const GRAIN: usize = 256;

    /// All kernels must agree sub-graph by sub-graph, including pooled-
    /// workspace variants with oversized (recycled) workspaces.
    #[test]
    fn all_kernels_agree() {
        let g = generators::whiskered_community(&generators::WhiskeredCommunityParams {
            core_vertices: 80,
            core_attach: 3,
            community_count: 6,
            community_size: 12,
            community_density: 1.8,
            whiskers: 40,
            seed: 21,
        });
        let d = decompose(&g, &PartitionOptions { merge_threshold: 8, ..Default::default() });
        // Deliberately oversized pooled workspaces, shared across sub-graphs.
        let mut pooled_seq = SgWorkspace::new(4);
        let mut pooled_par = SgParWs::new(4);
        for sg in &d.subgraphs {
            let n = sg.num_vertices();
            let mut seq = vec![0.0; n];
            bc_in_subgraph_seq(sg, &mut seq);
            for (name, got) in [
                ("level_sync", {
                    let mut v = vec![0.0; n];
                    bc_in_subgraph_level_sync(sg, &mut v, GRAIN);
                    v
                }),
                ("level_sync_tiny_grain", {
                    let mut v = vec![0.0; n];
                    bc_in_subgraph_level_sync_with(sg, &mut v, 1, &mut pooled_par);
                    v
                }),
                ("root_par", {
                    let mut v = vec![0.0; n];
                    bc_in_subgraph_root_par(sg, &mut v, 1);
                    v
                }),
                ("seq_pooled", {
                    let mut v = vec![0.0; n];
                    bc_in_subgraph_seq_with(sg, &mut v, &mut pooled_seq);
                    v
                }),
            ] {
                for l in 0..n {
                    assert!(
                        (seq[l] - got[l]).abs() <= 1e-7 * (1.0 + seq[l].abs()),
                        "SG{} {name} local {l}: {} vs {}",
                        sg.id,
                        seq[l],
                        got[l]
                    );
                }
            }
        }
    }

    #[test]
    fn kernel_edge_counts_match() {
        let g = generators::lollipop(10, 30);
        let d = decompose(&g, &PartitionOptions { merge_threshold: 8, ..Default::default() });
        for sg in &d.subgraphs {
            let mut a = vec![0.0; sg.num_vertices()];
            let mut b = vec![0.0; sg.num_vertices()];
            let mut c = vec![0.0; sg.num_vertices()];
            let e_seq = bc_in_subgraph_seq(sg, &mut a);
            let e_ls = bc_in_subgraph_level_sync(sg, &mut b, GRAIN);
            let e_rp = bc_in_subgraph_root_par(sg, &mut c, 4);
            // Connected undirected sub-graph: all kernels touch all local
            // arcs twice per root.
            assert_eq!(e_seq, e_ls, "SG{}", sg.id);
            assert_eq!(e_seq, e_rp, "SG{}", sg.id);
        }
    }

    /// The root-parallel kernel's fixed chunking + ordered reduction makes it
    /// bitwise deterministic.
    #[test]
    fn root_par_is_bitwise_deterministic() {
        let g = generators::erdos_renyi_undirected(140, 0.05, 9);
        let d = decompose(&g, &PartitionOptions::default());
        for sg in &d.subgraphs {
            let mut a = vec![0.0; sg.num_vertices()];
            let mut b = vec![0.0; sg.num_vertices()];
            bc_in_subgraph_root_par(sg, &mut a, 2);
            bc_in_subgraph_root_par(sg, &mut b, 2);
            assert_eq!(a, b, "SG{}", sg.id);
        }
    }
}
