//! Weighted betweenness centrality — Brandes' generalization to positive
//! integer weights, plus the APGRE extension.
//!
//! The paper evaluates unweighted graphs only, but its decomposition theory
//! never uses unweightedness: articulation points dominate every
//! inter-sub-graph path whatever the weights, `α`/`β` are pure reachability
//! counts, and the whisker argument (`D_s` is a sub-DAG of `D_u`) holds for
//! any positive weights. The only change is the forward phase — Dijkstra
//! instead of BFS — and the backward sweep walking the settle order instead
//! of BFS levels, with the successor test `dist[w] == dist[v] + w(v,w)`.
//! Positive weights are required (the substrate rejects zeros) because a
//! zero-weight excursion out of a sub-graph could tie a shortest path.
//!
//! Parallelism: sub-graphs run in parallel (the coarse level); each
//! per-source Dijkstra is sequential — priority-queue SSSP does not
//! level-synchronize the way BFS does, and parallel Δ-stepping is beyond
//! this extension's scope.

use apgre_decomp::{decompose, Decomposition, PartitionOptions, SubGraph};
use apgre_graph::weighted::{dijkstra_sssp, WeightedGraph, WUNREACHED};
use apgre_graph::VertexId;
use rayon::prelude::*;

/// Serial weighted Brandes: one Dijkstra per source, dependency accumulation
/// in reverse settle order. `O(V·(E log V))`.
pub fn bc_weighted_serial(wg: &WeightedGraph) -> Vec<f64> {
    let n = wg.num_vertices();
    let csr = wg.structure().csr();
    let weights = wg.fwd_weights();
    let mut bc = vec![0.0f64; n];
    let mut delta = vec![0.0f64; n];
    for s in 0..n as VertexId {
        let dag = dijkstra_sssp(csr, weights, s);
        for &v in dag.order.iter().rev() {
            let (targets, ws) = wg.out_arcs(v);
            let mut acc = 0.0;
            for (i, &w) in targets.iter().enumerate() {
                if dag.dist[w as usize] == dag.dist[v as usize] + ws[i] as u64 {
                    acc +=
                        dag.sigma[v as usize] / dag.sigma[w as usize] * (1.0 + delta[w as usize]);
                }
            }
            delta[v as usize] = acc;
            if v != s {
                bc[v as usize] += acc;
            }
        }
        for &v in &dag.order {
            delta[v as usize] = 0.0;
        }
    }
    bc
}

/// Definitional weighted BC — the independent test oracle (`O(V²)` memory).
pub fn naive_weighted_bc(wg: &WeightedGraph) -> Vec<f64> {
    let n = wg.num_vertices();
    let csr = wg.structure().csr();
    let weights = wg.fwd_weights();
    let dags: Vec<_> = (0..n as VertexId).map(|s| dijkstra_sssp(csr, weights, s)).collect();
    let mut bc = vec![0.0f64; n];
    for s in 0..n {
        for t in 0..n {
            if s == t || dags[s].dist[t] == WUNREACHED {
                continue;
            }
            for v in 0..n {
                if v == s || v == t {
                    continue;
                }
                if dags[s].dist[v] != WUNREACHED
                    && dags[v].dist[t] != WUNREACHED
                    && dags[s].dist[v] + dags[v].dist[t] == dags[s].dist[t]
                {
                    bc[v] += dags[s].sigma[v] * dags[v].sigma[t] / dags[s].sigma[t];
                }
            }
        }
    }
    bc
}

/// Weighted APGRE with default partition options.
pub fn bc_weighted_apgre(wg: &WeightedGraph) -> Vec<f64> {
    bc_weighted_apgre_with(wg, &PartitionOptions::default())
}

/// Weighted APGRE: decompose the structure (weights don't move articulation
/// points or reachability), then run the weighted four-dependency kernel per
/// sub-graph in parallel and merge.
pub fn bc_weighted_apgre_with(wg: &WeightedGraph, popts: &PartitionOptions) -> Vec<f64> {
    let decomp = decompose(wg.structure(), popts);
    bc_weighted_from_decomposition(wg, &decomp)
}

/// Weighted APGRE on a pre-built decomposition.
pub fn bc_weighted_from_decomposition(wg: &WeightedGraph, decomp: &Decomposition) -> Vec<f64> {
    let locals: Vec<Vec<f64>> = decomp
        .subgraphs
        .par_iter()
        .map(|sg| {
            let weights = local_weights(wg, sg);
            weighted_subgraph_bc(sg, &weights)
        })
        .collect();
    let mut bc = vec![0.0f64; wg.num_vertices()];
    for (sg, local) in decomp.subgraphs.iter().zip(&locals) {
        for (l, &score) in local.iter().enumerate() {
            bc[sg.globals[l] as usize] += score;
        }
    }
    bc
}

/// Per-sub-graph arc weights, aligned with the local CSR's target array.
fn local_weights(wg: &WeightedGraph, sg: &SubGraph) -> Vec<u32> {
    sg.graph
        .csr()
        .edges()
        .map(|(ul, vl)| wg.weight(sg.globals[ul as usize], sg.globals[vl as usize]))
        .collect()
}

/// The weighted Algorithm-2 kernel: Dijkstra forward, reverse settle-order
/// backward sweep accumulating the four dependencies (same recursions and
/// endpoint corrections as the unweighted kernel — see
/// `crate::apgre::kernel`).
fn weighted_subgraph_bc(sg: &SubGraph, weights: &[u32]) -> Vec<f64> {
    let ln = sg.num_vertices();
    let csr = sg.graph.csr();
    let directed = sg.graph.is_directed();
    let mut bc_local = vec![0.0f64; ln];
    let mut d_i2i = vec![0.0f64; ln];
    let mut d_i2o = vec![0.0f64; ln];
    let mut d_o2o = vec![0.0f64; ln];
    for &s in &sg.roots {
        let dag = dijkstra_sssp(csr, weights, s);
        let s_boundary = sg.is_boundary[s as usize];
        let beta_s = if s_boundary { sg.beta[s as usize] as f64 } else { 0.0 };
        let gamma_s = sg.gamma[s as usize] as f64;
        for &v in dag.order.iter().rev() {
            let vu = v as usize;
            let boundary_v = sg.is_boundary[vu] && v != s;
            let mut i2i = 0.0;
            let mut i2o = if boundary_v { sg.alpha[vu] as f64 } else { 0.0 };
            let mut o2o = if s_boundary && boundary_v { beta_s * sg.alpha[vu] as f64 } else { 0.0 };
            let lo = csr.offsets()[vu];
            let hi = csr.offsets()[vu + 1];
            for (i, &w) in csr.targets()[lo..hi].iter().enumerate() {
                if dag.dist[w as usize] == dag.dist[vu] + weights[lo + i] as u64 {
                    let c = dag.sigma[vu] / dag.sigma[w as usize];
                    i2i += c * (1.0 + d_i2i[w as usize]);
                    i2o += c * d_i2o[w as usize];
                    if s_boundary {
                        o2o += c * d_o2o[w as usize];
                    }
                }
            }
            d_i2i[vu] = i2i;
            d_i2o[vu] = i2o;
            d_o2o[vu] = o2o;
            if v != s {
                bc_local[vu] += (1.0 + gamma_s) * (i2i + i2o) + beta_s * i2i + o2o;
            } else if gamma_s > 0.0 {
                let alpha_s = if s_boundary { sg.alpha[vu] as f64 } else { 0.0 };
                let whisker_self = if directed { 0.0 } else { 1.0 };
                bc_local[vu] += gamma_s * ((i2i - whisker_self) + i2o + alpha_s);
            }
        }
        for &v in &dag.order {
            d_i2i[v as usize] = 0.0;
            d_i2o[v as usize] = 0.0;
            d_o2o[v as usize] = 0.0;
        }
    }
    bc_local
}

#[cfg(test)]
mod tests {
    use super::*;
    use apgre_graph::generators;
    use apgre_graph::Graph;

    fn assert_close(ctx: &str, got: &[f64], want: &[f64]) {
        assert_eq!(got.len(), want.len(), "{ctx}");
        for i in 0..want.len() {
            assert!(
                (got[i] - want[i]).abs() <= 1e-6 * (1.0 + want[i].abs()),
                "{ctx}: vertex {i}: {} vs {}",
                got[i],
                want[i]
            );
        }
    }

    #[test]
    fn unit_weights_match_unweighted_brandes() {
        for seed in 0..4 {
            let g = generators::gnm_undirected(50, 90, seed);
            let wg = WeightedGraph::unit(g.clone());
            assert_close("unit-und", &bc_weighted_serial(&wg), &crate::brandes::bc_serial(&g));
            let g = generators::gnm_directed(40, 110, seed);
            let wg = WeightedGraph::unit(g.clone());
            assert_close("unit-dir", &bc_weighted_serial(&wg), &crate::brandes::bc_serial(&g));
        }
    }

    #[test]
    fn weighted_serial_matches_naive() {
        for seed in 0..6 {
            let g = generators::gnm_undirected(28, 46, seed);
            let wg = WeightedGraph::random_weights(g, 7, seed + 100);
            assert_close("w-naive-und", &bc_weighted_serial(&wg), &naive_weighted_bc(&wg));
            let g = generators::gnm_directed(24, 60, seed);
            let wg = WeightedGraph::random_weights(g, 5, seed + 200);
            assert_close("w-naive-dir", &bc_weighted_serial(&wg), &naive_weighted_bc(&wg));
        }
    }

    #[test]
    fn weighted_apgre_matches_weighted_serial() {
        for seed in 0..6 {
            let core = generators::whiskered_community(&generators::WhiskeredCommunityParams {
                core_vertices: 40,
                core_attach: 2,
                community_count: 4,
                community_size: 8,
                community_density: 1.6,
                whiskers: 20,
                seed,
            });
            let wg = WeightedGraph::random_weights(core, 9, seed + 7);
            let want = bc_weighted_serial(&wg);
            let got = bc_weighted_apgre(&wg);
            assert_close(&format!("w-apgre seed {seed}"), &got, &want);
        }
    }

    #[test]
    fn weighted_apgre_matches_on_directed_whiskered() {
        let core = generators::rmat_directed(6, 5, 21);
        let g = generators::attach_directed_whiskers(&core, 30, 0.2, 22);
        let wg = WeightedGraph::random_weights(g, 6, 23);
        assert_close("w-apgre-dir", &bc_weighted_apgre(&wg), &bc_weighted_serial(&wg));
    }

    #[test]
    fn weighted_apgre_across_thresholds() {
        let g = generators::lollipop(7, 20);
        let wg = WeightedGraph::random_weights(g, 4, 31);
        let want = bc_weighted_serial(&wg);
        for threshold in [1usize, 4, 64] {
            let got = bc_weighted_apgre_with(
                &wg,
                &PartitionOptions { merge_threshold: threshold, ..Default::default() },
            );
            assert_close(&format!("t{threshold}"), &got, &want);
        }
    }

    #[test]
    fn weighted_path_closed_form() {
        // A weighted path: weights don't change BC on a path (unique paths).
        let g = generators::path(8);
        let wg = WeightedGraph::random_weights(g, 9, 17);
        let bc = bc_weighted_apgre(&wg);
        for i in 0..8 {
            assert_eq!(bc[i], 2.0 * (i as f64) * ((7 - i) as f64), "vertex {i}");
        }
    }

    #[test]
    fn weights_break_ties_that_unweighted_counts() {
        // Diamond 0-1-3 / 0-2-3: unweighted splits flow between 1 and 2;
        // make the 1-branch cheaper and it takes everything.
        let g = Graph::undirected_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let wg = WeightedGraph::from_graph_with(g, |u, v| {
            let e = (u.min(v), u.max(v));
            if e == (0, 1) || e == (1, 3) {
                1
            } else {
                2
            }
        });
        let bc = bc_weighted_serial(&wg);
        assert_eq!(bc[1], 2.0); // both directions of the (0,3) pair
        assert_eq!(bc[2], 0.0);
    }
}
