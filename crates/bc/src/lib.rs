//! Betweenness-centrality algorithms: the serial baseline, the parallel
//! baselines the paper compares against, and APGRE itself.
//!
//! All algorithms compute the **exact, unnormalized** betweenness centrality
//! of every vertex for unweighted graphs:
//!
//! ```text
//! BC(v) = Σ_{s≠v≠t} σ_st(v) / σ_st
//! ```
//!
//! with ordered `(s, t)` pairs — so undirected graphs accumulate each
//! unordered pair twice, matching the convention of the reference C/C++
//! implementations the paper benchmarks (divide by 2 for the undirected
//! textbook value, see [`normalize_undirected`]).
//!
//! Algorithm inventory (paper §5.1):
//!
//! | paper name       | function                              | strategy |
//! |------------------|---------------------------------------|----------|
//! | `serial`         | [`brandes::bc_serial`]                | Brandes, one thread |
//! | `preds`          | [`parallel::bc_preds`]                | level-synchronous, predecessor lists + locks |
//! | `succs`          | [`parallel::bc_succs`]                | level-synchronous, successor scan, lock-free |
//! | `lockSyncFree`   | [`parallel::bc_lock_free`]            | level-synchronous, atomic CAS accumulation |
//! | `async`          | [`parallel::bc_coarse`]               | coarse-grained source-parallel (stand-in, see DESIGN.md §5) |
//! | `hybrid`         | [`parallel::bc_hybrid`]               | direction-optimizing BFS forward phase |
//! | **APGRE**        | [`apgre::bc_apgre`]                   | articulation-point redundancy elimination, two-level parallelism |
//!
//! All atomics used by the kernels come from the [`sync`] facade, which
//! swaps in model-checked atomics under `--cfg loom`; `cargo xtask lint`
//! enforces this. Building with `--features invariants` turns on runtime
//! validation of the level structure and the decomposition's conservation
//! laws.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apgre;
pub mod approx;
pub mod brandes;
pub mod edge;
pub mod memo;
pub mod parallel;
pub mod redundancy;
pub mod sync;
pub mod util;
pub mod weighted;

pub use apgre::{
    bc_apgre, bc_apgre_with, bc_from_decomposition, run_subgraph_kernels, ApgreOptions,
    ApgreReport, KernelChoice, KernelPolicy, SubgraphKernelRun,
};
pub use approx::{bc_approx, bc_approx_adaptive, bc_approx_apgre};
pub use brandes::{bc_serial, bc_serial_preds};
pub use edge::{edge_bc, girvan_newman};
pub use memo::MemoizedBc;
pub use weighted::{bc_weighted_apgre, bc_weighted_serial};

/// Halves every score: converts the ordered-pair accumulation into the
/// textbook undirected BC value.
pub fn normalize_undirected(bc: &mut [f64]) {
    for x in bc {
        *x *= 0.5;
    }
}

/// Maximum absolute difference between two score vectors (test helper).
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

/// Relative comparison with the tolerance the property tests use: scores are
/// sums of `O(V²)` positive terms, so we compare with a mixed
/// absolute/relative epsilon.
pub fn scores_close(a: &[f64], b: &[f64], eps: f64) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| (x - y).abs() <= eps + eps * x.abs().max(y.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_halves() {
        let mut v = vec![2.0, 4.0, 0.0];
        normalize_undirected(&mut v);
        assert_eq!(v, vec![1.0, 2.0, 0.0]);
    }

    #[test]
    fn diff_helpers() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.5, 2.0]), 0.5);
        assert!(scores_close(&[1.0, 1e9], &[1.0 + 1e-10, 1e9 * (1.0 + 1e-10)], 1e-9));
        assert!(!scores_close(&[1.0], &[1.1], 1e-9));
    }
}
