//! Shared utilities for the parallel kernels: atomic `f64` cells and
//! level-structure helpers.
//!
//! The level-synchronous kernels rely on rayon's fork-join barriers for
//! cross-level visibility, so all atomic operations here use `Relaxed`
//! ordering — the `par_iter` joins establish the happens-before edges between
//! levels, and within a level each cell has a single writer (except the
//! explicitly contended [`AtomicF64::fetch_add`] used by the push-style
//! baselines).

use std::sync::atomic::{AtomicU64, Ordering};

/// An `f64` stored in an `AtomicU64` via bit casting.
#[derive(Debug, Default)]
pub struct AtomicF64(AtomicU64);

impl AtomicF64 {
    /// New cell holding `v`.
    #[inline]
    pub fn new(v: f64) -> Self {
        AtomicF64(AtomicU64::new(v.to_bits()))
    }

    /// Relaxed load.
    #[inline]
    pub fn load(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Relaxed store.
    #[inline]
    pub fn store(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Contended add via a compare-exchange loop (the only operation the
    /// "lock-free" baselines need).
    #[inline]
    pub fn fetch_add(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.0.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Unwraps the cell.
    #[inline]
    pub fn into_inner(self) -> f64 {
        f64::from_bits(self.0.into_inner())
    }
}

/// A zeroed vector of atomic `f64`s.
pub fn atomic_f64_vec(n: usize) -> Vec<AtomicF64> {
    (0..n).map(|_| AtomicF64::new(0.0)).collect()
}

/// Unwraps a vector of atomic `f64`s.
pub fn into_f64_vec(v: Vec<AtomicF64>) -> Vec<f64> {
    v.into_iter().map(AtomicF64::into_inner).collect()
}

/// Vertices of one BFS, grouped by level: `order[starts[d]..starts[d+1]]`
/// holds the vertices at distance `d` from the root. The backward sweeps of
/// every level-synchronous kernel iterate this structure in reverse.
#[derive(Clone, Debug, Default)]
pub struct Levels {
    /// Vertices in non-decreasing distance order.
    pub order: Vec<u32>,
    /// Level boundaries into `order` (length = number of levels + 1).
    pub starts: Vec<usize>,
}

impl Levels {
    /// Empties the structure for reuse.
    pub fn clear(&mut self) {
        self.order.clear();
        self.starts.clear();
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.starts.len().saturating_sub(1)
    }

    /// The vertices at level `d`.
    pub fn level(&self, d: usize) -> &[u32] {
        &self.order[self.starts[d]..self.starts[d + 1]]
    }

    /// Total vertices reached.
    pub fn reached(&self) -> usize {
        self.order.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_f64_ops() {
        let a = AtomicF64::new(1.5);
        assert_eq!(a.load(), 1.5);
        a.store(2.0);
        a.fetch_add(0.25);
        assert_eq!(a.load(), 2.25);
        assert_eq!(a.into_inner(), 2.25);
    }

    #[test]
    fn concurrent_fetch_add_sums() {
        use rayon::prelude::*;
        let a = AtomicF64::new(0.0);
        (0..1000).into_par_iter().for_each(|_| a.fetch_add(1.0));
        assert_eq!(a.load(), 1000.0);
    }

    #[test]
    fn levels_accessors() {
        let l = Levels { order: vec![0, 1, 2, 3], starts: vec![0, 1, 3, 4] };
        assert_eq!(l.num_levels(), 3);
        assert_eq!(l.level(0), &[0]);
        assert_eq!(l.level(1), &[1, 2]);
        assert_eq!(l.level(2), &[3]);
        assert_eq!(l.reached(), 4);
    }
}
