//! Shared utilities for the parallel kernels: level-structure helpers and
//! (re-exported from [`crate::sync`]) the atomic `f64` cell.
//!
//! The atomic types themselves live behind the [`crate::sync`] facade so the
//! kernels can be built against model-checked atomics under `--cfg loom`;
//! the re-exports here keep the historical `crate::util::AtomicF64` paths
//! working.

pub use crate::sync::{atomic_f64_vec, into_f64_vec, AtomicF64};

/// Element-wise `acc[i] += part[i]`: the score-vector reduction step shared
/// by the coarse-grained source-parallel baseline
/// ([`crate::parallel::bc_coarse`]) and the root-parallel sub-graph kernel
/// (`apgre::kernel::bc_in_subgraph_root_par`). Kept as one function so every
/// tree reduction of partial BC vectors folds terms the same way.
pub fn add_assign_scores(acc: &mut [f64], part: &[f64]) {
    debug_assert_eq!(acc.len(), part.len());
    for (x, y) in acc.iter_mut().zip(part) {
        *x += y;
    }
}

/// Vertices of one BFS, grouped by level: `order[starts[d]..starts[d+1]]`
/// holds the vertices at distance `d` from the root. The backward sweeps of
/// every level-synchronous kernel iterate this structure in reverse.
#[derive(Clone, Debug, Default)]
pub struct Levels {
    /// Vertices in non-decreasing distance order.
    pub order: Vec<u32>,
    /// Level boundaries into `order` (length = number of levels + 1).
    pub starts: Vec<usize>,
}

impl Levels {
    /// Empties the structure for reuse.
    pub fn clear(&mut self) {
        self.order.clear();
        self.starts.clear();
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.starts.len().saturating_sub(1)
    }

    /// The vertices at level `d`.
    pub fn level(&self, d: usize) -> &[u32] {
        &self.order[self.starts[d]..self.starts[d + 1]]
    }

    /// Total vertices reached.
    pub fn reached(&self) -> usize {
        self.order.len()
    }
}

/// Runtime invariant check (`--features invariants`) run after every forward
/// phase: validates the level structure underpinning the kernels'
/// single-writer discipline.
///
/// Asserts that `starts` is monotone and closed over `order`, that every
/// reached vertex appears in exactly one level with `dist[v]` equal to that
/// level, that the source sits alone at level 0 with σ = 1, and that every
/// reached vertex has σ ≥ 1 (each shortest path counted at least once).
/// Violations would mean two levels could write the same σ/δ cell
/// concurrently — exactly the discipline the Relaxed-ordering argument in
/// [`crate::sync`] depends on.
#[cfg(feature = "invariants")]
pub fn check_levels(
    levels: &Levels,
    dist: &[crate::sync::AtomicU32],
    sigma: &[AtomicF64],
    source: u32,
) {
    use crate::sync::Ordering;
    assert!(
        levels.starts.first() == Some(&0) && levels.starts.last() == Some(&levels.order.len()),
        "levels.starts must span order: {:?} over {} vertices",
        levels.starts,
        levels.order.len()
    );
    assert!(
        levels.starts.windows(2).all(|w| w[0] <= w[1]),
        "levels.starts must be monotone: {:?}",
        levels.starts
    );
    if levels.reached() > 0 {
        assert_eq!(levels.level(0), &[source], "source must sit alone at level 0");
        assert_eq!(sigma[source as usize].load(), 1.0, "σ(source) must be 1");
    }
    let mut seen = std::collections::HashSet::with_capacity(levels.reached());
    for d in 0..levels.num_levels() {
        for &v in levels.level(d) {
            assert!(seen.insert(v), "vertex {v} appears in more than one level");
            let dv = dist[v as usize].load(Ordering::Relaxed);
            assert_eq!(dv, d as u32, "vertex {v} sits at level {d} but dist says {dv}");
            let sv = sigma[v as usize].load();
            assert!(sv >= 1.0, "reached vertex {v} has σ = {sv} < 1");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_f64_ops() {
        let a = AtomicF64::new(1.5);
        assert_eq!(a.load(), 1.5);
        a.store(2.0);
        assert_eq!(a.fetch_add(0.25), 2.0);
        assert_eq!(a.load(), 2.25);
        assert_eq!(a.into_inner(), 2.25);
    }

    #[test]
    fn concurrent_fetch_add_sums() {
        use rayon::prelude::*;
        let a = AtomicF64::new(0.0);
        (0..1000).into_par_iter().for_each(|_| {
            let _ = a.fetch_add(1.0);
        });
        assert_eq!(a.load(), 1000.0);
    }

    #[test]
    fn add_assign_scores_sums_elementwise() {
        let mut acc = vec![1.0, 2.0, 3.0];
        add_assign_scores(&mut acc, &[0.5, 0.0, -1.0]);
        assert_eq!(acc, vec![1.5, 2.0, 2.0]);
    }

    #[test]
    fn levels_accessors() {
        let l = Levels { order: vec![0, 1, 2, 3], starts: vec![0, 1, 3, 4] };
        assert_eq!(l.num_levels(), 3);
        assert_eq!(l.level(0), &[0]);
        assert_eq!(l.level(1), &[1, 2]);
        assert_eq!(l.level(2), &[3]);
        assert_eq!(l.reached(), 4);
    }

    #[cfg(feature = "invariants")]
    #[test]
    fn check_levels_accepts_a_valid_structure() {
        use crate::sync::AtomicU32;
        let l = Levels { order: vec![2, 0, 1], starts: vec![0, 1, 3] };
        let dist: Vec<AtomicU32> = vec![AtomicU32::new(1), AtomicU32::new(1), AtomicU32::new(0)];
        let sigma = atomic_f64_vec(3);
        sigma[0].store(1.0);
        sigma[1].store(2.0);
        sigma[2].store(1.0);
        check_levels(&l, &dist, &sigma, 2);
    }

    #[cfg(feature = "invariants")]
    #[test]
    #[should_panic(expected = "dist says")]
    fn check_levels_rejects_a_mislevelled_vertex() {
        use crate::sync::AtomicU32;
        let l = Levels { order: vec![2, 0], starts: vec![0, 1, 2] };
        let dist: Vec<AtomicU32> = vec![AtomicU32::new(7), AtomicU32::new(0), AtomicU32::new(0)];
        let sigma = atomic_f64_vec(3);
        sigma[2].store(1.0);
        sigma[0].store(1.0);
        check_levels(&l, &dist, &sigma, 2);
    }
}
