//! Memoized APGRE for evolving graphs.
//!
//! The decomposition gives BC computation a natural memoization grain: a
//! sub-graph's local scores depend **only** on its local structure and its
//! `α`/`β`/`γ` annotations — nothing else in the graph. When a graph evolves
//! (edges rewired inside one community, a new whisker added), every
//! sub-graph whose fingerprint is unchanged can reuse its cached local
//! scores; only the touched sub-graphs re-sweep. This is the practical
//! "incremental BC" story the paper's decomposition enables but never
//! spells out.
//!
//! The fingerprint covers exactly the kernel's inputs: local arcs (with
//! directedness), boundary flags, `α`, `β`, `γ`, the root set, and the
//! whisker flags. `α`/`β` being in the key makes the cache conservative:
//! an edit that changes how many vertices hang beyond a boundary point
//! correctly invalidates every sub-graph that sees that count.

use crate::apgre::kernel_for_memo;
use apgre_decomp::{decompose, PartitionOptions};
use apgre_graph::Graph;
use std::collections::HashMap;

/// A cache of per-sub-graph local BC vectors, keyed by structural
/// fingerprint.
pub struct MemoizedBc {
    partition: PartitionOptions,
    cache: HashMap<u64, Vec<f64>>,
    /// Sub-graph kernel runs avoided since construction.
    pub hits: usize,
    /// Sub-graph kernels actually executed since construction.
    pub misses: usize,
}

impl MemoizedBc {
    /// New cache with the given partition options.
    pub fn new(partition: PartitionOptions) -> Self {
        MemoizedBc { partition, cache: HashMap::new(), hits: 0, misses: 0 }
    }

    /// Computes exact BC for `g`, reusing cached sub-graph sweeps where the
    /// fingerprint matches.
    pub fn compute(&mut self, g: &Graph) -> Vec<f64> {
        let decomp = decompose(g, &self.partition);
        let mut bc = vec![0.0f64; g.num_vertices()];
        for sg in &decomp.subgraphs {
            let key = sg.fingerprint();
            let local = match self.cache.get(&key) {
                Some(cached) => {
                    self.hits += 1;
                    cached.clone()
                }
                None => {
                    self.misses += 1;
                    let mut local = vec![0.0f64; sg.num_vertices()];
                    kernel_for_memo(sg, &mut local);
                    self.cache.insert(key, local.clone());
                    local
                }
            };
            for (l, &score) in local.iter().enumerate() {
                bc[sg.globals[l] as usize] += score;
            }
        }
        bc
    }

    /// Cached sub-graph count.
    pub fn cached_subgraphs(&self) -> usize {
        self.cache.len()
    }

    /// Drops all cached results.
    pub fn clear(&mut self) {
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brandes::bc_serial;
    use apgre_graph::generators;
    use apgre_graph::VertexId;

    fn assert_close(ctx: &str, got: &[f64], want: &[f64]) {
        assert_eq!(got.len(), want.len(), "{ctx}");
        for i in 0..want.len() {
            assert!(
                (got[i] - want[i]).abs() <= 1e-6 * (1.0 + want[i].abs()),
                "{ctx}: vertex {i}: {} vs {}",
                got[i],
                want[i]
            );
        }
    }

    fn community_graph(seed: u64) -> Graph {
        generators::whiskered_community(&generators::WhiskeredCommunityParams {
            core_vertices: 50,
            core_attach: 2,
            community_count: 6,
            community_size: 10,
            community_density: 1.8,
            whiskers: 25,
            seed,
        })
    }

    #[test]
    fn second_run_is_all_hits() {
        let g = community_graph(1);
        let mut memo = MemoizedBc::new(PartitionOptions::default());
        let a = memo.compute(&g);
        let first_misses = memo.misses;
        assert!(first_misses >= 1);
        assert_eq!(memo.hits, 0);
        let b = memo.compute(&g);
        assert_eq!(a, b);
        assert_eq!(memo.misses, first_misses, "no new kernel runs");
        assert_eq!(memo.hits, first_misses);
    }

    #[test]
    fn memoized_matches_brandes() {
        let g = community_graph(2);
        let mut memo = MemoizedBc::new(PartitionOptions::default());
        assert_close("memo", &memo.compute(&g), &bc_serial(&g));
    }

    #[test]
    fn local_rewire_reuses_untouched_subgraphs() {
        // Rewire one intra-community edge without changing any vertex count:
        // α/β of every other sub-graph stay identical, so only sub-graphs
        // containing the touched community re-sweep.
        let g = community_graph(3);
        let mut memo = MemoizedBc::new(PartitionOptions::default());
        let _ = memo.compute(&g);
        let baseline_misses = memo.misses;
        let subgraph_count = memo.cached_subgraphs();

        // Swap one community-internal edge: find a vertex with local degree
        // >= 2 outside the core and retarget one of its edges within the
        // same component neighbourhood. Simplest structural edit preserving
        // counts: remove edge (a,b), add edge (a,c) where c is b's
        // neighbour — stays inside the same community.
        let mut edges: Vec<(VertexId, VertexId)> = g.undirected_edges().collect();
        let d = apgre_decomp::decompose(&g, &PartitionOptions::default());
        // pick a non-top sub-graph with an internal non-bridge edge
        let sg = d
            .subgraphs
            .iter()
            .find(|sg| {
                sg.id != d.subgraphs[d.top_subgraph].id && sg.num_edges() >= sg.num_vertices()
            })
            .expect("a cyclic community exists");
        // remove one internal edge that keeps the community connected: add a
        // parallel-ish chord instead of deleting, to keep it simple —
        // adding an edge only changes that sub-graph's fingerprint.
        let a = sg.globals[0];
        let b = *sg.globals.last().unwrap();
        if !g.csr().has_edge(a, b) && a != b {
            edges.push((a, b));
        } else {
            // fall back: duplicate detection will dedup; add a chord between
            // second pair
            edges.push((sg.globals[1], b));
        }
        let g2 = Graph::undirected_from_edges(g.num_vertices(), &edges);

        let scores = memo.compute(&g2);
        assert_close("memo-after-edit", &scores, &bc_serial(&g2));
        let new_misses = memo.misses - baseline_misses;
        assert!(
            new_misses <= 3,
            "only the touched sub-graph(s) should re-sweep: {new_misses} of {subgraph_count}"
        );
    }

    #[test]
    fn growing_a_whisker_invalidates_alpha_dependents_only() {
        let g = community_graph(4);
        let mut memo = MemoizedBc::new(PartitionOptions::default());
        let _ = memo.compute(&g);
        let before = memo.misses;
        // Attach one new whisker to vertex 0 (in the core / top sub-graph).
        let mut edges: Vec<(VertexId, VertexId)> = g.undirected_edges().collect();
        let w = g.num_vertices() as VertexId;
        edges.push((0, w));
        let g2 = Graph::undirected_from_edges(g.num_vertices() + 1, &edges);
        let scores = memo.compute(&g2);
        assert_close("memo-whisker", &scores, &bc_serial(&g2));
        // The top sub-graph re-sweeps (γ changed) and every sub-graph with a
        // boundary α counting the core side re-sweeps (α grew by one); pure
        // leaf communities whose α view didn't change... all boundary points
        // of other sub-graphs DO see the new vertex in α, so expect most to
        // re-sweep — this documents the conservative invalidation.
        assert!(memo.misses > before);
    }

    #[test]
    fn fingerprint_separates_every_kernel_input() {
        // `SubGraph::fingerprint` is the single canonical identity shared by
        // the memo cache and the dynamic engine's carry-forward: any change
        // to a kernel input must change the hash. Perturb each input
        // dimension of one sub-graph and require pairwise-distinct hashes.
        let g = generators::lollipop(5, 4);
        let d = decompose(&g, &PartitionOptions::default());
        let base = d.subgraphs.iter().find(|sg| sg.num_edges() > 2).expect("clique sub-graph");
        let mut prints = vec![("base", base.fingerprint())];

        let mut edge = base.clone();
        let mut edges: Vec<(VertexId, VertexId)> = edge.graph.undirected_edges().collect();
        edges.pop();
        edge.graph = Graph::undirected_from_edges(edge.num_vertices(), &edges);
        prints.push(("edge-removed", edge.fingerprint()));

        let mut alpha = base.clone();
        alpha.alpha[0] += 1;
        prints.push(("alpha", alpha.fingerprint()));

        let mut beta = base.clone();
        beta.beta[0] += 1;
        prints.push(("beta", beta.fingerprint()));

        let mut gamma = base.clone();
        gamma.gamma[0] += 1;
        prints.push(("gamma", gamma.fingerprint()));

        let mut boundary = base.clone();
        boundary.is_boundary[0] = !boundary.is_boundary[0];
        prints.push(("boundary", boundary.fingerprint()));

        let mut whisker = base.clone();
        whisker.is_whisker[0] = !whisker.is_whisker[0];
        prints.push(("whisker", whisker.fingerprint()));

        let mut roots = base.clone();
        roots.roots.pop();
        prints.push(("roots", roots.fingerprint()));

        for i in 0..prints.len() {
            for j in i + 1..prints.len() {
                assert_ne!(
                    prints[i].1, prints[j].1,
                    "fingerprint collision between {} and {}",
                    prints[i].0, prints[j].0
                );
            }
        }
        // And id/globals are excluded: relabeling alone must NOT change it.
        let mut relabeled = base.clone();
        relabeled.id += 17;
        for v in &mut relabeled.globals {
            *v += 1000;
        }
        assert_eq!(relabeled.fingerprint(), base.fingerprint());
    }

    #[test]
    fn clear_forgets() {
        let g = generators::lollipop(6, 10);
        let mut memo = MemoizedBc::new(PartitionOptions::default());
        let _ = memo.compute(&g);
        assert!(memo.cached_subgraphs() > 0);
        memo.clear();
        assert_eq!(memo.cached_subgraphs(), 0);
    }
}
