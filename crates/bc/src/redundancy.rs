//! Redundancy measurement — the analysis behind the paper's Figure 7
//! ("Breakdown of BC computation": partial redundancy, total redundancy,
//! essential work).
//!
//! The unit is *edge examinations by Brandes' algorithm* (each source's
//! forward BFS and backward sweep both scan the out-edges of every reached
//! vertex once):
//!
//! * **total redundancy** — the work Brandes spends on sources that are
//!   whiskers (their whole DAG is derivable from the neighbour's, §2.2),
//! * **partial redundancy** — for the remaining sources, the work spent
//!   outside the source's own sub-graph (the common sub-DAGs APGRE reuses),
//! * **essential** — the rest (what APGRE's kernels still have to do).

use apgre_decomp::Decomposition;
use apgre_graph::connectivity::connected_components;
use apgre_graph::{Graph, VertexId};
use rayon::prelude::*;
use std::collections::VecDeque;

/// Edge-examination breakdown of a Brandes run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RedundancyBreakdown {
    /// Total edges Brandes examines (2 × Σ_s arcs reachable from s).
    pub total_work: u64,
    /// Work attributable to whisker sources.
    pub total_redundant: u64,
    /// Out-of-sub-graph work of non-whisker sources.
    pub partial_redundant: u64,
}

impl RedundancyBreakdown {
    /// Fraction of work that is total redundancy.
    pub fn total_fraction(&self) -> f64 {
        ratio(self.total_redundant, self.total_work)
    }

    /// Fraction of work that is partial redundancy.
    pub fn partial_fraction(&self) -> f64 {
        ratio(self.partial_redundant, self.total_work)
    }

    /// Fraction of work that is essential.
    pub fn essential_fraction(&self) -> f64 {
        1.0 - self.total_fraction() - self.partial_fraction()
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Measures the redundancy breakdown of `g` under decomposition `decomp`.
///
/// Undirected graphs use closed forms (every source sweeps its whole
/// component; every root sweeps its whole sub-graph), `O(V + E)`. Directed
/// graphs need real reachability, so this runs one BFS per vertex plus one
/// local BFS per root — `O(V·E)` like Brandes itself; use scaled graphs.
pub fn analyze(g: &Graph, decomp: &Decomposition) -> RedundancyBreakdown {
    // Whisker flags and per-vertex APGRE sweep work, globally indexed.
    let n = g.num_vertices();
    let mut is_whisker = vec![false; n];
    for sg in &decomp.subgraphs {
        for (l, &w) in sg.is_whisker.iter().enumerate() {
            if w {
                is_whisker[sg.globals[l] as usize] = true;
            }
        }
    }

    if !g.is_directed() {
        analyze_undirected(g, decomp, &is_whisker)
    } else {
        analyze_directed(g, decomp, &is_whisker)
    }
}

fn analyze_undirected(
    g: &Graph,
    decomp: &Decomposition,
    is_whisker: &[bool],
) -> RedundancyBreakdown {
    let comps = connected_components(g);
    // arcs per component
    let mut comp_arcs = vec![0u64; comps.count()];
    for v in g.vertices() {
        comp_arcs[comps.comp[v as usize] as usize] += g.out_degree(v) as u64;
    }
    let mut total_work = 0u64;
    let mut total_redundant = 0u64;
    let mut apgre_work = vec![0u64; g.num_vertices()];
    for sg in &decomp.subgraphs {
        let sg_arcs = sg.graph.num_arcs() as u64;
        for &l in &sg.roots {
            apgre_work[sg.globals[l as usize] as usize] += 2 * sg_arcs;
        }
    }
    let mut partial_redundant = 0u64;
    for v in g.vertices() {
        let w = 2 * comp_arcs[comps.comp[v as usize] as usize];
        total_work += w;
        if is_whisker[v as usize] {
            total_redundant += w;
        } else {
            partial_redundant += w.saturating_sub(apgre_work[v as usize]);
        }
    }
    RedundancyBreakdown { total_work, total_redundant, partial_redundant }
}

fn analyze_directed(g: &Graph, decomp: &Decomposition, is_whisker: &[bool]) -> RedundancyBreakdown {
    let n = g.num_vertices();
    let csr = g.csr();
    // Brandes per-source work: 2 × Σ out-degrees of the reachable set.
    let per_source: Vec<u64> = (0..n as VertexId)
        .into_par_iter()
        .map(|s| {
            let mut visited = vec![false; n];
            let mut queue = VecDeque::new();
            visited[s as usize] = true;
            queue.push_back(s);
            let mut arcs = 0u64;
            while let Some(u) = queue.pop_front() {
                arcs += csr.degree(u) as u64;
                for &v in csr.neighbors(u) {
                    if !visited[v as usize] {
                        visited[v as usize] = true;
                        queue.push_back(v);
                    }
                }
            }
            2 * arcs
        })
        .collect();

    // APGRE per-root local work.
    let mut apgre_work = vec![0u64; n];
    for sg in &decomp.subgraphs {
        let local = sg.graph.csr();
        let ln = sg.num_vertices();
        let per_root: Vec<(u32, u64)> = sg
            .roots
            .par_iter()
            .map(|&r| {
                let mut visited = vec![false; ln];
                let mut queue = VecDeque::new();
                visited[r as usize] = true;
                queue.push_back(r);
                let mut arcs = 0u64;
                while let Some(u) = queue.pop_front() {
                    arcs += local.degree(u) as u64;
                    for &v in local.neighbors(u) {
                        if !visited[v as usize] {
                            visited[v as usize] = true;
                            queue.push_back(v);
                        }
                    }
                }
                (r, 2 * arcs)
            })
            .collect();
        for (r, w) in per_root {
            apgre_work[sg.globals[r as usize] as usize] += w;
        }
    }

    let mut total_work = 0u64;
    let mut total_redundant = 0u64;
    let mut partial_redundant = 0u64;
    for v in 0..n {
        total_work += per_source[v];
        if is_whisker[v] {
            total_redundant += per_source[v];
        } else {
            partial_redundant += per_source[v].saturating_sub(apgre_work[v]);
        }
    }
    RedundancyBreakdown { total_work, total_redundant, partial_redundant }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apgre_decomp::{decompose, PartitionOptions};
    use apgre_graph::generators;

    #[test]
    fn star_is_almost_all_total_redundancy() {
        let g = generators::star(50);
        let d = decompose(&g, &PartitionOptions::default());
        let r = analyze(&g, &d);
        // 50 of 51 sources are whiskers.
        assert!((r.total_fraction() - 50.0 / 51.0).abs() < 1e-9);
        assert_eq!(r.partial_redundant, 0);
    }

    #[test]
    fn complete_graph_has_no_redundancy() {
        let g = generators::complete(12);
        let d = decompose(&g, &PartitionOptions::default());
        let r = analyze(&g, &d);
        assert_eq!(r.total_redundant, 0);
        assert_eq!(r.partial_redundant, 0);
        assert!((r.essential_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lollipop_has_partial_redundancy() {
        let g = generators::lollipop(10, 40);
        let d = decompose(&g, &PartitionOptions { merge_threshold: 8, ..Default::default() });
        let r = analyze(&g, &d);
        assert!(r.partial_fraction() > 0.3, "partial: {}", r.partial_fraction());
        assert!(r.essential_fraction() > 0.0);
    }

    #[test]
    fn whiskered_graph_has_both() {
        let g = generators::whiskered_community(&generators::WhiskeredCommunityParams {
            core_vertices: 60,
            core_attach: 2,
            community_count: 6,
            community_size: 10,
            community_density: 1.5,
            whiskers: 60,
            seed: 2,
        });
        let d = decompose(&g, &PartitionOptions { merge_threshold: 8, ..Default::default() });
        let r = analyze(&g, &d);
        assert!(r.total_fraction() > 0.2, "total: {}", r.total_fraction());
        assert!(r.partial_fraction() > 0.05, "partial: {}", r.partial_fraction());
        assert!(r.essential_fraction() > 0.05, "essential: {}", r.essential_fraction());
    }

    #[test]
    fn directed_analysis_runs_and_is_consistent() {
        let core = generators::rmat_directed(6, 5, 9);
        let g = generators::attach_directed_whiskers(&core, 25, 0.2, 10);
        let d = decompose(&g, &PartitionOptions::default());
        let r = analyze(&g, &d);
        assert!(r.total_work > 0);
        assert!(r.total_redundant + r.partial_redundant <= r.total_work);
        assert!(r.total_fraction() > 0.0);
    }

    #[test]
    fn undirected_closed_form_matches_directed_path_on_symmetric_graph() {
        // Feed the same structure through both code paths: an undirected
        // graph vs its explicit symmetric directed twin.
        let und = generators::lollipop(6, 12);
        let arcs: Vec<_> = und.arcs().collect();
        let dir = apgre_graph::Graph::directed_from_edges(und.num_vertices(), &arcs);
        let d_und = decompose(&und, &PartitionOptions { merge_threshold: 4, ..Default::default() });
        let d_dir = decompose(&dir, &PartitionOptions { merge_threshold: 4, ..Default::default() });
        let r_und = analyze(&und, &d_und);
        let r_dir = analyze(&dir, &d_dir);
        assert_eq!(r_und.total_work, r_dir.total_work);
        // The directed twin has no in-degree-0 whiskers (every undirected
        // degree-1 vertex became in/out-degree 1), so its whisker redundancy
        // is zero and those sources' out-of-sub-graph work moves into the
        // partial bucket instead.
        assert_eq!(r_dir.total_redundant, 0);
        assert!(r_dir.partial_redundant >= r_und.partial_redundant);
        assert!(r_und.total_redundant + r_und.partial_redundant >= r_dir.partial_redundant);
    }
}
