//! Runtime invariant checking for the decomposition (`--features
//! invariants`).
//!
//! [`check_decomposition`] runs after every [`crate::decompose`] call when the
//! feature is on. It re-derives the quantities the decomposition claims —
//! biconnected structure, component sizes, whisker counts — **independently**
//! of the bookkeeping that produced them, so a bug in Algorithm 1's merge
//! logic or the α/β fast path trips an assertion instead of silently skewing
//! BC scores:
//!
//! 1. the structural checks of [`Decomposition::validate`],
//! 2. block-cut-tree structure: articulation flags match a fresh BCC run,
//!    every articulation point sits in ≥ 2 BCCs, the bipartite incidence
//!    lists agree in both directions, and BCC weights account for every
//!    non-isolated vertex exactly once,
//! 3. the conservation laws: per sub-graph `|SG| + Σ α(a)` equals the size
//!    of its connected component (undirected), `Σ α`/`Σ β` bounded by the
//!    outside-vertex count (directed, where hanging regions are only
//!    partially reachable), and `β = α` on undirected graphs,
//! 4. a γ/whisker recount from the sub-graph structure alone.

use crate::bcc::biconnected_components;
use crate::block_cut_tree::BlockCutTree;
use crate::partition::Decomposition;
use apgre_graph::connectivity::connected_components;
use apgre_graph::Graph;

/// Panics if any decomposition invariant is violated. See the module docs
/// for the checked properties.
pub fn check_decomposition(g: &Graph, d: &Decomposition) {
    if let Err(e) = d.validate(g) {
        panic!("invariants: structural validation failed: {e}");
    }
    check_block_cut_tree(g, d);
    check_conservation(g, d);
    check_gamma_recount(g, d);
}

/// Re-derives the biconnected structure and checks the block-cut tree.
fn check_block_cut_tree(g: &Graph, d: &Decomposition) {
    let und = g.to_undirected();
    let bcc = biconnected_components(&und);
    assert_eq!(
        d.num_bccs,
        bcc.count(),
        "invariants: decomposition holds {} BCCs, fresh run finds {}",
        d.num_bccs,
        bcc.count()
    );
    assert_eq!(
        d.is_articulation, bcc.is_articulation,
        "invariants: articulation flags disagree with a fresh BCC run"
    );
    let bct = BlockCutTree::build(&bcc);
    for (ai, &v) in bct.art_vertices.iter().enumerate() {
        let bccs = bct.art_bccs_of(ai as u32);
        assert!(
            bccs.len() >= 2,
            "invariants: articulation vertex {v} sits in {} BCC(s); an \
             articulation point must join at least two",
            bccs.len()
        );
        for &b in bccs {
            assert!(
                bct.bcc_arts_of(b).any(|a| a == v),
                "invariants: block-cut tree incidence is not symmetric \
                 (art {v} lists BCC {b}, which does not list it back)"
            );
        }
    }
    for b in 0..bct.num_bccs() as u32 {
        for v in bct.bcc_arts_of(b) {
            let ai = bct.art_index[v as usize];
            assert!(
                ai != u32::MAX && bct.art_bccs_of(ai).contains(&b),
                "invariants: BCC {b} lists art {v}, which does not list it back"
            );
        }
    }
    // Every non-isolated vertex weighs exactly once: non-articulation
    // vertices in their unique BCC, articulation vertices on their own node.
    let non_isolated =
        (0..und.num_vertices()).filter(|&v| und.out_degree(v as u32) > 0).count() as u64;
    let weighed: u64 = bct.bcc_nonart_weight.iter().sum::<u64>() + bct.num_arts() as u64;
    assert_eq!(
        weighed, non_isolated,
        "invariants: block-cut tree weights cover {weighed} vertices, the \
         graph has {non_isolated} non-isolated"
    );
}

/// Σα conservation per sub-graph against independently computed component
/// sizes.
fn check_conservation(g: &Graph, d: &Decomposition) {
    let comps = connected_components(g);
    for sg in &d.subgraphs {
        let Some(&v0) = sg.globals.first() else { continue };
        let comp = comps.comp[v0 as usize];
        for &v in &sg.globals {
            assert_eq!(
                comps.comp[v as usize], comp,
                "invariants: SG{} spans components {} and {}",
                sg.id, comp, comps.comp[v as usize]
            );
        }
        let comp_size = comps.sizes[comp as usize] as u64;
        let inside = sg.num_vertices() as u64;
        let alpha_sum: u64 = sg.alpha.iter().sum();
        let beta_sum: u64 = sg.beta.iter().sum();
        if g.is_directed() {
            // Hanging regions are disjoint but only partially reachable:
            // each is bounded by the outside-vertex count of the component.
            assert!(
                alpha_sum <= comp_size - inside,
                "invariants: SG{}: Σα = {alpha_sum} exceeds the {} vertices \
                 outside the sub-graph",
                sg.id,
                comp_size - inside
            );
            assert!(
                beta_sum <= comp_size - inside,
                "invariants: SG{}: Σβ = {beta_sum} exceeds the {} vertices \
                 outside the sub-graph",
                sg.id,
                comp_size - inside
            );
        } else {
            // Undirected: the sub-graph plus its hanging regions partition
            // the component exactly, and reachability is symmetric.
            assert_eq!(
                inside + alpha_sum,
                comp_size,
                "invariants: SG{}: |SG| + Σα = {} must equal the component \
                 size {comp_size}",
                sg.id,
                inside + alpha_sum
            );
            assert_eq!(
                sg.alpha, sg.beta,
                "invariants: SG{}: β must equal α on undirected graphs",
                sg.id
            );
        }
    }
}

/// Recounts γ from `is_whisker` and the local graph structure alone.
fn check_gamma_recount(g: &Graph, d: &Decomposition) {
    for sg in &d.subgraphs {
        let ln = sg.num_vertices();
        let mut recount = vec![0u32; ln];
        for l in 0..ln as u32 {
            if !sg.is_whisker[l as usize] {
                continue;
            }
            assert!(
                !sg.is_boundary[l as usize],
                "invariants: SG{}: boundary vertex {l} marked as whisker",
                sg.id
            );
            if g.is_directed() {
                assert!(
                    sg.graph.in_degree(l) == 0 && sg.graph.out_degree(l) == 1,
                    "invariants: SG{}: directed whisker {l} has in-degree {} \
                     out-degree {}",
                    sg.id,
                    sg.graph.in_degree(l),
                    sg.graph.out_degree(l)
                );
            } else {
                assert_eq!(
                    sg.graph.out_degree(l),
                    1,
                    "invariants: SG{}: whisker {l} has degree {}",
                    sg.id,
                    sg.graph.out_degree(l)
                );
            }
            let host = sg.graph.out_neighbors(l)[0];
            assert!(
                !sg.is_whisker[host as usize],
                "invariants: SG{}: whisker {l} hangs off whisker {host}",
                sg.id
            );
            recount[host as usize] += 1;
        }
        assert_eq!(
            recount, sg.gamma,
            "invariants: SG{}: γ does not match a recount of whisker hosts",
            sg.id
        );
    }
}
