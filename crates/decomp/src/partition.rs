//! Graph partition through articulation points — the paper's Algorithm 1
//! (`GRAPHPARTITION`).
//!
//! The graph's biconnected components form a tree (per connected component).
//! Starting from the largest BCC (`topBCC`), a DFS over that tree merges
//! small BCCs into their parents — "effectively recognize common sub-DAGs,
//! merge small adjacent sub-graphs for large granularity, and minimize the
//! amount of articulation points" — and every surviving merged group becomes
//! one [`SubGraph`] with its own local CSR, boundary articulation set
//! `A_sgi`, root set `R_sgi` and whisker counts `γ_SGi`.
//!
//! Deviation from the paper as printed: the paper runs one DFS from the
//! global `topBCC` and sweeps all BCCs it never reached (other connected
//! components) into a single leftover sub-graph (Algorithm 1 lines 26–32).
//! We instead run the same procedure **per connected component**, which is
//! strictly more faithful to the algorithm's intent (the leftover sub-graph
//! would silently forgo redundancy elimination in its components) and makes
//! the decomposition exact on disconnected inputs.

use crate::alpha_beta::{self, AlphaBetaMethod};
use crate::bcc::{biconnected_components, BccResult};
use crate::block_cut_tree::BlockCutTree;
use crate::subgraph::SubGraph;
use apgre_graph::{Graph, VertexId};

const NIL: u32 = u32::MAX;

/// Options for [`decompose`].
#[derive(Clone, Debug)]
pub struct PartitionOptions {
    /// BCCs with fewer accumulated vertices than this merge into their
    /// parent BCC (the paper's `THRESHOLD`). Higher values mean fewer, larger
    /// sub-graphs.
    pub merge_threshold: usize,
    /// How `α`/`β` are computed.
    pub alpha_beta: AlphaBetaMethod,
    /// Collapse every connected component into a single sub-graph (disables
    /// the partial-redundancy elimination entirely while keeping the whisker
    /// folding). Used by the γ-vs-partial ablation.
    pub merge_all: bool,
}

impl Default for PartitionOptions {
    fn default() -> Self {
        PartitionOptions {
            merge_threshold: 32,
            alpha_beta: AlphaBetaMethod::Auto,
            merge_all: false,
        }
    }
}

/// Wall-clock timings of the decomposition phases (Figure 8's first two
/// bars: graph partition and α/β counting).
#[derive(Clone, Copy, Debug, Default)]
pub struct DecompTimings {
    /// BCC finding + merging + sub-graph construction (Algorithm 1).
    pub partition: std::time::Duration,
    /// α/β counting (§4 step 2).
    pub alpha_beta: std::time::Duration,
}

/// The decomposed graph: sub-graphs connected through articulation points.
#[derive(Clone, Debug)]
pub struct Decomposition {
    /// Vertex count of the parent graph.
    pub num_vertices: usize,
    /// Global articulation flags (of the undirected structure).
    pub is_articulation: Vec<bool>,
    /// The sub-graphs, in creation order.
    pub subgraphs: Vec<SubGraph>,
    /// Index of the largest sub-graph (the paper's "top sub-graph").
    pub top_subgraph: usize,
    /// Sub-graph id owning each BCC.
    pub subgraph_of_bcc: Vec<u32>,
    /// Number of biconnected components found.
    pub num_bccs: usize,
    /// Phase timings.
    pub timings: DecompTimings,
}

impl Decomposition {
    /// Total number of sub-graphs (`#SG` in Table 4).
    pub fn num_subgraphs(&self) -> usize {
        self.subgraphs.len()
    }

    /// Sub-graphs sorted by vertex count, descending (Table 4 reports the
    /// top three).
    pub fn subgraphs_by_size(&self) -> Vec<&SubGraph> {
        let mut v: Vec<&SubGraph> = self.subgraphs.iter().collect();
        v.sort_by_key(|sg| std::cmp::Reverse((sg.num_vertices(), sg.num_edges())));
        v
    }

    /// Reverts the total-redundancy optimization: every whisker becomes its
    /// own root again and all `γ` counts drop to zero. The BC kernels then
    /// sweep every vertex, isolating the partial-redundancy elimination —
    /// the other half of the γ-vs-partial ablation.
    pub fn unfold_whiskers(&mut self) {
        for sg in &mut self.subgraphs {
            sg.gamma.fill(0);
            sg.is_whisker.fill(false);
            sg.roots = (0..sg.num_vertices() as u32).collect();
        }
    }

    /// Structural invariant check used by tests; returns a description of the
    /// first violation.
    pub fn validate(&self, g: &Graph) -> Result<(), String> {
        let n = g.num_vertices();
        // 1. Edges are partitioned: every edge in exactly one sub-graph.
        //    Self-loops never lie on a shortest path, so sub-graph
        //    construction drops them — exclude them from the global count.
        let self_loops = g.vertices().filter(|&v| g.out_neighbors(v).contains(&v)).count();
        let global = g.num_edges() - self_loops;
        let total: usize = self.subgraphs.iter().map(|sg| sg.num_edges()).sum();
        if total != global {
            return Err(format!(
                "edge partition: {total} local vs {global} global (excluding {self_loops} \
                 self-loops)"
            ));
        }
        // 2. Vertex coverage: non-isolated vertices in >= 1 sub-graph;
        //    non-articulation vertices in exactly one.
        let mut membership = vec![0u32; n];
        for sg in &self.subgraphs {
            for &v in &sg.globals {
                membership[v as usize] += 1;
            }
        }
        for v in 0..n {
            let deg = g.out_degree(v as VertexId) + g.in_degree(v as VertexId);
            if deg > 0 && membership[v] == 0 {
                return Err(format!("vertex {v} uncovered"));
            }
            if !self.is_articulation[v] && membership[v] > 1 {
                return Err(format!("non-articulation vertex {v} in {} sub-graphs", membership[v]));
            }
        }
        for sg in &self.subgraphs {
            // 3. Boundary points are articulation points present elsewhere.
            for &b in &sg.boundary {
                let gv = sg.global_of(b);
                if !self.is_articulation[gv as usize] {
                    return Err(format!(
                        "boundary {gv} of SG{} is not an articulation point",
                        sg.id
                    ));
                }
                if membership[gv as usize] < 2 {
                    return Err(format!("boundary {gv} of SG{} is in only one sub-graph", sg.id));
                }
            }
            // 4. Roots ∪ whiskers partition the local vertex set.
            let whiskers = sg.is_whisker.iter().filter(|&&w| w).count();
            if whiskers + sg.roots.len() != sg.num_vertices() {
                return Err(format!("SG{}: roots+whiskers != vertices", sg.id));
            }
            // 5. γ mass equals the whisker count.
            let gamma_sum: u64 = sg.gamma.iter().map(|&x| x as u64).sum();
            if gamma_sum != whiskers as u64 {
                return Err(format!("SG{}: γ sum {} != whiskers {}", sg.id, gamma_sum, whiskers));
            }
            // 6. α/β only on boundary points.
            for l in 0..sg.num_vertices() {
                if !sg.is_boundary[l] && (sg.alpha[l] != 0 || sg.beta[l] != 0) {
                    return Err(format!("SG{}: α/β set on non-boundary local {l}", sg.id));
                }
            }
        }
        Ok(())
    }
}

/// Decomposes `g` into sub-graphs connected by articulation points and fills
/// `α`, `β`, `γ`, and the root sets (paper Algorithm 1 + §4 step 2).
pub fn decompose(g: &Graph, opts: &PartitionOptions) -> Decomposition {
    let t0 = std::time::Instant::now();
    let und = g.to_undirected();
    let bcc = biconnected_components(&und);
    let bct = BlockCutTree::build(&bcc);
    let groups = if opts.merge_all {
        merge_all_per_component(&bct)
    } else {
        merge_bccs(&bcc.bcc_vertices, &bct, opts.merge_threshold as u64)
    };

    let num_bccs = bcc.count();
    let mut subgraph_of_bcc = vec![NIL; num_bccs];
    for (gi, group) in groups.iter().enumerate() {
        for &b in group {
            subgraph_of_bcc[b as usize] = gi as u32;
        }
    }
    debug_assert!(subgraph_of_bcc.iter().all(|&x| x != NIL));

    let subgraphs = build_subgraphs(g, &bcc, &bct, &groups, &subgraph_of_bcc);
    let top_subgraph = subgraphs
        .iter()
        .enumerate()
        .max_by_key(|(i, sg)| (sg.num_vertices(), usize::MAX - i))
        .map(|(i, _)| i)
        .unwrap_or(0);

    let partition_time = t0.elapsed();
    let mut decomp = Decomposition {
        num_vertices: g.num_vertices(),
        is_articulation: bcc.is_articulation.clone(),
        subgraphs,
        top_subgraph,
        subgraph_of_bcc,
        num_bccs,
        timings: DecompTimings::default(),
    };
    let t1 = std::time::Instant::now();
    alpha_beta::fill(g, &mut decomp, &bcc, &bct, opts.alpha_beta);
    decomp.timings = DecompTimings { partition: partition_time, alpha_beta: t1.elapsed() };
    #[cfg(feature = "invariants")]
    crate::invariants::check_decomposition(g, &decomp);
    decomp
}

/// Sub-graph block groups in flattened (CSR-like) form: one contiguous
/// `blocks` array sliced by `off`. A component has tens of thousands of
/// mostly-singleton groups, so per-group `Vec`s would mean tens of thousands
/// of heap allocations on every decomposition *and* every incremental
/// splice — the flat form is two allocations total.
pub(crate) struct BlockGroups {
    off: Vec<u32>,
    blocks: Vec<u32>,
}

impl BlockGroups {
    fn new() -> Self {
        BlockGroups { off: vec![0], blocks: Vec::new() }
    }

    fn close_group(&mut self) {
        self.off.push(self.blocks.len() as u32);
    }

    pub(crate) fn len(&self) -> usize {
        self.off.len() - 1
    }

    pub(crate) fn group(&self, i: usize) -> &[u32] {
        &self.blocks[self.off[i] as usize..self.off[i + 1] as usize]
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = &[u32]> {
        (0..self.len()).map(move |i| self.group(i))
    }
}

/// One group per connected component (every BCC of a component collapsed
/// together): no boundary articulation points survive, so the BC kernel
/// degrades to whisker-folded Brandes. Ablation support; also reused by the
/// incremental maintainer on its compact per-region block view.
pub(crate) fn merge_all_per_component(bct: &BlockCutTree) -> BlockGroups {
    let nb = bct.num_bccs();
    let total_nodes = nb + bct.num_arts();
    let mut visited = vec![false; total_nodes];
    let mut groups = BlockGroups::new();
    for start in 0..nb as u32 {
        if visited[start as usize] {
            continue;
        }
        let mut queue = std::collections::VecDeque::new();
        visited[start as usize] = true;
        queue.push_back(start);
        while let Some(node) = queue.pop_front() {
            if (node as usize) < nb {
                groups.blocks.push(node);
            }
            for &nxt in bct.node_neighbors(node) {
                if !visited[nxt as usize] {
                    visited[nxt as usize] = true;
                    queue.push_back(nxt);
                }
            }
        }
        groups.close_group();
    }
    groups
}

/// Deterministic, content-based top-BCC choice: the largest block of the
/// component, ties broken by the lexicographically smallest *sorted* vertex
/// list. Tarjan emission order must not influence the choice — the
/// incremental maintainer re-runs the merge on blocks indexed by store slot
/// rather than by Tarjan discovery order and has to reproduce the fresh
/// grouping exactly. (Two distinct BCCs share at most one vertex, so equal
/// sorted lists cannot occur and the winner is unique.)
pub(crate) fn canonical_top_bcc<V: AsRef<[VertexId]>>(comp: &[u32], bcc_vertices: &[V]) -> u32 {
    let max_len = comp
        .iter()
        .map(|&b| bcc_vertices[b as usize].as_ref().len())
        .max()
        .expect("component without BCCs");
    let mut best: Option<(Vec<VertexId>, u32)> = None;
    for &b in comp {
        if bcc_vertices[b as usize].as_ref().len() != max_len {
            continue;
        }
        let mut key = bcc_vertices[b as usize].as_ref().to_vec();
        key.sort_unstable();
        match &best {
            Some((bk, _)) if *bk <= key => {}
            _ => best = Some((key, b)),
        }
    }
    best.expect("component without BCCs").1
}

/// DFS over the block-cut tree, merging small BCCs into their parents
/// (Algorithm 1 lines 4–24), per connected component, starting from each
/// component's largest BCC.
///
/// Takes the per-block vertex lists (rather than a full [`BccResult`]) so
/// the incremental maintainer can call it on a compact view of the affected
/// components; block ids in the result index `bcc_vertices`.
pub(crate) fn merge_bccs<V: AsRef<[VertexId]>>(
    bcc_vertices: &[V],
    bct: &BlockCutTree,
    threshold: u64,
) -> BlockGroups {
    let nb = bct.num_bccs();
    let total_nodes = nb + bct.num_arts();
    let mut visited = vec![false; total_nodes];
    let mut comp_scratch: Vec<u32> = Vec::new();
    let mut tops: Vec<u32> = Vec::new();
    for start in 0..nb as u32 {
        if visited[start as usize] {
            continue;
        }
        // Collect this tree component's BCC nodes to find its topBCC.
        comp_scratch.clear();
        let mut queue = std::collections::VecDeque::new();
        visited[start as usize] = true;
        queue.push_back(start);
        while let Some(node) = queue.pop_front() {
            if (node as usize) < nb {
                comp_scratch.push(node);
            }
            for &nxt in bct.node_neighbors(node) {
                if !visited[nxt as usize] {
                    visited[nxt as usize] = true;
                    queue.push_back(nxt);
                }
            }
        }
        tops.push(canonical_top_bcc(&comp_scratch, bcc_vertices));
    }
    merge_bccs_from_tops(bcc_vertices, bct, threshold, &tops)
}

/// [`merge_bccs`] with the per-component canonical top BCCs already known:
/// skips component discovery entirely. The incremental maintainer caches
/// canonical tops across splices, so the common single-region splice pays
/// only the merge DFS itself.
pub(crate) fn merge_bccs_from_tops<V: AsRef<[VertexId]>>(
    bcc_vertices: &[V],
    bct: &BlockCutTree,
    threshold: u64,
    tops: &[u32],
) -> BlockGroups {
    let nb = bct.num_bccs();
    let total_nodes = nb + bct.num_arts();
    // Group accumulation as intrusive singly-linked chains over block ids
    // (every chain starts at its own block, so the head IS the block id):
    // merging a child group into its grandparent is an O(1) splice and the
    // emission order matches the former per-block `Vec::extend` exactly.
    let mut tail: Vec<u32> = (0..nb as u32).collect();
    let mut next: Vec<u32> = vec![NIL; nb];
    let mut size: Vec<u64> = bcc_vertices.iter().map(|v| v.as_ref().len() as u64).collect();
    let mut groups = BlockGroups::new();
    let emit = |h: u32, next: &[u32], groups: &mut BlockGroups| {
        let mut cur = h;
        while cur != NIL {
            groups.blocks.push(cur);
            cur = next[cur as usize];
        }
        groups.close_group();
    };

    struct Frame<'a> {
        node: u32,
        parent: u32,
        nbrs: &'a [u32],
        idx: usize,
    }

    let mut in_dfs = vec![false; total_nodes];
    for &top_bcc in tops {
        // Post-order DFS from topBCC with the paper's merge rules.
        let mut stack: Vec<Frame> = Vec::new();
        in_dfs[top_bcc as usize] = true;
        stack.push(Frame { node: top_bcc, parent: NIL, nbrs: bct.node_neighbors(top_bcc), idx: 0 });
        while let Some(top) = stack.last_mut() {
            if top.idx < top.nbrs.len() {
                let nxt = top.nbrs[top.idx];
                top.idx += 1;
                if nxt == top.parent || in_dfs[nxt as usize] {
                    continue;
                }
                in_dfs[nxt as usize] = true;
                let node = top.node;
                stack.push(Frame {
                    node: nxt,
                    parent: node,
                    nbrs: bct.node_neighbors(nxt),
                    idx: 0,
                });
            } else {
                let frame = stack.pop().expect("stack non-empty");
                if (frame.node as usize) >= nb {
                    continue; // articulation node: nothing to merge
                }
                let b = frame.node;
                if b == top_bcc {
                    emit(b, &next, &mut groups);
                    continue;
                }
                // Grandparent BCC through the parent articulation node.
                let art_frame =
                    stack.last().expect("BCC below root must have an articulation parent");
                debug_assert!(art_frame.node as usize >= nb);
                let prev = art_frame.parent;
                debug_assert!((prev as usize) < nb);
                let curr_size = size[b as usize];
                // Algorithm 1's two merge rules: below-threshold groups fold
                // into a non-top parent; only trivial (<= 2 vertex) groups
                // fold into the top BCC itself.
                let merge = if prev != top_bcc { curr_size < threshold } else { curr_size <= 2 };
                if merge {
                    next[tail[prev as usize] as usize] = b;
                    tail[prev as usize] = tail[b as usize];
                    size[prev as usize] += curr_size;
                } else {
                    emit(b, &next, &mut groups);
                }
            }
        }
    }
    groups
}

/// `BUILDSUBGRAPH`: local CSRs, boundary sets, whiskers, γ, roots.
fn build_subgraphs(
    g: &Graph,
    bcc: &BccResult,
    bct: &BlockCutTree,
    groups: &BlockGroups,
    subgraph_of_bcc: &[u32],
) -> Vec<SubGraph> {
    let n = g.num_vertices();
    let nsg = groups.len();

    // Vertex sets (sorted global ids per sub-graph).
    let mut sg_globals: Vec<Vec<VertexId>> = vec![Vec::new(); nsg];
    let mut stamp = vec![NIL; n];
    for (gi, group) in groups.iter().enumerate() {
        for &b in group {
            for &v in &bcc.bcc_vertices[b as usize] {
                if stamp[v as usize] != gi as u32 {
                    stamp[v as usize] = gi as u32;
                    sg_globals[gi].push(v);
                }
            }
        }
        sg_globals[gi].sort_unstable();
    }

    // Edge assignment: each edge's BCC owns it (paper §3.1 property 4).
    let mut sg_edges: Vec<Vec<(VertexId, VertexId)>> = vec![Vec::new(); nsg];
    if g.is_directed() {
        for (u, v) in g.arcs() {
            if u == v {
                continue; // self-loops never lie on shortest paths
            }
            let b = bcc.bcc_of_edge(u, v);
            sg_edges[subgraph_of_bcc[b as usize] as usize].push((u, v));
        }
    } else {
        for (u, v) in g.undirected_edges() {
            let b = bcc.bcc_of_edge(u, v);
            sg_edges[subgraph_of_bcc[b as usize] as usize].push((u, v));
        }
    }

    let mut local_of = vec![NIL; n];
    let mut subgraphs = Vec::with_capacity(nsg);
    for gi in 0..nsg {
        let globals = std::mem::take(&mut sg_globals[gi]);
        let ln = globals.len();
        for (l, &v) in globals.iter().enumerate() {
            local_of[v as usize] = l as u32;
        }
        let local_edges: Vec<(VertexId, VertexId)> = sg_edges[gi]
            .iter()
            .map(|&(u, v)| (local_of[u as usize], local_of[v as usize]))
            .collect();
        let graph = if g.is_directed() {
            Graph::directed_from_edges(ln, &local_edges)
        } else {
            Graph::undirected_from_edges(ln, &local_edges)
        };

        // Boundary articulation points: articulation points of G whose
        // incident BCCs span more than this sub-graph.
        let mut is_boundary = vec![false; ln];
        let mut boundary = Vec::new();
        for (l, &v) in globals.iter().enumerate() {
            let ai = bct.art_index[v as usize];
            if ai == NIL {
                continue;
            }
            let crosses =
                bct.art_bccs_of(ai).iter().any(|&b| subgraph_of_bcc[b as usize] != gi as u32);
            if crosses {
                is_boundary[l] = true;
                boundary.push(l as u32);
            }
        }

        // Whiskers, γ, and the root set come from the shared whisker rule.
        // Non-boundary vertices have all their global edges inside this
        // sub-graph, so local degrees are global degrees and the rule may
        // read the local graph only.
        let mut sg = SubGraph {
            id: gi,
            globals,
            graph,
            is_boundary,
            boundary,
            alpha: vec![0; ln],
            beta: vec![0; ln],
            gamma: Vec::new(),
            is_whisker: Vec::new(),
            roots: Vec::new(),
        };
        sg.recompute_whiskers();
        subgraphs.push(sg);
        for &v in &subgraphs[gi].globals {
            local_of[v as usize] = NIL;
        }
    }
    subgraphs
}

#[cfg(test)]
mod tests {
    use super::*;
    use apgre_graph::generators;

    fn fig3_undirected() -> Graph {
        Graph::undirected_from_edges(
            13,
            &[
                (0, 2),
                (1, 2),
                (2, 4),
                (2, 5),
                (4, 5),
                (4, 3),
                (5, 3),
                (5, 6),
                (4, 6),
                (3, 6),
                (3, 10),
                (3, 12),
                (10, 12),
                (3, 11),
                (10, 11),
                (6, 7),
                (6, 8),
                (7, 9),
                (8, 9),
            ],
        )
    }

    #[test]
    fn figure3_decomposition_three_subgraphs() {
        // With a threshold that keeps the {3,10,12} triangle and {6,7,8,9}
        // diamond separate, the paper's example decomposes into SG1..SG3
        // with articulation points 3 and 6 on the boundaries; 2's whiskers
        // {0,1} merge into the middle sub-graph.
        let g = fig3_undirected();
        let d = decompose(&g, &PartitionOptions { merge_threshold: 3, ..Default::default() });
        d.validate(&g).unwrap();
        assert_eq!(
            d.num_subgraphs(),
            3,
            "{:?}",
            d.subgraphs.iter().map(|s| s.globals.clone()).collect::<Vec<_>>()
        );
        // Global articulation points: 2, 3, 6.
        let arts: Vec<u32> = (0..13).filter(|&v| d.is_articulation[v as usize]).collect();
        assert_eq!(arts, vec![2, 3, 6]);
        // The middle sub-graph contains {0,1,2,3,4,5,6} and has boundary {3,6}.
        let middle = d.subgraphs.iter().find(|sg| sg.contains(4) && sg.contains(5)).unwrap();
        assert_eq!(middle.globals, vec![0, 1, 2, 3, 4, 5, 6]);
        let bounds: Vec<u32> = middle.boundary.iter().map(|&l| middle.global_of(l)).collect();
        assert_eq!(bounds, vec![3, 6]);
        // Whiskers 0, 1 fold into γ(2) = 2 and leave the root set.
        let l2 = middle.local_of(2).unwrap();
        assert_eq!(middle.gamma[l2 as usize], 2);
        assert!(middle.is_whisker[middle.local_of(0).unwrap() as usize]);
        assert!(middle.is_whisker[middle.local_of(1).unwrap() as usize]);
        assert_eq!(middle.roots.len(), 5);
        // α/β of the boundary points: beyond 3 lies {10,11,12} (α=3); beyond
        // 6 lies {7,8,9} (α=3). β equals α in undirected graphs.
        let l3 = middle.local_of(3).unwrap() as usize;
        let l6 = middle.local_of(6).unwrap() as usize;
        assert_eq!(middle.alpha[l3], 3);
        assert_eq!(middle.beta[l3], 3);
        assert_eq!(middle.alpha[l6], 3);
        assert_eq!(middle.beta[l6], 3);
        // The blob sub-graph {3,10,11,12}: boundary 3 with α = 9 vertices
        // beyond (everything else).
        let tri = d.subgraphs.iter().find(|sg| sg.contains(10)).unwrap();
        assert_eq!(tri.globals, vec![3, 10, 11, 12]);
        let t3 = tri.local_of(3).unwrap() as usize;
        assert_eq!(tri.alpha[t3], 9);
        // The diamond sub-graph {6,7,8,9}: boundary 6 with α = 9.
        let dia = d.subgraphs.iter().find(|sg| sg.contains(9)).unwrap();
        assert_eq!(dia.globals, vec![6, 7, 8, 9]);
        let d6 = dia.local_of(6).unwrap() as usize;
        assert_eq!(dia.alpha[d6], 9);
    }

    #[test]
    fn large_threshold_merges_everything() {
        let g = fig3_undirected();
        let d = decompose(&g, &PartitionOptions { merge_threshold: 100, ..Default::default() });
        d.validate(&g).unwrap();
        // Children of the top BCC merge into it only when they have <= 2
        // vertices (Algorithm 1 line 21), whatever the threshold: the two
        // whisker edges fold into the top sub-graph, while the {3,10,11,12}
        // blob and the {6,7,8,9} diamond stay separate.
        assert_eq!(d.num_subgraphs(), 3);
        let top = &d.subgraphs[d.top_subgraph];
        // Whiskers 0 and 1 still fold.
        assert_eq!(top.gamma.iter().map(|&x| x as u64).sum::<u64>(), 2);
    }

    #[test]
    fn one_big_bcc_degrades_to_single_subgraph() {
        let g = generators::complete(12);
        let d = decompose(&g, &PartitionOptions::default());
        d.validate(&g).unwrap();
        assert_eq!(d.num_subgraphs(), 1);
        assert!(d.subgraphs[0].boundary.is_empty());
        assert_eq!(d.subgraphs[0].roots.len(), 12);
    }

    #[test]
    fn disconnected_graph_per_component() {
        let a = generators::lollipop(5, 10);
        let b = generators::cycle(6);
        let g = generators::disjoint_union(&[&a, &b]);
        let d = decompose(&g, &PartitionOptions { merge_threshold: 4, ..Default::default() });
        d.validate(&g).unwrap();
        assert!(d.num_subgraphs() >= 3);
        // The cycle is untouched and whole.
        let cyc = d.subgraphs.iter().find(|sg| sg.contains(15)).unwrap();
        assert_eq!(cyc.num_vertices(), 6);
        assert!(cyc.boundary.is_empty());
    }

    #[test]
    fn directed_graph_partition_validates() {
        let core = generators::rmat_directed(6, 4, 5);
        let g = generators::attach_directed_whiskers(&core, 30, 0.3, 6);
        let d = decompose(&g, &PartitionOptions::default());
        d.validate(&g).unwrap();
        // Source whiskers fold into γ somewhere.
        let total_gamma: u64 =
            d.subgraphs.iter().flat_map(|sg| sg.gamma.iter()).map(|&x| x as u64).sum();
        assert!(total_gamma > 0);
    }

    #[test]
    fn k2_component_keeps_one_root() {
        let g = Graph::undirected_from_edges(2, &[(0, 1)]);
        let d = decompose(&g, &PartitionOptions::default());
        d.validate(&g).unwrap();
        assert_eq!(d.num_subgraphs(), 1);
        let sg = &d.subgraphs[0];
        assert_eq!(sg.roots, vec![0]);
        assert!(sg.is_whisker[1]);
        assert_eq!(sg.gamma[0], 1);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::undirected_from_edges(0, &[]);
        let d = decompose(&g, &PartitionOptions::default());
        assert_eq!(d.num_subgraphs(), 0);
        d.validate(&g).unwrap();
    }

    #[test]
    fn isolated_vertices_do_not_form_subgraphs() {
        let g = Graph::undirected_from_edges(5, &[(0, 1)]);
        let d = decompose(&g, &PartitionOptions::default());
        d.validate(&g).unwrap();
        assert_eq!(d.num_subgraphs(), 1);
    }

    #[test]
    fn edge_partition_on_random_graphs() {
        for seed in 0..8 {
            let g = generators::gnm_undirected(80, 110, seed);
            let d = decompose(&g, &PartitionOptions { merge_threshold: 6, ..Default::default() });
            d.validate(&g).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
        for seed in 0..8 {
            let g = generators::gnm_directed(80, 150, seed);
            let d = decompose(&g, &PartitionOptions { merge_threshold: 6, ..Default::default() });
            d.validate(&g).unwrap_or_else(|e| panic!("directed seed {seed}: {e}"));
        }
    }

    #[test]
    fn table4_style_accounting() {
        let g = generators::whiskered_community(&generators::WhiskeredCommunityParams {
            core_vertices: 120,
            core_attach: 3,
            community_count: 10,
            community_size: 12,
            community_density: 1.8,
            whiskers: 60,
            seed: 13,
        });
        let d = decompose(&g, &PartitionOptions { merge_threshold: 8, ..Default::default() });
        d.validate(&g).unwrap();
        let by_size = d.subgraphs_by_size();
        assert!(by_size[0].num_vertices() >= by_size.last().unwrap().num_vertices());
        assert_eq!(by_size[0].id, d.subgraphs[d.top_subgraph].id);
        // The BA core dominates: the top sub-graph holds most core vertices.
        assert!(
            by_size[0].num_vertices() * 2 > 120,
            "top SG too small: {}",
            by_size[0].num_vertices()
        );
    }
}
