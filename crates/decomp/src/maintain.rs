//! Incremental maintenance of a [`Decomposition`] under edge edits.
//!
//! [`decompose`] is a from-scratch pipeline: Tarjan over the whole graph,
//! block-cut tree, merge, sub-graph assembly, α/β. The dynamic engine used
//! to re-run all of it on every structural edit, then fingerprint-match
//! sub-graphs to recover unchanged contributions — O(V+E) work plus a full
//! fingerprint pass even when one bridge toggled. This module keeps the
//! biconnected blocks as a first-class *maintained* store and confines every
//! edit to the region it can actually affect:
//!
//! - **Patch path**: an edit interior to one block (a chord add, or a
//!   removal that leaves the block biconnected on the same vertex set)
//!   rewrites that block's edge list and the owning sub-graph's local CSR in
//!   place. No merge re-run, no α/β work, no index reshuffle.
//! - **Splice path**: everything else re-runs Tarjan on the *region* — the
//!   union of the blocks an edit can restructure — splices the resulting
//!   blocks back into the store, re-merges only the affected block-cut-tree
//!   components, and recomputes boundary/α/β only there. Sub-graphs whose
//!   block set survives verbatim keep their identity (and the engine keeps
//!   their kernel contributions); the rest are rebuilt, which includes
//!   in-place *splits* when an edit manufactures an internal articulation
//!   point.
//!
//! Soundness of the region bound: all paths between two vertices of a
//! connected graph traverse the same articulation points and stay inside
//! the blocks on the block-cut-tree path between them. An intra-component
//! addition can therefore only merge blocks on that tree path (its
//! fundamental cycle), a removal can only restructure its owning block, and
//! compositions of several edits stay within the union of those regions —
//! removals never create connectivity, and any cycle introduced by several
//! additions lies in the span of their fundamental cycles. The one case the
//! per-edit argument does not cover is **two or more additions bridging
//! distinct components** in one batch (their cycle, if any, exists only at
//! the component level); [`MaintainedDecomposition::apply_edits`] detects
//! that and declines, signalling the caller to fall back to a full rebuild.
//!
//! Under `--features invariants` the dynamic engine cross-checks the
//! maintained decomposition against a fresh [`decompose`] after every batch
//! via [`MaintainedDecomposition::verify_against_fresh`].

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::time::{Duration, Instant};

use crate::bcc::biconnected_components;
use crate::block_cut_tree::BlockCutTree;
use crate::partition::{
    canonical_top_bcc, decompose, merge_all_per_component, merge_bccs_from_tops, Decomposition,
    PartitionOptions,
};
use crate::subgraph::SubGraph;
use apgre_graph::{Graph, VertexId};

const NIL: u32 = u32::MAX;

/// One effective undirected edge edit (endpoints in either order).
#[derive(Clone, Copy, Debug)]
pub struct EdgeEdit {
    /// `true` = the edge was added, `false` = removed.
    pub add: bool,
    /// One endpoint.
    pub u: VertexId,
    /// The other endpoint.
    pub v: VertexId,
}

/// Counters describing what one [`MaintainedDecomposition::apply_edits`]
/// call did.
#[derive(Clone, Copy, Debug, Default)]
pub struct MaintainStats {
    /// Net edits applied through the in-place block patch path.
    pub patched_edits: usize,
    /// Net edits that forced a region splice.
    pub structural_edits: usize,
    /// Blocks whose union formed the re-Tarjaned region.
    pub region_blocks: usize,
    /// Edges in the re-Tarjaned region (after applying the edits).
    pub region_edges: usize,
    /// Blocks removed from the store by the splice.
    pub blocks_removed: usize,
    /// Blocks added to the store by the splice.
    pub blocks_added: usize,
    /// Sub-graphs of the affected components kept verbatim.
    pub subgraphs_kept: usize,
    /// Sub-graphs dissolved by the splice.
    pub subgraphs_removed: usize,
    /// Sub-graphs newly assembled by the splice.
    pub subgraphs_added: usize,
    /// Dissolved sub-graphs whose surviving blocks landed in ≥ 2 new
    /// groups — in-place sub-graph splits.
    pub subgraph_splits: usize,
    /// Block-cut-tree components whose merge was re-run.
    pub affected_components: usize,
    /// Whether the splice path ran at all (`false` = patch/no-op only).
    pub spliced: bool,
    /// Wall clock of the whole maintenance call.
    pub maintain_time: Duration,
}

/// The result of a successful [`MaintainedDecomposition::apply_edits`] call.
#[derive(Clone, Debug)]
pub struct MaintainOutcome {
    /// What the call did, for reporting.
    pub stats: MaintainStats,
    /// Old sub-graph index → new index (`None` = dissolved by the splice).
    /// A caller holding per-sub-graph state (kernel contributions) moves it
    /// by index — every sub-graph whose block set survived keeps its state.
    pub old_to_new: Vec<Option<u32>>,
    /// New-index sub-graphs whose kernel input changed (patched, rebuilt,
    /// or boundary/α/β refreshed): their contributions must be recomputed.
    /// Sorted ascending.
    pub dirty: Vec<usize>,
    /// Whether sub-graph indices or vertex sets changed (vertex→sub-graph
    /// membership maps must be rebuilt).
    pub indices_changed: bool,
}

/// A [`Decomposition`] plus the persistent block store that lets edge edits
/// be applied in place. See the module docs for the algorithm.
///
/// For a maintained decomposition `subgraph_of_bcc` is indexed by **store
/// slot** (with `u32::MAX` on dead slots) rather than by Tarjan discovery
/// order; `num_bccs` is the live block count. Fresh and maintained
/// decompositions agree on both up to that re-indexing.
pub struct MaintainedDecomposition {
    opts: PartitionOptions,
    directed: bool,
    decomp: Decomposition,
    /// False after [`Self::adopt_stale`]: the decomposition is current but
    /// the block store is not, so `apply_edits` declines until a caller
    /// reseeds via [`Self::from_decomposition`] / [`Self::new`].
    store_valid: bool,
    /// Per store slot: sorted vertex ids (empty on dead slots).
    block_verts: Vec<Vec<VertexId>>,
    /// Per store slot: sorted `(min,max)` edge list (empty on dead slots).
    block_edges: Vec<Vec<(VertexId, VertexId)>>,
    alive: Vec<bool>,
    free: Vec<u32>,
    live_blocks: usize,
    /// Per vertex: sorted store slots of the blocks containing it. A vertex
    /// is an articulation point iff this lists ≥ 2 blocks.
    blocks_of_vertex: Vec<Vec<u32>>,
    /// Per sub-graph (parallel to `decomp.subgraphs`): sorted store slots.
    subgraph_blocks: Vec<Vec<u32>>,
    /// Per store slot: id of the block-forest component the block belongs
    /// to (stale on dead slots). Components get fresh ids whenever the
    /// splice path has to re-discover them; the common single-region splice
    /// reuses the existing id and skips the O(component) BFS.
    comp_id: Vec<u32>,
    /// Per component id: its block slots, possibly including stale entries
    /// (dead slots or slots reassigned to a later component) — filter by
    /// `alive` + `comp_id` agreement before use. Rewritten compacted on
    /// every fast-path splice of the component.
    comp_blocks: Vec<Vec<u32>>,
    /// Per component id: store slot of the component's canonical top block
    /// (largest, ties by lexicographically smallest vertex list). Only
    /// region blocks change in a splice, so the new top is the best of the
    /// cached top and the freshly spliced blocks — no component scan.
    comp_top: Vec<u32>,
}

/// Node of the bipartite block-cut forest, used by the path search.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum TreeNode {
    Block(u32),
    Art(VertexId),
}

impl MaintainedDecomposition {
    /// Decomposes `g` and seeds the block store.
    pub fn new(g: &Graph, opts: &PartitionOptions) -> Self {
        let decomp = decompose(g, opts);
        Self::from_decomposition(g, decomp, opts)
    }

    /// Wraps an existing fresh decomposition of `g`, seeding the block
    /// store with one extra Tarjan pass. Directed graphs are accepted but
    /// `apply_edits` always declines on them.
    pub fn from_decomposition(g: &Graph, decomp: Decomposition, opts: &PartitionOptions) -> Self {
        let directed = g.is_directed();
        let mut m = MaintainedDecomposition {
            opts: opts.clone(),
            directed,
            decomp,
            store_valid: false,
            block_verts: Vec::new(),
            block_edges: Vec::new(),
            alive: Vec::new(),
            free: Vec::new(),
            live_blocks: 0,
            blocks_of_vertex: Vec::new(),
            subgraph_blocks: Vec::new(),
            comp_id: Vec::new(),
            comp_blocks: Vec::new(),
            comp_top: Vec::new(),
        };
        if !directed {
            m.reseed_store(g);
        }
        m
    }

    /// Replaces the decomposition without reseeding the store (the store
    /// becomes invalid and `apply_edits` declines). Used when the caller
    /// rebuilds from scratch but will never take the maintained path — it
    /// keeps a forced-rebuild baseline from paying the seeding Tarjan.
    pub fn adopt_stale(&mut self, decomp: Decomposition) {
        self.decomp = decomp;
        self.store_valid = false;
        self.block_verts.clear();
        self.block_edges.clear();
        self.alive.clear();
        self.free.clear();
        self.live_blocks = 0;
        self.blocks_of_vertex.clear();
        self.subgraph_blocks.clear();
        self.comp_id.clear();
        self.comp_blocks.clear();
        self.comp_top.clear();
    }

    /// The maintained decomposition.
    pub fn decomp(&self) -> &Decomposition {
        &self.decomp
    }

    /// Whether the block store matches the decomposition (false only after
    /// [`Self::adopt_stale`]).
    pub fn store_valid(&self) -> bool {
        self.store_valid
    }

    /// Partition options the decomposition was (and will be) built with.
    pub fn options(&self) -> &PartitionOptions {
        &self.opts
    }

    fn reseed_store(&mut self, g: &Graph) {
        let und = g.to_undirected();
        let bcc = biconnected_components(&und);
        let nb = bcc.count();
        self.block_verts = bcc.bcc_vertices.clone();
        for verts in &mut self.block_verts {
            verts.sort_unstable();
        }
        self.block_edges = vec![Vec::new(); nb];
        for (u, v) in und.undirected_edges() {
            if u == v {
                continue; // self-loops live in no block
            }
            let b = bcc.bcc_of_edge(u, v) as usize;
            self.block_edges[b].push((u.min(v), u.max(v)));
        }
        for edges in &mut self.block_edges {
            edges.sort_unstable();
        }
        self.alive = vec![true; nb];
        self.free.clear();
        self.live_blocks = nb;
        self.blocks_of_vertex = vec![Vec::new(); self.decomp.num_vertices];
        for (b, verts) in self.block_verts.iter().enumerate() {
            for &v in verts {
                self.blocks_of_vertex[v as usize].push(b as u32);
            }
        }
        // A fresh decomposition's `subgraph_of_bcc` is indexed by the same
        // Tarjan order the reseed just reproduced, so it doubles as the
        // store-slot → sub-graph map from day one.
        self.subgraph_blocks = vec![Vec::new(); self.decomp.num_subgraphs()];
        for b in 0..nb {
            let s = self.decomp.subgraph_of_bcc[b];
            if s != NIL {
                self.subgraph_blocks[s as usize].push(b as u32);
            }
        }
        // Seed the persistent component index: one BFS over the block
        // forest, plus each component's canonical top block.
        self.comp_id = vec![NIL; nb];
        self.comp_blocks.clear();
        self.comp_top.clear();
        let mut queue: VecDeque<u32> = VecDeque::new();
        for start in 0..nb as u32 {
            if self.comp_id[start as usize] != NIL {
                continue;
            }
            let c = self.comp_blocks.len() as u32;
            let mut members: Vec<u32> = Vec::new();
            self.comp_id[start as usize] = c;
            queue.push_back(start);
            while let Some(b) = queue.pop_front() {
                members.push(b);
                for &v in &self.block_verts[b as usize] {
                    let blocks = &self.blocks_of_vertex[v as usize];
                    if blocks.len() < 2 {
                        continue;
                    }
                    for &o in blocks {
                        if self.comp_id[o as usize] == NIL {
                            self.comp_id[o as usize] = c;
                            queue.push_back(o);
                        }
                    }
                }
            }
            self.comp_top.push(canonical_top_bcc(&members, &self.block_verts));
            self.comp_blocks.push(members);
        }
        self.store_valid = true;
    }

    /// The unique block containing both `u` and `v`, if any (two distinct
    /// blocks share at most one vertex).
    fn common_block(&self, u: VertexId, v: VertexId) -> Option<u32> {
        let (a, b) = (&self.blocks_of_vertex[u as usize], &self.blocks_of_vertex[v as usize]);
        let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
        small.iter().copied().find(|x| large.binary_search(x).is_ok())
    }

    /// The block owning the existing edge `(u, v)`.
    fn owning_block_of_edge(&self, u: VertexId, v: VertexId) -> Option<u32> {
        let key = (u.min(v), u.max(v));
        self.blocks_of_vertex[u as usize]
            .iter()
            .copied()
            .find(|&b| self.block_edges[b as usize].binary_search(&key).is_ok())
    }

    fn tree_neighbors(&self, node: TreeNode, out: &mut Vec<TreeNode>) {
        out.clear();
        match node {
            TreeNode::Block(b) => {
                for &v in &self.block_verts[b as usize] {
                    if self.blocks_of_vertex[v as usize].len() >= 2 {
                        out.push(TreeNode::Art(v));
                    }
                }
            }
            TreeNode::Art(v) => {
                for &b in &self.blocks_of_vertex[v as usize] {
                    out.push(TreeNode::Block(b));
                }
            }
        }
    }

    fn tree_node_of_vertex(&self, v: VertexId) -> Option<TreeNode> {
        let blocks = &self.blocks_of_vertex[v as usize];
        match blocks.len() {
            0 => None,
            1 => Some(TreeNode::Block(blocks[0])),
            _ => Some(TreeNode::Art(v)),
        }
    }

    /// Blocks on the block-cut-forest path between `u` and `v` — exactly
    /// the blocks the addition `(u, v)` merges (its fundamental cycle).
    /// `None` when the endpoints lie in different components (or either is
    /// isolated), i.e. the addition is a bridge at the component level.
    fn forest_path_blocks(&self, u: VertexId, v: VertexId) -> Option<Vec<u32>> {
        let start = self.tree_node_of_vertex(u)?;
        let target = self.tree_node_of_vertex(v)?;
        if start == target {
            // Both endpoints resolve to the same single block.
            if let TreeNode::Block(b) = start {
                return Some(vec![b]);
            }
        }
        // Bidirectional BFS over the bipartite forest, always expanding the
        // smaller frontier; exhausting one side means different components.
        let mut pa: HashMap<TreeNode, TreeNode> = HashMap::new();
        let mut pb: HashMap<TreeNode, TreeNode> = HashMap::new();
        pa.insert(start, start);
        pb.insert(target, target);
        let mut fa = vec![start];
        let mut fb = vec![target];
        let mut scratch = Vec::new();
        let meet = 'search: loop {
            if fa.is_empty() || fb.is_empty() {
                return None;
            }
            let expand_a = fa.len() <= fb.len();
            let (front, own, other) =
                if expand_a { (&mut fa, &mut pa, &pb) } else { (&mut fb, &mut pb, &pa) };
            let mut next = Vec::new();
            for &node in front.iter() {
                self.tree_neighbors(node, &mut scratch);
                for &nxt in &scratch {
                    if own.contains_key(&nxt) {
                        continue;
                    }
                    own.insert(nxt, node);
                    if other.contains_key(&nxt) {
                        break 'search nxt;
                    }
                    next.push(nxt);
                }
            }
            *front = next;
        };
        let mut blocks = Vec::new();
        let walk = |parents: &HashMap<TreeNode, TreeNode>, blocks: &mut Vec<u32>| {
            let mut cur = meet;
            loop {
                if let TreeNode::Block(b) = cur {
                    blocks.push(b);
                }
                let Some(&p) = parents.get(&cur) else { break };
                if p == cur {
                    break;
                }
                cur = p;
            }
        };
        walk(&pa, &mut blocks);
        walk(&pb, &mut blocks);
        blocks.sort_unstable();
        blocks.dedup();
        Some(blocks)
    }

    /// Tries to rewrite block `b` in place: applies `edits` to its edge
    /// list and accepts iff the result is still one biconnected block on
    /// the same vertex set. Returns the new sorted edge list on success.
    fn try_patch_block(
        &self,
        b: u32,
        edits: &[((VertexId, VertexId), bool)],
    ) -> Option<Vec<(VertexId, VertexId)>> {
        let mut set: BTreeSet<(VertexId, VertexId)> =
            self.block_edges[b as usize].iter().copied().collect();
        let mut has_removal = false;
        for &((u, v), add) in edits {
            if add {
                if !set.insert((u, v)) {
                    return None; // already present: store out of sync
                }
            } else {
                has_removal = true;
                if !set.remove(&(u, v)) {
                    return None;
                }
            }
        }
        if !has_removal {
            // Chords only: adding edges to a biconnected block keeps it
            // biconnected on the same vertex set.
            return Some(set.into_iter().collect());
        }
        if set.is_empty() {
            return None;
        }
        let verts = &self.block_verts[b as usize];
        let mut ledges = Vec::with_capacity(set.len());
        for &(u, v) in &set {
            let (Ok(lu), Ok(lv)) = (verts.binary_search(&u), verts.binary_search(&v)) else {
                return None;
            };
            ledges.push((lu as u32, lv as u32));
        }
        let g = Graph::undirected_from_edges(verts.len(), &ledges);
        let bcc = biconnected_components(&g);
        if bcc.count() != 1 || bcc.bcc_vertices[0].len() != verts.len() {
            return None;
        }
        Some(set.into_iter().collect())
    }

    /// Rebuilds sub-graph `s`'s local CSR from its blocks' edge lists
    /// (vertex set unchanged). Returns `false` on store inconsistency.
    fn rebuild_subgraph_csr(&mut self, s: usize) -> bool {
        let mut ledges = Vec::new();
        {
            let sg = &self.decomp.subgraphs[s];
            for &b in &self.subgraph_blocks[s] {
                for &(u, v) in &self.block_edges[b as usize] {
                    let (Ok(lu), Ok(lv)) =
                        (sg.globals.binary_search(&u), sg.globals.binary_search(&v))
                    else {
                        return false;
                    };
                    ledges.push((lu as u32, lv as u32));
                }
            }
        }
        let sg = &mut self.decomp.subgraphs[s];
        sg.graph = Graph::undirected_from_edges(sg.num_vertices(), &ledges);
        sg.recompute_whiskers();
        true
    }

    /// Applies one batch of effective edge edits to the maintained
    /// decomposition. `num_vertices` is the post-batch vertex count (vertex
    /// additions only grow index space; vertex removals arrive as the edge
    /// edits stripping the vertex).
    ///
    /// On `Err` the store may be partially mutated and **must not** be used
    /// further: the caller falls back to a fresh [`decompose`] and reseeds
    /// (which the error paths are priced for — they are the cases a region
    /// bound cannot cover, plus internal-inconsistency bails).
    pub fn apply_edits(
        &mut self,
        num_vertices: usize,
        edits: &[EdgeEdit],
    ) -> Result<MaintainOutcome, &'static str> {
        let t0 = Instant::now();
        if self.directed {
            return Err("maintenance covers undirected structure only");
        }
        if !self.store_valid {
            return Err("block store invalidated by a forced rebuild");
        }
        if num_vertices < self.decomp.num_vertices {
            return Err("vertex count shrank");
        }
        let old_num_subgraphs = self.decomp.num_subgraphs();
        self.decomp.num_vertices = num_vertices;
        self.decomp.is_articulation.resize(num_vertices, false);
        self.blocks_of_vertex.resize(num_vertices, Vec::new());

        // Net the stream per unordered endpoint pair: successive effective
        // edits on one pair alternate add/remove, so an even count cancels.
        let mut net: BTreeMap<(VertexId, VertexId), bool> = BTreeMap::new();
        for e in edits {
            if e.u == e.v {
                return Err("self-loop edit");
            }
            if e.u as usize >= num_vertices || e.v as usize >= num_vertices {
                return Err("edit endpoint out of range");
            }
            let key = (e.u.min(e.v), e.u.max(e.v));
            match net.entry(key) {
                std::collections::btree_map::Entry::Occupied(o) => {
                    o.remove();
                }
                std::collections::btree_map::Entry::Vacant(s) => {
                    s.insert(e.add);
                }
            }
        }
        if net.is_empty() {
            return Ok(MaintainOutcome {
                stats: MaintainStats { maintain_time: t0.elapsed(), ..Default::default() },
                old_to_new: (0..old_num_subgraphs as u32).map(Some).collect(),
                dirty: Vec::new(),
                indices_changed: false,
            });
        }

        // Classify each net edit against the pre-batch store.
        let mut patch: BTreeMap<u32, Vec<((VertexId, VertexId), bool)>> = BTreeMap::new();
        let mut structural: Vec<((VertexId, VertexId), bool)> = Vec::new();
        let mut seeds: BTreeSet<u32> = BTreeSet::new();
        let mut pathless_adds = 0usize;
        for (&(u, v), &add) in &net {
            if add {
                if let Some(b) = self.common_block(u, v) {
                    patch.entry(b).or_default().push(((u, v), true));
                } else if let Some(path) = self.forest_path_blocks(u, v) {
                    seeds.extend(path);
                    structural.push(((u, v), true));
                } else {
                    // Component-bridging addition: no fundamental cycle in
                    // the old forest bounds it. One per batch is still exact
                    // (a single crossing cannot close a component-level
                    // cycle); two or more can, so decline.
                    pathless_adds += 1;
                    if pathless_adds > 1 {
                        return Err("multiple component-bridging additions in one batch");
                    }
                    structural.push(((u, v), true));
                }
            } else {
                let Some(b) = self.owning_block_of_edge(u, v) else {
                    return Err("block store does not own a removed edge");
                };
                patch.entry(b).or_default().push(((u, v), false));
            }
        }

        // In-place patches; failures demote to the splice region.
        let mut patched_blocks: Vec<u32> = Vec::new();
        let mut patched_edits = 0usize;
        for (b, bedits) in patch {
            match self.try_patch_block(b, &bedits) {
                Some(new_edges) => {
                    self.block_edges[b as usize] = new_edges;
                    patched_edits += bedits.len();
                    patched_blocks.push(b);
                }
                None => {
                    seeds.insert(b);
                    structural.extend(bedits);
                }
            }
        }
        let mut patched_sgs: BTreeSet<usize> = BTreeSet::new();
        for &b in &patched_blocks {
            let s = self.decomp.subgraph_of_bcc[b as usize];
            if s == NIL {
                return Err("patched block has no owning sub-graph");
            }
            patched_sgs.insert(s as usize);
        }
        for &s in patched_sgs.clone().iter() {
            if !self.rebuild_subgraph_csr(s) {
                return Err("block store out of sync with sub-graph vertex sets");
            }
        }

        if structural.is_empty() {
            return Ok(MaintainOutcome {
                stats: MaintainStats {
                    patched_edits,
                    maintain_time: t0.elapsed(),
                    ..Default::default()
                },
                old_to_new: (0..old_num_subgraphs as u32).map(Some).collect(),
                dirty: patched_sgs.into_iter().collect(),
                indices_changed: false,
            });
        }
        self.splice(
            seeds,
            &structural,
            &patched_sgs,
            patched_edits,
            old_num_subgraphs,
            pathless_adds > 0,
            t0,
        )
    }

    /// The splice path: region Tarjan, store update, per-component merge
    /// re-run, sub-graph diff, boundary/α/β refresh.
    #[allow(clippy::too_many_arguments)]
    fn splice(
        &mut self,
        seeds: BTreeSet<u32>,
        structural: &[((VertexId, VertexId), bool)],
        patched_sgs: &BTreeSet<usize>,
        patched_edits: usize,
        old_num_subgraphs: usize,
        component_bridging: bool,
        t0: Instant,
    ) -> Result<MaintainOutcome, &'static str> {
        // ---- Region assembly: the seeds' edges, plus the edits.
        let mut redges: BTreeSet<(VertexId, VertexId)> = BTreeSet::new();
        let mut rverts: BTreeSet<VertexId> = BTreeSet::new();
        for &b in &seeds {
            redges.extend(self.block_edges[b as usize].iter().copied());
            rverts.extend(self.block_verts[b as usize].iter().copied());
        }
        for &((u, v), add) in structural {
            if add {
                if !redges.insert((u, v)) {
                    return Err("added edge already present in the region");
                }
                rverts.insert(u);
                rverts.insert(v);
            } else if !redges.remove(&(u, v)) {
                return Err("block store does not own a removed edge");
            }
        }
        let idx: Vec<VertexId> = rverts.into_iter().collect();
        let mut ledges = Vec::with_capacity(redges.len());
        for &(u, v) in &redges {
            let (Ok(lu), Ok(lv)) = (idx.binary_search(&u), idx.binary_search(&v)) else {
                return Err("region vertex index out of sync");
            };
            ledges.push((lu as u32, lv as u32));
        }

        // ---- Localized Tarjan on the region.
        let rg = Graph::undirected_from_edges(idx.len(), &ledges);
        let rb = biconnected_components(&rg);
        let nb_new = rb.count();
        let mut nverts: Vec<Vec<VertexId>> = rb
            .bcc_vertices
            .iter()
            .map(|vs| {
                let mut g: Vec<VertexId> = vs.iter().map(|&l| idx[l as usize]).collect();
                g.sort_unstable();
                g
            })
            .collect();
        let mut nedges: Vec<Vec<(VertexId, VertexId)>> = vec![Vec::new(); nb_new];
        for (&(u, v), &(lu, lv)) in redges.iter().zip(&ledges) {
            let b = rb.bcc_of_edge(lu, lv) as usize; // present by construction
            nedges[b].push((u, v));
        }
        for edges in &mut nedges {
            edges.sort_unstable();
        }

        // ---- Store update: kill the seeds, splice the new blocks in. Dead
        // slots are recycled only by *later* calls so that block ids stay
        // unique within this one (the sub-graph diff below matches on them).
        let seeds_vec: Vec<u32> = seeds.into_iter().collect();
        for &b in &seeds_vec {
            self.alive[b as usize] = false;
            let verts = std::mem::take(&mut self.block_verts[b as usize]);
            for &v in &verts {
                self.blocks_of_vertex[v as usize].retain(|&x| x != b);
            }
            self.block_edges[b as usize].clear();
            self.live_blocks -= 1;
        }
        let mut new_ids = Vec::with_capacity(nb_new);
        for i in 0..nb_new {
            let id = match self.free.pop() {
                Some(id) => id,
                None => {
                    self.block_verts.push(Vec::new());
                    self.block_edges.push(Vec::new());
                    self.alive.push(false);
                    (self.block_verts.len() - 1) as u32
                }
            };
            self.alive[id as usize] = true;
            self.block_verts[id as usize] = std::mem::take(&mut nverts[i]);
            self.block_edges[id as usize] = std::mem::take(&mut nedges[i]);
            for &v in &self.block_verts[id as usize] {
                let list = &mut self.blocks_of_vertex[v as usize];
                if let Err(pos) = list.binary_search(&id) {
                    list.insert(pos, id);
                }
            }
            self.live_blocks += 1;
            new_ids.push(id);
        }
        self.free.extend(seeds_vec.iter().copied());

        // ---- Articulation refresh: only region vertices can change block
        // membership counts.
        for &v in &idx {
            self.decomp.is_articulation[v as usize] = self.blocks_of_vertex[v as usize].len() >= 2;
        }

        // ---- Affected components. The common splice leaves the component
        // structure intact: no component-bridging addition, the post-edit
        // region is still connected (so nothing split off — every piece of
        // the component that hung off a region vertex still does), and all
        // blocks around the region sit in one known component `c`. Then the
        // affected block set is exactly the persistent `comp_blocks[c]`
        // (minus the dead seeds, plus the spliced blocks) and the
        // O(component) BFS is skipped. Anything else — bridging adds,
        // region split apart, edits spanning several components — falls
        // back to the BFS and re-registers the discovered components under
        // fresh ids.
        let nslots = self.block_verts.len();
        self.comp_id.resize(nslots, NIL);
        let region_connected = {
            let mut seen = vec![false; idx.len()];
            let mut stack: Vec<u32> = Vec::new();
            let mut visited = 0usize;
            if !idx.is_empty() {
                seen[0] = true;
                stack.push(0);
                visited = 1;
                while let Some(l) = stack.pop() {
                    for &nb in rg.out_neighbors(l) {
                        if !seen[nb as usize] {
                            seen[nb as usize] = true;
                            visited += 1;
                            stack.push(nb);
                        }
                    }
                }
            }
            visited == idx.len()
        };
        let anchor_comp = {
            let is_new = |b: u32| new_ids.contains(&b);
            let mut c = NIL;
            let mut ok = true;
            for &v in &idx {
                for &b in &self.blocks_of_vertex[v as usize] {
                    if is_new(b) {
                        continue;
                    }
                    let bc = self.comp_id[b as usize];
                    if c == NIL {
                        c = bc;
                    } else if c != bc {
                        ok = false;
                    }
                }
            }
            if ok && c != NIL {
                c
            } else {
                NIL
            }
        };
        let fast = !component_bridging && region_connected && anchor_comp != NIL;
        let mut affected: Vec<u32>;
        let num_components: u32;
        let mut tops_global: Vec<u32> = Vec::new();
        if fast {
            let c = anchor_comp;
            for &b in &new_ids {
                self.comp_id[b as usize] = c;
            }
            affected = self.comp_blocks[c as usize]
                .iter()
                .copied()
                .filter(|&b| self.alive[b as usize] && self.comp_id[b as usize] == c)
                .collect();
            affected.extend(new_ids.iter().copied());
            affected.sort_unstable();
            affected.dedup();
            self.comp_blocks[c as usize] = affected.clone();
            num_components = 1;
            // Only region blocks changed, so the canonical top is the best
            // of the cached top and the spliced blocks — unless the cached
            // top itself died with the region, which forces a full scan.
            let cached = self.comp_top[c as usize];
            let top = if self.alive[cached as usize] && self.comp_id[cached as usize] == c {
                let mut cands = new_ids.clone();
                cands.push(cached);
                canonical_top_bcc(&cands, &self.block_verts)
            } else {
                canonical_top_bcc(&affected, &self.block_verts)
            };
            self.comp_top[c as usize] = top;
            tops_global.push(top);
        } else {
            let mut starts: Vec<u32> = new_ids.clone();
            for &v in &idx {
                starts.extend(self.blocks_of_vertex[v as usize].iter().copied());
            }
            starts.sort_unstable();
            starts.dedup();
            let mut comp_of_block: Vec<u32> = vec![NIL; nslots];
            affected = Vec::new();
            let mut ncomp = 0u32;
            let mut queue = VecDeque::new();
            for &s in &starts {
                if comp_of_block[s as usize] != NIL {
                    continue;
                }
                comp_of_block[s as usize] = ncomp;
                queue.push_back(s);
                while let Some(b) = queue.pop_front() {
                    affected.push(b);
                    for &v in &self.block_verts[b as usize] {
                        let blocks = &self.blocks_of_vertex[v as usize];
                        if blocks.len() < 2 {
                            continue;
                        }
                        for &o in blocks {
                            if comp_of_block[o as usize] == NIL {
                                comp_of_block[o as usize] = ncomp;
                                queue.push_back(o);
                            }
                        }
                    }
                }
                ncomp += 1;
            }
            affected.sort_unstable();
            num_components = ncomp;
            // Re-register the discovered components under fresh ids. Every
            // former member of a touched component is reachable from the
            // starts (each split-off piece contains a region vertex), so no
            // block is left holding a stale id and the old lists can be
            // dropped wholesale.
            let mut old_comps: Vec<u32> = affected
                .iter()
                .filter_map(|&b| {
                    let c = self.comp_id[b as usize];
                    (c != NIL).then_some(c)
                })
                .collect();
            old_comps.sort_unstable();
            old_comps.dedup();
            for &c in &old_comps {
                self.comp_blocks[c as usize] = Vec::new();
            }
            let base = self.comp_blocks.len() as u32;
            let mut lists: Vec<Vec<u32>> = vec![Vec::new(); num_components as usize];
            for &b in &affected {
                let k = comp_of_block[b as usize];
                self.comp_id[b as usize] = base + k;
                lists[k as usize].push(b);
            }
            for members in lists {
                let top = canonical_top_bcc(&members, &self.block_verts);
                tops_global.push(top);
                self.comp_top.push(top);
                self.comp_blocks.push(members);
            }
        }

        // ---- Old sub-graphs touched: owners of every affected block plus
        // owners of the dead seeds.
        let mut old_affected_mask = vec![false; old_num_subgraphs];
        for &b in affected.iter().chain(seeds_vec.iter()) {
            let s = self.decomp.subgraph_of_bcc.get(b as usize).copied().unwrap_or(NIL);
            if s != NIL {
                old_affected_mask[s as usize] = true;
            }
        }
        let old_affected: Vec<usize> =
            (0..old_num_subgraphs).filter(|&s| old_affected_mask[s]).collect();

        // ---- Re-merge the affected components on a compact block view.
        let cverts: Vec<&[VertexId]> =
            affected.iter().map(|&b| self.block_verts[b as usize].as_slice()).collect();
        let bct = BlockCutTree::build_from(&self.decomp.is_articulation, &cverts);
        let groups = if self.opts.merge_all {
            merge_all_per_component(&bct)
        } else {
            // Compact indices of the per-component canonical tops, already
            // known from the component bookkeeping above.
            let tops_compact: Vec<u32> = tops_global
                .iter()
                .map(|&t| affected.binary_search(&t).expect("top block not in region") as u32)
                .collect();
            merge_bccs_from_tops(&cverts, &bct, self.opts.merge_threshold as u64, &tops_compact)
        };

        // ---- Diff against the old grouping by block-id set. Ids are
        // stable for untouched blocks and fresh for spliced ones, so set
        // equality ⇔ identical sub-graph vertex/edge content. A group can
        // only match the old sub-graph owning its first block, and since
        // groups partition the affected blocks while `subgraph_blocks[cand]`
        // is exactly the set of blocks owned by `cand`, "every group block
        // is owned by `cand` and the lengths agree" ⇔ set equality — no
        // per-group materialization or sorting needed. Only the handful of
        // genuinely fresh groups are materialized.
        let mut group_of_block: Vec<u32> = vec![NIL; nslots];
        for (gi, g) in groups.iter().enumerate() {
            for &ci in g {
                group_of_block[affected[ci as usize] as usize] = gi as u32;
            }
        }
        let mut splits = 0usize;
        for &s in &old_affected {
            let mut first = NIL;
            for &b in &self.subgraph_blocks[s] {
                let g = group_of_block[b as usize];
                if g == NIL {
                    continue;
                }
                if first == NIL {
                    first = g;
                } else if first != g {
                    splits += 1;
                    break;
                }
            }
        }
        let mut kept_old: BTreeSet<usize> = BTreeSet::new();
        let mut removed: BTreeSet<usize> = old_affected.iter().copied().collect();
        let mut fresh_groups: Vec<Vec<u32>> = Vec::new();
        for g in groups.iter() {
            let b0 = affected[g[0] as usize];
            let cand = self.decomp.subgraph_of_bcc.get(b0 as usize).copied().unwrap_or(NIL);
            let matches = cand != NIL
                && removed.contains(&(cand as usize))
                && self.subgraph_blocks[cand as usize].len() == g.len()
                && g.iter().all(|&ci| {
                    let b = affected[ci as usize];
                    self.decomp.subgraph_of_bcc.get(b as usize).copied() == Some(cand)
                });
            if matches {
                kept_old.insert(cand as usize);
                removed.remove(&(cand as usize));
            } else {
                let mut s: Vec<u32> = g.iter().map(|&ci| affected[ci as usize]).collect();
                s.sort_unstable();
                fresh_groups.push(s);
            }
        }
        // A "split" of a kept sub-graph is impossible (its id set matched),
        // so `splits` only counted dissolved sub-graphs spanning >= 2 groups.

        // ---- Assemble the final sub-graph list: survivors in their old
        // relative order, fresh groups appended in canonical order.
        let mut old_to_new: Vec<Option<u32>> = vec![None; old_num_subgraphs];
        let mut final_sgs: Vec<SubGraph> = Vec::new();
        let mut final_blocks: Vec<Vec<u32>> = Vec::new();
        let old_sgs = std::mem::take(&mut self.decomp.subgraphs);
        let old_blocks = std::mem::take(&mut self.subgraph_blocks);
        for (i, (sg, blocks)) in old_sgs.into_iter().zip(old_blocks).enumerate() {
            if removed.contains(&i) {
                continue;
            }
            old_to_new[i] = Some(final_sgs.len() as u32);
            final_sgs.push(sg);
            final_blocks.push(blocks);
        }
        let mut assembled: Vec<(SubGraph, Vec<u32>)> = Vec::with_capacity(fresh_groups.len());
        for g in fresh_groups {
            let sg = self.assemble_subgraph(&g).ok_or("block store out of sync during assembly")?;
            assembled.push((sg, g));
        }
        assembled.sort_by(|a, b| a.0.globals.cmp(&b.0.globals));
        let mut fresh_final: Vec<usize> = Vec::with_capacity(assembled.len());
        for (sg, blocks) in assembled {
            fresh_final.push(final_sgs.len());
            final_sgs.push(sg);
            final_blocks.push(blocks);
        }
        let indices_changed = !removed.is_empty()
            || !fresh_final.is_empty()
            || old_to_new.iter().enumerate().any(|(i, m)| *m != Some(i as u32));
        for (i, sg) in final_sgs.iter_mut().enumerate() {
            sg.id = i;
        }
        self.decomp.subgraphs = final_sgs;
        self.subgraph_blocks = final_blocks;
        self.decomp.num_bccs = self.live_blocks;
        self.decomp.subgraph_of_bcc = vec![NIL; self.block_verts.len()];
        for (s, blocks) in self.subgraph_blocks.iter().enumerate() {
            for &b in blocks {
                self.decomp.subgraph_of_bcc[b as usize] = s as u32;
            }
        }
        self.decomp.top_subgraph = self
            .decomp
            .subgraphs
            .iter()
            .enumerate()
            .max_by_key(|(i, sg)| (sg.num_vertices(), usize::MAX - i))
            .map(|(i, _)| i)
            .unwrap_or(0);

        // ---- Boundary + α/β refresh. When the batch cannot have moved any
        // vertex between tree branches outside the region — one affected
        // component before and after, no component-bridging addition, and no
        // region vertex left isolated — branch weights at articulation
        // points outside the region are unchanged (every edit toggles edges
        // within a single branch of such a point), so only sub-graphs that
        // contain a region vertex can see their boundary flags or α move.
        // Otherwise (component split/merge, vertex joined or left) fall back
        // to refreshing every sub-graph of the affected components.
        let mut dirty: BTreeSet<usize> = BTreeSet::new();
        for &s in patched_sgs {
            if let Some(ns) = old_to_new.get(s).copied().flatten() {
                dirty.insert(ns as usize);
            }
        }
        dirty.extend(fresh_final.iter().copied());
        let mut cindex: Vec<u32> = vec![NIL; nslots];
        for (i, &b) in affected.iter().enumerate() {
            cindex[b as usize] = i as u32;
        }
        let rooted = bct.rooted();
        let isolated_region_vertex =
            idx.iter().any(|&v| self.blocks_of_vertex[v as usize].is_empty());
        let weights_stable = !component_bridging && num_components == 1 && !isolated_region_vertex;
        let mut refresh: Vec<usize> = fresh_final.clone();
        if weights_stable {
            for &v in &idx {
                for &b in &self.blocks_of_vertex[v as usize] {
                    let s = self.decomp.subgraph_of_bcc[b as usize];
                    if s != NIL {
                        refresh.push(s as usize);
                    }
                }
            }
        } else {
            for &s in &kept_old {
                if let Some(ns) = old_to_new.get(s).copied().flatten() {
                    refresh.push(ns as usize);
                }
            }
        }
        refresh.sort_unstable();
        refresh.dedup();
        for &s in &refresh {
            let (boundary_changed, alpha_changed) = {
                let sg = &self.decomp.subgraphs[s];
                let blocks = &self.subgraph_blocks[s];
                let ln = sg.num_vertices();
                let mut is_boundary = vec![false; ln];
                let mut boundary = Vec::new();
                for (l, &v) in sg.globals.iter().enumerate() {
                    if !self.decomp.is_articulation[v as usize] {
                        continue;
                    }
                    let crosses = self.blocks_of_vertex[v as usize]
                        .iter()
                        .any(|b| blocks.binary_search(b).is_err());
                    if crosses {
                        is_boundary[l] = true;
                        boundary.push(l as u32);
                    }
                }
                let mut alpha = vec![0u64; ln];
                for &l in &boundary {
                    let v = sg.globals[l as usize];
                    for &b in &self.blocks_of_vertex[v as usize] {
                        if self.decomp.subgraph_of_bcc[b as usize] == s as u32 {
                            continue;
                        }
                        let ci = cindex[b as usize];
                        if ci == NIL {
                            return Err("boundary block missing from the affected region");
                        }
                        alpha[l as usize] += rooted.branch_weight(v, ci);
                    }
                }
                let boundary_changed = is_boundary != sg.is_boundary;
                let alpha_changed = alpha != sg.alpha;
                if boundary_changed || alpha_changed {
                    let beta = alpha.clone();
                    let sg = &mut self.decomp.subgraphs[s];
                    sg.is_boundary = is_boundary;
                    sg.boundary = boundary;
                    sg.alpha = alpha;
                    sg.beta = beta;
                    if boundary_changed {
                        sg.recompute_whiskers();
                    }
                }
                (boundary_changed, alpha_changed)
            };
            if boundary_changed || alpha_changed {
                dirty.insert(s);
            }
        }

        Ok(MaintainOutcome {
            stats: MaintainStats {
                patched_edits,
                structural_edits: structural.len(),
                region_blocks: seeds_vec.len(),
                region_edges: redges.len(),
                blocks_removed: seeds_vec.len(),
                blocks_added: new_ids.len(),
                subgraphs_kept: kept_old.len(),
                subgraphs_removed: removed.len(),
                subgraphs_added: fresh_final.len(),
                subgraph_splits: splits,
                affected_components: num_components as usize,
                spliced: true,
                maintain_time: t0.elapsed(),
            },
            old_to_new,
            dirty: dirty.into_iter().collect(),
            indices_changed,
        })
    }

    /// Builds a [`SubGraph`] from a sorted group of store blocks (boundary
    /// from the store, whiskers recomputed, α/β left zero for the caller).
    fn assemble_subgraph(&self, blocks: &[u32]) -> Option<SubGraph> {
        let mut globals: Vec<VertexId> = Vec::new();
        for &b in blocks {
            globals.extend(self.block_verts[b as usize].iter().copied());
        }
        globals.sort_unstable();
        globals.dedup();
        let ln = globals.len();
        let mut ledges = Vec::new();
        for &b in blocks {
            for &(u, v) in &self.block_edges[b as usize] {
                let (Ok(lu), Ok(lv)) = (globals.binary_search(&u), globals.binary_search(&v))
                else {
                    return None;
                };
                ledges.push((lu as u32, lv as u32));
            }
        }
        let graph = Graph::undirected_from_edges(ln, &ledges);
        let mut is_boundary = vec![false; ln];
        let mut boundary = Vec::new();
        for (l, &v) in globals.iter().enumerate() {
            if !self.decomp.is_articulation[v as usize] {
                continue;
            }
            let crosses =
                self.blocks_of_vertex[v as usize].iter().any(|b| blocks.binary_search(b).is_err());
            if crosses {
                is_boundary[l] = true;
                boundary.push(l as u32);
            }
        }
        let mut sg = SubGraph {
            id: 0, // assigned by the caller
            globals,
            graph,
            is_boundary,
            boundary,
            alpha: vec![0; ln],
            beta: vec![0; ln],
            gamma: Vec::new(),
            is_whisker: Vec::new(),
            roots: Vec::new(),
        };
        sg.recompute_whiskers();
        Some(sg)
    }

    /// Cross-checks the maintained decomposition against a fresh
    /// [`decompose`] of `g` (content equivalence of every sub-graph, block
    /// multisets against a fresh Tarjan run, and the store's internal
    /// bookkeeping). `Err` describes the first divergence.
    pub fn verify_against_fresh(&self, g: &Graph) -> Result<(), String> {
        if self.directed {
            return Err("maintained decomposition is undirected-only".to_string());
        }
        if !self.store_valid {
            return Err("block store is stale".to_string());
        }
        let fresh = decompose(g, &self.opts);
        decomp_equivalent(&self.decomp, &fresh)?;

        // Block multisets vs a fresh Tarjan run.
        let und = g.to_undirected();
        let bcc = biconnected_components(&und);
        let mut fresh_blocks: Vec<Vec<(VertexId, VertexId)>> = vec![Vec::new(); bcc.count()];
        for (u, v) in und.undirected_edges() {
            if u == v {
                continue;
            }
            fresh_blocks[bcc.bcc_of_edge(u, v) as usize].push((u.min(v), u.max(v)));
        }
        let mut fresh_keys: Vec<(Vec<VertexId>, Vec<(VertexId, VertexId)>)> = fresh_blocks
            .into_iter()
            .zip(&bcc.bcc_vertices)
            .map(|(mut edges, verts)| {
                edges.sort_unstable();
                let mut vs = verts.clone();
                vs.sort_unstable();
                (vs, edges)
            })
            .collect();
        fresh_keys.sort();
        let mut mine: Vec<(Vec<VertexId>, Vec<(VertexId, VertexId)>)> = (0..self.alive.len())
            .filter(|&b| self.alive[b])
            .map(|b| (self.block_verts[b].clone(), self.block_edges[b].clone()))
            .collect();
        mine.sort();
        if mine.len() != fresh_keys.len() {
            return Err(format!(
                "store holds {} live blocks, fresh Tarjan finds {}",
                mine.len(),
                fresh_keys.len()
            ));
        }
        if mine != fresh_keys {
            return Err("block multiset diverged from a fresh Tarjan run".to_string());
        }

        // Store bookkeeping.
        if self.live_blocks != self.alive.iter().filter(|&&a| a).count() {
            return Err("live block count out of sync".to_string());
        }
        for (v, blocks) in self.blocks_of_vertex.iter().enumerate() {
            if !blocks.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("blocks_of_vertex[{v}] not sorted/unique"));
            }
            for &b in blocks {
                if !self.alive.get(b as usize).copied().unwrap_or(false) {
                    return Err(format!("vertex {v} lists dead block {b}"));
                }
                if self.block_verts[b as usize].binary_search(&(v as VertexId)).is_err() {
                    return Err(format!("vertex {v} lists block {b} which lacks it"));
                }
            }
            let want_art = blocks.len() >= 2;
            if self.decomp.is_articulation[v] != want_art {
                return Err(format!("articulation flag of vertex {v} out of sync"));
            }
        }
        for b in 0..self.alive.len() {
            if !self.alive[b] {
                continue;
            }
            for &v in &self.block_verts[b] {
                if self.blocks_of_vertex[v as usize].binary_search(&(b as u32)).is_err() {
                    return Err(format!("block {b} lists vertex {v} which lacks it back"));
                }
            }
        }
        if self.subgraph_blocks.len() != self.decomp.num_subgraphs() {
            return Err("subgraph_blocks length out of sync".to_string());
        }
        let mut owned = 0usize;
        for (s, blocks) in self.subgraph_blocks.iter().enumerate() {
            owned += blocks.len();
            for &b in blocks {
                if !self.alive.get(b as usize).copied().unwrap_or(false) {
                    return Err(format!("sub-graph {s} owns dead block {b}"));
                }
                if self.decomp.subgraph_of_bcc[b as usize] != s as u32 {
                    return Err(format!("subgraph_of_bcc disagrees on block {b}"));
                }
            }
        }
        if owned != self.live_blocks {
            return Err("sub-graph block groups do not partition the live blocks".to_string());
        }
        Ok(())
    }
}

/// Content equivalence of two decompositions of the same graph: identical
/// vertex counts, block counts, articulation flags, and an identical
/// *multiset* of sub-graphs (vertex sets, edge multisets, boundary, α/β/γ,
/// whisker flags, root sets). Sub-graph order and id assignment are allowed
/// to differ — an incrementally maintained decomposition keeps survivors'
/// indices while a fresh run numbers by Tarjan discovery order.
pub fn decomp_equivalent(a: &Decomposition, b: &Decomposition) -> Result<(), String> {
    if a.num_vertices != b.num_vertices {
        return Err(format!("vertex counts differ: {} vs {}", a.num_vertices, b.num_vertices));
    }
    if a.num_bccs != b.num_bccs {
        return Err(format!("block counts differ: {} vs {}", a.num_bccs, b.num_bccs));
    }
    if a.is_articulation != b.is_articulation {
        return Err("articulation flags differ".to_string());
    }
    if a.subgraphs.len() != b.subgraphs.len() {
        return Err(format!(
            "sub-graph counts differ: {} vs {}",
            a.subgraphs.len(),
            b.subgraphs.len()
        ));
    }
    type Key = (
        Vec<VertexId>,
        Vec<(u32, u32)>,
        Vec<bool>,
        Vec<u64>,
        Vec<u64>,
        Vec<u32>,
        Vec<bool>,
        Vec<u32>,
    );
    let key = |sg: &SubGraph| -> Key {
        let mut edges: Vec<(u32, u32)> =
            sg.graph.undirected_edges().map(|(u, v)| (u.min(v), u.max(v))).collect();
        edges.sort_unstable();
        (
            sg.globals.clone(),
            edges,
            sg.is_boundary.clone(),
            sg.alpha.clone(),
            sg.beta.clone(),
            sg.gamma.clone(),
            sg.is_whisker.clone(),
            sg.roots.clone(),
        )
    };
    let mut ka: Vec<Key> = a.subgraphs.iter().map(key).collect();
    let mut kb: Vec<Key> = b.subgraphs.iter().map(key).collect();
    ka.sort();
    kb.sort();
    for (x, y) in ka.iter().zip(&kb) {
        if x != y {
            return Err(format!(
                "sub-graph mismatch: first divergence at globals {:?} vs {:?}",
                &x.0[..x.0.len().min(8)],
                &y.0[..y.0.len().min(8)]
            ));
        }
    }
    let top = |d: &Decomposition| d.subgraphs.get(d.top_subgraph).map(|sg| sg.num_vertices());
    if top(a) != top(b) {
        return Err("top sub-graph sizes differ".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use apgre_graph::generators;

    /// Mirror of the graph under the edits, for fresh cross-checks.
    struct Harness {
        m: MaintainedDecomposition,
        edges: BTreeSet<(VertexId, VertexId)>,
        n: usize,
    }

    impl Harness {
        fn new(g: &Graph, threshold: usize) -> Self {
            let opts = PartitionOptions { merge_threshold: threshold, ..Default::default() };
            let edges: BTreeSet<(VertexId, VertexId)> =
                g.undirected_edges().map(|(u, v)| (u.min(v), u.max(v))).collect();
            Harness { m: MaintainedDecomposition::new(g, &opts), edges, n: g.num_vertices() }
        }

        fn graph(&self) -> Graph {
            let edges: Vec<(VertexId, VertexId)> = self.edges.iter().copied().collect();
            Graph::undirected_from_edges(self.n, &edges)
        }

        /// Applies the batch, cross-checks against fresh `decompose`, and
        /// returns the outcome.
        fn apply(&mut self, edits: &[EdgeEdit]) -> MaintainOutcome {
            for e in edits {
                let key = (e.u.min(e.v), e.u.max(e.v));
                if e.add {
                    assert!(self.edges.insert(key), "test edit adds existing edge");
                } else {
                    assert!(self.edges.remove(&key), "test edit removes missing edge");
                }
                self.n = self.n.max(e.u.max(e.v) as usize + 1);
            }
            let out = self.m.apply_edits(self.n, edits).expect("maintainable batch");
            self.m.verify_against_fresh(&self.graph()).expect("maintained == fresh");
            out
        }
    }

    fn add(u: VertexId, v: VertexId) -> EdgeEdit {
        EdgeEdit { add: true, u, v }
    }
    fn rem(u: VertexId, v: VertexId) -> EdgeEdit {
        EdgeEdit { add: false, u, v }
    }

    /// Two K4 blocks sharing articulation vertex 3, a whisker on each side.
    fn double_clique() -> Graph {
        Graph::undirected_from_edges(
            9,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (3, 5),
                (3, 6),
                (4, 5),
                (4, 6),
                (5, 6),
                (0, 7),
                (6, 8),
            ],
        )
    }

    #[test]
    fn chord_removal_patches_in_place() {
        let mut h = Harness::new(&double_clique(), 0);
        let before = h.m.decomp().num_subgraphs();
        // K4 minus one chord is still biconnected on the same vertex set.
        let out = h.apply(&[rem(1, 2)]);
        assert!(!out.stats.spliced);
        assert_eq!(out.stats.patched_edits, 1);
        assert_eq!(h.m.decomp().num_subgraphs(), before);
        assert!(!out.indices_changed);
        assert_eq!(out.dirty.len(), 1);
        // And back.
        let out = h.apply(&[add(1, 2)]);
        assert!(!out.stats.spliced);
    }

    #[test]
    fn block_split_is_spliced() {
        let mut h = Harness::new(&double_clique(), 0);
        // Removing two chords leaves 0-1-3-2-0 minus (1,2)... take the K4
        // down to a path: block splits, vertex set shrinks per block.
        let out = h.apply(&[rem(1, 2), rem(0, 3), rem(1, 3)]);
        assert!(out.stats.spliced);
        assert!(out.stats.blocks_added >= 2);
    }

    #[test]
    fn bridge_add_merges_path_blocks() {
        let mut h = Harness::new(&double_clique(), 0);
        // Whisker tips 7 (on clique A) and 8 (on clique B): the fundamental
        // cycle runs through both cliques — everything merges into one block.
        let out = h.apply(&[add(7, 8)]);
        assert!(out.stats.spliced);
        assert_eq!(out.stats.blocks_added, 1);
        assert_eq!(out.stats.blocks_removed, 4);
        // And removing it splits the single block back apart.
        let out = h.apply(&[rem(7, 8)]);
        assert!(out.stats.spliced);
        assert_eq!(out.stats.blocks_removed, 1);
        assert_eq!(out.stats.blocks_added, 4);
    }

    #[test]
    fn whisker_toggle_and_component_bridge() {
        let mut h = Harness::new(&double_clique(), 0);
        // Detach whisker 7 -> vertex 7 isolated (component split).
        let out = h.apply(&[rem(0, 7)]);
        assert!(out.stats.spliced);
        // Reattach to a different host: component-bridging addition.
        let out = h.apply(&[add(5, 7)]);
        assert!(out.stats.spliced);
        assert_eq!(out.stats.blocks_added, 1);
    }

    #[test]
    fn mixed_batch_patches_chords_and_splices_bridge() {
        let mut h = Harness::new(&double_clique(), 0);
        let out = h.apply(&[rem(1, 2), add(7, 8), rem(4, 5)]);
        assert!(out.stats.spliced);
        assert_eq!(out.stats.patched_edits, 2, "both chord removals patch in place");
        assert_eq!(out.stats.structural_edits, 1);
    }

    #[test]
    fn vertex_growth_without_edits_is_noop() {
        let mut h = Harness::new(&double_clique(), 0);
        h.n += 3;
        let out = h.m.apply_edits(h.n, &[]).expect("growth");
        assert!(out.dirty.is_empty());
        assert!(!out.indices_changed);
        h.m.verify_against_fresh(&h.graph()).expect("fresh after growth");
        // New vertex can then be wired in.
        let out = h.apply(&[add(9, 0)]);
        assert!(out.stats.spliced);
    }

    #[test]
    fn net_cancelling_edits_change_nothing() {
        let mut h = Harness::new(&double_clique(), 0);
        let fp_before: Vec<u64> =
            h.m.decomp().subgraphs.iter().map(|sg| sg.fingerprint()).collect();
        let out = h.apply(&[rem(1, 2), add(1, 2)]);
        assert!(!out.stats.spliced);
        assert!(out.dirty.is_empty());
        let fp_after: Vec<u64> = h.m.decomp().subgraphs.iter().map(|sg| sg.fingerprint()).collect();
        assert_eq!(fp_before, fp_after);
    }

    #[test]
    fn two_component_bridges_bail() {
        let g = Graph::undirected_from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let mut m = MaintainedDecomposition::new(&g, &PartitionOptions::default());
        let err = m.apply_edits(6, &[add(0, 3), add(2, 5)]).unwrap_err();
        assert!(err.contains("component-bridging"), "{err}");
    }

    #[test]
    fn directed_and_stale_stores_bail() {
        let g = generators::rmat_directed(5, 3, 7);
        let n = g.num_vertices();
        let mut m = MaintainedDecomposition::new(&g, &PartitionOptions::default());
        assert!(m.apply_edits(n, &[add(0, 1)]).is_err());

        let gu = double_clique();
        let mut m = MaintainedDecomposition::new(&gu, &PartitionOptions::default());
        let d = decompose(&gu, &PartitionOptions::default());
        m.adopt_stale(d);
        assert!(!m.store_valid());
        assert!(m.apply_edits(9, &[rem(1, 2)]).is_err());
    }

    #[test]
    fn contributions_survive_by_index() {
        // A structural edit inside clique B must keep clique A's sub-graph
        // at a live index (old_to_new maps it) and not mark it dirty.
        let mut h = Harness::new(&double_clique(), 0);
        let a_old =
            h.m.decomp()
                .subgraphs
                .iter()
                .position(|sg| sg.contains(0) && sg.contains(1))
                .expect("clique A sub-graph");
        // Split block B into triangle {3,4,5} + bridge (5,6). The piece at
        // articulation vertex 3 keeps size 3, so the top group — clique A
        // plus its whisker — is byte-identical and A's sub-graph survives.
        let out = h.apply(&[rem(3, 6), rem(4, 6)]);
        assert!(out.stats.spliced);
        let a_new = out.old_to_new[a_old].expect("clique A survives") as usize;
        assert!(!out.dirty.contains(&a_new), "clique A untouched: no kernel re-run");
        assert!(h.m.decomp().subgraphs[a_new].contains(1));
    }

    #[test]
    fn random_edit_streams_match_fresh() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..6u64 {
            let g = generators::whiskered_community(&generators::WhiskeredCommunityParams {
                core_vertices: 24,
                core_attach: 2,
                community_count: 4,
                community_size: 7,
                community_density: 1.7,
                whiskers: 14,
                seed,
            });
            let mut h = Harness::new(&g, 4);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xA9C3);
            for _ in 0..30 {
                let n = h.n as u32;
                let mut batch = Vec::new();
                for _ in 0..rng.gen_range(1..=3usize) {
                    let u = rng.gen_range(0..n);
                    let v = rng.gen_range(0..n);
                    if u == v {
                        continue;
                    }
                    let key = (u.min(v), u.max(v));
                    let present = h.edges.contains(&key);
                    // Skip edits that collide with earlier edits in the
                    // batch (the harness mirror applies them eagerly).
                    if batch.iter().any(|e: &EdgeEdit| (e.u.min(e.v), e.u.max(e.v)) == key) {
                        continue;
                    }
                    batch.push(EdgeEdit { add: !present, u, v });
                }
                if batch.is_empty() {
                    continue;
                }
                // Pre-apply to the mirror to decide whether this batch would
                // bail (two component bridges); if so, skip it here — the
                // engine-level tests cover the rebuild fallback.
                let mut mirror = h.edges.clone();
                let mut ok = true;
                for e in &batch {
                    let key = (e.u.min(e.v), e.u.max(e.v));
                    if e.add {
                        ok &= mirror.insert(key);
                    } else {
                        ok &= mirror.remove(&key);
                    }
                }
                assert!(ok, "batch internally consistent");
                match h.m.apply_edits(h.n, &batch) {
                    Ok(_) => {
                        h.edges = mirror;
                        h.m.verify_against_fresh(&h.graph()).expect("maintained == fresh");
                    }
                    Err(e) => {
                        assert!(e.contains("component-bridging"), "unexpected bail: {e}");
                        // Rebuild fallback: reseed and continue the stream.
                        h.edges = mirror;
                        let g2 = h.graph();
                        let opts = h.m.options().clone();
                        h.m = MaintainedDecomposition::new(&g2, &opts);
                    }
                }
            }
        }
    }
}
