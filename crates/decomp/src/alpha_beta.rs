//! `α` / `β` computation per boundary articulation point (paper §3.1 and §4
//! step 2).
//!
//! For a boundary articulation point `a` of sub-graph `SGi`:
//!
//! * `α_SGi(a)` — "the number of vertices which `a` can reach without passing
//!   through `SGi` in `G`" — size of the common sub-DAG hanging off `a`,
//! * `β_SGi(a)` — "the number of vertices which can reach `a` without passing
//!   through `SGi`" — the number of source DAGs that share the sub-DAG rooted
//!   at `a` inside `SGi`.
//!
//! The paper computes both with per-articulation-point (reverse) BFS. We keep
//! that method — it is the only correct one for directed graphs, where the
//! hanging regions are only *partially* reachable — and add an `O(V + E)`
//! fast path for undirected graphs: in an undirected graph every vertex of a
//! hanging region both reaches and is reached from `a`, so `α = β =` the
//! block-cut-tree branch weight (see [`crate::block_cut_tree`]).

use crate::bcc::BccResult;
use crate::block_cut_tree::BlockCutTree;
use crate::partition::Decomposition;
use crate::subgraph::SubGraph;
use apgre_graph::traversal::reachable_count;
use apgre_graph::{Graph, VertexId};
use rayon::prelude::*;

/// Strategy for computing `α`/`β`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlphaBetaMethod {
    /// Block-cut-tree fast path for undirected graphs, blocked BFS for
    /// directed ones.
    Auto,
    /// Always the paper's blocked-BFS method (one forward and one reverse
    /// BFS per boundary articulation point).
    BlockedBfs,
    /// Always the block-cut-tree fast path.
    ///
    /// # Panics
    /// `fill` panics if the graph is directed (the tree path over-counts
    /// unreachable vertices there).
    BlockCutTree,
}

/// Fills `alpha`/`beta` of every sub-graph in `decomp`.
pub(crate) fn fill(
    g: &Graph,
    decomp: &mut Decomposition,
    _bcc: &BccResult,
    bct: &BlockCutTree,
    method: AlphaBetaMethod,
) {
    let use_tree = match method {
        AlphaBetaMethod::Auto => !g.is_directed(),
        AlphaBetaMethod::BlockedBfs => false,
        AlphaBetaMethod::BlockCutTree => {
            assert!(!g.is_directed(), "block-cut-tree α/β is only valid for undirected graphs");
            true
        }
    };
    if use_tree {
        fill_via_tree(decomp, bct);
    } else {
        for i in 0..decomp.subgraphs.len() {
            let (alpha, beta) = blocked_bfs_alpha_beta(g, &decomp.subgraphs[i]);
            decomp.subgraphs[i].alpha = alpha;
            decomp.subgraphs[i].beta = beta;
        }
    }
}

/// Tree fast path: `α_SGi(a) = Σ` branch weights of `a`'s block-cut-tree
/// branches whose BCC lies outside `SGi`; `β = α` (undirected reachability is
/// symmetric).
fn fill_via_tree(decomp: &mut Decomposition, bct: &BlockCutTree) {
    let rooted = bct.rooted();
    let subgraph_of_bcc = &decomp.subgraph_of_bcc;
    for sg in &mut decomp.subgraphs {
        for &l in &sg.boundary {
            let v = sg.globals[l as usize];
            let ai = bct.art_index[v as usize];
            debug_assert_ne!(ai, u32::MAX);
            let mut a = 0u64;
            for &b in bct.art_bccs_of(ai) {
                if subgraph_of_bcc[b as usize] != sg.id as u32 {
                    a += rooted.branch_weight(v, b);
                }
            }
            sg.alpha[l as usize] = a;
            sg.beta[l as usize] = a;
        }
    }
}

/// The paper's method: for each boundary articulation point of `sg`, a
/// forward BFS (for `α`) and a reverse BFS (for `β`) over the **global**
/// graph, blocked at the sub-graph's other vertices. Boundary points are
/// processed in parallel. Exposed publicly for the ablation experiment and
/// the cross-check tests.
pub fn blocked_bfs_alpha_beta(g: &Graph, sg: &SubGraph) -> (Vec<u64>, Vec<u64>) {
    let n = g.num_vertices();
    let ln = sg.num_vertices();
    let mut member = vec![false; n];
    for &v in &sg.globals {
        member[v as usize] = true;
    }
    let member = &member;
    let results: Vec<(u32, u64, u64)> = sg
        .boundary
        .par_iter()
        .map(|&l| {
            let a = sg.globals[l as usize];
            let alpha = reachable_count(g.csr(), a, |v: VertexId| member[v as usize]);
            let beta = reachable_count(g.rev_csr(), a, |v: VertexId| member[v as usize]);
            (l, alpha, beta)
        })
        .collect();
    let mut alpha = vec![0u64; ln];
    let mut beta = vec![0u64; ln];
    for (l, a, b) in results {
        alpha[l as usize] = a;
        beta[l as usize] = b;
    }
    (alpha, beta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{decompose, PartitionOptions};
    use apgre_graph::generators;

    fn opts(threshold: usize, method: AlphaBetaMethod) -> PartitionOptions {
        PartitionOptions { merge_threshold: threshold, alpha_beta: method, ..Default::default() }
    }

    #[test]
    fn tree_and_bfs_agree_on_undirected() {
        for seed in 0..6 {
            let g = generators::whiskered_community(&generators::WhiskeredCommunityParams {
                core_vertices: 50,
                core_attach: 2,
                community_count: 5,
                community_size: 9,
                community_density: 1.6,
                whiskers: 20,
                seed,
            });
            let tree = decompose(&g, &opts(8, AlphaBetaMethod::BlockCutTree));
            let bfs = decompose(&g, &opts(8, AlphaBetaMethod::BlockedBfs));
            assert_eq!(tree.num_subgraphs(), bfs.num_subgraphs());
            for (a, b) in tree.subgraphs.iter().zip(&bfs.subgraphs) {
                assert_eq!(a.alpha, b.alpha, "α mismatch in SG{} seed {seed}", a.id);
                assert_eq!(a.beta, b.beta, "β mismatch in SG{} seed {seed}", a.id);
            }
        }
    }

    #[test]
    fn alpha_partitions_the_component_undirected() {
        // |SGi| + Σ α(a) = component size, for every sub-graph of a connected
        // undirected graph.
        let g = generators::whiskered_community(&generators::WhiskeredCommunityParams {
            core_vertices: 60,
            core_attach: 3,
            community_count: 6,
            community_size: 10,
            community_density: 2.0,
            whiskers: 30,
            seed: 4,
        });
        let n = g.num_vertices() as u64;
        let d = decompose(&g, &PartitionOptions::default());
        for sg in &d.subgraphs {
            let covered = sg.num_vertices() as u64 + sg.alpha.iter().sum::<u64>();
            assert_eq!(covered, n, "SG{}", sg.id);
        }
    }

    #[test]
    fn directed_alpha_beta_respect_orientation() {
        // 0 -> 1 -> 2 and 2 -> 3 -> 4, with 1 -> 0 and 3 -> 2 back-edges
        // absent: from the boundary art point 2, α toward {3,4} is 2, β from
        // {0,1} is 2, while α toward {0,1} is 0 (unreachable).
        let g = apgre_graph::Graph::directed_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let d = decompose(&g, &opts(1, AlphaBetaMethod::BlockedBfs));
        // threshold 1: nothing merges except forced rules; vertex 2 is a
        // boundary point of whichever sub-graphs it lands in.
        let mut seen_any = false;
        for sg in &d.subgraphs {
            if let Some(l) = sg.local_of(2) {
                if sg.is_boundary[l as usize] {
                    seen_any = true;
                    let a = sg.alpha[l as usize];
                    let b = sg.beta[l as usize];
                    // From 2: reachable outside-of-SG vertices are a subset of
                    // {3,4}; reaching 2: subset of {0,1}.
                    assert!(a <= 2 && b <= 2);
                }
            }
        }
        assert!(seen_any, "vertex 2 should be a boundary point somewhere");
    }

    #[test]
    fn star_alpha_beta() {
        // Star K_{1,5} with threshold 1: leaves hang as whisker-merged K2
        // BCCs off the top BCC... the whole star merges into one sub-graph,
        // so there are no boundary points at all.
        let g = generators::star(5);
        let d = decompose(&g, &PartitionOptions::default());
        assert_eq!(d.num_subgraphs(), 1);
        assert!(d.subgraphs[0].boundary.is_empty());
    }

    #[test]
    fn lollipop_boundary_alpha() {
        // K_8 clique + path of 40: the clique is the top BCC; the path edges
        // merge into chunks of `threshold`; every junction articulation point
        // gets α = vertices beyond it.
        let g = generators::lollipop(8, 40);
        let d = decompose(&g, &opts(10, AlphaBetaMethod::Auto));
        assert!(d.num_subgraphs() >= 2, "{} sub-graphs", d.num_subgraphs());
        d.validate(&g).unwrap();
        let n = g.num_vertices() as u64;
        for sg in &d.subgraphs {
            let covered = sg.num_vertices() as u64 + sg.alpha.iter().sum::<u64>();
            assert_eq!(covered, n, "SG{}", sg.id);
        }
    }
}
