//! Slow reference implementations used as oracles in tests and in the
//! redundancy analyzer. Everything here is `O(V·(V+E))` or worse — never use
//! on experiment-sized graphs.

use apgre_graph::connectivity::connected_components;
use apgre_graph::{Graph, VertexId};
use std::collections::VecDeque;

/// Articulation points by definition: `v` is an articulation point iff
/// removing it increases the number of connected components among the
/// remaining vertices. `O(V·(V+E))`.
pub fn naive_articulation_points(g: &Graph) -> Vec<bool> {
    assert!(!g.is_directed());
    let n = g.num_vertices();
    let base = connected_components(g).count();
    let mut result = vec![false; n];
    let mut visited = vec![false; n];
    let mut queue = VecDeque::new();
    for v in 0..n as VertexId {
        if g.out_degree(v) == 0 {
            continue;
        }
        visited.fill(false);
        visited[v as usize] = true; // pretend removed
        let mut comps = 0usize;
        for start in 0..n as VertexId {
            if visited[start as usize] {
                continue;
            }
            comps += 1;
            visited[start as usize] = true;
            queue.push_back(start);
            while let Some(u) = queue.pop_front() {
                for &w in g.out_neighbors(u) {
                    if !visited[w as usize] {
                        visited[w as usize] = true;
                        queue.push_back(w);
                    }
                }
            }
        }
        // Removing non-isolated v: components go from `base` to
        // `base - 1 + k` where k is the number of pieces v's component
        // splits into; articulation iff k >= 2.
        result[v as usize] = comps > base;
    }
    result
}

/// Definitional betweenness centrality from the σ matrix:
/// `BC(v) = Σ_{s≠v≠t} σ_st(v)/σ_st` with
/// `σ_st(v) = σ_sv·σ_vt` when `d(s,v) + d(v,t) = d(s,t)` (paper §3.1
/// property 2). All-pairs BFS, `O(V²)` memory — a test oracle independent of
/// Brandes' accumulation trick.
pub fn naive_bc(g: &Graph) -> Vec<f64> {
    let n = g.num_vertices();
    let csr = g.csr();
    let mut dist = vec![vec![u32::MAX; n]; n];
    let mut sigma = vec![vec![0f64; n]; n];
    let mut queue = VecDeque::new();
    for s in 0..n {
        dist[s][s] = 0;
        sigma[s][s] = 1.0;
        queue.push_back(s as VertexId);
        while let Some(u) = queue.pop_front() {
            let du = dist[s][u as usize];
            for &v in csr.neighbors(u) {
                if dist[s][v as usize] == u32::MAX {
                    dist[s][v as usize] = du + 1;
                    queue.push_back(v);
                }
                if dist[s][v as usize] == du + 1 {
                    sigma[s][v as usize] += sigma[s][u as usize];
                }
            }
        }
    }
    let mut bc = vec![0f64; n];
    for s in 0..n {
        for t in 0..n {
            if s == t || sigma[s][t] == 0.0 {
                continue;
            }
            for v in 0..n {
                if v == s || v == t {
                    continue;
                }
                if dist[s][v] != u32::MAX
                    && dist[v][t] != u32::MAX
                    && dist[s][v] + dist[v][t] == dist[s][t]
                {
                    bc[v] += sigma[s][v] * sigma[v][t] / sigma[s][t];
                }
            }
        }
    }
    bc
}

#[cfg(test)]
mod tests {
    use super::*;
    use apgre_graph::generators;

    #[test]
    fn naive_art_on_path() {
        let g = generators::path(4);
        assert_eq!(naive_articulation_points(&g), vec![false, true, true, false]);
    }

    #[test]
    fn naive_art_isolated_vertex_is_not_articulation() {
        let g = Graph::undirected_from_edges(3, &[(0, 1)]);
        assert_eq!(naive_articulation_points(&g), vec![false, false, false]);
    }

    #[test]
    fn naive_bc_path_closed_form() {
        // Path 0-1-2-3: BC(1) = BC(2) = 2·2 = 4 directional (pairs (0,2),(0,3) through 1, ×2 directions).
        let g = generators::path(4);
        let bc = naive_bc(&g);
        assert_eq!(bc, vec![0.0, 4.0, 4.0, 0.0]);
    }

    #[test]
    fn naive_bc_star_closed_form() {
        // Star K_{1,4}: centre carries all k(k-1) ordered leaf pairs.
        let g = generators::star(4);
        let bc = naive_bc(&g);
        assert_eq!(bc[0], 12.0);
        assert!(bc[1..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn naive_bc_cycle_even() {
        // Cycle of 6: by symmetry all vertices equal; for C6 each vertex has
        // BC = 2·( (1) + (0.5+0.5) ) = ... verified value: pairs at distance 2
        // have 1 path through the middle vertex; distance-3 pairs have 2 paths.
        let g = generators::cycle(6);
        let bc = naive_bc(&g);
        for v in 1..6 {
            assert!((bc[v] - bc[0]).abs() < 1e-12);
        }
        assert!(bc[0] > 0.0);
    }

    #[test]
    fn naive_bc_directed_asymmetry() {
        let g = Graph::directed_from_edges(3, &[(0, 1), (1, 2)]);
        let bc = naive_bc(&g);
        assert_eq!(bc, vec![0.0, 1.0, 0.0]);
    }
}
