//! The per-sub-graph state the APGRE kernel consumes.

use apgre_graph::{Graph, VertexId};

/// One sub-graph of the paper's decomposed graph `SGi(V, E, A)`
/// (Definition 1), together with the articulation-point quantities of §3.1:
///
/// * `α(a)` — vertices reachable from `a` **outside** this sub-graph
///   (size of the common sub-DAG hanging off `a`, excluding `a`),
/// * `β(a)` — vertices outside this sub-graph that can **reach** `a`
///   (number of source DAGs sharing the sub-DAG rooted at `a`),
/// * `γ(v)` — whisker neighbours of `v` removed from the root set `R`
///   (total redundancy),
///
/// all expressed in **local** vertex ids (`0..globals.len()`); `globals`
/// maps back to the parent graph.
#[derive(Clone, Debug)]
pub struct SubGraph {
    /// Index of this sub-graph within the decomposition.
    pub id: usize,
    /// Local → global vertex id map (sorted ascending, so local order is
    /// deterministic).
    pub globals: Vec<VertexId>,
    /// Local graph over the edges assigned to this sub-graph. Directedness
    /// matches the parent graph.
    pub graph: Graph,
    /// Per-local-vertex: is this a boundary articulation point (`∈ A_sgi`)?
    pub is_boundary: Vec<bool>,
    /// Local ids of the boundary articulation points (`A_sgi`).
    pub boundary: Vec<u32>,
    /// `α` per local vertex (non-zero only for boundary points).
    pub alpha: Vec<u64>,
    /// `β` per local vertex (non-zero only for boundary points).
    pub beta: Vec<u64>,
    /// `γ` per local vertex: number of whisker neighbours folded into this
    /// vertex's root contribution.
    pub gamma: Vec<u32>,
    /// Per-local-vertex: was this vertex removed from `R` as a whisker?
    pub is_whisker: Vec<bool>,
    /// The root set `R_sgi`: local ids that get their own BFS.
    pub roots: Vec<u32>,
}

impl SubGraph {
    /// Vertices in this sub-graph (articulation points are counted in every
    /// sub-graph they border, matching the paper's Table 4 accounting).
    pub fn num_vertices(&self) -> usize {
        self.globals.len()
    }

    /// Edges assigned to this sub-graph.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Global id of local vertex `l`.
    #[inline]
    pub fn global_of(&self, l: u32) -> VertexId {
        self.globals[l as usize]
    }

    /// Local id of global vertex `v`, if present (binary search over the
    /// sorted `globals` list).
    pub fn local_of(&self, v: VertexId) -> Option<u32> {
        self.globals.binary_search(&v).ok().map(|i| i as u32)
    }

    /// Whether global vertex `v` belongs to this sub-graph.
    pub fn contains(&self, v: VertexId) -> bool {
        self.globals.binary_search(&v).is_ok()
    }
}
