//! The per-sub-graph state the APGRE kernel consumes.

use apgre_graph::{Graph, VertexId};

/// One sub-graph of the paper's decomposed graph `SGi(V, E, A)`
/// (Definition 1), together with the articulation-point quantities of §3.1:
///
/// * `α(a)` — vertices reachable from `a` **outside** this sub-graph
///   (size of the common sub-DAG hanging off `a`, excluding `a`),
/// * `β(a)` — vertices outside this sub-graph that can **reach** `a`
///   (number of source DAGs sharing the sub-DAG rooted at `a`),
/// * `γ(v)` — whisker neighbours of `v` removed from the root set `R`
///   (total redundancy),
///
/// all expressed in **local** vertex ids (`0..globals.len()`); `globals`
/// maps back to the parent graph.
#[derive(Clone, Debug)]
pub struct SubGraph {
    /// Index of this sub-graph within the decomposition.
    pub id: usize,
    /// Local → global vertex id map (sorted ascending, so local order is
    /// deterministic).
    pub globals: Vec<VertexId>,
    /// Local graph over the edges assigned to this sub-graph. Directedness
    /// matches the parent graph.
    pub graph: Graph,
    /// Per-local-vertex: is this a boundary articulation point (`∈ A_sgi`)?
    pub is_boundary: Vec<bool>,
    /// Local ids of the boundary articulation points (`A_sgi`).
    pub boundary: Vec<u32>,
    /// `α` per local vertex (non-zero only for boundary points).
    pub alpha: Vec<u64>,
    /// `β` per local vertex (non-zero only for boundary points).
    pub beta: Vec<u64>,
    /// `γ` per local vertex: number of whisker neighbours folded into this
    /// vertex's root contribution.
    pub gamma: Vec<u32>,
    /// Per-local-vertex: was this vertex removed from `R` as a whisker?
    pub is_whisker: Vec<bool>,
    /// The root set `R_sgi`: local ids that get their own BFS.
    pub roots: Vec<u32>,
}

impl SubGraph {
    /// Vertices in this sub-graph (articulation points are counted in every
    /// sub-graph they border, matching the paper's Table 4 accounting).
    pub fn num_vertices(&self) -> usize {
        self.globals.len()
    }

    /// Edges assigned to this sub-graph.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Global id of local vertex `l`.
    #[inline]
    pub fn global_of(&self, l: u32) -> VertexId {
        self.globals[l as usize]
    }

    /// Local id of global vertex `v`, if present (binary search over the
    /// sorted `globals` list).
    pub fn local_of(&self, v: VertexId) -> Option<u32> {
        self.globals.binary_search(&v).ok().map(|i| i as u32)
    }

    /// Whether global vertex `v` belongs to this sub-graph.
    pub fn contains(&self, v: VertexId) -> bool {
        self.globals.binary_search(&v).is_ok()
    }

    /// Recomputes `is_whisker`, `gamma`, and `roots` from the current local
    /// graph and boundary flags, applying the paper's whisker rule: a
    /// non-boundary vertex with undirected degree 1 (or, when directed,
    /// in-degree 0 and out-degree 1) is folded into its host's γ and dropped
    /// from the root set. The undirected K2 special case keeps the lower
    /// local id as the root.
    ///
    /// `decompose` uses this at build time; the incremental engine re-runs
    /// it after editing a sub-graph's edge set in place, which is sound
    /// because the rule only reads local degrees and `is_boundary` — and a
    /// *local* batch leaves the boundary set untouched by definition.
    pub fn recompute_whiskers(&mut self) {
        let ln = self.num_vertices();
        let directed = self.graph.is_directed();
        self.is_whisker = vec![false; ln];
        self.gamma = vec![0; ln];
        for l in 0..ln as u32 {
            if self.is_boundary[l as usize] {
                continue;
            }
            let qualifies = if directed {
                self.graph.in_degree(l) == 0 && self.graph.out_degree(l) == 1
            } else {
                self.graph.out_degree(l) == 1
            };
            if !qualifies {
                continue;
            }
            let host = self.graph.out_neighbors(l)[0];
            // Isolated-edge special case (undirected K2): both endpoints
            // qualify; keep the lower id as the root.
            if !directed
                && !self.is_boundary[host as usize]
                && self.graph.out_degree(host) == 1
                && l < host
            {
                continue;
            }
            self.is_whisker[l as usize] = true;
            self.gamma[host as usize] += 1;
        }
        self.roots = (0..ln as u32).filter(|&l| !self.is_whisker[l as usize]).collect();
    }

    /// FNV-1a over the kernel's exact input stream: directedness, vertex
    /// count, local edges, per-vertex boundary/α/β/γ/whisker state, and the
    /// root set. Two sub-graphs with equal fingerprints feed the BC kernel
    /// identical inputs, so their local score vectors are interchangeable —
    /// the basis for both `MemoizedBc` caching and the incremental engine's
    /// carry-forward of unchanged contributions across re-decompositions.
    /// Deliberately excludes `id` and `globals`: the local computation does
    /// not depend on where the sub-graph sits in the parent graph.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |x: u64| {
            for byte in x.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(self.graph.is_directed() as u64);
        eat(self.num_vertices() as u64);
        for (u, v) in self.graph.csr().edges() {
            eat(((u as u64) << 32) | v as u64);
        }
        for l in 0..self.num_vertices() {
            eat(self.is_boundary[l] as u64);
            eat(self.alpha[l]);
            eat(self.beta[l]);
            eat(self.gamma[l] as u64);
            eat(self.is_whisker[l] as u64);
        }
        for &r in &self.roots {
            eat(r as u64);
        }
        h
    }
}
