//! The block-cut tree: biconnected components attached at articulation
//! points (paper §3.1, property 3: "any connected graph decomposes into a
//! tree of biconnected components").
//!
//! The tree is bipartite — BCC nodes alternate with articulation-point nodes.
//! Rooting it and computing subtree vertex weights gives an `O(V + E)` way to
//! answer "how many vertices hang off articulation point `a` away from a set
//! of BCCs", which is exactly the undirected `α`/`β` query (see
//! [`crate::alpha_beta`]).

use crate::bcc::BccResult;
use apgre_graph::VertexId;

const NIL: u32 = u32::MAX;

/// The bipartite block-cut structure derived from a [`BccResult`].
#[derive(Clone, Debug)]
pub struct BlockCutTree {
    /// Per-BCC: global ids of the articulation vertices it contains.
    pub bcc_arts: Vec<Vec<VertexId>>,
    /// Dense articulation index per vertex (`u32::MAX` for non-articulation
    /// vertices).
    pub art_index: Vec<u32>,
    /// Global vertex id per dense articulation index.
    pub art_vertices: Vec<VertexId>,
    /// Per dense articulation index: the BCC ids containing that vertex.
    pub art_bccs: Vec<Vec<u32>>,
    /// Per-BCC: number of **non-articulation** vertices (its exclusive
    /// weight in subtree sums; articulation vertices weigh on their own
    /// nodes).
    pub bcc_nonart_weight: Vec<u64>,
}

impl BlockCutTree {
    /// Builds the tree from a BCC decomposition.
    pub fn build(bcc: &BccResult) -> Self {
        let n = bcc.is_articulation.len();
        let mut art_index = vec![NIL; n];
        let mut art_vertices = Vec::new();
        for v in 0..n {
            if bcc.is_articulation[v] {
                art_index[v] = art_vertices.len() as u32;
                art_vertices.push(v as VertexId);
            }
        }
        let mut bcc_arts = vec![Vec::new(); bcc.count()];
        let mut art_bccs = vec![Vec::new(); art_vertices.len()];
        let mut bcc_nonart_weight = vec![0u64; bcc.count()];
        for (b, verts) in bcc.bcc_vertices.iter().enumerate() {
            for &v in verts {
                let ai = art_index[v as usize];
                if ai == NIL {
                    bcc_nonart_weight[b] += 1;
                } else {
                    bcc_arts[b].push(v);
                    art_bccs[ai as usize].push(b as u32);
                }
            }
        }
        BlockCutTree { bcc_arts, art_index, art_vertices, art_bccs, bcc_nonart_weight }
    }

    /// Number of BCC nodes.
    pub fn num_bccs(&self) -> usize {
        self.bcc_arts.len()
    }

    /// Number of articulation nodes.
    pub fn num_arts(&self) -> usize {
        self.art_vertices.len()
    }

    /// Node id of BCC `b` in the bipartite tree.
    #[inline]
    fn bcc_node(&self, b: u32) -> u32 {
        b
    }

    /// Node id of dense articulation index `a` in the bipartite tree.
    #[inline]
    fn art_node(&self, a: u32) -> u32 {
        self.num_bccs() as u32 + a
    }

    /// Roots every tree component and computes subtree weights.
    pub fn rooted(&self) -> RootedBlockCutTree<'_> {
        let nb = self.num_bccs();
        let na = self.num_arts();
        let total_nodes = nb + na;
        let mut parent = vec![NIL; total_nodes];
        let mut comp_of = vec![NIL; total_nodes];
        let mut order: Vec<u32> = Vec::with_capacity(total_nodes);
        let mut comp_total: Vec<u64> = Vec::new();
        let mut subtree = vec![0u64; total_nodes];
        for node in 0..total_nodes {
            subtree[node] = self.node_weight(node as u32);
        }
        let mut visited = vec![false; total_nodes];
        for start in 0..total_nodes as u32 {
            if visited[start as usize] {
                continue;
            }
            let comp = comp_total.len() as u32;
            comp_total.push(0);
            // BFS over the bipartite tree.
            let mut queue = std::collections::VecDeque::new();
            visited[start as usize] = true;
            comp_of[start as usize] = comp;
            queue.push_back(start);
            while let Some(node) = queue.pop_front() {
                order.push(node);
                comp_total[comp as usize] += self.node_weight(node);
                for nb_node in self.node_neighbors(node) {
                    if !visited[nb_node as usize] {
                        visited[nb_node as usize] = true;
                        comp_of[nb_node as usize] = comp;
                        parent[nb_node as usize] = node;
                        queue.push_back(nb_node);
                    }
                }
            }
        }
        // Accumulate subtree weights bottom-up (reverse BFS order).
        for &node in order.iter().rev() {
            let p = parent[node as usize];
            if p != NIL {
                subtree[p as usize] += subtree[node as usize];
            }
        }
        RootedBlockCutTree { tree: self, parent, subtree, comp_of, comp_total }
    }

    fn node_weight(&self, node: u32) -> u64 {
        let nb = self.num_bccs() as u32;
        if node < nb {
            self.bcc_nonart_weight[node as usize]
        } else {
            1
        }
    }

    pub(crate) fn node_neighbors(&self, node: u32) -> Vec<u32> {
        let nb = self.num_bccs() as u32;
        if node < nb {
            self.bcc_arts[node as usize]
                .iter()
                .map(|&v| self.art_node(self.art_index[v as usize]))
                .collect()
        } else {
            let a = (node - nb) as usize;
            self.art_bccs[a].iter().map(|&b| self.bcc_node(b)).collect()
        }
    }
}

/// A rooted view of the block-cut tree with subtree vertex weights.
pub struct RootedBlockCutTree<'a> {
    tree: &'a BlockCutTree,
    parent: Vec<u32>,
    subtree: Vec<u64>,
    comp_of: Vec<u32>,
    comp_total: Vec<u64>,
}

impl RootedBlockCutTree<'_> {
    /// Number of graph vertices hanging off articulation vertex `art`
    /// (global id) through BCC `b`, **excluding `art` itself**: the weight of
    /// the tree branch incident to `art`'s node in the direction of `b`'s
    /// node.
    pub fn branch_weight(&self, art: VertexId, b: u32) -> u64 {
        let ai = self.tree.art_index[art as usize];
        assert_ne!(ai, NIL, "vertex {art} is not an articulation point");
        let a_node = self.tree.art_node(ai);
        let b_node = self.tree.bcc_node(b);
        if self.parent[b_node as usize] == a_node {
            self.subtree[b_node as usize]
        } else {
            debug_assert_eq!(
                self.parent[a_node as usize], b_node,
                "BCC {b} is not adjacent to articulation vertex {art}"
            );
            self.comp_total[self.comp_of[a_node as usize] as usize] - self.subtree[a_node as usize]
        }
    }

    /// Total graph-vertex weight of the tree component containing BCC `b`.
    pub fn component_weight_of_bcc(&self, b: u32) -> u64 {
        self.comp_total[self.comp_of[b as usize] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bcc::biconnected_components;
    use apgre_graph::generators;
    use apgre_graph::Graph;

    #[test]
    fn path_tree_structure() {
        // 0-1-2-3: BCCs {01},{12},{23}; arts {1,2}.
        let g = generators::path(4);
        let bcc = biconnected_components(&g);
        let t = BlockCutTree::build(&bcc);
        assert_eq!(t.num_bccs(), 3);
        assert_eq!(t.num_arts(), 2);
        let rooted = t.rooted();
        // From art 1 through the BCC containing edge (0,1): 1 vertex (just 0).
        let b01 = bcc.bcc_of_edge(0, 1);
        let b12 = bcc.bcc_of_edge(1, 2);
        assert_eq!(rooted.branch_weight(1, b01), 1);
        // From art 1 through BCC {1,2}: vertices {2, 3} = 2.
        assert_eq!(rooted.branch_weight(1, b12), 2);
        let b23 = bcc.bcc_of_edge(2, 3);
        assert_eq!(rooted.branch_weight(2, b23), 1);
        assert_eq!(rooted.branch_weight(2, b12), 2);
        assert_eq!(rooted.component_weight_of_bcc(b01), 4);
    }

    #[test]
    fn branch_weights_sum_to_component_minus_art() {
        let g = generators::whiskered_community(&generators::WhiskeredCommunityParams {
            core_vertices: 40,
            core_attach: 2,
            community_count: 4,
            community_size: 8,
            community_density: 1.5,
            whiskers: 15,
            seed: 9,
        });
        let bcc = biconnected_components(&g);
        let t = BlockCutTree::build(&bcc);
        let rooted = t.rooted();
        for (ai, &art) in t.art_vertices.iter().enumerate() {
            let total: u64 = t.art_bccs[ai].iter().map(|&b| rooted.branch_weight(art, b)).sum();
            let comp_total = rooted.component_weight_of_bcc(t.art_bccs[ai][0]);
            assert_eq!(total, comp_total - 1, "art vertex {art}");
        }
    }

    #[test]
    fn two_components() {
        let g = Graph::undirected_from_edges(7, &[(0, 1), (1, 2), (4, 5), (5, 6)]);
        let bcc = biconnected_components(&g);
        let t = BlockCutTree::build(&bcc);
        let rooted = t.rooted();
        let b01 = bcc.bcc_of_edge(0, 1);
        let b45 = bcc.bcc_of_edge(4, 5);
        assert_eq!(rooted.component_weight_of_bcc(b01), 3);
        assert_eq!(rooted.component_weight_of_bcc(b45), 3);
        assert_eq!(rooted.branch_weight(1, b01), 1);
        assert_eq!(rooted.branch_weight(5, b45), 1);
    }

    #[test]
    fn star_center_branches() {
        let g = generators::star(5);
        let bcc = biconnected_components(&g);
        let t = BlockCutTree::build(&bcc);
        let rooted = t.rooted();
        for leaf in 1..=5u32 {
            let b = bcc.bcc_of_edge(0, leaf);
            assert_eq!(rooted.branch_weight(0, b), 1);
        }
    }
}
