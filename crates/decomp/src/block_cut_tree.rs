//! The block-cut tree: biconnected components attached at articulation
//! points (paper §3.1, property 3: "any connected graph decomposes into a
//! tree of biconnected components").
//!
//! The tree is bipartite — BCC nodes alternate with articulation-point nodes.
//! Rooting it and computing subtree vertex weights gives an `O(V + E)` way to
//! answer "how many vertices hang off articulation point `a` away from a set
//! of BCCs", which is exactly the undirected `α`/`β` query (see
//! [`crate::alpha_beta`]).

use crate::bcc::BccResult;
use apgre_graph::VertexId;

const NIL: u32 = u32::MAX;

/// The bipartite block-cut structure derived from a [`BccResult`].
///
/// Incidences are stored once, in CSR form over the bipartite node space
/// (BCC nodes first, then articulation nodes), so construction does no
/// per-node allocation and every traversal walks slices.
#[derive(Clone, Debug)]
pub struct BlockCutTree {
    /// Dense articulation index per vertex (`u32::MAX` for non-articulation
    /// vertices).
    pub art_index: Vec<u32>,
    /// Global vertex id per dense articulation index.
    pub art_vertices: Vec<VertexId>,
    /// Per-BCC: number of **non-articulation** vertices (its exclusive
    /// weight in subtree sums; articulation vertices weigh on their own
    /// nodes).
    pub bcc_nonart_weight: Vec<u64>,
    /// CSR offsets into `adj` per bipartite node.
    adj_off: Vec<u32>,
    /// CSR neighbor node ids.
    adj: Vec<u32>,
}

impl BlockCutTree {
    /// Builds the tree from a BCC decomposition.
    pub fn build(bcc: &BccResult) -> Self {
        Self::build_from(&bcc.is_articulation, &bcc.bcc_vertices)
    }

    /// Builds the tree from raw articulation flags and per-block vertex
    /// lists. Block ids in the tree index `bcc_vertices`, which may be a
    /// compact view (the incremental maintainer passes only the blocks of
    /// the affected components; articulation vertices whose blocks are all
    /// outside the view become isolated articulation nodes and are never
    /// queried).
    pub fn build_from<V: AsRef<[VertexId]>>(is_articulation: &[bool], bcc_vertices: &[V]) -> Self {
        let n = is_articulation.len();
        let mut art_index = vec![NIL; n];
        let mut art_vertices = Vec::new();
        for v in 0..n {
            if is_articulation[v] {
                art_index[v] = art_vertices.len() as u32;
                art_vertices.push(v as VertexId);
            }
        }
        let nb = bcc_vertices.len();
        let total = nb + art_vertices.len();
        let mut bcc_nonart_weight = vec![0u64; nb];
        // Two-pass CSR build: count incidences, prefix-sum, fill. Incidence
        // order matches iteration order (blocks ascending, vertices in block
        // order), which downstream DFS determinism relies on.
        let mut adj_off = vec![0u32; total + 1];
        for (b, verts) in bcc_vertices.iter().enumerate() {
            for &v in verts.as_ref() {
                let ai = art_index[v as usize];
                if ai == NIL {
                    bcc_nonart_weight[b] += 1;
                } else {
                    adj_off[b + 1] += 1;
                    adj_off[nb + ai as usize + 1] += 1;
                }
            }
        }
        for i in 0..total {
            adj_off[i + 1] += adj_off[i];
        }
        let mut adj = vec![0u32; adj_off[total] as usize];
        let mut pos: Vec<u32> = adj_off[..total].to_vec();
        for (b, verts) in bcc_vertices.iter().enumerate() {
            for &v in verts.as_ref() {
                let ai = art_index[v as usize];
                if ai != NIL {
                    adj[pos[b] as usize] = nb as u32 + ai;
                    pos[b] += 1;
                    let an = nb + ai as usize;
                    adj[pos[an] as usize] = b as u32;
                    pos[an] += 1;
                }
            }
        }
        BlockCutTree { art_index, art_vertices, bcc_nonart_weight, adj_off, adj }
    }

    /// Number of BCC nodes.
    pub fn num_bccs(&self) -> usize {
        self.bcc_nonart_weight.len()
    }

    /// Number of articulation nodes.
    pub fn num_arts(&self) -> usize {
        self.art_vertices.len()
    }

    /// Node id of BCC `b` in the bipartite tree.
    #[inline]
    fn bcc_node(&self, b: u32) -> u32 {
        b
    }

    /// Node id of dense articulation index `a` in the bipartite tree.
    #[inline]
    fn art_node(&self, a: u32) -> u32 {
        self.num_bccs() as u32 + a
    }

    /// Roots every tree component and computes subtree weights.
    pub fn rooted(&self) -> RootedBlockCutTree<'_> {
        let nb = self.num_bccs();
        let na = self.num_arts();
        let total_nodes = nb + na;
        let mut parent = vec![NIL; total_nodes];
        let mut comp_of = vec![NIL; total_nodes];
        let mut order: Vec<u32> = Vec::with_capacity(total_nodes);
        let mut comp_total: Vec<u64> = Vec::new();
        let mut subtree = vec![0u64; total_nodes];
        for node in 0..total_nodes {
            subtree[node] = self.node_weight(node as u32);
        }
        let mut visited = vec![false; total_nodes];
        for start in 0..total_nodes as u32 {
            if visited[start as usize] {
                continue;
            }
            let comp = comp_total.len() as u32;
            comp_total.push(0);
            // BFS over the bipartite tree.
            let mut queue = std::collections::VecDeque::new();
            visited[start as usize] = true;
            comp_of[start as usize] = comp;
            queue.push_back(start);
            while let Some(node) = queue.pop_front() {
                order.push(node);
                comp_total[comp as usize] += self.node_weight(node);
                for &nb_node in self.node_neighbors(node) {
                    if !visited[nb_node as usize] {
                        visited[nb_node as usize] = true;
                        comp_of[nb_node as usize] = comp;
                        parent[nb_node as usize] = node;
                        queue.push_back(nb_node);
                    }
                }
            }
        }
        // Accumulate subtree weights bottom-up (reverse BFS order).
        for &node in order.iter().rev() {
            let p = parent[node as usize];
            if p != NIL {
                subtree[p as usize] += subtree[node as usize];
            }
        }
        RootedBlockCutTree { tree: self, parent, subtree, comp_of, comp_total }
    }

    fn node_weight(&self, node: u32) -> u64 {
        let nb = self.num_bccs() as u32;
        if node < nb {
            self.bcc_nonart_weight[node as usize]
        } else {
            1
        }
    }

    pub(crate) fn node_neighbors(&self, node: u32) -> &[u32] {
        &self.adj[self.adj_off[node as usize] as usize..self.adj_off[node as usize + 1] as usize]
    }

    /// BCC ids containing the articulation point with dense index `ai`.
    /// (An articulation node's tree neighbors are exactly its BCC nodes.)
    pub fn art_bccs_of(&self, ai: u32) -> &[u32] {
        self.node_neighbors(self.art_node(ai))
    }

    /// Global vertex ids of the articulation points inside BCC `b`.
    pub fn bcc_arts_of(&self, b: u32) -> impl Iterator<Item = VertexId> + '_ {
        let nb = self.num_bccs() as u32;
        self.node_neighbors(self.bcc_node(b))
            .iter()
            .map(move |&node| self.art_vertices[(node - nb) as usize])
    }
}

/// A rooted view of the block-cut tree with subtree vertex weights.
pub struct RootedBlockCutTree<'a> {
    tree: &'a BlockCutTree,
    parent: Vec<u32>,
    subtree: Vec<u64>,
    comp_of: Vec<u32>,
    comp_total: Vec<u64>,
}

impl RootedBlockCutTree<'_> {
    /// Number of graph vertices hanging off articulation vertex `art`
    /// (global id) through BCC `b`, **excluding `art` itself**: the weight of
    /// the tree branch incident to `art`'s node in the direction of `b`'s
    /// node.
    pub fn branch_weight(&self, art: VertexId, b: u32) -> u64 {
        let ai = self.tree.art_index[art as usize];
        assert_ne!(ai, NIL, "vertex {art} is not an articulation point");
        let a_node = self.tree.art_node(ai);
        let b_node = self.tree.bcc_node(b);
        if self.parent[b_node as usize] == a_node {
            self.subtree[b_node as usize]
        } else {
            debug_assert_eq!(
                self.parent[a_node as usize], b_node,
                "BCC {b} is not adjacent to articulation vertex {art}"
            );
            self.comp_total[self.comp_of[a_node as usize] as usize] - self.subtree[a_node as usize]
        }
    }

    /// Total graph-vertex weight of the tree component containing BCC `b`.
    pub fn component_weight_of_bcc(&self, b: u32) -> u64 {
        self.comp_total[self.comp_of[b as usize] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bcc::biconnected_components;
    use apgre_graph::generators;
    use apgre_graph::Graph;

    #[test]
    fn path_tree_structure() {
        // 0-1-2-3: BCCs {01},{12},{23}; arts {1,2}.
        let g = generators::path(4);
        let bcc = biconnected_components(&g);
        let t = BlockCutTree::build(&bcc);
        assert_eq!(t.num_bccs(), 3);
        assert_eq!(t.num_arts(), 2);
        let rooted = t.rooted();
        // From art 1 through the BCC containing edge (0,1): 1 vertex (just 0).
        let b01 = bcc.bcc_of_edge(0, 1);
        let b12 = bcc.bcc_of_edge(1, 2);
        assert_eq!(rooted.branch_weight(1, b01), 1);
        // From art 1 through BCC {1,2}: vertices {2, 3} = 2.
        assert_eq!(rooted.branch_weight(1, b12), 2);
        let b23 = bcc.bcc_of_edge(2, 3);
        assert_eq!(rooted.branch_weight(2, b23), 1);
        assert_eq!(rooted.branch_weight(2, b12), 2);
        assert_eq!(rooted.component_weight_of_bcc(b01), 4);
    }

    #[test]
    fn branch_weights_sum_to_component_minus_art() {
        let g = generators::whiskered_community(&generators::WhiskeredCommunityParams {
            core_vertices: 40,
            core_attach: 2,
            community_count: 4,
            community_size: 8,
            community_density: 1.5,
            whiskers: 15,
            seed: 9,
        });
        let bcc = biconnected_components(&g);
        let t = BlockCutTree::build(&bcc);
        let rooted = t.rooted();
        for (ai, &art) in t.art_vertices.iter().enumerate() {
            let bccs = t.art_bccs_of(ai as u32);
            let total: u64 = bccs.iter().map(|&b| rooted.branch_weight(art, b)).sum();
            let comp_total = rooted.component_weight_of_bcc(bccs[0]);
            assert_eq!(total, comp_total - 1, "art vertex {art}");
        }
    }

    #[test]
    fn two_components() {
        let g = Graph::undirected_from_edges(7, &[(0, 1), (1, 2), (4, 5), (5, 6)]);
        let bcc = biconnected_components(&g);
        let t = BlockCutTree::build(&bcc);
        let rooted = t.rooted();
        let b01 = bcc.bcc_of_edge(0, 1);
        let b45 = bcc.bcc_of_edge(4, 5);
        assert_eq!(rooted.component_weight_of_bcc(b01), 3);
        assert_eq!(rooted.component_weight_of_bcc(b45), 3);
        assert_eq!(rooted.branch_weight(1, b01), 1);
        assert_eq!(rooted.branch_weight(5, b45), 1);
    }

    #[test]
    fn star_center_branches() {
        let g = generators::star(5);
        let bcc = biconnected_components(&g);
        let t = BlockCutTree::build(&bcc);
        let rooted = t.rooted();
        for leaf in 1..=5u32 {
            let b = bcc.bcc_of_edge(0, leaf);
            assert_eq!(rooted.branch_weight(0, b), 1);
        }
    }
}
