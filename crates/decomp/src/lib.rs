//! Biconnected decomposition substrate for APGRE.
//!
//! This crate implements everything between "a graph" and "the per-sub-graph
//! state the APGRE BC kernel consumes" (paper §3.1 Definition 1, §4 steps 1–2,
//! Algorithm 1):
//!
//! 1. [`bcc`] — articulation points and biconnected components
//!    (iterative Hopcroft–Tarjan, `O(V + E)`),
//! 2. [`block_cut_tree`] — the tree of biconnected components attached at
//!    articulation points (paper §3.1 property 3),
//! 3. [`partition`] — the paper's Algorithm 1 (`GRAPHPARTITION`): DFS from the
//!    largest BCC, merging small BCCs, producing [`subgraph::SubGraph`]s with
//!    local CSR, root sets `R`, whisker counts `γ`,
//! 4. [`alpha_beta`] — `α`/`β` per boundary articulation point, via blocked
//!    BFS (the paper's method, required for directed graphs) or via an
//!    `O(V + E)` block-cut-tree fast path for undirected graphs,
//! 5. [`naive`] — slow reference implementations used as test oracles,
//! 6. [`maintain`] — incremental maintenance of a committed decomposition
//!    under edge edits: localized Tarjan on the affected region, block
//!    splices, and per-component merge/α/β refresh.
//!
//! The entry point is [`decompose`], which runs steps 1–4 and returns a
//! [`Decomposition`]; dynamic callers wrap it in a
//! [`maintain::MaintainedDecomposition`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alpha_beta;
pub mod bcc;
pub mod block_cut_tree;
#[cfg(feature = "invariants")]
pub mod invariants;
pub mod maintain;
pub mod naive;
pub mod partition;
pub mod subgraph;

pub use alpha_beta::AlphaBetaMethod;
pub use bcc::{biconnected_components, BccResult};
pub use block_cut_tree::BlockCutTree;
pub use maintain::{
    decomp_equivalent, EdgeEdit, MaintainOutcome, MaintainStats, MaintainedDecomposition,
};
pub use partition::{decompose, DecompTimings, Decomposition, PartitionOptions};
pub use subgraph::SubGraph;
