//! Articulation points and biconnected components.
//!
//! Iterative Hopcroft–Tarjan with an explicit DFS stack (recursion would
//! overflow on path-like graphs of the sizes the harness uses) and an edge
//! stack that is cut every time a `low[child] >= disc[parent]` condition
//! fires, yielding one biconnected component per cut (paper reference \[32\]).
//!
//! Runs on the **undirected** structure; callers with directed graphs pass
//! `g.to_undirected()` (the paper's `GETUNDG`).

use apgre_graph::{Csr, Graph, VertexId};

const NIL: u32 = u32::MAX;

/// Output of [`biconnected_components`].
#[derive(Clone, Debug)]
pub struct BccResult {
    /// Per-vertex articulation flag.
    pub is_articulation: Vec<bool>,
    /// Per-BCC vertex lists (each list deduplicated, unordered).
    pub bcc_vertices: Vec<Vec<VertexId>>,
    /// BCC id per arc of the undirected CSR (both arc directions of an edge
    /// map to the same id); `u32::MAX` only if the arc is a self-loop (the
    /// builder removes those).
    pub bcc_of_arc: Vec<u32>,
    /// The undirected CSR the arc ids refer to.
    pub arcs_of: Csr,
}

impl BccResult {
    /// Number of biconnected components.
    pub fn count(&self) -> usize {
        self.bcc_vertices.len()
    }

    /// The articulation points as a vertex list.
    pub fn articulation_points(&self) -> Vec<VertexId> {
        self.is_articulation
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a)
            .map(|(v, _)| v as VertexId)
            .collect()
    }

    /// BCC id owning the undirected edge `{u, v}`.
    ///
    /// # Panics
    /// Panics if the edge is not present.
    pub fn bcc_of_edge(&self, u: VertexId, v: VertexId) -> u32 {
        let id = self.bcc_of_arc[arc_pos(&self.arcs_of, u, v)];
        debug_assert_ne!(id, u32::MAX);
        id
    }

    /// Number of edges in BCC `b` (recomputed; used by tests and reports).
    pub fn bcc_edge_count(&self, b: u32) -> usize {
        self.bcc_of_arc.iter().filter(|&&x| x == b).count() / 2
    }
}

/// Position of arc `u -> v` inside `csr`'s target array.
pub(crate) fn arc_pos(csr: &Csr, u: VertexId, v: VertexId) -> usize {
    let nbrs = csr.neighbors(u);
    let i = nbrs.binary_search(&v).expect("arc not present in CSR");
    csr.offsets()[u as usize] + i
}

struct Frame {
    v: VertexId,
    parent: VertexId,
    idx: u32,
}

/// Computes articulation points and biconnected components of an undirected
/// graph in `O(V + E)`.
///
/// # Panics
/// Panics if `g` is directed — call `g.to_undirected()` first.
pub fn biconnected_components(g: &Graph) -> BccResult {
    assert!(!g.is_directed(), "biconnected_components needs the undirected structure");
    let csr = g.csr();
    let n = csr.num_vertices();
    let mut disc = vec![NIL; n];
    let mut low = vec![0u32; n];
    let mut is_articulation = vec![false; n];
    let mut bcc_of_arc = vec![u32::MAX; csr.num_edges()];
    let mut bcc_vertices: Vec<Vec<VertexId>> = Vec::new();
    // stamp[v] == current bcc id marks v as already collected for that BCC.
    let mut stamp = vec![NIL; n];
    let mut time = 0u32;
    let mut edge_stack: Vec<(VertexId, VertexId)> = Vec::new();
    let mut stack: Vec<Frame> = Vec::new();

    for root in 0..n as VertexId {
        if disc[root as usize] != NIL {
            continue;
        }
        disc[root as usize] = time;
        low[root as usize] = time;
        time += 1;
        stack.push(Frame { v: root, parent: NIL, idx: 0 });
        let mut root_children = 0u32;

        while let Some(top) = stack.last_mut() {
            let v = top.v;
            let nbrs = csr.neighbors(v);
            if (top.idx as usize) < nbrs.len() {
                let w = nbrs[top.idx as usize];
                top.idx += 1;
                if w == top.parent {
                    // Simple graph (builder dedups), so every occurrence of
                    // the parent is the single tree edge back up.
                    continue;
                }
                if disc[w as usize] == NIL {
                    edge_stack.push((v, w));
                    disc[w as usize] = time;
                    low[w as usize] = time;
                    time += 1;
                    if v == root {
                        root_children += 1;
                    }
                    stack.push(Frame { v: w, parent: v, idx: 0 });
                } else if disc[w as usize] < disc[v as usize] {
                    // Back edge (to a strict ancestor or cross-level earlier
                    // vertex; in undirected DFS only ancestors qualify).
                    edge_stack.push((v, w));
                    low[v as usize] = low[v as usize].min(disc[w as usize]);
                }
            } else {
                stack.pop();
                if let Some(parent_frame) = stack.last() {
                    let u = parent_frame.v;
                    low[u as usize] = low[u as usize].min(low[v as usize]);
                    if low[v as usize] >= disc[u as usize] {
                        // u separates v's subtree: everything on the edge
                        // stack down to (u, v) is one biconnected component.
                        if u != root {
                            is_articulation[u as usize] = true;
                        }
                        let id = bcc_vertices.len() as u32;
                        let mut verts = Vec::new();
                        loop {
                            let (x, y) = edge_stack.pop().expect("edge stack underflow");
                            bcc_of_arc[arc_pos(csr, x, y)] = id;
                            bcc_of_arc[arc_pos(csr, y, x)] = id;
                            for z in [x, y] {
                                if stamp[z as usize] != id {
                                    stamp[z as usize] = id;
                                    verts.push(z);
                                }
                            }
                            if (x, y) == (u, v) {
                                break;
                            }
                        }
                        bcc_vertices.push(verts);
                    }
                }
            }
        }
        if root_children >= 2 {
            is_articulation[root as usize] = true;
        }
        debug_assert!(edge_stack.is_empty(), "edge stack not drained at component end");
    }

    BccResult { is_articulation, bcc_vertices, bcc_of_arc, arcs_of: csr.clone() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apgre_graph::generators;
    use apgre_graph::Graph;

    #[test]
    fn single_edge_one_bcc_no_articulation() {
        let g = Graph::undirected_from_edges(2, &[(0, 1)]);
        let r = biconnected_components(&g);
        assert_eq!(r.count(), 1);
        assert!(r.articulation_points().is_empty());
        let mut v = r.bcc_vertices[0].clone();
        v.sort_unstable();
        assert_eq!(v, vec![0, 1]);
    }

    #[test]
    fn path_every_internal_vertex_is_articulation() {
        let g = generators::path(5);
        let r = biconnected_components(&g);
        assert_eq!(r.count(), 4); // each edge its own BCC
        assert_eq!(r.articulation_points(), vec![1, 2, 3]);
    }

    #[test]
    fn cycle_single_bcc() {
        let g = generators::cycle(6);
        let r = biconnected_components(&g);
        assert_eq!(r.count(), 1);
        assert!(r.articulation_points().is_empty());
        assert_eq!(r.bcc_vertices[0].len(), 6);
    }

    #[test]
    fn star_center_is_articulation() {
        let g = generators::star(4);
        let r = biconnected_components(&g);
        assert_eq!(r.count(), 4);
        assert_eq!(r.articulation_points(), vec![0]);
    }

    #[test]
    fn paper_figure3_articulation_points() {
        // The 13-vertex example of Figure 3(a), symmetrized: the articulation
        // points are 2, 3 and 6.
        let g = paper_fig3_undirected();
        let r = biconnected_components(&g);
        assert_eq!(r.articulation_points(), vec![2, 3, 6]);
    }

    /// Undirected skeleton of the paper's Figure 3(a) graph:
    /// vertices 0,1 hang off 2; {2,4,5,3,6} form the middle blob; 3 leads to
    /// {10,12}; 6 leads to {7,8,9}.
    pub(crate) fn paper_fig3_undirected() -> Graph {
        Graph::undirected_from_edges(
            13,
            &[
                (0, 2),
                (1, 2),
                (2, 4),
                (2, 5),
                (4, 5),
                (4, 3),
                (5, 3),
                (5, 6),
                (4, 6),
                (3, 6),
                (3, 10),
                (3, 12),
                (10, 12),
                (6, 7),
                (6, 8),
                (7, 9),
                (8, 9),
            ],
        )
    }

    #[test]
    fn lollipop_junction() {
        let g = generators::lollipop(5, 3);
        let r = biconnected_components(&g);
        // clique = 1 BCC, each path edge = 1 BCC
        assert_eq!(r.count(), 4);
        assert_eq!(r.articulation_points(), vec![4, 5, 6]);
    }

    #[test]
    fn two_triangles_sharing_a_vertex() {
        let g = Graph::undirected_from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
        let r = biconnected_components(&g);
        assert_eq!(r.count(), 2);
        assert_eq!(r.articulation_points(), vec![2]);
        assert_eq!(r.bcc_of_edge(0, 1), r.bcc_of_edge(1, 2));
        assert_ne!(r.bcc_of_edge(0, 1), r.bcc_of_edge(3, 4));
    }

    #[test]
    fn disconnected_graph_handled() {
        let g = Graph::undirected_from_edges(7, &[(0, 1), (1, 2), (0, 2), (4, 5), (5, 6)]);
        let r = biconnected_components(&g);
        assert_eq!(r.count(), 3); // triangle + 2 path edges; vertex 3 isolated
        assert_eq!(r.articulation_points(), vec![5]);
    }

    #[test]
    fn every_edge_belongs_to_exactly_one_bcc() {
        let g = generators::whiskered_community(&generators::WhiskeredCommunityParams {
            core_vertices: 60,
            core_attach: 2,
            community_count: 5,
            community_size: 10,
            community_density: 1.8,
            whiskers: 25,
            seed: 3,
        });
        let r = biconnected_components(&g);
        for (u, v) in g.undirected_edges() {
            let id = r.bcc_of_edge(u, v);
            assert!((id as usize) < r.count());
            assert_eq!(id, r.bcc_of_edge(v, u));
        }
        // Vertex lists cover every non-isolated vertex.
        let mut seen = vec![false; g.num_vertices()];
        for verts in &r.bcc_vertices {
            for &v in verts {
                seen[v as usize] = true;
            }
        }
        for v in g.vertices() {
            assert_eq!(seen[v as usize], g.out_degree(v) > 0, "vertex {v}");
        }
    }

    #[test]
    fn matches_naive_on_random_graphs() {
        for seed in 0..12 {
            let g = generators::gnm_undirected(40, 55, seed);
            let fast = biconnected_components(&g).is_articulation;
            let slow = crate::naive::naive_articulation_points(&g);
            assert_eq!(fast, slow, "seed {seed}");
        }
    }
}
