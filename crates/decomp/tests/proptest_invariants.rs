//! Property tests for the decomposition's conservation laws (the
//! `invariants`-feature checks, pinned here so they also run in default
//! builds): per-articulation-point α against an independent blocked BFS,
//! the Σα component-coverage law, and a naive γ/whisker recount.

use apgre_decomp::alpha_beta::blocked_bfs_alpha_beta;
use apgre_decomp::{decompose, PartitionOptions};
use apgre_graph::connectivity::connected_components;
use apgre_graph::{generators, Graph};
use proptest::prelude::*;

fn edges_strategy(n_max: u32, m_max: usize) -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (2..n_max).prop_flat_map(move |n| {
        let edge = (0..n, 0..n);
        (Just(n), proptest::collection::vec(edge, 0..m_max))
    })
}

/// γ recount from the sub-graph structure alone; mirrors nothing of the
/// partition bookkeeping (only `is_whisker` and the local CSR).
fn naive_gamma(sg: &apgre_decomp::SubGraph, directed: bool) -> Vec<u32> {
    let ln = sg.num_vertices();
    let mut recount = vec![0u32; ln];
    for l in 0..ln as u32 {
        if !sg.is_whisker[l as usize] {
            continue;
        }
        assert!(!sg.is_boundary[l as usize], "boundary vertex {l} marked whisker");
        if directed {
            assert_eq!(sg.graph.in_degree(l), 0, "directed whisker {l} has in-edges");
        }
        assert_eq!(sg.graph.out_degree(l), 1, "whisker {l} out-degree");
        let host = sg.graph.out_neighbors(l)[0];
        assert!(!sg.is_whisker[host as usize], "whisker {l} hangs off a whisker");
        recount[host as usize] += 1;
    }
    recount
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Per-articulation-point α/β: the undirected block-cut-tree fast path
    /// must agree with an independent blocked BFS from each boundary point,
    /// and Σα must complete the sub-graph to its whole component.
    #[test]
    fn alpha_conservation_undirected(
        (n, edges) in edges_strategy(56, 130),
        threshold in 0usize..16,
    ) {
        let g = Graph::undirected_from_edges(n as usize, &edges);
        let d = decompose(&g, &PartitionOptions { merge_threshold: threshold, ..Default::default() });
        d.validate(&g).unwrap();
        let comps = connected_components(&g);
        for sg in &d.subgraphs {
            // Independent per-point recount via blocked BFS on the global
            // graph (the paper's definition, executed directly).
            let (alpha, beta) = blocked_bfs_alpha_beta(&g, sg);
            prop_assert_eq!(&sg.alpha, &alpha, "SG{} α vs blocked BFS", sg.id);
            prop_assert_eq!(&sg.beta, &beta, "SG{} β vs blocked BFS", sg.id);
            // Conservation: the sub-graph plus the regions hanging off its
            // boundary points partition the connected component.
            let comp = comps.comp[sg.globals[0] as usize];
            let comp_size = comps.sizes[comp as usize] as u64;
            let covered = sg.num_vertices() as u64 + sg.alpha.iter().sum::<u64>();
            prop_assert_eq!(covered, comp_size, "SG{} coverage", sg.id);
        }
    }

    /// Directed graphs: hanging regions are only partially reachable, so α/β
    /// are bounded by the outside-vertex count and must still match the
    /// blocked-BFS definition.
    #[test]
    fn alpha_bounded_directed(
        (n, edges) in edges_strategy(44, 140),
        threshold in 0usize..12,
    ) {
        let g = Graph::directed_from_edges(
            n as usize,
            &edges.iter().copied().filter(|&(u, v)| u != v).collect::<Vec<_>>(),
        );
        let d = decompose(&g, &PartitionOptions { merge_threshold: threshold, ..Default::default() });
        d.validate(&g).unwrap();
        let comps = connected_components(&g);
        for sg in &d.subgraphs {
            let (alpha, beta) = blocked_bfs_alpha_beta(&g, sg);
            prop_assert_eq!(&sg.alpha, &alpha, "SG{} α", sg.id);
            prop_assert_eq!(&sg.beta, &beta, "SG{} β", sg.id);
            let comp = comps.comp[sg.globals[0] as usize];
            let outside = comps.sizes[comp as usize] as u64 - sg.num_vertices() as u64;
            prop_assert!(sg.alpha.iter().sum::<u64>() <= outside, "SG{} Σα", sg.id);
            prop_assert!(sg.beta.iter().sum::<u64>() <= outside, "SG{} Σβ", sg.id);
        }
    }

    /// γ mass: every sub-graph's γ vector matches a naive recount of whisker
    /// hosts, and the total γ mass equals the whisker count.
    #[test]
    fn gamma_matches_naive_recount(
        (n, edges) in edges_strategy(56, 120),
        threshold in 0usize..16,
        directed in proptest::bool::ANY,
    ) {
        let g = if directed {
            Graph::directed_from_edges(
                n as usize,
                &edges.iter().copied().filter(|&(u, v)| u != v).collect::<Vec<_>>(),
            )
        } else {
            Graph::undirected_from_edges(n as usize, &edges)
        };
        let d = decompose(&g, &PartitionOptions { merge_threshold: threshold, ..Default::default() });
        for sg in &d.subgraphs {
            let recount = naive_gamma(sg, directed);
            prop_assert_eq!(&recount, &sg.gamma, "SG{} γ recount", sg.id);
            let whiskers = sg.is_whisker.iter().filter(|&&w| w).count() as u64;
            prop_assert_eq!(sg.gamma.iter().map(|&x| x as u64).sum::<u64>(), whiskers);
        }
    }

    /// Whisker-heavy generators: trees maximize articulation structure, so
    /// run the conservation laws where they bite hardest.
    #[test]
    fn conservation_on_trees(n in 3usize..64, seed in 0u64..4000, threshold in 0usize..10) {
        let g = generators::random_tree(n, seed);
        let d = decompose(&g, &PartitionOptions { merge_threshold: threshold, ..Default::default() });
        d.validate(&g).unwrap();
        let nv = g.num_vertices() as u64;
        for sg in &d.subgraphs {
            let covered = sg.num_vertices() as u64 + sg.alpha.iter().sum::<u64>();
            prop_assert_eq!(covered, nv, "SG{}", sg.id);
            let recount = naive_gamma(sg, false);
            prop_assert_eq!(&recount, &sg.gamma, "SG{} γ", sg.id);
        }
    }
}
