//! Property tests for incremental decomposition maintenance: random edit
//! streams — chord toggles, bridge toggles, and vertex splits expressed as
//! edge moves — applied through [`MaintainedDecomposition::apply_edits`],
//! with the maintained result checked equivalent to a fresh [`decompose`]
//! after **every** batch (and the block store cross-checked against a fresh
//! Tarjan pass).

use std::collections::BTreeSet;

use apgre_decomp::{decompose, EdgeEdit, MaintainedDecomposition, PartitionOptions};
use apgre_graph::{generators, Graph, VertexId};
use proptest::prelude::*;

/// One randomized edit against the current edge set. Generated as abstract
/// intents and lowered to concrete [`EdgeEdit`]s against the live mirror,
/// so shrinking stays meaningful.
#[derive(Clone, Debug)]
enum Intent {
    /// Toggle the edge between two vertex picks (add if absent, else remove).
    Toggle(u32, u32),
    /// Detach one incident edge of the pick's vertex and re-attach it to a
    /// fresh vertex — the edge-edit skeleton of a vertex split.
    SplitOff(u32),
}

fn intents() -> impl Strategy<Value = Vec<Vec<Intent>>> {
    // 1-in-5 vertex splits, 4-in-5 edge toggles (the vendored proptest
    // stand-in has no `prop_oneof!`, so weight by a kind draw).
    let intent = (0u32..5, 0u32..1 << 30, 0u32..1 << 30).prop_map(|(kind, a, b)| {
        if kind == 0 {
            Intent::SplitOff(a)
        } else {
            Intent::Toggle(a, b)
        }
    });
    proptest::collection::vec(proptest::collection::vec(intent, 1..4), 1..14)
}

struct Mirror {
    edges: BTreeSet<(VertexId, VertexId)>,
    n: usize,
}

impl Mirror {
    fn graph(&self) -> Graph {
        let edges: Vec<_> = self.edges.iter().copied().collect();
        Graph::undirected_from_edges(self.n, &edges)
    }

    /// Lowers one intent to a concrete edit, or `None` if it degenerates
    /// (self-loop, duplicate within the batch, split of an isolated vertex).
    fn lower(&self, intent: &Intent, batch: &[EdgeEdit]) -> Option<Vec<EdgeEdit>> {
        let key_of = |e: &EdgeEdit| (e.u.min(e.v), e.u.max(e.v));
        match *intent {
            Intent::Toggle(a, b) => {
                let (u, v) = (a % self.n as u32, b % self.n as u32);
                if u == v {
                    return None;
                }
                let key = (u.min(v), u.max(v));
                if batch.iter().any(|e| key_of(e) == key) {
                    return None;
                }
                Some(vec![EdgeEdit { add: !self.edges.contains(&key), u, v }])
            }
            Intent::SplitOff(a) => {
                let v = a % self.n as u32;
                // Pick the smallest neighbor whose edge is still untouched
                // in this batch, move it to a brand-new vertex.
                let nbr = self
                    .edges
                    .iter()
                    .filter(|&&(x, y)| x == v || y == v)
                    .map(|&(x, y)| if x == v { y } else { x })
                    .find(|&w| {
                        let key = (v.min(w), v.max(w));
                        !batch.iter().any(|e| key_of(e) == key)
                    })?;
                let fresh = self.n as u32; // grown by the caller
                Some(vec![
                    EdgeEdit { add: false, u: v, v: nbr },
                    EdgeEdit { add: true, u: fresh, v: nbr },
                ])
            }
        }
    }

    fn commit(&mut self, batch: &[EdgeEdit]) {
        for e in batch {
            let key = (e.u.min(e.v), e.u.max(e.v));
            if e.add {
                assert!(self.edges.insert(key));
            } else {
                assert!(self.edges.remove(&key));
            }
            self.n = self.n.max(e.u.max(e.v) as usize + 1);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// After every maintained batch the decomposition must be equivalent to
    /// a fresh `decompose` of the edited graph, and the block store must
    /// match a fresh Tarjan pass. Batches the maintainer declines (multiple
    /// component-bridging additions) fall back to a reseed, exactly as the
    /// dynamic engine does.
    #[test]
    fn maintained_equals_fresh_after_every_batch(
        seed in 0u64..1024,
        threshold in 0usize..8,
        stream in intents(),
    ) {
        let g = generators::whiskered_community(&generators::WhiskeredCommunityParams {
            core_vertices: 16,
            core_attach: 2,
            community_count: 3,
            community_size: 6,
            community_density: 1.6,
            whiskers: 8,
            seed,
        });
        let opts = PartitionOptions { merge_threshold: threshold, ..Default::default() };
        let mut mirror = Mirror {
            edges: g.undirected_edges().map(|(u, v)| (u.min(v), u.max(v))).collect(),
            n: g.num_vertices(),
        };
        let mut m = MaintainedDecomposition::new(&g, &opts);

        for intent_batch in &stream {
            let mut batch: Vec<EdgeEdit> = Vec::new();
            let mut grown = 0u32;
            for intent in intent_batch {
                // At most one split per batch keeps fresh-vertex ids simple.
                if matches!(intent, Intent::SplitOff(_)) && grown > 0 {
                    continue;
                }
                if let Some(edits) = mirror.lower(intent, &batch) {
                    grown += edits.iter().any(|e| e.add && e.u == mirror.n as u32) as u32;
                    batch.extend(edits);
                }
            }
            if batch.is_empty() {
                continue;
            }
            let num_vertices = mirror.n + grown as usize;
            match m.apply_edits(num_vertices, &batch) {
                Ok(_) => {
                    mirror.commit(&batch);
                    prop_assert_eq!(mirror.n.max(num_vertices), num_vertices);
                    mirror.n = num_vertices;
                    if let Err(e) = m.verify_against_fresh(&mirror.graph()) {
                        panic!("maintained != fresh after batch: {e}");
                    }
                }
                Err(reason) => {
                    prop_assert!(
                        reason.contains("component-bridging"),
                        "unexpected decline: {}", reason
                    );
                    mirror.commit(&batch);
                    mirror.n = num_vertices;
                    let g2 = mirror.graph();
                    m = MaintainedDecomposition::from_decomposition(
                        &g2,
                        decompose(&g2, &opts),
                        &opts,
                    );
                }
            }
        }
    }
}
