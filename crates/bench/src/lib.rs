//! Experiment-harness library: algorithm registry, timing, table rendering,
//! and JSON result records shared by the `experiments` binary and the
//! criterion benches.

use apgre_bc::apgre::{bc_apgre_with, ApgreOptions, KernelPolicy};
use apgre_bc::brandes::bc_serial;
use apgre_bc::parallel::{bc_coarse, bc_hybrid, bc_lock_free, bc_preds, bc_succs};
use apgre_graph::Graph;
use serde::Serialize;
use std::time::{Duration, Instant};

/// The algorithms of the paper's Table 2, in column order.
pub const ALGORITHMS: &[&str] =
    &["serial", "APGRE", "preds", "succs", "lockSyncFree", "async", "hybrid"];

/// APGRE variants with a pinned inner-kernel policy, for per-kernel
/// comparisons (the `bench-pr2` experiment); `APGRE` itself runs
/// `KernelPolicy::Auto`.
pub const APGRE_KERNEL_VARIANTS: &[&str] = &["APGRE-seq", "APGRE-rootpar", "APGRE-levelsync"];

/// Runs one named algorithm.
///
/// # Panics
/// Panics on an unknown name — [`ALGORITHMS`] plus [`APGRE_KERNEL_VARIANTS`]
/// is the source of truth.
pub fn run_algorithm(name: &str, g: &Graph) -> Vec<f64> {
    let apgre_forced =
        |kernel: KernelPolicy| bc_apgre_with(g, &ApgreOptions { kernel, ..Default::default() }).0;
    match name {
        "serial" => bc_serial(g),
        "APGRE" => bc_apgre_with(g, &ApgreOptions::default()).0,
        "APGRE-seq" => apgre_forced(KernelPolicy::Seq),
        "APGRE-rootpar" => apgre_forced(KernelPolicy::RootParallel),
        "APGRE-levelsync" => apgre_forced(KernelPolicy::LevelSync),
        "preds" => bc_preds(g),
        "succs" => bc_succs(g),
        "lockSyncFree" => bc_lock_free(g),
        "async" => bc_coarse(g),
        "hybrid" => bc_hybrid(g),
        other => panic!("unknown algorithm {other:?}"),
    }
}

/// Times a closure.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed())
}

/// The paper's TEPS metric for exact BC (§5.1): `TEPS_BC = n·m / t`.
pub fn mteps(vertices: usize, edges: usize, t: Duration) -> f64 {
    (vertices as f64) * (edges as f64) / t.as_secs_f64() / 1e6
}

/// Runs `f` inside a dedicated rayon pool of `threads` workers.
pub fn with_threads<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("thread pool").install(f)
}

/// Counts the distinct OS threads that execute work inside a
/// `threads`-worker rayon pool.
///
/// Upstream rayon returns a value near `threads`; the vendored sequential
/// stand-in (see vendor/README.md) runs everything inline on the caller and
/// returns 1 even though [`rayon::current_num_threads`] reports the
/// configured pool size. Bench records use this to label measurements that
/// structurally cannot show parallel speedup.
pub fn observed_parallelism(threads: usize) -> usize {
    use rayon::prelude::*;
    use std::collections::HashSet;
    use std::sync::Mutex;
    let threads = threads.max(1);
    let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
    let tasks: Vec<usize> = (0..threads * 32).collect();
    with_threads(threads, || {
        tasks.par_iter().for_each(|_| {
            seen.lock().unwrap().insert(std::thread::current().id());
            // Long enough that the pool's other workers steal a share of the
            // tasks before the first worker drains them all.
            std::thread::sleep(Duration::from_micros(200));
        });
    });
    seen.into_inner().unwrap().len()
}

/// One algorithm's measurement on one graph.
#[derive(Clone, Debug, Serialize)]
pub struct AlgoMeasurement {
    /// Algorithm name (see [`ALGORITHMS`]).
    pub algo: String,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// `n·m/t` in millions.
    pub mteps: f64,
    /// Max absolute score deviation from the serial baseline.
    pub max_abs_err: f64,
}

/// All measurements for one graph.
#[derive(Clone, Debug, Serialize)]
pub struct GraphMeasurement {
    /// Workload name.
    pub graph: String,
    /// Vertices of the generated instance.
    pub vertices: usize,
    /// Edges of the generated instance.
    pub edges: usize,
    /// Per-algorithm results (same order as requested).
    pub algos: Vec<AlgoMeasurement>,
}

impl GraphMeasurement {
    /// Seconds of a given algorithm, if measured.
    pub fn seconds_of(&self, algo: &str) -> Option<f64> {
        self.algos.iter().find(|a| a.algo == algo).map(|a| a.seconds)
    }

    /// Speedup of `algo` relative to `serial` (>1 means faster).
    pub fn speedup_vs_serial(&self, algo: &str) -> Option<f64> {
        Some(self.seconds_of("serial")? / self.seconds_of(algo)?)
    }
}

/// Measures the requested algorithms on one graph, verifying every result
/// against the serial baseline.
pub fn measure_graph(name: &str, g: &Graph, algos: &[&str]) -> GraphMeasurement {
    let (reference, serial_t) = time(|| bc_serial(g));
    let mut out = GraphMeasurement {
        graph: name.to_string(),
        vertices: g.num_vertices(),
        edges: g.num_edges(),
        algos: Vec::new(),
    };
    for &algo in algos {
        let (scores, t) = if algo == "serial" {
            (reference.clone(), serial_t)
        } else {
            time(|| run_algorithm(algo, g))
        };
        let max_abs_err =
            scores.iter().zip(&reference).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
        out.algos.push(AlgoMeasurement {
            algo: algo.to_string(),
            seconds: t.as_secs_f64(),
            mteps: mteps(g.num_vertices(), g.num_edges(), t),
            max_abs_err,
        });
    }
    out
}

/// Minimal fixed-width table printer (markdown-compatible).
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header length).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Renders as a GitHub-flavoured markdown table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut s = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!(" {:<w$} |", c, w = widths[i]));
            }
            s
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{:-<w$}|", "", w = w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats seconds compactly.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}s")
    } else if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apgre_graph::generators;

    #[test]
    fn measure_graph_checks_correctness() {
        let g = generators::lollipop(6, 10);
        let m = measure_graph("lollipop", &g, &["serial", "APGRE", "succs"]);
        assert_eq!(m.algos.len(), 3);
        for a in &m.algos {
            assert!(a.max_abs_err < 1e-7, "{}: {}", a.algo, a.max_abs_err);
            assert!(a.seconds > 0.0);
            assert!(a.mteps > 0.0);
        }
        assert!(m.speedup_vs_serial("APGRE").unwrap() > 0.0);
    }

    #[test]
    fn run_algorithm_covers_registry() {
        let g = generators::cycle(8);
        for algo in ALGORITHMS.iter().chain(APGRE_KERNEL_VARIANTS) {
            let scores = run_algorithm(algo, &g);
            assert_eq!(scores.len(), 8);
        }
    }

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("| a | bb |"));
        assert!(s.contains("| 1 | 2  |"));
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(123.4), "123s");
        assert_eq!(fmt_secs(1.5), "1.50s");
        assert_eq!(fmt_secs(0.0015), "1.50ms");
        assert_eq!(fmt_secs(0.0000015), "1.5µs");
    }

    #[test]
    fn mteps_formula_is_nm_over_t() {
        let v = mteps(1000, 2000, Duration::from_secs(2));
        assert_eq!(v, 1.0);
    }

    #[test]
    fn with_threads_runs_in_pool() {
        let n = with_threads(2, rayon::current_num_threads);
        assert_eq!(n, 2);
    }
}
