//! `experiments` — regenerates every table and figure of the paper's
//! evaluation section (see DESIGN.md §4 for the experiment index).
//!
//! ```text
//! experiments <id> [--scale tiny|small|medium] [--threads N] [--json FILE]
//!
//! ids:
//!   table1   graph inventory (paper Table 1)
//!   table2   execution time of all 7 algorithms (paper Table 2)
//!   table3   search rate in MTEPS (paper Table 3)
//!   table4   sub-graph decomposition sizes (paper Table 4)
//!   fig2     Human-Disease-Network structure (paper Figure 2)
//!   fig3     the worked example decomposition (paper Figure 3)
//!   fig6     speedup over serial (paper Figure 6)
//!   fig7     redundancy breakdown (paper Figure 7)
//!   fig8     APGRE execution-time breakdown (paper Figure 8)
//!   fig9     thread scaling of all algorithms on dblp-like (paper Figure 9)
//!   fig10    thread scaling of APGRE to 32 threads (paper Figure 10)
//!   ablation-threshold   merge-threshold sweep (design ablation A1)
//!   ablation-alphabeta   α/β tree fast path vs blocked BFS (ablation A2)
//!   ablation-gamma       isolate total (γ) vs partial redundancy elimination (A3)
//!   bench-pr2            kernel-policy benchmark: Auto vs the legacy
//!                        fixed-threshold driver, plus per-kernel times
//!                        (writes the record committed as BENCH_PR2.json)
//!   bench-pr3            incremental-BC benchmark: per-batch DynamicBc
//!                        apply time for local edit batches vs a full
//!                        from-scratch recompute, plus one structural batch
//!                        (writes the record committed as BENCH_PR3.json)
//!   all      everything above
//! ```
//!
//! Tables 2/3 and Figure 6 share one measurement pass when run together via
//! `all`.

use apgre_bc::apgre::{bc_apgre_with, ApgreOptions};
use apgre_bc::redundancy;
use apgre_bench::{
    fmt_secs, measure_graph, time, with_threads, GraphMeasurement, Table, ALGORITHMS,
};
use apgre_decomp::{decompose, AlphaBetaMethod, PartitionOptions};
use apgre_graph::stats::graph_stats;
use apgre_workloads::{paper_examples, registry, Scale};
use serde_json::json;
use std::process::exit;

struct Opts {
    scale: Scale,
    threads: Option<usize>,
    json: Option<String>,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else { usage() };
    let mut opts = Opts { scale: Scale::Small, threads: None, json: None };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                opts.scale = match args.next().as_deref() {
                    Some("tiny") => Scale::Tiny,
                    Some("small") => Scale::Small,
                    Some("medium") => Scale::Medium,
                    other => {
                        eprintln!("bad scale {other:?}");
                        exit(2)
                    }
                }
            }
            "--threads" => {
                opts.threads = args.next().and_then(|v| v.parse().ok());
                if opts.threads.is_none() {
                    eprintln!("--threads needs a number");
                    exit(2);
                }
            }
            "--json" => opts.json = args.next(),
            other => {
                eprintln!("unknown option {other}");
                usage()
            }
        }
    }
    if let Some(t) = opts.threads {
        rayon::ThreadPoolBuilder::new().num_threads(t).build_global().expect("pool");
    }

    let mut json_out = serde_json::Map::new();
    match cmd.as_str() {
        "table1" => table1(&opts, &mut json_out),
        "table2" => {
            let m = measure_all(&opts);
            table2(&m, &mut json_out);
        }
        "table3" => {
            let m = measure_all(&opts);
            table3(&m, &mut json_out);
        }
        "table4" => table4(&opts, &mut json_out),
        "fig2" => fig2(&mut json_out),
        "fig3" => fig3(&mut json_out),
        "fig6" => {
            let m = measure_all(&opts);
            fig6(&m, &mut json_out);
        }
        "fig7" => fig7(&opts, &mut json_out),
        "fig8" => fig8(&opts, &mut json_out),
        "fig9" => fig9(&opts, &mut json_out),
        "fig10" => fig10(&opts, &mut json_out),
        "ablation-threshold" => ablation_threshold(&opts, &mut json_out),
        "ablation-alphabeta" => ablation_alphabeta(&opts, &mut json_out),
        "ablation-gamma" => ablation_gamma(&opts, &mut json_out),
        "bench-pr2" => bench_pr2(&opts, &mut json_out),
        "bench-pr3" => bench_pr3(&opts, &mut json_out),
        "all" => {
            table1(&opts, &mut json_out);
            let m = measure_all(&opts);
            table2(&m, &mut json_out);
            table3(&m, &mut json_out);
            fig6(&m, &mut json_out);
            table4(&opts, &mut json_out);
            fig2(&mut json_out);
            fig3(&mut json_out);
            fig7(&opts, &mut json_out);
            fig8(&opts, &mut json_out);
            fig9(&opts, &mut json_out);
            fig10(&opts, &mut json_out);
            ablation_threshold(&opts, &mut json_out);
            ablation_alphabeta(&opts, &mut json_out);
            ablation_gamma(&opts, &mut json_out);
            bench_pr2(&opts, &mut json_out);
            bench_pr3(&opts, &mut json_out);
        }
        _ => usage(),
    }
    if let Some(path) = &opts.json {
        std::fs::write(path, serde_json::to_string_pretty(&json_out).unwrap())
            .unwrap_or_else(|e| eprintln!("cannot write {path}: {e}"));
        println!("\n[json results written to {path}]");
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: experiments <table1|table2|table3|table4|fig2|fig3|fig6|fig7|fig8|fig9|fig10|\
         ablation-threshold|ablation-alphabeta|ablation-gamma|bench-pr2|bench-pr3|all> \
         [--scale tiny|small|medium] [--threads N] [--json FILE]"
    );
    exit(2)
}

fn scale_name(s: Scale) -> &'static str {
    match s {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Medium => "medium",
    }
}

// ---------------------------------------------------------------- Table 1

fn table1(opts: &Opts, json: &mut serde_json::Map<String, serde_json::Value>) {
    println!(
        "\n=== Table 1: graph inventory (stand-ins at scale {}) ===\n",
        scale_name(opts.scale)
    );
    let mut t = Table::new(&[
        "Graph",
        "Directed",
        "paper #V",
        "paper #E",
        "ours #V",
        "ours #E",
        "whiskers%",
    ]);
    let mut rows = Vec::new();
    for spec in registry() {
        let g = spec.graph(opts.scale);
        let s = graph_stats(&g);
        t.row(vec![
            spec.name.into(),
            if spec.directed { "Y" } else { "N" }.into(),
            spec.paper_size.0.to_string(),
            spec.paper_size.1.to_string(),
            s.vertices.to_string(),
            s.edges.to_string(),
            format!("{:.0}%", 100.0 * s.whisker_vertices as f64 / s.vertices as f64),
        ]);
        rows.push(json!({
            "graph": spec.name, "directed": spec.directed,
            "vertices": s.vertices, "edges": s.edges,
            "whisker_fraction": s.whisker_vertices as f64 / s.vertices as f64,
        }));
    }
    print!("{}", t.render());
    json.insert("table1".into(), json!(rows));
}

// ------------------------------------------------------------ Tables 2/3/6

fn measure_all(opts: &Opts) -> Vec<GraphMeasurement> {
    eprintln!("[measuring all algorithms on all workloads at scale {}…]", scale_name(opts.scale));
    registry()
        .iter()
        .map(|spec| {
            eprintln!("  {}", spec.name);
            let g = spec.graph(opts.scale);
            measure_graph(spec.name, &g, ALGORITHMS)
        })
        .collect()
}

fn table2(
    measurements: &[GraphMeasurement],
    json: &mut serde_json::Map<String, serde_json::Value>,
) {
    println!("\n=== Table 2: execution time ===\n");
    let mut t = Table::new(&[
        "Graph",
        "serial",
        "APGRE",
        "preds",
        "succs",
        "lockSyncFree",
        "async",
        "hybrid",
    ]);
    for m in measurements {
        let mut row = vec![m.graph.clone()];
        for &a in ALGORITHMS {
            row.push(m.seconds_of(a).map(fmt_secs).unwrap_or_default());
        }
        t.row(row);
    }
    let mut avg_row = vec!["avg speedup vs serial".to_string()];
    for &a in ALGORITHMS {
        let speedups: Vec<f64> =
            measurements.iter().filter_map(|m| m.speedup_vs_serial(a)).collect();
        let avg = speedups.iter().sum::<f64>() / speedups.len().max(1) as f64;
        avg_row.push(format!("{avg:.2}x"));
    }
    t.row(avg_row);
    print!("{}", t.render());
    json.insert("table2".into(), serde_json::to_value(measurements).unwrap());
    // Correctness verification report.
    let worst = measurements
        .iter()
        .flat_map(|m| m.algos.iter())
        .map(|a| a.max_abs_err)
        .fold(0.0f64, f64::max);
    println!("\n(worst |score - serial| across all runs: {worst:.2e})");
}

fn table3(
    measurements: &[GraphMeasurement],
    json: &mut serde_json::Map<String, serde_json::Value>,
) {
    println!("\n=== Table 3: search rate (MTEPS = n·m/t / 1e6) ===\n");
    let mut t = Table::new(&[
        "Graph",
        "serial",
        "APGRE",
        "preds",
        "succs",
        "lockSyncFree",
        "async",
        "hybrid",
    ]);
    for m in measurements {
        let mut row = vec![m.graph.clone()];
        for &a in ALGORITHMS {
            let v = m.algos.iter().find(|x| x.algo == a).map(|x| x.mteps).unwrap_or(0.0);
            row.push(format!("{v:.1}"));
        }
        t.row(row);
    }
    print!("{}", t.render());
    json.insert("table3".into(), json!("same measurements as table2; mteps field"));
}

fn fig6(measurements: &[GraphMeasurement], json: &mut serde_json::Map<String, serde_json::Value>) {
    println!("\n=== Figure 6: speedup on this machine relative to serial ===\n");
    let mut t = Table::new(&[
        "Graph",
        "APGRE",
        "preds",
        "succs",
        "lockSyncFree",
        "async",
        "hybrid",
        "paper APGRE",
    ]);
    let mut rows = Vec::new();
    for (m, spec) in measurements.iter().zip(registry()) {
        let mut row = vec![m.graph.clone()];
        let mut obj = serde_json::Map::new();
        for &a in &ALGORITHMS[1..] {
            let s = m.speedup_vs_serial(a).unwrap_or(0.0);
            row.push(format!("{s:.2}x"));
            obj.insert(a.into(), json!(s));
        }
        row.push(format!("{:.2}x", spec.paper_speedup_vs_serial));
        obj.insert("paper_apgre".into(), json!(spec.paper_speedup_vs_serial));
        obj.insert("graph".into(), json!(m.graph));
        t.row(row);
        rows.push(serde_json::Value::Object(obj));
    }
    print!("{}", t.render());
    json.insert("fig6".into(), json!(rows));
}

// ---------------------------------------------------------------- Table 4

fn table4(opts: &Opts, json: &mut serde_json::Map<String, serde_json::Value>) {
    println!("\n=== Table 4: sub-graph sizes (scale {}) ===\n", scale_name(opts.scale));
    let mut t = Table::new(&[
        "Graph", "#SG", "top #V", "top #E", "V/G.V", "E/G.E", "2nd #V", "2nd #E", "3rd #V",
        "3rd #E",
    ]);
    let mut rows = Vec::new();
    for spec in registry() {
        let g = spec.graph(opts.scale);
        let d = decompose(&g, &PartitionOptions::default());
        let by_size = d.subgraphs_by_size();
        let get = |i: usize| -> (usize, usize) {
            by_size.get(i).map(|sg| (sg.num_vertices(), sg.num_edges())).unwrap_or((0, 0))
        };
        let (tv, te) = get(0);
        let (sv, se) = get(1);
        let (uv, ue) = get(2);
        t.row(vec![
            spec.name.into(),
            d.num_subgraphs().to_string(),
            tv.to_string(),
            te.to_string(),
            format!("{:.2}%", 100.0 * tv as f64 / g.num_vertices() as f64),
            format!("{:.2}%", 100.0 * te as f64 / g.num_edges().max(1) as f64),
            sv.to_string(),
            se.to_string(),
            uv.to_string(),
            ue.to_string(),
        ]);
        rows.push(json!({
            "graph": spec.name, "num_subgraphs": d.num_subgraphs(),
            "top": {"v": tv, "e": te}, "second": {"v": sv, "e": se}, "third": {"v": uv, "e": ue},
            "top_v_fraction": tv as f64 / g.num_vertices() as f64,
        }));
    }
    print!("{}", t.render());
    json.insert("table4".into(), json!(rows));
}

// ---------------------------------------------------------------- Figure 2

fn fig2(json: &mut serde_json::Map<String, serde_json::Value>) {
    println!("\n=== Figure 2: Human-Disease-Network-like graph ===\n");
    let g = paper_examples::disease_like();
    let s = graph_stats(&g);
    let d = decompose(&g, &PartitionOptions::default());
    let arts = d.is_articulation.iter().filter(|&&a| a).count();
    println!("vertices: {} (paper: 1419), edges: {} (paper: 3926)", s.vertices, s.edges);
    println!(
        "articulation points: {arts} ({:.0}%), degree-1 vertices: {} ({:.0}%)",
        100.0 * arts as f64 / s.vertices as f64,
        s.whisker_vertices,
        100.0 * s.whisker_vertices as f64 / s.vertices as f64
    );
    println!("max degree {} — the hub-and-module shape of the figure", s.max_degree);
    json.insert(
        "fig2".into(),
        json!({"vertices": s.vertices, "edges": s.edges, "articulation_points": arts,
               "degree1": s.whisker_vertices, "max_degree": s.max_degree}),
    );
}

// ---------------------------------------------------------------- Figure 3

fn fig3(json: &mut serde_json::Map<String, serde_json::Value>) {
    println!("\n=== Figure 3: the worked example ===\n");
    let g = paper_examples::paper_fig3();
    let d = decompose(&g, &PartitionOptions { merge_threshold: 3, ..Default::default() });
    let arts: Vec<u32> = (0..13).filter(|&v| d.is_articulation[v as usize]).collect();
    println!("articulation points: {arts:?} (paper: [2, 3, 6])");
    println!("sub-graphs: {}", d.num_subgraphs());
    for sg in &d.subgraphs {
        let bounds: Vec<String> = sg
            .boundary
            .iter()
            .map(|&l| {
                format!(
                    "{} (α={}, β={})",
                    sg.global_of(l),
                    sg.alpha[l as usize],
                    sg.beta[l as usize]
                )
            })
            .collect();
        let gammas: Vec<String> = sg
            .gamma
            .iter()
            .enumerate()
            .filter(|&(_, &gm)| gm > 0)
            .map(|(l, &gm)| format!("γ({})={}", sg.global_of(l as u32), gm))
            .collect();
        println!(
            "  SG{}: vertices {:?}, boundary [{}] {}",
            sg.id,
            sg.globals,
            bounds.join(", "),
            gammas.join(" ")
        );
    }
    let (bc, _) = bc_apgre_with(&g, &ApgreOptions::default());
    let serial = apgre_bc::brandes::bc_serial(&g);
    let max_err = bc.iter().zip(&serial).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
    println!("APGRE == Brandes on the example: max error {max_err:.1e}");
    json.insert(
        "fig3".into(),
        json!({"articulation_points": arts, "subgraphs": d.num_subgraphs(), "max_err": max_err}),
    );
}

// ---------------------------------------------------------------- Figure 7

fn fig7(opts: &Opts, json: &mut serde_json::Map<String, serde_json::Value>) {
    println!(
        "\n=== Figure 7: breakdown of BC computation (scale {}) ===\n",
        scale_name(opts.scale)
    );
    let mut t =
        Table::new(&["Graph", "partial", "total", "essential", "paper partial", "paper total"]);
    // The paper's bars, eyeballed from Figure 7 (±few %), for shape
    // comparison in EXPERIMENTS.md.
    let paper: &[(&str, f64, f64)] = &[
        ("email-enron-like", 0.20, 0.31),
        ("email-euall-like", 0.15, 0.71),
        ("slashdot-like", 0.35, 0.00),
        ("douban-like", 0.20, 0.67),
        ("wikitalk-like", 0.80, 0.15),
        ("dblp-like", 0.49, 0.20),
        ("youtube-like", 0.30, 0.53),
        ("notredame-like", 0.64, 0.20),
        ("web-berkstan-like", 0.25, 0.05),
        ("web-google-like", 0.25, 0.15),
        ("usa-road-ny-like", 0.05, 0.16),
        ("usa-road-bay-like", 0.13, 0.23),
    ];
    let mut rows = Vec::new();
    for spec in registry() {
        let g = spec.graph(opts.scale);
        let d = decompose(&g, &PartitionOptions::default());
        let r = redundancy::analyze(&g, &d);
        let p = paper
            .iter()
            .find(|&&(n, _, _)| n == spec.name)
            .copied()
            .unwrap_or((spec.name, 0.0, 0.0));
        t.row(vec![
            spec.name.into(),
            format!("{:.1}%", 100.0 * r.partial_fraction()),
            format!("{:.1}%", 100.0 * r.total_fraction()),
            format!("{:.1}%", 100.0 * r.essential_fraction()),
            format!("{:.0}%", 100.0 * p.1),
            format!("{:.0}%", 100.0 * p.2),
        ]);
        rows.push(json!({
            "graph": spec.name,
            "partial": r.partial_fraction(), "total": r.total_fraction(),
            "essential": r.essential_fraction(),
        }));
    }
    print!("{}", t.render());
    json.insert("fig7".into(), json!(rows));
}

// ---------------------------------------------------------------- Figure 8

fn fig8(opts: &Opts, json: &mut serde_json::Map<String, serde_json::Value>) {
    println!(
        "\n=== Figure 8: APGRE execution-time breakdown (scale {}) ===\n",
        scale_name(opts.scale)
    );
    let mut t =
        Table::new(&["Graph", "partition", "α/β", "top-SG BC", "other BC", "extra (part+αβ)"]);
    let mut rows = Vec::new();
    for spec in registry() {
        let g = spec.graph(opts.scale);
        let (_, report) = bc_apgre_with(&g, &ApgreOptions::default());
        let part = report.partition_time.as_secs_f64();
        let ab = report.alpha_beta_time.as_secs_f64();
        let top = report.top_subgraph_bc_time.as_secs_f64();
        let bc_total = report.bc_time.as_secs_f64();
        let total = part + ab + bc_total;
        let other = (bc_total - top).max(0.0);
        t.row(vec![
            spec.name.into(),
            format!("{:.1}%", 100.0 * part / total),
            format!("{:.1}%", 100.0 * ab / total),
            format!("{:.1}%", 100.0 * top / total),
            format!("{:.1}%", 100.0 * other / total),
            format!("{:.1}%", 100.0 * (part + ab) / total),
        ]);
        rows.push(json!({
            "graph": spec.name, "partition_s": part, "alpha_beta_s": ab,
            "top_bc_s": top, "bc_total_s": bc_total,
            "extra_fraction": (part + ab) / total,
        }));
    }
    print!("{}", t.render());
    println!("\n(paper: extra computations are 1.6%–25.7% of total; top sub-graph BC dominates)");
    json.insert("fig8".into(), json!(rows));
}

// ------------------------------------------------------------- Figures 9/10

fn fig9(opts: &Opts, json: &mut serde_json::Map<String, serde_json::Value>) {
    println!(
        "\n=== Figure 9: thread scaling of all algorithms on dblp-like (scale {}) ===\n",
        scale_name(opts.scale)
    );
    let g = apgre_workloads::get("dblp-like").unwrap().graph(opts.scale);
    println!("dblp-like: {} vertices, {} edges", g.num_vertices(), g.num_edges());
    let (serial_ref, serial_t) = time(|| apgre_bc::brandes::bc_serial(&g));
    let _ = serial_ref;
    println!("serial baseline: {}", fmt_secs(serial_t.as_secs_f64()));
    let thread_counts = [1usize, 2, 4, 6, 8, 12];
    let mut t =
        Table::new(&["threads", "APGRE", "preds", "succs", "lockSyncFree", "async", "hybrid"]);
    let mut rows = Vec::new();
    for &tc in &thread_counts {
        let mut row = vec![tc.to_string()];
        let mut obj = serde_json::Map::new();
        obj.insert("threads".into(), json!(tc));
        for &algo in &ALGORITHMS[1..] {
            let (_, dt) = with_threads(tc, || time(|| apgre_bench::run_algorithm(algo, &g)));
            let speedup = serial_t.as_secs_f64() / dt.as_secs_f64();
            row.push(format!("{speedup:.2}x"));
            obj.insert(algo.into(), json!(speedup));
        }
        t.row(row);
        rows.push(serde_json::Value::Object(obj));
    }
    print!("{}", t.render());
    println!("\n(speedups relative to 1-thread serial Brandes; on a 1-core container the curves are flat — see EXPERIMENTS.md)");
    json.insert("fig9".into(), json!(rows));
}

fn fig10(opts: &Opts, json: &mut serde_json::Map<String, serde_json::Value>) {
    println!(
        "\n=== Figure 10: APGRE thread scaling to 32 threads (scale {}) ===\n",
        scale_name(opts.scale)
    );
    let g = apgre_workloads::get("web-google-like").unwrap().graph(opts.scale);
    println!("web-google-like: {} vertices, {} edges", g.num_vertices(), g.num_edges());
    let (_, serial_t) = time(|| apgre_bc::brandes::bc_serial(&g));
    let mut t = Table::new(&["threads", "APGRE time", "speedup vs serial"]);
    let mut rows = Vec::new();
    for tc in [1usize, 2, 4, 8, 16, 32] {
        let (_, dt) = with_threads(tc, || time(|| apgre_bench::run_algorithm("APGRE", &g)));
        let speedup = serial_t.as_secs_f64() / dt.as_secs_f64();
        t.row(vec![tc.to_string(), fmt_secs(dt.as_secs_f64()), format!("{speedup:.2}x")]);
        rows.push(json!({"threads": tc, "seconds": dt.as_secs_f64(), "speedup": speedup}));
    }
    print!("{}", t.render());
    json.insert("fig10".into(), json!(rows));
}

// ---------------------------------------------------------------- Ablations

fn ablation_threshold(opts: &Opts, json: &mut serde_json::Map<String, serde_json::Value>) {
    println!("\n=== Ablation A1: merge-threshold sweep (scale {}) ===\n", scale_name(opts.scale));
    let mut rows = Vec::new();
    for name in ["email-enron-like", "wikitalk-like", "usa-road-ny-like"] {
        let g = apgre_workloads::get(name).unwrap().graph(opts.scale);
        println!("{name}:");
        let mut t = Table::new(&["threshold", "#SG", "roots", "decompose", "BC time", "total"]);
        for threshold in [1usize, 4, 16, 32, 128, 1024] {
            let opts2 = ApgreOptions {
                partition: PartitionOptions { merge_threshold: threshold, ..Default::default() },
                ..Default::default()
            };
            let ((_, report), total) = time(|| bc_apgre_with(&g, &opts2));
            let decompose_t =
                report.partition_time.as_secs_f64() + report.alpha_beta_time.as_secs_f64();
            t.row(vec![
                threshold.to_string(),
                report.num_subgraphs.to_string(),
                report.total_roots.to_string(),
                fmt_secs(decompose_t),
                fmt_secs(report.bc_time.as_secs_f64()),
                fmt_secs(total.as_secs_f64()),
            ]);
            rows.push(json!({"graph": name, "threshold": threshold,
                "subgraphs": report.num_subgraphs, "roots": report.total_roots,
                "total_s": total.as_secs_f64()}));
        }
        print!("{}", t.render());
    }
    json.insert("ablation_threshold".into(), json!(rows));
}

fn ablation_alphabeta(opts: &Opts, json: &mut serde_json::Map<String, serde_json::Value>) {
    println!(
        "\n=== Ablation A2: α/β block-cut-tree fast path vs blocked BFS (scale {}) ===\n",
        scale_name(opts.scale)
    );
    let mut t = Table::new(&["Graph", "tree α/β", "blocked-BFS α/β", "ratio"]);
    let mut rows = Vec::new();
    for name in ["email-enron-like", "youtube-like", "usa-road-bay-like"] {
        let g = apgre_workloads::get(name).unwrap().graph(opts.scale);
        let (d1, t_tree) = time(|| {
            decompose(
                &g,
                &PartitionOptions {
                    alpha_beta: AlphaBetaMethod::BlockCutTree,
                    ..Default::default()
                },
            )
        });
        let (d2, t_bfs) = time(|| {
            decompose(
                &g,
                &PartitionOptions { alpha_beta: AlphaBetaMethod::BlockedBfs, ..Default::default() },
            )
        });
        // Cross-check while we're here.
        for (a, b) in d1.subgraphs.iter().zip(&d2.subgraphs) {
            assert_eq!(a.alpha, b.alpha, "{name}: α mismatch in SG{}", a.id);
            assert_eq!(a.beta, b.beta, "{name}: β mismatch in SG{}", a.id);
        }
        t.row(vec![
            name.into(),
            fmt_secs(t_tree.as_secs_f64()),
            fmt_secs(t_bfs.as_secs_f64()),
            format!("{:.1}x", t_bfs.as_secs_f64() / t_tree.as_secs_f64()),
        ]);
        rows.push(
            json!({"graph": name, "tree_s": t_tree.as_secs_f64(), "bfs_s": t_bfs.as_secs_f64()}),
        );
    }
    print!("{}", t.render());
    println!("\n(timings include the shared partition work; both methods verified equal)");
    json.insert("ablation_alphabeta".into(), json!(rows));
}

/// Ablation A3: which redundancy class buys what? Four variants:
/// full APGRE, γ-only (one sub-graph per component, whiskers folded),
/// partial-only (decomposition kept, whiskers unfolded), and neither
/// (the kernel degraded all the way back to Brandes).
fn ablation_gamma(opts: &Opts, json: &mut serde_json::Map<String, serde_json::Value>) {
    println!(
        "\n=== Ablation A3: total (γ) vs partial redundancy elimination (scale {}) ===\n",
        scale_name(opts.scale)
    );
    let mut rows = Vec::new();
    let mut t =
        Table::new(&["Graph", "full APGRE", "γ-only", "partial-only", "neither", "serial Brandes"]);
    for name in ["email-euall-like", "youtube-like", "notredame-like", "usa-road-bay-like"] {
        let g = apgre_workloads::get(name).unwrap().graph(opts.scale);
        let (reference, serial_t) = time(|| apgre_bc::brandes::bc_serial(&g));

        let run_variant = |merge_all: bool, unfold: bool| -> f64 {
            let popts = PartitionOptions { merge_all, ..Default::default() };
            let mut d = decompose(&g, &popts);
            if unfold {
                d.unfold_whiskers();
            }
            let ((scores, _), dt) =
                time(|| apgre_bc::apgre::bc_from_decomposition(&g, &d, &ApgreOptions::default()));
            let err =
                scores.iter().zip(&reference).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
            assert!(
                err < 1e-5 * (1.0 + reference.iter().cloned().fold(0.0, f64::max)),
                "{name}: err {err}"
            );
            dt.as_secs_f64()
        };
        let full = run_variant(false, false);
        let gamma_only = run_variant(true, false);
        let partial_only = run_variant(false, true);
        let neither = run_variant(true, true);
        t.row(vec![
            name.into(),
            fmt_secs(full),
            fmt_secs(gamma_only),
            fmt_secs(partial_only),
            fmt_secs(neither),
            fmt_secs(serial_t.as_secs_f64()),
        ]);
        rows.push(json!({"graph": name, "full_s": full, "gamma_only_s": gamma_only,
            "partial_only_s": partial_only, "neither_s": neither,
            "serial_s": serial_t.as_secs_f64()}));
    }
    print!("{}", t.render());
    println!("\n(all four variants verified exact against serial Brandes)");
    json.insert("ablation_gamma".into(), json!(rows));
}

// --------------------------------------------------------------- bench-pr2

/// The legacy fixed-threshold driver, reproduced byte for byte from the
/// pre-kernel-policy `bc_from_decomposition`: a fresh score vector and a
/// fresh kernel workspace per sub-graph (no pooling), level-sync for
/// sub-graphs of ≥ 4096 vertices, sequential otherwise, collect-then-sort
/// merge. This is the `inner_parallel_min_vertices: 4096` baseline the
/// kernel-policy acceptance criterion is measured against.
fn legacy_driver(g: &apgre_graph::Graph, d: &apgre_decomp::Decomposition) -> Vec<f64> {
    use apgre_bc::apgre::kernel::{bc_in_subgraph_level_sync, bc_in_subgraph_seq};
    use rayon::prelude::*;
    let mut order: Vec<usize> = (0..d.subgraphs.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(d.subgraphs[i].num_vertices()));
    let run_one = |&i: &usize| {
        let sg = &d.subgraphs[i];
        let mut local = vec![0.0f64; sg.num_vertices()];
        if sg.num_vertices() >= 4096 {
            bc_in_subgraph_level_sync(sg, &mut local, 256);
        } else {
            bc_in_subgraph_seq(sg, &mut local);
        }
        (i, local)
    };
    let mut results: Vec<(usize, Vec<f64>)> = order.par_iter().map(run_one).collect();
    results.sort_by_key(|&(i, _)| i);
    let mut bc = vec![0.0f64; g.num_vertices()];
    for (i, local) in &results {
        let sg = &d.subgraphs[*i];
        for (l, &score) in local.iter().enumerate() {
            bc[sg.globals[l] as usize] += score;
        }
    }
    bc
}

/// PR-2 acceptance benchmark: `KernelPolicy::Auto` with pooled workspaces
/// against the legacy fixed-threshold driver, plus per-kernel wall time and
/// MTEPS for each forced policy, all on a whiskered-community graph of
/// ≥ 50k vertices inside a ≥ 4-worker pool. Every variant is cross-checked
/// against the others before any time is reported.
fn bench_pr2(opts: &Opts, json: &mut serde_json::Map<String, serde_json::Value>) {
    use apgre_bench::{mteps, observed_parallelism};
    let threads = opts.threads.unwrap_or(4).max(4);
    println!("\n=== bench-pr2: kernel policy vs legacy fixed-threshold driver ===\n");
    // Detect whether the linked rayon actually spreads work over OS threads:
    // under the offline stand-in (or a 1-CPU box) the record must say so up
    // front, because a "speedup" then measures eliminated atomics and
    // allocation churn, not parallel scaling.
    let observed_threads = observed_parallelism(threads);
    let parallel_execution = observed_threads > 1;
    let measurement_mode = if parallel_execution {
        "parallel-rayon"
    } else {
        "sequential-standin (rayon runs inline on one thread; NOT a parallel-speedup measurement)"
    };
    println!("execution: {observed_threads}/{threads} distinct worker threads observed");
    let g = apgre_graph::generators::whiskered_community(
        &apgre_graph::generators::WhiskeredCommunityParams {
            core_vertices: 6000,
            core_attach: 3,
            community_count: 220,
            community_size: 40,
            community_density: 1.8,
            whiskers: 36_000,
            seed: 4242,
        },
    );
    assert!(g.num_vertices() >= 50_000, "acceptance graph too small: {}", g.num_vertices());
    println!(
        "whiskered-community: {} vertices, {} edges, pool of {threads} workers",
        g.num_vertices(),
        g.num_edges()
    );

    let (d, decomp_t) = time(|| decompose(&g, &PartitionOptions::default()));
    println!(
        "decomposition: {} sub-graphs, top {} vertices, {}",
        d.num_subgraphs(),
        d.subgraphs_by_size().first().map_or(0, |sg| sg.num_vertices()),
        fmt_secs(decomp_t.as_secs_f64())
    );

    // End-to-end = shared decomposition + the measured BC driver; two
    // repetitions each, best time kept (the container has no turbo/cold-start
    // effects beyond allocator warm-up, which rep 1 absorbs).
    let best = |f: &(dyn Fn() -> Vec<f64> + Sync)| -> (Vec<f64>, f64) {
        let (scores, t1) = with_threads(threads, || time(f));
        let (_, t2) = with_threads(threads, || time(f));
        (scores, decomp_t.as_secs_f64() + t1.as_secs_f64().min(t2.as_secs_f64()))
    };

    let (legacy_scores, legacy_s) = best(&|| legacy_driver(&g, &d));
    let run_policy = |kernel: apgre_bc::apgre::KernelPolicy| {
        let bopts = ApgreOptions { kernel, ..Default::default() };
        apgre_bc::apgre::bc_from_decomposition(&g, &d, &bopts).0
    };
    use apgre_bc::apgre::KernelPolicy;
    let (auto_scores, auto_s) = best(&|| run_policy(KernelPolicy::Auto));
    let (_, report) = with_threads(threads, || {
        apgre_bc::apgre::bc_from_decomposition(&g, &d, &ApgreOptions::default())
    });

    let nv = g.num_vertices();
    let ne = g.num_edges();
    let secs = |s: f64| std::time::Duration::from_secs_f64(s);
    let mut t = Table::new(&["driver", "end-to-end", "MTEPS", "max |Δ| vs legacy"]);
    let diff = |a: &[f64], b: &[f64]| -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0f64, f64::max)
    };
    let scale = 1.0 + legacy_scores.iter().cloned().fold(0.0f64, f64::max);
    let mut kernel_rows = Vec::new();
    t.row(vec![
        "legacy (threshold 4096)".into(),
        fmt_secs(legacy_s),
        format!("{:.1}", mteps(nv, ne, secs(legacy_s))),
        "-".into(),
    ]);
    t.row(vec![
        "KernelPolicy::Auto (pooled)".into(),
        fmt_secs(auto_s),
        format!("{:.1}", mteps(nv, ne, secs(auto_s))),
        format!("{:.1e}", diff(&auto_scores, &legacy_scores)),
    ]);
    assert!(diff(&auto_scores, &legacy_scores) < 1e-6 * scale, "auto diverged from legacy");
    for (name, kernel) in [
        ("APGRE-seq", KernelPolicy::Seq),
        ("APGRE-rootpar", KernelPolicy::RootParallel),
        ("APGRE-levelsync", KernelPolicy::LevelSync),
    ] {
        let (scores, dt) = with_threads(threads, || time(|| run_policy(kernel)));
        let err = diff(&scores, &legacy_scores);
        assert!(err < 1e-6 * scale, "{name} diverged from legacy: {err}");
        let e2e = decomp_t.as_secs_f64() + dt.as_secs_f64();
        t.row(vec![
            name.into(),
            fmt_secs(e2e),
            format!("{:.1}", mteps(nv, ne, secs(e2e))),
            format!("{err:.1e}"),
        ]);
        kernel_rows.push(json!({
            "kernel": name, "seconds": e2e, "mteps": mteps(nv, ne, secs(e2e)),
            "max_abs_diff_vs_legacy": err,
        }));
    }
    print!("{}", t.render());

    let speedup = legacy_s / auto_s;
    let (seq_n, rootpar_n, levelsync_n) = report.kernel_counts;
    println!(
        "\nAuto dispatch: {seq_n} seq, {rootpar_n} root-parallel, {levelsync_n} level-sync \
         (top sub-graph: {})",
        report.top_subgraph_kernel.map_or("n/a".to_string(), |k| format!("{k:?}")),
    );
    println!(
        "Auto vs legacy end-to-end speedup: {speedup:.2}x (acceptance: >= 1.3x, measured {})",
        if parallel_execution { "with parallel rayon" } else { "on the sequential stand-in" }
    );

    json.insert(
        "bench_pr2".into(),
        json!({
            "measurement_mode": measurement_mode,
            "execution": {
                "configured_threads": threads,
                "observed_worker_threads": observed_threads,
                "parallel": parallel_execution,
            },
            "graph": {
                "family": "whiskered-community", "seed": 4242,
                "vertices": nv, "edges": ne,
                "subgraphs": d.num_subgraphs(),
                "top_subgraph_vertices":
                    d.subgraphs_by_size().first().map_or(0, |sg| sg.num_vertices()),
            },
            "threads": threads,
            "decompose_seconds": decomp_t.as_secs_f64(),
            "legacy_threshold_4096": {
                "seconds": legacy_s, "mteps": mteps(nv, ne, secs(legacy_s)),
            },
            "auto_pooled": {
                "seconds": auto_s, "mteps": mteps(nv, ne, secs(auto_s)),
                "kernel_counts": {
                    "seq": seq_n, "root_parallel": rootpar_n, "level_sync": levelsync_n,
                },
            },
            "kernels": kernel_rows,
            "speedup_auto_vs_legacy": speedup,
            "acceptance": {
                "required": 1.3,
                "measured": speedup,
                "pass": speedup >= 1.3,
                "measured_with": measurement_mode,
                "parallel_rayon": parallel_execution,
            },
            "notes": [
                "End-to-end = shared decomposition time + BC driver; best of 2 reps.",
                if parallel_execution {
                    "Measured with upstream rayon spreading work across OS \
                     threads; the speedup includes parallel scaling."
                } else {
                    "Measured on the vendored sequential rayon stand-in (thread \
                     counts are faithfully reported, so the Auto heuristic sees \
                     the configured pool size, but all work runs on one thread); \
                     the speedup quantifies eliminated per-access atomic \
                     round-trips, per-sub-graph allocation churn, and per-level \
                     frontier allocations — NOT parallel scaling. CI's \
                     bench-smoke job reproduces the record with real rayon."
                },
                "All variants cross-verified within 1e-6 relative; exactness vs \
                 serial Brandes is pinned separately by the equivalence suites \
                 (a 50k-vertex Brandes run is too slow to repeat here).",
            ],
        }),
    );
}

// --------------------------------------------------------------- bench-pr3

/// PR-3 acceptance benchmark: incremental [`DynamicBc`] updates against full
/// from-scratch recomputation on the 50k-vertex whiskered-community graph.
///
/// The edit stream alternately adds and removes one chord inside a single
/// non-top community sub-graph — the *local* classification the dirty-tracker
/// is built for — and the acceptance criterion is a ≥ 5× mean speedup of the
/// per-batch apply over a full decompose + BC recompute. One structural batch
/// (a bridge between two communities) is timed alongside for contrast, and
/// the engine's final scores are cross-checked against a from-scratch APGRE
/// run before any number is reported.
fn bench_pr3(opts: &Opts, json: &mut serde_json::Map<String, serde_json::Value>) {
    use apgre_bench::observed_parallelism;
    use apgre_dynamic::{BatchClass, DynamicBc, MutationBatch};
    let threads = opts.threads.unwrap_or(4).max(4);
    println!("\n=== bench-pr3: incremental DynamicBc vs full recompute ===\n");
    let observed_threads = observed_parallelism(threads);
    let parallel_execution = observed_threads > 1;
    let measurement_mode = if parallel_execution {
        "parallel-rayon"
    } else {
        "sequential-standin (rayon runs inline on one thread; NOT a parallel-speedup measurement)"
    };
    println!("execution: {observed_threads}/{threads} distinct worker threads observed");
    let g = apgre_graph::generators::whiskered_community(
        &apgre_graph::generators::WhiskeredCommunityParams {
            core_vertices: 6000,
            core_attach: 3,
            community_count: 220,
            community_size: 40,
            community_density: 1.8,
            whiskers: 36_000,
            seed: 4242,
        },
    );
    assert!(g.num_vertices() >= 50_000, "acceptance graph too small: {}", g.num_vertices());
    println!(
        "whiskered-community: {} vertices, {} edges, pool of {threads} workers",
        g.num_vertices(),
        g.num_edges()
    );

    let bopts = ApgreOptions::default();

    // Baseline: what every batch would cost without the dirty-tracker — a
    // full decomposition plus a full batch-driver BC pass. Best of 2 reps.
    let full = || {
        let d = decompose(&g, &PartitionOptions::default());
        apgre_bc::apgre::bc_from_decomposition(&g, &d, &bopts).0
    };
    let (_, full_t1) = with_threads(threads, || time(full));
    let (_, full_t2) = with_threads(threads, || time(full));
    let full_s = full_t1.as_secs_f64().min(full_t2.as_secs_f64());
    println!("full recompute (decompose + BC, best of 2): {}", fmt_secs(full_s));

    let (mut engine, seed_t) = with_threads(threads, || time(|| DynamicBc::new(&g, bopts.clone())));
    let d = engine.decomposition();
    println!(
        "engine seeded in {} ({} sub-graphs, top {} vertices)",
        fmt_secs(seed_t.as_secs_f64()),
        d.num_subgraphs(),
        d.subgraphs_by_size().first().map_or(0, |sg| sg.num_vertices()),
    );

    // Pick a chord (two interior, non-adjacent vertices) inside one non-top
    // community sub-graph, plus an interior vertex of a *different* sub-graph
    // for the structural bridge batch.
    let top_index = (0..d.subgraphs.len())
        .max_by_key(|&i| d.subgraphs[i].num_vertices())
        .expect("non-empty decomposition");
    let interior_pair = |si: usize| -> Option<(u32, u32)> {
        let sg = &d.subgraphs[si];
        let interior: Vec<u32> = (0..sg.num_vertices() as u32)
            .filter(|&l| !sg.is_boundary[l as usize] && !sg.is_whisker[l as usize])
            .collect();
        for (a, &lu) in interior.iter().enumerate() {
            for &lv in &interior[a + 1..] {
                if !sg.graph.out_neighbors(lu).contains(&lv) {
                    return Some((sg.globals[lu as usize], sg.globals[lv as usize]));
                }
            }
        }
        None
    };
    let (chord_sg, (cu, cv)) = (0..d.subgraphs.len())
        .filter(|&i| i != top_index && d.subgraphs[i].num_vertices() >= 10)
        .find_map(|i| interior_pair(i).map(|p| (i, p)))
        .expect("no community sub-graph with an interior chord");
    let (_, (bu, bv)) = (0..d.subgraphs.len())
        .filter(|&i| i != top_index && i != chord_sg && d.subgraphs[i].num_vertices() >= 10)
        .find_map(|i| interior_pair(i).map(|p| (i, p)))
        .map(|(i, (w, _))| (i, (cu, w)))
        .expect("no second community sub-graph for the structural bridge");
    println!(
        "local chord: {cu} -- {cv} inside sub-graph {chord_sg} \
         ({} vertices); structural bridge: {bu} -- {bv}",
        d.subgraphs[chord_sg].num_vertices()
    );

    // ~20 alternating add/remove batches of the same chord: every one must
    // classify Local and touch exactly one dirty sub-graph.
    const LOCAL_BATCHES: usize = 20;
    let mut local_times = Vec::with_capacity(LOCAL_BATCHES);
    let mut dirty_max = 0usize;
    let mut reused_min = usize::MAX;
    with_threads(threads, || {
        for k in 0..LOCAL_BATCHES {
            let batch = if k % 2 == 0 {
                MutationBatch::new().add_edge(cu, cv)
            } else {
                MutationBatch::new().remove_edge(cu, cv)
            };
            let report = engine.apply(&batch);
            assert_eq!(
                report.class,
                BatchClass::Local,
                "batch {k} was not local: {}",
                report.reason
            );
            local_times.push(report.wall_clock.as_secs_f64());
            dirty_max = dirty_max.max(report.dirty_subgraphs);
            reused_min = reused_min.min(report.reused_contributions);
        }
    });
    let local_mean = local_times.iter().sum::<f64>() / local_times.len() as f64;
    let local_max = local_times.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{LOCAL_BATCHES} local batches: mean {} / max {} per apply \
         ({dirty_max} dirty sub-graph(s), >= {reused_min} contributions reused)",
        fmt_secs(local_mean),
        fmt_secs(local_max)
    );

    // One structural batch for contrast: a bridge between two communities
    // forces a re-decomposition with fingerprint carry-forward.
    let structural_report =
        with_threads(threads, || engine.apply(&MutationBatch::new().add_edge(bu, bv)));
    assert_eq!(
        structural_report.class,
        BatchClass::Structural,
        "bridge batch was not structural: {}",
        structural_report.reason
    );
    let structural_s = structural_report.wall_clock.as_secs_f64();
    println!(
        "1 structural batch (bridge): {} ({} of {} contributions reused)",
        fmt_secs(structural_s),
        structural_report.reused_contributions,
        structural_report.total_subgraphs
    );

    // Cross-check before reporting any time: the maintained scores must match
    // a from-scratch APGRE run on the final graph.
    let current = engine.current_graph();
    let (scratch, _) = with_threads(threads, || bc_apgre_with(&current, &bopts));
    let scale = 1.0 + scratch.iter().cloned().fold(0.0f64, f64::max);
    let max_diff =
        engine.scores().iter().zip(&scratch).map(|(x, y)| (x - y).abs()).fold(0.0f64, f64::max);
    assert!(max_diff <= 1e-9 * scale, "incremental diverged from scratch: max |Δ| = {max_diff:e}");
    println!("cross-check vs from-scratch APGRE: max |Δ| = {max_diff:.1e}");

    let speedup = full_s / local_mean;
    println!(
        "incremental local apply vs full recompute: {speedup:.1}x \
         (acceptance: >= 5x, measured {})",
        if parallel_execution { "with parallel rayon" } else { "on the sequential stand-in" }
    );

    json.insert(
        "bench_pr3".into(),
        json!({
            "measurement_mode": measurement_mode,
            "execution": {
                "configured_threads": threads,
                "observed_worker_threads": observed_threads,
                "parallel": parallel_execution,
            },
            "graph": {
                "family": "whiskered-community", "seed": 4242,
                "vertices": g.num_vertices(), "edges": g.num_edges(),
                "subgraphs": engine.decomposition().num_subgraphs(),
            },
            "threads": threads,
            "full_recompute_seconds": full_s,
            "engine_seed_seconds": seed_t.as_secs_f64(),
            "local_batches": {
                "count": LOCAL_BATCHES,
                "mean_apply_seconds": local_mean,
                "max_apply_seconds": local_max,
                "dirty_subgraphs_max": dirty_max,
                "reused_contributions_min": reused_min,
            },
            "structural_batch": {
                "apply_seconds": structural_s,
                "reused_contributions": structural_report.reused_contributions,
                "total_subgraphs": structural_report.total_subgraphs,
            },
            "max_abs_diff_vs_scratch": max_diff,
            "speedup_local_vs_full": speedup,
            "acceptance": {
                "required": 5.0,
                "measured": speedup,
                "pass": speedup >= 5.0,
                "measured_with": measurement_mode,
                "parallel_rayon": parallel_execution,
            },
            "notes": [
                "Speedup = (full decompose + BC recompute, best of 2) / mean \
                 per-batch apply over 20 alternating add/remove chord batches \
                 inside one community sub-graph (all classified Local).",
                "A local apply revalidates and re-runs only the dirty \
                 sub-graph's kernel, then refolds the per-sub-graph \
                 contributions; the structural batch shows the fingerprint \
                 carry-forward fallback cost for contrast.",
                "Scores are cross-checked against a from-scratch APGRE run \
                 before any time is reported (1e-9 relative).",
            ],
        }),
    );
}
