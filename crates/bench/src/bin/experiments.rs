//! `experiments` — regenerates every table and figure of the paper's
//! evaluation section (see DESIGN.md §4 for the experiment index).
//!
//! ```text
//! experiments <id> [--scale tiny|small|medium] [--threads N] [--json FILE]
//!
//! ids:
//!   table1   graph inventory (paper Table 1)
//!   table2   execution time of all 7 algorithms (paper Table 2)
//!   table3   search rate in MTEPS (paper Table 3)
//!   table4   sub-graph decomposition sizes (paper Table 4)
//!   fig2     Human-Disease-Network structure (paper Figure 2)
//!   fig3     the worked example decomposition (paper Figure 3)
//!   fig6     speedup over serial (paper Figure 6)
//!   fig7     redundancy breakdown (paper Figure 7)
//!   fig8     APGRE execution-time breakdown (paper Figure 8)
//!   fig9     thread scaling of all algorithms on dblp-like (paper Figure 9)
//!   fig10    thread scaling of APGRE to 32 threads (paper Figure 10)
//!   ablation-threshold   merge-threshold sweep (design ablation A1)
//!   ablation-alphabeta   α/β tree fast path vs blocked BFS (ablation A2)
//!   ablation-gamma       isolate total (γ) vs partial redundancy elimination (A3)
//!   bench-pr2            kernel-policy benchmark: Auto vs the legacy
//!                        fixed-threshold driver, plus per-kernel times
//!                        (writes the record committed as BENCH_PR2.json)
//!   bench-pr3            incremental-BC benchmark: per-batch DynamicBc
//!                        apply time for local edit batches vs a full
//!                        from-scratch recompute, plus one structural batch
//!                        (writes the record committed as BENCH_PR3.json)
//!   bench-pr4            apgre-serve closed-loop load benchmark: 4 client
//!                        threads of mixed query/mutate traffic against an
//!                        in-process service, with throughput, p50/p99
//!                        latency, and a bitwise checkpoint cross-check
//!                        (writes the record committed as BENCH_PR4.json;
//!                        `--smoke` shrinks the graph and window for CI)
//!   bench-pr7            structural-path benchmark: incremental block-cut
//!                        tree maintenance (region splice) vs the forced
//!                        full-rebuild arm on whisker-tip bridge toggles,
//!                        plus a mixed local + structural batch verified by
//!                        the per-edit DynamicReport counters (writes the
//!                        record committed as BENCH_PR7.json; `--smoke`
//!                        shrinks the graph and batch count for CI)
//!   bench-pr8            publish-cost benchmark: copy-on-write snapshot
//!                        publication (shared graph chunks + score spans)
//!                        vs a forced full materialization of the graph
//!                        and score vector per publish, with a bitwise
//!                        served-score cross-check on the checkpointed
//!                        graph (writes the record committed as
//!                        BENCH_PR8.json; `--smoke` shrinks the graph and
//!                        batch count for CI)
//!   bench-pr9            incremental sampled-estimator benchmark: dirty-set
//!                        approx refresh (`DynamicBc::approx_snapshot`)
//!                        vs the legacy from-scratch `bc_approx` pivot
//!                        sweep at an equal root-sample budget, across the
//!                        same chord-toggle mutation stream as bench-pr8,
//!                        with a bitwise cross-check against the
//!                        from-scratch composed estimator (writes the
//!                        record committed as BENCH_PR9.json; `--smoke`
//!                        shrinks the graph and batch count for CI)
//!   all      everything above
//! ```
//!
//! Tables 2/3 and Figure 6 share one measurement pass when run together via
//! `all`.

use apgre_bc::apgre::{bc_apgre_with, ApgreOptions};
use apgre_bc::redundancy;
use apgre_bench::{
    fmt_secs, measure_graph, time, with_threads, GraphMeasurement, Table, ALGORITHMS,
};
use apgre_decomp::{decompose, AlphaBetaMethod, PartitionOptions};
use apgre_graph::stats::graph_stats;
use apgre_workloads::{paper_examples, registry, Scale};
use serde_json::json;
use std::process::exit;

struct Opts {
    scale: Scale,
    threads: Option<usize>,
    json: Option<String>,
    /// Shrinks bench-pr4 to a CI-sized graph and measurement window.
    smoke: bool,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else { usage() };
    let mut opts = Opts { scale: Scale::Small, threads: None, json: None, smoke: false };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                opts.scale = match args.next().as_deref() {
                    Some("tiny") => Scale::Tiny,
                    Some("small") => Scale::Small,
                    Some("medium") => Scale::Medium,
                    other => {
                        eprintln!("bad scale {other:?}");
                        exit(2)
                    }
                }
            }
            "--threads" => {
                opts.threads = args.next().and_then(|v| v.parse().ok());
                if opts.threads.is_none() {
                    eprintln!("--threads needs a number");
                    exit(2);
                }
            }
            "--json" => opts.json = args.next(),
            "--smoke" => opts.smoke = true,
            other => {
                eprintln!("unknown option {other}");
                usage()
            }
        }
    }
    if let Some(t) = opts.threads {
        rayon::ThreadPoolBuilder::new().num_threads(t).build_global().expect("pool");
    }

    let mut json_out = serde_json::Map::new();
    match cmd.as_str() {
        "table1" => table1(&opts, &mut json_out),
        "table2" => {
            let m = measure_all(&opts);
            table2(&m, &mut json_out);
        }
        "table3" => {
            let m = measure_all(&opts);
            table3(&m, &mut json_out);
        }
        "table4" => table4(&opts, &mut json_out),
        "fig2" => fig2(&mut json_out),
        "fig3" => fig3(&mut json_out),
        "fig6" => {
            let m = measure_all(&opts);
            fig6(&m, &mut json_out);
        }
        "fig7" => fig7(&opts, &mut json_out),
        "fig8" => fig8(&opts, &mut json_out),
        "fig9" => fig9(&opts, &mut json_out),
        "fig10" => fig10(&opts, &mut json_out),
        "ablation-threshold" => ablation_threshold(&opts, &mut json_out),
        "ablation-alphabeta" => ablation_alphabeta(&opts, &mut json_out),
        "ablation-gamma" => ablation_gamma(&opts, &mut json_out),
        "bench-pr2" => bench_pr2(&opts, &mut json_out),
        "bench-pr3" => bench_pr3(&opts, &mut json_out),
        "bench-pr4" => bench_pr4(&opts, &mut json_out),
        "bench-pr7" => bench_pr7(&opts, &mut json_out),
        "bench-pr8" => bench_pr8(&opts, &mut json_out),
        "bench-pr9" => bench_pr9(&opts, &mut json_out),
        "bench-pr10" => bench_pr10(&opts, &mut json_out),
        "all" => {
            table1(&opts, &mut json_out);
            let m = measure_all(&opts);
            table2(&m, &mut json_out);
            table3(&m, &mut json_out);
            fig6(&m, &mut json_out);
            table4(&opts, &mut json_out);
            fig2(&mut json_out);
            fig3(&mut json_out);
            fig7(&opts, &mut json_out);
            fig8(&opts, &mut json_out);
            fig9(&opts, &mut json_out);
            fig10(&opts, &mut json_out);
            ablation_threshold(&opts, &mut json_out);
            ablation_alphabeta(&opts, &mut json_out);
            ablation_gamma(&opts, &mut json_out);
            bench_pr2(&opts, &mut json_out);
            bench_pr3(&opts, &mut json_out);
            bench_pr4(&opts, &mut json_out);
            bench_pr7(&opts, &mut json_out);
            bench_pr8(&opts, &mut json_out);
            bench_pr9(&opts, &mut json_out);
            bench_pr10(&opts, &mut json_out);
        }
        _ => usage(),
    }
    if let Some(path) = &opts.json {
        std::fs::write(path, serde_json::to_string_pretty(&json_out).unwrap())
            .unwrap_or_else(|e| eprintln!("cannot write {path}: {e}"));
        println!("\n[json results written to {path}]");
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: experiments <table1|table2|table3|table4|fig2|fig3|fig6|fig7|fig8|fig9|fig10|\
         ablation-threshold|ablation-alphabeta|ablation-gamma|bench-pr2|bench-pr3|bench-pr4|\
         bench-pr7|bench-pr8|bench-pr9|bench-pr10|all> \
         [--scale tiny|small|medium] [--threads N] [--json FILE] [--smoke]"
    );
    exit(2)
}

fn scale_name(s: Scale) -> &'static str {
    match s {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Medium => "medium",
    }
}

// ---------------------------------------------------------------- Table 1

fn table1(opts: &Opts, json: &mut serde_json::Map<String, serde_json::Value>) {
    println!(
        "\n=== Table 1: graph inventory (stand-ins at scale {}) ===\n",
        scale_name(opts.scale)
    );
    let mut t = Table::new(&[
        "Graph",
        "Directed",
        "paper #V",
        "paper #E",
        "ours #V",
        "ours #E",
        "whiskers%",
    ]);
    let mut rows = Vec::new();
    for spec in registry() {
        let g = spec.graph(opts.scale);
        let s = graph_stats(&g);
        t.row(vec![
            spec.name.into(),
            if spec.directed { "Y" } else { "N" }.into(),
            spec.paper_size.0.to_string(),
            spec.paper_size.1.to_string(),
            s.vertices.to_string(),
            s.edges.to_string(),
            format!("{:.0}%", 100.0 * s.whisker_vertices as f64 / s.vertices as f64),
        ]);
        rows.push(json!({
            "graph": spec.name, "directed": spec.directed,
            "vertices": s.vertices, "edges": s.edges,
            "whisker_fraction": s.whisker_vertices as f64 / s.vertices as f64,
        }));
    }
    print!("{}", t.render());
    json.insert("table1".into(), json!(rows));
}

// ------------------------------------------------------------ Tables 2/3/6

fn measure_all(opts: &Opts) -> Vec<GraphMeasurement> {
    eprintln!("[measuring all algorithms on all workloads at scale {}…]", scale_name(opts.scale));
    registry()
        .iter()
        .map(|spec| {
            eprintln!("  {}", spec.name);
            let g = spec.graph(opts.scale);
            measure_graph(spec.name, &g, ALGORITHMS)
        })
        .collect()
}

fn table2(
    measurements: &[GraphMeasurement],
    json: &mut serde_json::Map<String, serde_json::Value>,
) {
    println!("\n=== Table 2: execution time ===\n");
    let mut t = Table::new(&[
        "Graph",
        "serial",
        "APGRE",
        "preds",
        "succs",
        "lockSyncFree",
        "async",
        "hybrid",
    ]);
    for m in measurements {
        let mut row = vec![m.graph.clone()];
        for &a in ALGORITHMS {
            row.push(m.seconds_of(a).map(fmt_secs).unwrap_or_default());
        }
        t.row(row);
    }
    let mut avg_row = vec!["avg speedup vs serial".to_string()];
    for &a in ALGORITHMS {
        let speedups: Vec<f64> =
            measurements.iter().filter_map(|m| m.speedup_vs_serial(a)).collect();
        let avg = speedups.iter().sum::<f64>() / speedups.len().max(1) as f64;
        avg_row.push(format!("{avg:.2}x"));
    }
    t.row(avg_row);
    print!("{}", t.render());
    json.insert("table2".into(), serde_json::to_value(measurements).unwrap());
    // Correctness verification report.
    let worst = measurements
        .iter()
        .flat_map(|m| m.algos.iter())
        .map(|a| a.max_abs_err)
        .fold(0.0f64, f64::max);
    println!("\n(worst |score - serial| across all runs: {worst:.2e})");
}

fn table3(
    measurements: &[GraphMeasurement],
    json: &mut serde_json::Map<String, serde_json::Value>,
) {
    println!("\n=== Table 3: search rate (MTEPS = n·m/t / 1e6) ===\n");
    let mut t = Table::new(&[
        "Graph",
        "serial",
        "APGRE",
        "preds",
        "succs",
        "lockSyncFree",
        "async",
        "hybrid",
    ]);
    for m in measurements {
        let mut row = vec![m.graph.clone()];
        for &a in ALGORITHMS {
            let v = m.algos.iter().find(|x| x.algo == a).map(|x| x.mteps).unwrap_or(0.0);
            row.push(format!("{v:.1}"));
        }
        t.row(row);
    }
    print!("{}", t.render());
    json.insert("table3".into(), json!("same measurements as table2; mteps field"));
}

fn fig6(measurements: &[GraphMeasurement], json: &mut serde_json::Map<String, serde_json::Value>) {
    println!("\n=== Figure 6: speedup on this machine relative to serial ===\n");
    let mut t = Table::new(&[
        "Graph",
        "APGRE",
        "preds",
        "succs",
        "lockSyncFree",
        "async",
        "hybrid",
        "paper APGRE",
    ]);
    let mut rows = Vec::new();
    for (m, spec) in measurements.iter().zip(registry()) {
        let mut row = vec![m.graph.clone()];
        let mut obj = serde_json::Map::new();
        for &a in &ALGORITHMS[1..] {
            let s = m.speedup_vs_serial(a).unwrap_or(0.0);
            row.push(format!("{s:.2}x"));
            obj.insert(a.into(), json!(s));
        }
        row.push(format!("{:.2}x", spec.paper_speedup_vs_serial));
        obj.insert("paper_apgre".into(), json!(spec.paper_speedup_vs_serial));
        obj.insert("graph".into(), json!(m.graph));
        t.row(row);
        rows.push(serde_json::Value::Object(obj));
    }
    print!("{}", t.render());
    json.insert("fig6".into(), json!(rows));
}

// ---------------------------------------------------------------- Table 4

fn table4(opts: &Opts, json: &mut serde_json::Map<String, serde_json::Value>) {
    println!("\n=== Table 4: sub-graph sizes (scale {}) ===\n", scale_name(opts.scale));
    let mut t = Table::new(&[
        "Graph", "#SG", "top #V", "top #E", "V/G.V", "E/G.E", "2nd #V", "2nd #E", "3rd #V",
        "3rd #E",
    ]);
    let mut rows = Vec::new();
    for spec in registry() {
        let g = spec.graph(opts.scale);
        let d = decompose(&g, &PartitionOptions::default());
        let by_size = d.subgraphs_by_size();
        let get = |i: usize| -> (usize, usize) {
            by_size.get(i).map(|sg| (sg.num_vertices(), sg.num_edges())).unwrap_or((0, 0))
        };
        let (tv, te) = get(0);
        let (sv, se) = get(1);
        let (uv, ue) = get(2);
        t.row(vec![
            spec.name.into(),
            d.num_subgraphs().to_string(),
            tv.to_string(),
            te.to_string(),
            format!("{:.2}%", 100.0 * tv as f64 / g.num_vertices() as f64),
            format!("{:.2}%", 100.0 * te as f64 / g.num_edges().max(1) as f64),
            sv.to_string(),
            se.to_string(),
            uv.to_string(),
            ue.to_string(),
        ]);
        rows.push(json!({
            "graph": spec.name, "num_subgraphs": d.num_subgraphs(),
            "top": {"v": tv, "e": te}, "second": {"v": sv, "e": se}, "third": {"v": uv, "e": ue},
            "top_v_fraction": tv as f64 / g.num_vertices() as f64,
        }));
    }
    print!("{}", t.render());
    json.insert("table4".into(), json!(rows));
}

// ---------------------------------------------------------------- Figure 2

fn fig2(json: &mut serde_json::Map<String, serde_json::Value>) {
    println!("\n=== Figure 2: Human-Disease-Network-like graph ===\n");
    let g = paper_examples::disease_like();
    let s = graph_stats(&g);
    let d = decompose(&g, &PartitionOptions::default());
    let arts = d.is_articulation.iter().filter(|&&a| a).count();
    println!("vertices: {} (paper: 1419), edges: {} (paper: 3926)", s.vertices, s.edges);
    println!(
        "articulation points: {arts} ({:.0}%), degree-1 vertices: {} ({:.0}%)",
        100.0 * arts as f64 / s.vertices as f64,
        s.whisker_vertices,
        100.0 * s.whisker_vertices as f64 / s.vertices as f64
    );
    println!("max degree {} — the hub-and-module shape of the figure", s.max_degree);
    json.insert(
        "fig2".into(),
        json!({"vertices": s.vertices, "edges": s.edges, "articulation_points": arts,
               "degree1": s.whisker_vertices, "max_degree": s.max_degree}),
    );
}

// ---------------------------------------------------------------- Figure 3

fn fig3(json: &mut serde_json::Map<String, serde_json::Value>) {
    println!("\n=== Figure 3: the worked example ===\n");
    let g = paper_examples::paper_fig3();
    let d = decompose(&g, &PartitionOptions { merge_threshold: 3, ..Default::default() });
    let arts: Vec<u32> = (0..13).filter(|&v| d.is_articulation[v as usize]).collect();
    println!("articulation points: {arts:?} (paper: [2, 3, 6])");
    println!("sub-graphs: {}", d.num_subgraphs());
    for sg in &d.subgraphs {
        let bounds: Vec<String> = sg
            .boundary
            .iter()
            .map(|&l| {
                format!(
                    "{} (α={}, β={})",
                    sg.global_of(l),
                    sg.alpha[l as usize],
                    sg.beta[l as usize]
                )
            })
            .collect();
        let gammas: Vec<String> = sg
            .gamma
            .iter()
            .enumerate()
            .filter(|&(_, &gm)| gm > 0)
            .map(|(l, &gm)| format!("γ({})={}", sg.global_of(l as u32), gm))
            .collect();
        println!(
            "  SG{}: vertices {:?}, boundary [{}] {}",
            sg.id,
            sg.globals,
            bounds.join(", "),
            gammas.join(" ")
        );
    }
    let (bc, _) = bc_apgre_with(&g, &ApgreOptions::default());
    let serial = apgre_bc::brandes::bc_serial(&g);
    let max_err = bc.iter().zip(&serial).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
    println!("APGRE == Brandes on the example: max error {max_err:.1e}");
    json.insert(
        "fig3".into(),
        json!({"articulation_points": arts, "subgraphs": d.num_subgraphs(), "max_err": max_err}),
    );
}

// ---------------------------------------------------------------- Figure 7

fn fig7(opts: &Opts, json: &mut serde_json::Map<String, serde_json::Value>) {
    println!(
        "\n=== Figure 7: breakdown of BC computation (scale {}) ===\n",
        scale_name(opts.scale)
    );
    let mut t =
        Table::new(&["Graph", "partial", "total", "essential", "paper partial", "paper total"]);
    // The paper's bars, eyeballed from Figure 7 (±few %), for shape
    // comparison in EXPERIMENTS.md.
    let paper: &[(&str, f64, f64)] = &[
        ("email-enron-like", 0.20, 0.31),
        ("email-euall-like", 0.15, 0.71),
        ("slashdot-like", 0.35, 0.00),
        ("douban-like", 0.20, 0.67),
        ("wikitalk-like", 0.80, 0.15),
        ("dblp-like", 0.49, 0.20),
        ("youtube-like", 0.30, 0.53),
        ("notredame-like", 0.64, 0.20),
        ("web-berkstan-like", 0.25, 0.05),
        ("web-google-like", 0.25, 0.15),
        ("usa-road-ny-like", 0.05, 0.16),
        ("usa-road-bay-like", 0.13, 0.23),
    ];
    let mut rows = Vec::new();
    for spec in registry() {
        let g = spec.graph(opts.scale);
        let d = decompose(&g, &PartitionOptions::default());
        let r = redundancy::analyze(&g, &d);
        let p = paper
            .iter()
            .find(|&&(n, _, _)| n == spec.name)
            .copied()
            .unwrap_or((spec.name, 0.0, 0.0));
        t.row(vec![
            spec.name.into(),
            format!("{:.1}%", 100.0 * r.partial_fraction()),
            format!("{:.1}%", 100.0 * r.total_fraction()),
            format!("{:.1}%", 100.0 * r.essential_fraction()),
            format!("{:.0}%", 100.0 * p.1),
            format!("{:.0}%", 100.0 * p.2),
        ]);
        rows.push(json!({
            "graph": spec.name,
            "partial": r.partial_fraction(), "total": r.total_fraction(),
            "essential": r.essential_fraction(),
        }));
    }
    print!("{}", t.render());
    json.insert("fig7".into(), json!(rows));
}

// ---------------------------------------------------------------- Figure 8

fn fig8(opts: &Opts, json: &mut serde_json::Map<String, serde_json::Value>) {
    println!(
        "\n=== Figure 8: APGRE execution-time breakdown (scale {}) ===\n",
        scale_name(opts.scale)
    );
    let mut t =
        Table::new(&["Graph", "partition", "α/β", "top-SG BC", "other BC", "extra (part+αβ)"]);
    let mut rows = Vec::new();
    for spec in registry() {
        let g = spec.graph(opts.scale);
        let (_, report) = bc_apgre_with(&g, &ApgreOptions::default());
        let part = report.partition_time.as_secs_f64();
        let ab = report.alpha_beta_time.as_secs_f64();
        let top = report.top_subgraph_bc_time.as_secs_f64();
        let bc_total = report.bc_time.as_secs_f64();
        let total = part + ab + bc_total;
        let other = (bc_total - top).max(0.0);
        t.row(vec![
            spec.name.into(),
            format!("{:.1}%", 100.0 * part / total),
            format!("{:.1}%", 100.0 * ab / total),
            format!("{:.1}%", 100.0 * top / total),
            format!("{:.1}%", 100.0 * other / total),
            format!("{:.1}%", 100.0 * (part + ab) / total),
        ]);
        rows.push(json!({
            "graph": spec.name, "partition_s": part, "alpha_beta_s": ab,
            "top_bc_s": top, "bc_total_s": bc_total,
            "extra_fraction": (part + ab) / total,
        }));
    }
    print!("{}", t.render());
    println!("\n(paper: extra computations are 1.6%–25.7% of total; top sub-graph BC dominates)");
    json.insert("fig8".into(), json!(rows));
}

// ------------------------------------------------------------- Figures 9/10

fn fig9(opts: &Opts, json: &mut serde_json::Map<String, serde_json::Value>) {
    println!(
        "\n=== Figure 9: thread scaling of all algorithms on dblp-like (scale {}) ===\n",
        scale_name(opts.scale)
    );
    let g = apgre_workloads::get("dblp-like").unwrap().graph(opts.scale);
    println!("dblp-like: {} vertices, {} edges", g.num_vertices(), g.num_edges());
    let (serial_ref, serial_t) = time(|| apgre_bc::brandes::bc_serial(&g));
    let _ = serial_ref;
    println!("serial baseline: {}", fmt_secs(serial_t.as_secs_f64()));
    let thread_counts = [1usize, 2, 4, 6, 8, 12];
    let mut t =
        Table::new(&["threads", "APGRE", "preds", "succs", "lockSyncFree", "async", "hybrid"]);
    let mut rows = Vec::new();
    for &tc in &thread_counts {
        let mut row = vec![tc.to_string()];
        let mut obj = serde_json::Map::new();
        obj.insert("threads".into(), json!(tc));
        for &algo in &ALGORITHMS[1..] {
            let (_, dt) = with_threads(tc, || time(|| apgre_bench::run_algorithm(algo, &g)));
            let speedup = serial_t.as_secs_f64() / dt.as_secs_f64();
            row.push(format!("{speedup:.2}x"));
            obj.insert(algo.into(), json!(speedup));
        }
        t.row(row);
        rows.push(serde_json::Value::Object(obj));
    }
    print!("{}", t.render());
    println!("\n(speedups relative to 1-thread serial Brandes; on a 1-core container the curves are flat — see EXPERIMENTS.md)");
    json.insert("fig9".into(), json!(rows));
}

fn fig10(opts: &Opts, json: &mut serde_json::Map<String, serde_json::Value>) {
    println!(
        "\n=== Figure 10: APGRE thread scaling to 32 threads (scale {}) ===\n",
        scale_name(opts.scale)
    );
    let g = apgre_workloads::get("web-google-like").unwrap().graph(opts.scale);
    println!("web-google-like: {} vertices, {} edges", g.num_vertices(), g.num_edges());
    let (_, serial_t) = time(|| apgre_bc::brandes::bc_serial(&g));
    let mut t = Table::new(&["threads", "APGRE time", "speedup vs serial"]);
    let mut rows = Vec::new();
    for tc in [1usize, 2, 4, 8, 16, 32] {
        let (_, dt) = with_threads(tc, || time(|| apgre_bench::run_algorithm("APGRE", &g)));
        let speedup = serial_t.as_secs_f64() / dt.as_secs_f64();
        t.row(vec![tc.to_string(), fmt_secs(dt.as_secs_f64()), format!("{speedup:.2}x")]);
        rows.push(json!({"threads": tc, "seconds": dt.as_secs_f64(), "speedup": speedup}));
    }
    print!("{}", t.render());
    json.insert("fig10".into(), json!(rows));
}

// ---------------------------------------------------------------- Ablations

fn ablation_threshold(opts: &Opts, json: &mut serde_json::Map<String, serde_json::Value>) {
    println!("\n=== Ablation A1: merge-threshold sweep (scale {}) ===\n", scale_name(opts.scale));
    let mut rows = Vec::new();
    for name in ["email-enron-like", "wikitalk-like", "usa-road-ny-like"] {
        let g = apgre_workloads::get(name).unwrap().graph(opts.scale);
        println!("{name}:");
        let mut t = Table::new(&["threshold", "#SG", "roots", "decompose", "BC time", "total"]);
        for threshold in [1usize, 4, 16, 32, 128, 1024] {
            let opts2 = ApgreOptions {
                partition: PartitionOptions { merge_threshold: threshold, ..Default::default() },
                ..Default::default()
            };
            let ((_, report), total) = time(|| bc_apgre_with(&g, &opts2));
            let decompose_t =
                report.partition_time.as_secs_f64() + report.alpha_beta_time.as_secs_f64();
            t.row(vec![
                threshold.to_string(),
                report.num_subgraphs.to_string(),
                report.total_roots.to_string(),
                fmt_secs(decompose_t),
                fmt_secs(report.bc_time.as_secs_f64()),
                fmt_secs(total.as_secs_f64()),
            ]);
            rows.push(json!({"graph": name, "threshold": threshold,
                "subgraphs": report.num_subgraphs, "roots": report.total_roots,
                "total_s": total.as_secs_f64()}));
        }
        print!("{}", t.render());
    }
    json.insert("ablation_threshold".into(), json!(rows));
}

fn ablation_alphabeta(opts: &Opts, json: &mut serde_json::Map<String, serde_json::Value>) {
    println!(
        "\n=== Ablation A2: α/β block-cut-tree fast path vs blocked BFS (scale {}) ===\n",
        scale_name(opts.scale)
    );
    let mut t = Table::new(&["Graph", "tree α/β", "blocked-BFS α/β", "ratio"]);
    let mut rows = Vec::new();
    for name in ["email-enron-like", "youtube-like", "usa-road-bay-like"] {
        let g = apgre_workloads::get(name).unwrap().graph(opts.scale);
        let (d1, t_tree) = time(|| {
            decompose(
                &g,
                &PartitionOptions {
                    alpha_beta: AlphaBetaMethod::BlockCutTree,
                    ..Default::default()
                },
            )
        });
        let (d2, t_bfs) = time(|| {
            decompose(
                &g,
                &PartitionOptions { alpha_beta: AlphaBetaMethod::BlockedBfs, ..Default::default() },
            )
        });
        // Cross-check while we're here.
        for (a, b) in d1.subgraphs.iter().zip(&d2.subgraphs) {
            assert_eq!(a.alpha, b.alpha, "{name}: α mismatch in SG{}", a.id);
            assert_eq!(a.beta, b.beta, "{name}: β mismatch in SG{}", a.id);
        }
        t.row(vec![
            name.into(),
            fmt_secs(t_tree.as_secs_f64()),
            fmt_secs(t_bfs.as_secs_f64()),
            format!("{:.1}x", t_bfs.as_secs_f64() / t_tree.as_secs_f64()),
        ]);
        rows.push(
            json!({"graph": name, "tree_s": t_tree.as_secs_f64(), "bfs_s": t_bfs.as_secs_f64()}),
        );
    }
    print!("{}", t.render());
    println!("\n(timings include the shared partition work; both methods verified equal)");
    json.insert("ablation_alphabeta".into(), json!(rows));
}

/// Ablation A3: which redundancy class buys what? Four variants:
/// full APGRE, γ-only (one sub-graph per component, whiskers folded),
/// partial-only (decomposition kept, whiskers unfolded), and neither
/// (the kernel degraded all the way back to Brandes).
fn ablation_gamma(opts: &Opts, json: &mut serde_json::Map<String, serde_json::Value>) {
    println!(
        "\n=== Ablation A3: total (γ) vs partial redundancy elimination (scale {}) ===\n",
        scale_name(opts.scale)
    );
    let mut rows = Vec::new();
    let mut t =
        Table::new(&["Graph", "full APGRE", "γ-only", "partial-only", "neither", "serial Brandes"]);
    for name in ["email-euall-like", "youtube-like", "notredame-like", "usa-road-bay-like"] {
        let g = apgre_workloads::get(name).unwrap().graph(opts.scale);
        let (reference, serial_t) = time(|| apgre_bc::brandes::bc_serial(&g));

        let run_variant = |merge_all: bool, unfold: bool| -> f64 {
            let popts = PartitionOptions { merge_all, ..Default::default() };
            let mut d = decompose(&g, &popts);
            if unfold {
                d.unfold_whiskers();
            }
            let ((scores, _), dt) =
                time(|| apgre_bc::apgre::bc_from_decomposition(&g, &d, &ApgreOptions::default()));
            let err =
                scores.iter().zip(&reference).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
            assert!(
                err < 1e-5 * (1.0 + reference.iter().cloned().fold(0.0, f64::max)),
                "{name}: err {err}"
            );
            dt.as_secs_f64()
        };
        let full = run_variant(false, false);
        let gamma_only = run_variant(true, false);
        let partial_only = run_variant(false, true);
        let neither = run_variant(true, true);
        t.row(vec![
            name.into(),
            fmt_secs(full),
            fmt_secs(gamma_only),
            fmt_secs(partial_only),
            fmt_secs(neither),
            fmt_secs(serial_t.as_secs_f64()),
        ]);
        rows.push(json!({"graph": name, "full_s": full, "gamma_only_s": gamma_only,
            "partial_only_s": partial_only, "neither_s": neither,
            "serial_s": serial_t.as_secs_f64()}));
    }
    print!("{}", t.render());
    println!("\n(all four variants verified exact against serial Brandes)");
    json.insert("ablation_gamma".into(), json!(rows));
}

// --------------------------------------------------------------- bench-pr2

/// The legacy fixed-threshold driver, reproduced byte for byte from the
/// pre-kernel-policy `bc_from_decomposition`: a fresh score vector and a
/// fresh kernel workspace per sub-graph (no pooling), level-sync for
/// sub-graphs of ≥ 4096 vertices, sequential otherwise, collect-then-sort
/// merge. This is the `inner_parallel_min_vertices: 4096` baseline the
/// kernel-policy acceptance criterion is measured against.
fn legacy_driver(g: &apgre_graph::Graph, d: &apgre_decomp::Decomposition) -> Vec<f64> {
    use apgre_bc::apgre::kernel::{bc_in_subgraph_level_sync, bc_in_subgraph_seq};
    use rayon::prelude::*;
    let mut order: Vec<usize> = (0..d.subgraphs.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(d.subgraphs[i].num_vertices()));
    let run_one = |&i: &usize| {
        let sg = &d.subgraphs[i];
        let mut local = vec![0.0f64; sg.num_vertices()];
        if sg.num_vertices() >= 4096 {
            bc_in_subgraph_level_sync(sg, &mut local, 256);
        } else {
            bc_in_subgraph_seq(sg, &mut local);
        }
        (i, local)
    };
    let mut results: Vec<(usize, Vec<f64>)> = order.par_iter().map(run_one).collect();
    results.sort_by_key(|&(i, _)| i);
    let mut bc = vec![0.0f64; g.num_vertices()];
    for (i, local) in &results {
        let sg = &d.subgraphs[*i];
        for (l, &score) in local.iter().enumerate() {
            bc[sg.globals[l] as usize] += score;
        }
    }
    bc
}

/// PR-2 acceptance benchmark: `KernelPolicy::Auto` with pooled workspaces
/// against the legacy fixed-threshold driver, plus per-kernel wall time and
/// MTEPS for each forced policy, all on a whiskered-community graph of
/// ≥ 50k vertices inside a ≥ 4-worker pool. Every variant is cross-checked
/// against the others before any time is reported.
fn bench_pr2(opts: &Opts, json: &mut serde_json::Map<String, serde_json::Value>) {
    use apgre_bench::{mteps, observed_parallelism};
    let threads = opts.threads.unwrap_or(4).max(4);
    println!("\n=== bench-pr2: kernel policy vs legacy fixed-threshold driver ===\n");
    // Detect whether the linked rayon actually spreads work over OS threads:
    // under the offline stand-in (or a 1-CPU box) the record must say so up
    // front, because a "speedup" then measures eliminated atomics and
    // allocation churn, not parallel scaling.
    let observed_threads = observed_parallelism(threads);
    let parallel_execution = observed_threads > 1;
    let measurement_mode = if parallel_execution {
        "parallel-rayon"
    } else {
        "sequential-standin (rayon runs inline on one thread; NOT a parallel-speedup measurement)"
    };
    println!("execution: {observed_threads}/{threads} distinct worker threads observed");
    let g = apgre_graph::generators::whiskered_community(
        &apgre_graph::generators::WhiskeredCommunityParams {
            core_vertices: 6000,
            core_attach: 3,
            community_count: 220,
            community_size: 40,
            community_density: 1.8,
            whiskers: 36_000,
            seed: 4242,
        },
    );
    assert!(g.num_vertices() >= 50_000, "acceptance graph too small: {}", g.num_vertices());
    println!(
        "whiskered-community: {} vertices, {} edges, pool of {threads} workers",
        g.num_vertices(),
        g.num_edges()
    );

    let (d, decomp_t) = time(|| decompose(&g, &PartitionOptions::default()));
    println!(
        "decomposition: {} sub-graphs, top {} vertices, {}",
        d.num_subgraphs(),
        d.subgraphs_by_size().first().map_or(0, |sg| sg.num_vertices()),
        fmt_secs(decomp_t.as_secs_f64())
    );

    // End-to-end = shared decomposition + the measured BC driver; two
    // repetitions each, best time kept (the container has no turbo/cold-start
    // effects beyond allocator warm-up, which rep 1 absorbs).
    let best = |f: &(dyn Fn() -> Vec<f64> + Sync)| -> (Vec<f64>, f64) {
        let (scores, t1) = with_threads(threads, || time(f));
        let (_, t2) = with_threads(threads, || time(f));
        (scores, decomp_t.as_secs_f64() + t1.as_secs_f64().min(t2.as_secs_f64()))
    };

    let (legacy_scores, legacy_s) = best(&|| legacy_driver(&g, &d));
    let run_policy = |kernel: apgre_bc::apgre::KernelPolicy| {
        let bopts = ApgreOptions { kernel, ..Default::default() };
        apgre_bc::apgre::bc_from_decomposition(&g, &d, &bopts).0
    };
    use apgre_bc::apgre::KernelPolicy;
    let (auto_scores, auto_s) = best(&|| run_policy(KernelPolicy::Auto));
    let (_, report) = with_threads(threads, || {
        apgre_bc::apgre::bc_from_decomposition(&g, &d, &ApgreOptions::default())
    });

    let nv = g.num_vertices();
    let ne = g.num_edges();
    let secs = |s: f64| std::time::Duration::from_secs_f64(s);
    let mut t = Table::new(&["driver", "end-to-end", "MTEPS", "max |Δ| vs legacy"]);
    let diff = |a: &[f64], b: &[f64]| -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0f64, f64::max)
    };
    let scale = 1.0 + legacy_scores.iter().cloned().fold(0.0f64, f64::max);
    let mut kernel_rows = Vec::new();
    t.row(vec![
        "legacy (threshold 4096)".into(),
        fmt_secs(legacy_s),
        format!("{:.1}", mteps(nv, ne, secs(legacy_s))),
        "-".into(),
    ]);
    t.row(vec![
        "KernelPolicy::Auto (pooled)".into(),
        fmt_secs(auto_s),
        format!("{:.1}", mteps(nv, ne, secs(auto_s))),
        format!("{:.1e}", diff(&auto_scores, &legacy_scores)),
    ]);
    assert!(diff(&auto_scores, &legacy_scores) < 1e-6 * scale, "auto diverged from legacy");
    for (name, kernel) in [
        ("APGRE-seq", KernelPolicy::Seq),
        ("APGRE-rootpar", KernelPolicy::RootParallel),
        ("APGRE-levelsync", KernelPolicy::LevelSync),
    ] {
        let (scores, dt) = with_threads(threads, || time(|| run_policy(kernel)));
        let err = diff(&scores, &legacy_scores);
        assert!(err < 1e-6 * scale, "{name} diverged from legacy: {err}");
        let e2e = decomp_t.as_secs_f64() + dt.as_secs_f64();
        t.row(vec![
            name.into(),
            fmt_secs(e2e),
            format!("{:.1}", mteps(nv, ne, secs(e2e))),
            format!("{err:.1e}"),
        ]);
        kernel_rows.push(json!({
            "kernel": name, "seconds": e2e, "mteps": mteps(nv, ne, secs(e2e)),
            "max_abs_diff_vs_legacy": err,
        }));
    }
    print!("{}", t.render());

    let speedup = legacy_s / auto_s;
    let (seq_n, rootpar_n, levelsync_n) = report.kernel_counts;
    println!(
        "\nAuto dispatch: {seq_n} seq, {rootpar_n} root-parallel, {levelsync_n} level-sync \
         (top sub-graph: {})",
        report.top_subgraph_kernel.map_or("n/a".to_string(), |k| format!("{k:?}")),
    );
    println!(
        "Auto vs legacy end-to-end speedup: {speedup:.2}x (acceptance: >= 1.3x, measured {})",
        if parallel_execution { "with parallel rayon" } else { "on the sequential stand-in" }
    );

    json.insert(
        "bench_pr2".into(),
        json!({
            "measurement_mode": measurement_mode,
            "execution": {
                "configured_threads": threads,
                "observed_worker_threads": observed_threads,
                "parallel": parallel_execution,
            },
            "graph": {
                "family": "whiskered-community", "seed": 4242,
                "vertices": nv, "edges": ne,
                "subgraphs": d.num_subgraphs(),
                "top_subgraph_vertices":
                    d.subgraphs_by_size().first().map_or(0, |sg| sg.num_vertices()),
            },
            "threads": threads,
            "decompose_seconds": decomp_t.as_secs_f64(),
            "legacy_threshold_4096": {
                "seconds": legacy_s, "mteps": mteps(nv, ne, secs(legacy_s)),
            },
            "auto_pooled": {
                "seconds": auto_s, "mteps": mteps(nv, ne, secs(auto_s)),
                "kernel_counts": {
                    "seq": seq_n, "root_parallel": rootpar_n, "level_sync": levelsync_n,
                },
            },
            "kernels": kernel_rows,
            "speedup_auto_vs_legacy": speedup,
            "acceptance": {
                "required": 1.3,
                "measured": speedup,
                "pass": speedup >= 1.3,
                "measured_with": measurement_mode,
                "parallel_rayon": parallel_execution,
            },
            "notes": [
                "End-to-end = shared decomposition time + BC driver; best of 2 reps.",
                if parallel_execution {
                    "Measured with upstream rayon spreading work across OS \
                     threads; the speedup includes parallel scaling."
                } else {
                    "Measured on the vendored sequential rayon stand-in (thread \
                     counts are faithfully reported, so the Auto heuristic sees \
                     the configured pool size, but all work runs on one thread); \
                     the speedup quantifies eliminated per-access atomic \
                     round-trips, per-sub-graph allocation churn, and per-level \
                     frontier allocations — NOT parallel scaling. CI's \
                     bench-smoke job reproduces the record with real rayon."
                },
                "All variants cross-verified within 1e-6 relative; exactness vs \
                 serial Brandes is pinned separately by the equivalence suites \
                 (a 50k-vertex Brandes run is too slow to repeat here).",
            ],
        }),
    );
}

// --------------------------------------------------------------- bench-pr3

/// PR-3 acceptance benchmark: incremental [`DynamicBc`] updates against full
/// from-scratch recomputation on the 50k-vertex whiskered-community graph.
///
/// The edit stream alternately adds and removes one chord inside a single
/// non-top community sub-graph — the *local* classification the dirty-tracker
/// is built for — and the acceptance criterion is a ≥ 5× mean speedup of the
/// per-batch apply over a full decompose + BC recompute. One structural batch
/// (a bridge between two communities) is timed alongside for contrast, and
/// the engine's final scores are cross-checked against a from-scratch APGRE
/// run before any number is reported.
fn bench_pr3(opts: &Opts, json: &mut serde_json::Map<String, serde_json::Value>) {
    use apgre_bench::observed_parallelism;
    use apgre_dynamic::{BatchClass, DynamicBc, MutationBatch};
    let threads = opts.threads.unwrap_or(4).max(4);
    println!("\n=== bench-pr3: incremental DynamicBc vs full recompute ===\n");
    let observed_threads = observed_parallelism(threads);
    let parallel_execution = observed_threads > 1;
    let measurement_mode = if parallel_execution {
        "parallel-rayon"
    } else {
        "sequential-standin (rayon runs inline on one thread; NOT a parallel-speedup measurement)"
    };
    println!("execution: {observed_threads}/{threads} distinct worker threads observed");
    let g = apgre_graph::generators::whiskered_community(
        &apgre_graph::generators::WhiskeredCommunityParams {
            core_vertices: 6000,
            core_attach: 3,
            community_count: 220,
            community_size: 40,
            community_density: 1.8,
            whiskers: 36_000,
            seed: 4242,
        },
    );
    assert!(g.num_vertices() >= 50_000, "acceptance graph too small: {}", g.num_vertices());
    println!(
        "whiskered-community: {} vertices, {} edges, pool of {threads} workers",
        g.num_vertices(),
        g.num_edges()
    );

    let bopts = ApgreOptions::default();

    // Baseline: what every batch would cost without the dirty-tracker — a
    // full decomposition plus a full batch-driver BC pass. Best of 2 reps.
    let full = || {
        let d = decompose(&g, &PartitionOptions::default());
        apgre_bc::apgre::bc_from_decomposition(&g, &d, &bopts).0
    };
    let (_, full_t1) = with_threads(threads, || time(full));
    let (_, full_t2) = with_threads(threads, || time(full));
    let full_s = full_t1.as_secs_f64().min(full_t2.as_secs_f64());
    println!("full recompute (decompose + BC, best of 2): {}", fmt_secs(full_s));

    let (mut engine, seed_t) = with_threads(threads, || time(|| DynamicBc::new(&g, bopts.clone())));
    let d = engine.decomposition();
    println!(
        "engine seeded in {} ({} sub-graphs, top {} vertices)",
        fmt_secs(seed_t.as_secs_f64()),
        d.num_subgraphs(),
        d.subgraphs_by_size().first().map_or(0, |sg| sg.num_vertices()),
    );

    // Pick a chord (two interior, non-adjacent vertices) inside one non-top
    // community sub-graph, plus an interior vertex of a *different* sub-graph
    // for the structural bridge batch.
    let top_index = (0..d.subgraphs.len())
        .max_by_key(|&i| d.subgraphs[i].num_vertices())
        .expect("non-empty decomposition");
    let interior_pair = |si: usize| -> Option<(u32, u32)> {
        let sg = &d.subgraphs[si];
        let interior: Vec<u32> = (0..sg.num_vertices() as u32)
            .filter(|&l| !sg.is_boundary[l as usize] && !sg.is_whisker[l as usize])
            .collect();
        for (a, &lu) in interior.iter().enumerate() {
            for &lv in &interior[a + 1..] {
                if !sg.graph.out_neighbors(lu).contains(&lv) {
                    return Some((sg.globals[lu as usize], sg.globals[lv as usize]));
                }
            }
        }
        None
    };
    let (chord_sg, (cu, cv)) = (0..d.subgraphs.len())
        .filter(|&i| i != top_index && d.subgraphs[i].num_vertices() >= 10)
        .find_map(|i| interior_pair(i).map(|p| (i, p)))
        .expect("no community sub-graph with an interior chord");
    let (_, (bu, bv)) = (0..d.subgraphs.len())
        .filter(|&i| i != top_index && i != chord_sg && d.subgraphs[i].num_vertices() >= 10)
        .find_map(|i| interior_pair(i).map(|p| (i, p)))
        .map(|(i, (w, _))| (i, (cu, w)))
        .expect("no second community sub-graph for the structural bridge");
    println!(
        "local chord: {cu} -- {cv} inside sub-graph {chord_sg} \
         ({} vertices); structural bridge: {bu} -- {bv}",
        d.subgraphs[chord_sg].num_vertices()
    );

    // ~20 alternating add/remove batches of the same chord: every one must
    // classify Local and touch exactly one dirty sub-graph.
    const LOCAL_BATCHES: usize = 20;
    let mut local_times = Vec::with_capacity(LOCAL_BATCHES);
    let mut dirty_max = 0usize;
    let mut reused_min = usize::MAX;
    with_threads(threads, || {
        for k in 0..LOCAL_BATCHES {
            let batch = if k % 2 == 0 {
                MutationBatch::new().add_edge(cu, cv)
            } else {
                MutationBatch::new().remove_edge(cu, cv)
            };
            let report = engine.apply(&batch);
            assert_eq!(
                report.class,
                BatchClass::Local,
                "batch {k} was not local: {}",
                report.reason
            );
            local_times.push(report.wall_clock.as_secs_f64());
            dirty_max = dirty_max.max(report.dirty_subgraphs);
            reused_min = reused_min.min(report.reused_contributions);
        }
    });
    let local_mean = local_times.iter().sum::<f64>() / local_times.len() as f64;
    let local_max = local_times.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{LOCAL_BATCHES} local batches: mean {} / max {} per apply \
         ({dirty_max} dirty sub-graph(s), >= {reused_min} contributions reused)",
        fmt_secs(local_mean),
        fmt_secs(local_max)
    );

    // One structural batch for contrast: a bridge between two communities
    // forces a re-decomposition with fingerprint carry-forward.
    let structural_report =
        with_threads(threads, || engine.apply(&MutationBatch::new().add_edge(bu, bv)));
    assert_eq!(
        structural_report.class,
        BatchClass::Structural,
        "bridge batch was not structural: {}",
        structural_report.reason
    );
    let structural_s = structural_report.wall_clock.as_secs_f64();
    println!(
        "1 structural batch (bridge): {} ({} of {} contributions reused)",
        fmt_secs(structural_s),
        structural_report.reused_contributions,
        structural_report.total_subgraphs
    );

    // Cross-check before reporting any time: the maintained scores must match
    // a from-scratch APGRE run on the final graph.
    let current = engine.current_graph();
    let (scratch, _) = with_threads(threads, || bc_apgre_with(&current, &bopts));
    let scale = 1.0 + scratch.iter().cloned().fold(0.0f64, f64::max);
    let max_diff =
        engine.scores().iter().zip(&scratch).map(|(x, y)| (x - y).abs()).fold(0.0f64, f64::max);
    assert!(max_diff <= 1e-9 * scale, "incremental diverged from scratch: max |Δ| = {max_diff:e}");
    println!("cross-check vs from-scratch APGRE: max |Δ| = {max_diff:.1e}");

    let speedup = full_s / local_mean;
    println!(
        "incremental local apply vs full recompute: {speedup:.1}x \
         (acceptance: >= 5x, measured {})",
        if parallel_execution { "with parallel rayon" } else { "on the sequential stand-in" }
    );

    json.insert(
        "bench_pr3".into(),
        json!({
            "measurement_mode": measurement_mode,
            "execution": {
                "configured_threads": threads,
                "observed_worker_threads": observed_threads,
                "parallel": parallel_execution,
            },
            "graph": {
                "family": "whiskered-community", "seed": 4242,
                "vertices": g.num_vertices(), "edges": g.num_edges(),
                "subgraphs": engine.decomposition().num_subgraphs(),
            },
            "threads": threads,
            "full_recompute_seconds": full_s,
            "engine_seed_seconds": seed_t.as_secs_f64(),
            "local_batches": {
                "count": LOCAL_BATCHES,
                "mean_apply_seconds": local_mean,
                "max_apply_seconds": local_max,
                "dirty_subgraphs_max": dirty_max,
                "reused_contributions_min": reused_min,
            },
            "structural_batch": {
                "apply_seconds": structural_s,
                "reused_contributions": structural_report.reused_contributions,
                "total_subgraphs": structural_report.total_subgraphs,
            },
            "max_abs_diff_vs_scratch": max_diff,
            "speedup_local_vs_full": speedup,
            "acceptance": {
                "required": 5.0,
                "measured": speedup,
                "pass": speedup >= 5.0,
                "measured_with": measurement_mode,
                "parallel_rayon": parallel_execution,
            },
            "notes": [
                "Speedup = (full decompose + BC recompute, best of 2) / mean \
                 per-batch apply over 20 alternating add/remove chord batches \
                 inside one community sub-graph (all classified Local).",
                "A local apply revalidates and re-runs only the dirty \
                 sub-graph's kernel, then refolds the per-sub-graph \
                 contributions; the structural batch shows the fingerprint \
                 carry-forward fallback cost for contrast.",
                "Scores are cross-checked against a from-scratch APGRE run \
                 before any time is reported (1e-9 relative).",
            ],
        }),
    );
}

// --------------------------------------------------------------- bench-pr7

/// PR-7 acceptance benchmark: incremental block-cut-tree maintenance (the
/// region-splice path) against the forced full-rebuild arm on *structural*
/// edit batches.
///
/// The edit stream toggles bridges between whisker-tip siblings — two
/// degree-1 vertices hanging off the same non-top host — so every batch
/// restructures the block-cut tree (two bridge blocks merge into a triangle
/// and back) while the affected region stays tiny and far from the big top
/// sub-graph. The old arm (`set_force_rebuild(true)`) pays a full
/// `to_graph` + `decompose` + fingerprint sweep per batch; the new arm
/// splices the region in place. Acceptance is a ≥ 5× mean speedup. A mixed
/// batch (three community chords + one sibling bridge) then demonstrates
/// per-edit splitting via the `DynamicReport` counters, and the engine's
/// final scores are cross-checked against a from-scratch APGRE run before
/// any number is reported.
fn bench_pr7(opts: &Opts, json: &mut serde_json::Map<String, serde_json::Value>) {
    use apgre_bench::observed_parallelism;
    use apgre_dynamic::{BatchClass, DynamicBc, MutationBatch};
    let threads = opts.threads.unwrap_or(4).max(4);
    println!("\n=== bench-pr7: incremental block-cut tree maintenance vs forced rebuild ===\n");
    let observed_threads = observed_parallelism(threads);
    let parallel_execution = observed_threads > 1;
    let measurement_mode = if parallel_execution {
        "parallel-rayon"
    } else {
        "sequential-standin (rayon runs inline on one thread; NOT a parallel-speedup measurement)"
    };
    println!("execution: {observed_threads}/{threads} distinct worker threads observed");
    let params = if opts.smoke {
        apgre_graph::generators::WhiskeredCommunityParams {
            core_vertices: 600,
            core_attach: 3,
            community_count: 22,
            community_size: 40,
            community_density: 1.8,
            whiskers: 3_600,
            seed: 4242,
        }
    } else {
        apgre_graph::generators::WhiskeredCommunityParams {
            core_vertices: 6000,
            core_attach: 3,
            community_count: 220,
            community_size: 40,
            community_density: 1.8,
            whiskers: 36_000,
            seed: 4242,
        }
    };
    let g = apgre_graph::generators::whiskered_community(&params);
    if !opts.smoke {
        assert!(g.num_vertices() >= 50_000, "acceptance graph too small: {}", g.num_vertices());
    }
    println!(
        "whiskered-community: {} vertices, {} edges, pool of {threads} workers{}",
        g.num_vertices(),
        g.num_edges(),
        if opts.smoke { " [smoke]" } else { "" }
    );

    let bopts = ApgreOptions::default();
    let (mut engine, seed_t) = with_threads(threads, || time(|| DynamicBc::new(&g, bopts.clone())));
    let d = engine.decomposition();
    println!(
        "engine seeded in {} ({} sub-graphs, top {} vertices)",
        fmt_secs(seed_t.as_secs_f64()),
        d.num_subgraphs(),
        d.subgraphs_by_size().first().map_or(0, |sg| sg.num_vertices()),
    );

    // ---- edit-site discovery (borrows `d`, so everything is copied out) ----
    let top_index = (0..d.subgraphs.len())
        .max_by_key(|&i| d.subgraphs[i].num_vertices())
        .expect("non-empty decomposition");
    // Vertex memberships: which sub-graph owns each vertex, and in how many
    // sub-graphs it appears (boundary vertices appear in several).
    let mut owner = vec![usize::MAX; g.num_vertices()];
    let mut appearances = vec![0u32; g.num_vertices()];
    for (i, sg) in d.subgraphs.iter().enumerate() {
        for &gv in &sg.globals {
            owner[gv as usize] = i;
            appearances[gv as usize] += 1;
        }
    }
    // Whisker-tip sibling pairs: two degree-1 vertices on the same host,
    // where the host lives in exactly one non-top sub-graph. Toggling a
    // tip--tip bridge restructures the block-cut tree (two bridge blocks
    // fuse into one triangle block and split back) without ever dirtying
    // the big top sub-graph.
    let mut tips_by_host: std::collections::BTreeMap<u32, Vec<u32>> = Default::default();
    for v in 0..g.num_vertices() as u32 {
        let nbrs = g.out_neighbors(v);
        if nbrs.len() == 1 {
            tips_by_host.entry(nbrs[0]).or_default().push(v);
        }
    }
    const WANT_PAIRS: usize = 10;
    let pairs: Vec<(u32, u32)> = tips_by_host
        .iter()
        .filter(|(h, tips)| {
            tips.len() >= 2 && appearances[**h as usize] == 1 && owner[**h as usize] != top_index
        })
        .map(|(_, tips)| (tips[0], tips[1]))
        .take(WANT_PAIRS)
        .collect();
    assert!(pairs.len() >= 4, "only {} whisker-tip sibling pairs on non-top hosts", pairs.len());
    println!(
        "{} whisker-tip sibling pairs on non-top hosts (first: {} -- {})",
        pairs.len(),
        pairs[0].0,
        pairs[0].1
    );
    // Three disjoint interior chords inside one non-top community sub-graph
    // for the mixed batch, plus the sibling bridge above.
    let chords: Vec<(u32, u32)> = (0..d.subgraphs.len())
        .filter(|&i| i != top_index && d.subgraphs[i].num_vertices() >= 16)
        .find_map(|i| {
            let sg = &d.subgraphs[i];
            let interior: Vec<u32> = (0..sg.num_vertices() as u32)
                .filter(|&l| !sg.is_boundary[l as usize] && !sg.is_whisker[l as usize])
                .collect();
            let mut used = vec![false; sg.num_vertices()];
            let mut found = Vec::new();
            for (a, &lu) in interior.iter().enumerate() {
                if used[lu as usize] {
                    continue;
                }
                for &lv in &interior[a + 1..] {
                    if !used[lv as usize] && !sg.graph.out_neighbors(lu).contains(&lv) {
                        used[lu as usize] = true;
                        used[lv as usize] = true;
                        found.push((sg.globals[lu as usize], sg.globals[lv as usize]));
                        break;
                    }
                }
                if found.len() == 3 {
                    break;
                }
            }
            (found.len() == 3).then_some(found)
        })
        .expect("no community sub-graph with three disjoint interior chords");

    let toggles = if opts.smoke { 6 } else { 20 };
    let toggle_batch = |k: usize| {
        let (u, v) = pairs[(k / 2) % pairs.len()];
        if k.is_multiple_of(2) {
            MutationBatch::new().add_edge(u, v)
        } else {
            MutationBatch::new().remove_edge(u, v)
        }
    };

    // ---- old arm: every structural batch pays a full rebuild ----
    engine.set_force_rebuild(true);
    let mut old_times = Vec::with_capacity(toggles);
    let mut rebuild_total = 0.0f64;
    with_threads(threads, || {
        for k in 0..toggles {
            let report = engine.apply(&toggle_batch(k));
            assert_eq!(
                report.class,
                BatchClass::Structural,
                "old-arm batch {k} was not structural: {}",
                report.reason
            );
            assert!(report.rebuilt, "old-arm batch {k} did not rebuild: {}", report.reason);
            old_times.push(report.wall_clock.as_secs_f64());
            rebuild_total += report.rebuild_time.as_secs_f64();
        }
    });
    let old_mean = old_times.iter().sum::<f64>() / old_times.len() as f64;
    println!(
        "{toggles} forced-rebuild batches: mean {} per apply ({} in decompose/rebuild)",
        fmt_secs(old_mean),
        fmt_secs(rebuild_total / toggles as f64)
    );

    // ---- new arm: the maintainer splices the region in place ----
    // The forced-rebuild arm left the block store stale, so the first apply
    // after switching back is a one-off recovery rebuild; absorb it with a
    // warm-up toggle pair before measuring.
    engine.set_force_rebuild(false);
    with_threads(threads, || {
        let recovery = engine.apply(&toggle_batch(0));
        assert!(recovery.rebuilt, "expected a one-off recovery rebuild, got: {}", recovery.reason);
        let warm = engine.apply(&toggle_batch(1));
        assert!(!warm.rebuilt, "warm-up batch still rebuilt: {}", warm.reason);
    });
    let mut new_times = Vec::with_capacity(toggles);
    let mut maintain_total = 0.0f64;
    let mut region_blocks_max = 0usize;
    let mut spliced_subgraphs_max = 0usize;
    with_threads(threads, || {
        for k in 0..toggles {
            let report = engine.apply(&toggle_batch(k));
            assert_eq!(
                report.class,
                BatchClass::Structural,
                "new-arm batch {k} was not structural: {}",
                report.reason
            );
            assert!(!report.rebuilt, "new-arm batch {k} fell back to a rebuild: {}", report.reason);
            new_times.push(report.wall_clock.as_secs_f64());
            maintain_total += report.maintain_time.as_secs_f64();
            region_blocks_max = region_blocks_max.max(report.region_blocks);
            spliced_subgraphs_max = spliced_subgraphs_max.max(report.subgraphs_spliced);
        }
    });
    let new_mean = new_times.iter().sum::<f64>() / new_times.len() as f64;
    println!(
        "{toggles} spliced batches: mean {} per apply ({} in maintenance, \
         region <= {region_blocks_max} block(s), <= {spliced_subgraphs_max} sub-graph(s) spliced)",
        fmt_secs(new_mean),
        fmt_secs(maintain_total / toggles as f64)
    );

    // ---- mixed batch: per-edit splitting, verified by the counters ----
    let (bu, bv) = pairs[pairs.len() - 1];
    let mut mixed = MutationBatch::new();
    for &(u, v) in &chords {
        mixed = mixed.add_edge(u, v);
    }
    mixed = mixed.add_edge(bu, bv);
    let mixed_report = with_threads(threads, || engine.apply(&mixed));
    assert_eq!(mixed_report.class, BatchClass::Structural, "{}", mixed_report.reason);
    assert!(!mixed_report.rebuilt, "mixed batch fell back to a rebuild: {}", mixed_report.reason);
    assert_eq!(mixed_report.local_edits, 3, "chord adds should patch in place");
    assert_eq!(mixed_report.structural_edits, 1, "the sibling bridge should splice");
    println!(
        "mixed batch (3 community chords + 1 sibling bridge): {} local + {} structural \
         edit(s), {} dirty sub-graph(s), spliced in {}",
        mixed_report.local_edits,
        mixed_report.structural_edits,
        mixed_report.dirty_subgraphs,
        fmt_secs(mixed_report.wall_clock.as_secs_f64())
    );
    // Revert it so the cross-check runs on a graph with a known baseline.
    let mut revert = MutationBatch::new();
    for &(u, v) in &chords {
        revert = revert.remove_edge(u, v);
    }
    revert = revert.remove_edge(bu, bv);
    let revert_report = with_threads(threads, || engine.apply(&revert));
    assert!(!revert_report.rebuilt, "revert batch rebuilt: {}", revert_report.reason);

    // Cross-check before reporting any time: the maintained scores must match
    // a from-scratch APGRE run on the final graph.
    let current = engine.current_graph();
    let (scratch, _) = with_threads(threads, || bc_apgre_with(&current, &bopts));
    let scale = 1.0 + scratch.iter().cloned().fold(0.0f64, f64::max);
    let max_diff =
        engine.scores().iter().zip(&scratch).map(|(x, y)| (x - y).abs()).fold(0.0f64, f64::max);
    assert!(max_diff <= 1e-9 * scale, "incremental diverged from scratch: max |Δ| = {max_diff:e}");
    println!("cross-check vs from-scratch APGRE: max |Δ| = {max_diff:.1e}");

    let speedup = old_mean / new_mean;
    println!(
        "structural apply, splice vs forced rebuild: {speedup:.1}x \
         (acceptance: >= 5x, measured {})",
        if parallel_execution { "with parallel rayon" } else { "on the sequential stand-in" }
    );

    json.insert(
        "bench_pr7".into(),
        json!({
            "measurement_mode": measurement_mode,
            "execution": {
                "configured_threads": threads,
                "observed_worker_threads": observed_threads,
                "parallel": parallel_execution,
            },
            "graph": {
                "family": "whiskered-community", "seed": 4242,
                "vertices": g.num_vertices(), "edges": g.num_edges(),
                "subgraphs": engine.decomposition().num_subgraphs(),
                "smoke": opts.smoke,
            },
            "threads": threads,
            "engine_seed_seconds": seed_t.as_secs_f64(),
            "forced_rebuild_batches": {
                "count": toggles,
                "mean_apply_seconds": old_mean,
                "mean_rebuild_seconds": rebuild_total / toggles as f64,
            },
            "spliced_batches": {
                "count": toggles,
                "mean_apply_seconds": new_mean,
                "mean_maintain_seconds": maintain_total / toggles as f64,
                "region_blocks_max": region_blocks_max,
                "subgraphs_spliced_max": spliced_subgraphs_max,
            },
            "mixed_batch": {
                "local_edits": mixed_report.local_edits,
                "structural_edits": mixed_report.structural_edits,
                "dirty_subgraphs": mixed_report.dirty_subgraphs,
                "apply_seconds": mixed_report.wall_clock.as_secs_f64(),
                "rebuilt": mixed_report.rebuilt,
            },
            "max_abs_diff_vs_scratch": max_diff,
            "speedup_splice_vs_rebuild": speedup,
            "acceptance": {
                "required": 5.0,
                "measured": speedup,
                "pass": speedup >= 5.0,
                "measured_with": measurement_mode,
                "parallel_rayon": parallel_execution,
            },
            "notes": [
                "Both arms apply the same whisker-tip sibling bridge toggles: \
                 every batch is Structural (the block-cut tree gains or loses \
                 a triangle block). The old arm forces the PR-3 path — \
                 to_graph + full decompose + fingerprint sweep with \
                 contribution carry-forward; the new arm splices the \
                 two-block region in place and carries contributions by index.",
                "The affected region is kept away from the top sub-graph, so \
                 kernel cost is negligible on both arms and the measured gap \
                 is the structural-path overhead the maintainer eliminates. \
                 decompose() itself is ~34 ms on this graph; the 9.3 s \
                 structural apply recorded in BENCH_PR3.json was \
                 kernel-dominated (its bridge dirtied community kernels), \
                 not decomposition-dominated.",
                "Scores are cross-checked against a from-scratch APGRE run \
                 before any time is reported (1e-9 relative).",
            ],
        }),
    );
}

// --------------------------------------------------------------- bench-pr8

/// PR-8 acceptance benchmark: copy-on-write snapshot publication against a
/// forced full materialization of the same state.
///
/// The edit stream toggles chords between interior vertices of non-top
/// community sub-graphs — the Local class, where the decomposition is
/// untouched and exactly one sub-graph's kernel reruns per batch. After
/// every batch both arms produce the reader-facing state: the forced arm
/// materializes the full graph (`current_graph()`) and clones the full
/// score vector, which is the pre-store publish cost, O(V + E) regardless
/// of batch size; the shared arm calls `snapshot()`, which hands out
/// `Arc`-shared graph chunks and score spans and only pays for what the
/// batch dirtied. Acceptance is a ≥ 5× mean speedup. The last published
/// snapshot's scores are then cross-checked **bitwise** against a
/// from-scratch APGRE run on that snapshot's own checkpointed graph, both
/// through the flat fold and the per-vertex chunk fold readers use.
fn bench_pr8(opts: &Opts, json: &mut serde_json::Map<String, serde_json::Value>) {
    use apgre_bc::apgre::KernelPolicy;
    use apgre_dynamic::{BatchClass, DynamicBc, MutationBatch};
    use std::hint::black_box;

    println!("\n=== bench-pr8: copy-on-write publish vs forced full materialization ===\n");
    // Publishing happens on the single writer thread in apgre-serve, so
    // both arms are inherently single-threaded; the sequential kernel is
    // forced so the served scores stay bitwise-reproducible from scratch.
    let measurement_mode = "single-thread-publish (both arms run on one thread, as the \
                            serve writer does; KernelPolicy::Seq pins the bitwise \
                            served-score anchor)";
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("execution: publish path is single-threaded ({cores} hardware thread(s) present)");

    let params = if opts.smoke {
        apgre_graph::generators::WhiskeredCommunityParams {
            core_vertices: 600,
            core_attach: 3,
            community_count: 24,
            community_size: 30,
            community_density: 1.8,
            whiskers: 2_000,
            seed: 4242,
        }
    } else {
        apgre_graph::generators::WhiskeredCommunityParams {
            core_vertices: 6000,
            core_attach: 3,
            community_count: 220,
            community_size: 40,
            community_density: 1.8,
            whiskers: 36_000,
            seed: 4242,
        }
    };
    let g = apgre_graph::generators::whiskered_community(&params);
    if !opts.smoke {
        assert!(g.num_vertices() >= 50_000, "acceptance graph too small: {}", g.num_vertices());
    }
    println!(
        "whiskered-community{}: {} vertices, {} edges",
        if opts.smoke { " (smoke)" } else { "" },
        g.num_vertices(),
        g.num_edges()
    );

    let bopts = ApgreOptions { kernel: KernelPolicy::Seq, ..Default::default() };
    let (mut engine, seed_t) = time(|| DynamicBc::new(&g, bopts.clone()));
    let num_subgraphs = engine.decomposition().num_subgraphs();
    println!("engine seeded in {} ({num_subgraphs} sub-graphs)", fmt_secs(seed_t.as_secs_f64()));
    // The seed publish copies everything once (nothing to share yet); take
    // it outside the measured window so every measured publish starts from
    // a clean dirty-set accounting window.
    let seed_snap = engine.snapshot();
    println!(
        "seed publish: {} score span(s) + {} graph chunk(s) copied (one-off)",
        seed_snap.publish.score_chunks_copied, seed_snap.publish.graph_chunks_copied
    );
    drop(seed_snap);

    // One chord (two interior, non-adjacent, non-whisker vertices) per
    // non-top community sub-graph: toggling it is the Local class — the
    // block-cut tree is untouched and exactly one kernel reruns.
    const WANT_CHORDS: usize = 8;
    let d = engine.decomposition();
    let top_index = (0..d.subgraphs.len())
        .max_by_key(|&i| d.subgraphs[i].num_vertices())
        .expect("non-empty decomposition");
    let mut chords: Vec<(u32, u32)> = Vec::new();
    for si in 0..d.subgraphs.len() {
        if chords.len() == WANT_CHORDS {
            break;
        }
        if si == top_index || d.subgraphs[si].num_vertices() < 10 {
            continue;
        }
        let sg = &d.subgraphs[si];
        let interior: Vec<u32> = (0..sg.num_vertices() as u32)
            .filter(|&l| !sg.is_boundary[l as usize] && !sg.is_whisker[l as usize])
            .collect();
        'outer: for (a, &lu) in interior.iter().enumerate() {
            for &lv in &interior[a + 1..] {
                if !sg.graph.out_neighbors(lu).contains(&lv) {
                    chords.push((sg.globals[lu as usize], sg.globals[lv as usize]));
                    break 'outer;
                }
            }
        }
    }
    assert!(chords.len() >= 4, "only {} community chords found", chords.len());
    println!("{} community chords (first: {} -- {})", chords.len(), chords[0].0, chords[0].1);

    // Even toggle count: every chord that was added is removed again, so
    // the final graph is the seed graph and a fresh decomposition of it is
    // the one the engine has been patching all along.
    let toggles = if opts.smoke { 6 } else { 20 };
    let mut forced_times = Vec::with_capacity(toggles);
    let mut shared_times = Vec::with_capacity(toggles);
    let mut score_copied_max = 0usize;
    let mut score_reused_min = usize::MAX;
    let mut graph_copied_max = 0usize;
    let mut last_snap = None;
    for k in 0..toggles {
        let (u, v) = chords[(k / 2) % chords.len()];
        let batch = if k.is_multiple_of(2) {
            MutationBatch::new().add_edge(u, v)
        } else {
            MutationBatch::new().remove_edge(u, v)
        };
        let report = engine.apply(&batch);
        assert_eq!(report.class, BatchClass::Local, "batch {k} not local: {}", report.reason);
        assert!(!report.rebuilt, "local batch {k} rebuilt: {}", report.reason);

        // Forced arm first (it reads but never mutates the accounting
        // window): materialize the full CSR and clone the full scores —
        // what every publish cost before the store existed.
        let ((nv, ne, ns), forced_t) = time(|| {
            let full = engine.current_graph();
            let scores = engine.scores().to_vec();
            (full.num_vertices(), full.num_edges(), black_box(scores).len())
        });
        assert_eq!((nv, ns), (g.num_vertices(), g.num_vertices()));
        black_box(ne);
        forced_times.push(forced_t.as_secs_f64());

        // Shared arm: publish through the store.
        let (snap, shared_t) = time(|| engine.snapshot());
        shared_times.push(shared_t.as_secs_f64());
        assert_eq!(
            snap.publish.score_chunks_copied, report.dirty_subgraphs,
            "publish copied spans != dirty sub-graphs on batch {k}"
        );
        assert!(
            snap.publish.graph_chunks_copied <= 2,
            "one chord toggle dirtied {} graph chunks",
            snap.publish.graph_chunks_copied
        );
        score_copied_max = score_copied_max.max(snap.publish.score_chunks_copied);
        score_reused_min = score_reused_min.min(snap.publish.score_chunks_reused);
        graph_copied_max = graph_copied_max.max(snap.publish.graph_chunks_copied);
        last_snap = Some(snap);
    }
    let forced_mean = forced_times.iter().sum::<f64>() / forced_times.len() as f64;
    let shared_mean = shared_times.iter().sum::<f64>() / shared_times.len() as f64;
    println!(
        "{toggles} local batches: forced materialization mean {} per publish, \
         CoW publish mean {} per publish",
        fmt_secs(forced_mean),
        fmt_secs(shared_mean)
    );
    println!(
        "dirty set per publish: <= {score_copied_max} score span(s) copied \
         (>= {score_reused_min} reused), <= {graph_copied_max} graph chunk(s) copied"
    );

    // Bitwise cross-check before reporting any time: the served snapshot
    // must be reproducible from scratch on its own checkpointed graph,
    // through both read paths (flat fold and per-vertex chunk fold).
    let snap = last_snap.expect("at least one publish");
    let checkpoint = snap.graph.to_graph();
    let (scratch, _) = bc_apgre_with(&checkpoint, &bopts);
    let served = snap.scores.to_vec();
    assert_eq!(served.len(), scratch.len());
    let flat_mismatches =
        served.iter().zip(&scratch).filter(|(a, b)| a.to_bits() != b.to_bits()).count();
    assert_eq!(flat_mismatches, 0, "served flat scores diverge bitwise from scratch");
    let fold_mismatches = (0..scratch.len())
        .filter(|&v| snap.scores.score(v).to_bits() != scratch[v].to_bits())
        .count();
    assert_eq!(fold_mismatches, 0, "per-vertex chunk fold diverges bitwise from scratch");
    println!(
        "bitwise cross-check vs from-scratch APGRE on the checkpointed graph: \
         {} vertices, 0 mismatches (flat and per-vertex folds)",
        scratch.len()
    );

    let speedup = forced_mean / shared_mean;
    println!("publish, CoW snapshot vs forced materialization: {speedup:.1}x (acceptance: >= 5x)");

    json.insert(
        "bench_pr8".into(),
        json!({
            "measurement_mode": measurement_mode,
            "execution": {
                "hardware_threads": cores,
                "publish_threads": 1,
                "parallel": false,
                "kernel_policy": "seq",
            },
            "graph": {
                "family": "whiskered-community", "seed": 4242,
                "vertices": g.num_vertices(), "edges": g.num_edges(),
                "subgraphs": num_subgraphs,
                "smoke": opts.smoke,
            },
            "engine_seed_seconds": seed_t.as_secs_f64(),
            "forced_materialization": {
                "count": toggles,
                "mean_publish_seconds": forced_mean,
            },
            "cow_publish": {
                "count": toggles,
                "mean_publish_seconds": shared_mean,
                "score_spans_copied_max": score_copied_max,
                "score_spans_reused_min": score_reused_min,
                "graph_chunks_copied_max": graph_copied_max,
            },
            "bitwise_served_vs_scratch": {
                "vertices": scratch.len(),
                "flat_mismatches": flat_mismatches,
                "per_vertex_fold_mismatches": fold_mismatches,
            },
            "speedup_cow_vs_forced": speedup,
            "acceptance": {
                "required": 5.0,
                "measured": speedup,
                "pass": speedup >= 5.0,
                "measured_with": measurement_mode,
            },
            "notes": [
                "Both arms publish after the same Local chord-toggle batches. \
                 The forced arm is the pre-store cost: materialize the full \
                 CSR from the overlay and clone the full score vector, \
                 O(V + E) per publish. The CoW arm calls \
                 DynamicBc::snapshot(), which shares every graph chunk and \
                 score span the batch did not touch.",
                "The copied/reused counters are asserted per publish: copied \
                 score spans == dirty sub-graphs of the batch (one per chord \
                 toggle), and at most two 1024-vertex graph chunks (the two \
                 chord endpoints).",
                "The served snapshot is cross-checked bitwise (not within a \
                 tolerance) against a from-scratch APGRE run on the \
                 snapshot's own checkpointed graph, through both the flat \
                 fold and the per-vertex chunk fold that /bc/:v serves.",
            ],
        }),
    );
}

// --------------------------------------------------------------- bench-pr9

/// PR-9 acceptance benchmark: dirty-set incremental refresh of the
/// decomposition-composed sampled estimator against the legacy from-scratch
/// `bc_approx` pivot sweep the serve tier used to pay per stale generation.
///
/// The edit stream is bench-pr8's: one chord toggle per non-top community
/// sub-graph, the Local class, dirtying exactly one sub-graph per batch.
/// After every batch the incremental arm calls
/// `DynamicBc::approx_snapshot()`, which resamples only the dirty
/// sub-graph and carries every other scaled sample span verbatim. The
/// legacy arm re-does what `apgre-serve` did before the estimator existed:
/// materialize the front graph and run `bc_approx` from scratch — at an
/// equal root-sample budget (the estimator's own seed-time total), so both
/// arms sweep the same number of sources. Acceptance is a ≥ 5× mean
/// speedup. The final incremental estimates are then cross-checked
/// **bitwise** against the from-scratch composed estimator
/// (`bc_sampled_from_decomposition`) on the engine's own decomposition —
/// the determinism contract DESIGN.md §3.12 states.
fn bench_pr9(opts: &Opts, json: &mut serde_json::Map<String, serde_json::Value>) {
    use apgre_approx::{bc_sampled_from_decomposition, SampleOptions};
    use apgre_bc::apgre::KernelPolicy;
    use apgre_bc::bc_approx;
    use apgre_dynamic::{BatchClass, DynamicBc, MutationBatch};
    use std::hint::black_box;

    println!("\n=== bench-pr9: incremental approx refresh vs from-scratch bc_approx ===\n");
    // The refresh happens on the single serve writer thread, so both arms
    // run single-threaded; the sequential kernel pins the bitwise oracle.
    let measurement_mode = "single-thread refresh (both arms run on one thread, as the serve \
                            writer does; KernelPolicy::Seq pins the bitwise estimator oracle)";
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("execution: refresh path is single-threaded ({cores} hardware thread(s) present)");

    let params = if opts.smoke {
        apgre_graph::generators::WhiskeredCommunityParams {
            core_vertices: 600,
            core_attach: 3,
            community_count: 24,
            community_size: 30,
            community_density: 1.8,
            whiskers: 2_000,
            seed: 4242,
        }
    } else {
        apgre_graph::generators::WhiskeredCommunityParams {
            core_vertices: 6000,
            core_attach: 3,
            community_count: 220,
            community_size: 40,
            community_density: 1.8,
            whiskers: 36_000,
            seed: 4242,
        }
    };
    let g = apgre_graph::generators::whiskered_community(&params);
    if !opts.smoke {
        assert!(g.num_vertices() >= 50_000, "acceptance graph too small: {}", g.num_vertices());
    }
    println!(
        "whiskered-community{}: {} vertices, {} edges",
        if opts.smoke { " (smoke)" } else { "" },
        g.num_vertices(),
        g.num_edges()
    );

    let bopts = ApgreOptions { kernel: KernelPolicy::Seq, ..Default::default() };
    let sopts = SampleOptions::uniform(8, 0xA99);
    let (mut engine, seed_t) = time(|| DynamicBc::new(&g, bopts.clone()));
    let num_subgraphs = engine.decomposition().num_subgraphs();
    println!("engine seeded in {} ({num_subgraphs} sub-graphs)", fmt_secs(seed_t.as_secs_f64()));
    engine.enable_approx(sopts.clone());
    // The seed refresh samples every sub-graph once (nothing to carry yet);
    // its total root count becomes the legacy arm's pivot budget, so both
    // arms sweep the same number of sources per answer.
    let (seed_ap, seed_refresh_t) = time(|| engine.approx_snapshot().expect("estimator enabled"));
    let budget = seed_ap.refresh.sampled_roots as usize;
    println!(
        "seed refresh: {} sub-graphs sampled, {budget} roots total, in {} (one-off)",
        seed_ap.refresh.resampled,
        fmt_secs(seed_refresh_t.as_secs_f64())
    );

    // Same chord discovery as bench-pr8: one chord between two interior,
    // non-adjacent, non-whisker vertices per non-top community sub-graph.
    const WANT_CHORDS: usize = 8;
    let d = engine.decomposition();
    let top_index = (0..d.subgraphs.len())
        .max_by_key(|&i| d.subgraphs[i].num_vertices())
        .expect("non-empty decomposition");
    let mut chords: Vec<(u32, u32)> = Vec::new();
    for si in 0..d.subgraphs.len() {
        if chords.len() == WANT_CHORDS {
            break;
        }
        if si == top_index || d.subgraphs[si].num_vertices() < 10 {
            continue;
        }
        let sg = &d.subgraphs[si];
        let interior: Vec<u32> = (0..sg.num_vertices() as u32)
            .filter(|&l| !sg.is_boundary[l as usize] && !sg.is_whisker[l as usize])
            .collect();
        'outer: for (a, &lu) in interior.iter().enumerate() {
            for &lv in &interior[a + 1..] {
                if !sg.graph.out_neighbors(lu).contains(&lv) {
                    chords.push((sg.globals[lu as usize], sg.globals[lv as usize]));
                    break 'outer;
                }
            }
        }
    }
    assert!(chords.len() >= 4, "only {} community chords found", chords.len());
    println!("{} community chords (first: {} -- {})", chords.len(), chords[0].0, chords[0].1);

    // The legacy arm's cost is O(budget × (V + E)) and independent of the
    // batch, so it is measured on the first few toggles and averaged; the
    // incremental arm is measured on every toggle.
    let toggles = if opts.smoke { 6 } else { 20 };
    let legacy_measured = if opts.smoke { 2 } else { 3 };
    let mut legacy_times = Vec::with_capacity(legacy_measured);
    let mut incr_times = Vec::with_capacity(toggles);
    let mut resampled_max = 0usize;
    let mut reused_min = usize::MAX;
    let mut last_ap = seed_ap;
    for k in 0..toggles {
        let (u, v) = chords[(k / 2) % chords.len()];
        let batch = if k.is_multiple_of(2) {
            MutationBatch::new().add_edge(u, v)
        } else {
            MutationBatch::new().remove_edge(u, v)
        };
        let report = engine.apply(&batch);
        assert_eq!(report.class, BatchClass::Local, "batch {k} not local: {}", report.reason);
        assert!(!report.rebuilt, "local batch {k} rebuilt: {}", report.reason);

        if k < legacy_measured {
            // Legacy arm: what a stale `?approx` answer cost before — build
            // the front CSR and sweep `budget` pivots over the whole graph.
            let (n, legacy_t) = time(|| {
                let full = engine.current_graph();
                black_box(bc_approx(&full, budget, sopts.seed ^ k as u64)).len()
            });
            assert_eq!(n, g.num_vertices());
            legacy_times.push(legacy_t.as_secs_f64());
        }

        // Incremental arm: resample the dirty sub-graph, carry the rest.
        let (ap, incr_t) = time(|| engine.approx_snapshot().expect("estimator enabled"));
        incr_times.push(incr_t.as_secs_f64());
        assert_eq!(
            ap.refresh.resampled, report.dirty_subgraphs,
            "refresh resampled != dirty sub-graphs on batch {k}"
        );
        resampled_max = resampled_max.max(ap.refresh.resampled);
        reused_min = reused_min.min(ap.refresh.reused);
        last_ap = ap;
    }
    let legacy_mean = legacy_times.iter().sum::<f64>() / legacy_times.len() as f64;
    let incr_mean = incr_times.iter().sum::<f64>() / incr_times.len() as f64;
    println!(
        "{toggles} local batches: from-scratch bc_approx mean {} per answer \
         (measured on {legacy_measured}), incremental refresh mean {} per publish",
        fmt_secs(legacy_mean),
        fmt_secs(incr_mean)
    );
    println!(
        "dirty set per refresh: <= {resampled_max} sub-graph(s) resampled \
         (>= {reused_min} carried)"
    );

    // Determinism cross-check before reporting any time: the incremental
    // estimates must be bitwise-reproducible by the from-scratch composed
    // estimator on the engine's own decomposition, same seed.
    let oracle = bc_sampled_from_decomposition(engine.decomposition(), &bopts, &sopts);
    let served = last_ap.estimates.to_vec();
    assert_eq!(served.len(), oracle.len());
    let mismatches = served.iter().zip(&oracle).filter(|(a, b)| a.to_bits() != b.to_bits()).count();
    assert_eq!(mismatches, 0, "incremental estimates diverge bitwise from composed oracle");
    println!(
        "bitwise cross-check vs from-scratch composed estimator: \
         {} vertices, 0 mismatches",
        oracle.len()
    );

    // Accuracy flavor (the statistical bound itself is property-tested in
    // crates/approx): mean relative error of the estimates against the
    // exact scores the engine maintains, over vertices with exact BC > 0.
    let exact = engine.scores();
    let mut rel_sum = 0.0f64;
    let mut rel_n = 0usize;
    for (e, s) in exact.iter().zip(&served) {
        if *e > 0.0 {
            rel_sum += (s - e).abs() / e;
            rel_n += 1;
        }
    }
    let mean_rel_err = rel_sum / rel_n.max(1) as f64;
    println!("estimate accuracy: mean relative error {mean_rel_err:.4} over {rel_n} vertices");

    let speedup = legacy_mean / incr_mean;
    println!(
        "approx answer, incremental refresh vs from-scratch bc_approx: \
         {speedup:.1}x (acceptance: >= 5x)"
    );

    json.insert(
        "bench_pr9".into(),
        json!({
            "measurement_mode": measurement_mode,
            "execution": {
                "hardware_threads": cores,
                "refresh_threads": 1,
                "parallel": false,
                "kernel_policy": "seq",
            },
            "graph": {
                "family": "whiskered-community", "seed": 4242,
                "vertices": g.num_vertices(), "edges": g.num_edges(),
                "subgraphs": num_subgraphs,
                "smoke": opts.smoke,
            },
            "estimator": {
                "samples_per_subgraph": 8,
                "seed": sopts.seed,
                "seed_refresh_seconds": seed_refresh_t.as_secs_f64(),
                "root_budget": budget,
            },
            "engine_seed_seconds": seed_t.as_secs_f64(),
            "from_scratch_bc_approx": {
                "count": legacy_times.len(),
                "mean_answer_seconds": legacy_mean,
                "pivots": budget,
            },
            "incremental_refresh": {
                "count": toggles,
                "mean_refresh_seconds": incr_mean,
                "subgraphs_resampled_max": resampled_max,
                "subgraphs_reused_min": reused_min,
            },
            "bitwise_vs_composed_oracle": {
                "vertices": oracle.len(),
                "mismatches": mismatches,
            },
            "mean_relative_error_vs_exact": mean_rel_err,
            "speedup_incremental_vs_scratch": speedup,
            "acceptance": {
                "required": 5.0,
                "measured": speedup,
                "pass": speedup >= 5.0,
                "measured_with": measurement_mode,
            },
            "notes": [
                "Both arms answer after the same Local chord-toggle batches \
                 at the same total root-sample budget. The legacy arm is \
                 the pre-PR-9 serve tier: materialize the front graph and \
                 run bc_approx from scratch per stale generation. The \
                 incremental arm resamples only the batch's dirty \
                 sub-graph and carries every other scaled sample span.",
                "The legacy arm's cost is batch-independent, so it is \
                 measured on the first few toggles and averaged; the \
                 incremental arm is measured on every toggle and its \
                 resampled count is asserted equal to the batch's dirty \
                 sub-graphs.",
                "The final incremental estimates are cross-checked bitwise \
                 (not within a tolerance) against \
                 bc_sampled_from_decomposition on the engine's own \
                 decomposition — the determinism contract of DESIGN.md \
                 \u{a7}3.12. The statistical error bound vs exact scores \
                 is property-tested in crates/approx.",
            ],
        }),
    );
}

// -------------------------------------------------------------- bench-pr10

/// PR-10 acceptance benchmark: variance-guided adaptive root budgets
/// against the uniform per-sub-graph cap, at **equal total root budget**.
///
/// The uniform arm is PR 9's estimator with its cap of 8; its total drawn
/// root count `B = Σ min(8, |R_i|)` becomes the adaptive arm's global
/// budget, so both arms sweep comparable source counts. On the
/// whiskered-community graph the contribution variance is skewed by
/// construction — the core sub-graph's roots differ wildly while each
/// 40-vertex community is nearly symmetric — so the allocator drains the
/// symmetric communities down to their pilot floors and pours the budget
/// into the core. Acceptance is ≥ 1.5× lower mean absolute error vs the
/// exact scores.
///
/// The second half drives ≥ 20 Local chord-toggle batches through a
/// `DynamicBc` engine with the adaptive estimator enabled and cross-checks
/// the final incremental estimates **and** standard errors bitwise against
/// the from-scratch adaptive oracle (`--features invariants` additionally
/// asserts this after every refresh inside the store itself).
fn bench_pr10(opts: &Opts, json: &mut serde_json::Map<String, serde_json::Value>) {
    use apgre_approx::{bc_sampled_with_stderr_from_decomposition, plan_adaptive, SampleOptions};
    use apgre_bc::apgre::KernelPolicy;
    use apgre_dynamic::{BatchClass, DynamicBc, MutationBatch};

    println!("\n=== bench-pr10: adaptive vs uniform sample budgets at equal root budget ===\n");
    let measurement_mode = "single-thread refresh (serve-writer shape; KernelPolicy::Seq pins \
                            the bitwise estimator oracle)";
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("execution: estimator path is single-threaded ({cores} hardware thread(s) present)");

    let params = if opts.smoke {
        apgre_graph::generators::WhiskeredCommunityParams {
            core_vertices: 600,
            core_attach: 3,
            community_count: 24,
            community_size: 30,
            community_density: 1.8,
            whiskers: 2_000,
            seed: 4242,
        }
    } else {
        apgre_graph::generators::WhiskeredCommunityParams {
            core_vertices: 6000,
            core_attach: 3,
            community_count: 220,
            community_size: 40,
            community_density: 1.8,
            whiskers: 36_000,
            seed: 4242,
        }
    };
    let g = apgre_graph::generators::whiskered_community(&params);
    if !opts.smoke {
        assert!(g.num_vertices() >= 50_000, "acceptance graph too small: {}", g.num_vertices());
    }
    println!(
        "whiskered-community{}: {} vertices, {} edges",
        if opts.smoke { " (smoke)" } else { "" },
        g.num_vertices(),
        g.num_edges()
    );

    let bopts = ApgreOptions { kernel: KernelPolicy::Seq, ..Default::default() };
    let (mut engine, seed_t) = time(|| DynamicBc::new(&g, bopts.clone()));
    let d = engine.decomposition();
    let num_subgraphs = d.num_subgraphs();
    println!("engine seeded in {} ({num_subgraphs} sub-graphs)", fmt_secs(seed_t.as_secs_f64()));

    // Equal-budget construction: the adaptive arm's global budget is
    // exactly what the uniform cap would spend.
    const UNIFORM_CAP: usize = 8;
    let seed = 0xA99u64;
    let budget: usize = d.subgraphs.iter().map(|sg| sg.roots.len().min(UNIFORM_CAP)).sum();
    let uniform = SampleOptions::uniform(UNIFORM_CAP, seed);
    let adaptive = SampleOptions::adaptive(budget, seed);
    let plan = plan_adaptive(
        d,
        &bopts,
        seed,
        budget,
        apgre_approx::DEFAULT_PILOT,
        &vec![None; num_subgraphs],
    );
    let allocated: u64 = plan.allocated();
    let k_max = plan.k.iter().copied().max().unwrap_or(0);
    println!(
        "root budget B = {budget} (uniform cap {UNIFORM_CAP}); adaptive allocates {allocated} \
         (pilot {} roots, max k_i = {k_max})",
        plan.pilot_roots
    );

    let exact = engine.scores().to_vec();
    let mae = |est: &[f64]| -> f64 {
        est.iter().zip(&exact).map(|(e, x)| (e - x).abs()).sum::<f64>() / exact.len() as f64
    };

    let ((est_u, _), t_u) = time(|| bc_sampled_with_stderr_from_decomposition(d, &bopts, &uniform));
    let ((est_a, err_a), t_a) =
        time(|| bc_sampled_with_stderr_from_decomposition(d, &bopts, &adaptive));
    let mae_u = mae(&est_u);
    let mae_a = mae(&est_a);
    let improvement = mae_u / mae_a.max(f64::MIN_POSITIVE);
    println!(
        "uniform  MAE {mae_u:.6} ({} estimator)\nadaptive MAE {mae_a:.6} ({} estimator, \
         incl. pilots)",
        fmt_secs(t_u.as_secs_f64()),
        fmt_secs(t_a.as_secs_f64())
    );
    println!("error-at-equal-budget improvement: {improvement:.2}x (acceptance: >= 1.5x)");

    // stderr sanity: how often the true error sits within two reported
    // standard errors, over vertices the estimator actually sampled
    // (stderr > 0). The binding statistical check lives in crates/approx.
    let mut covered = 0usize;
    let mut sampled = 0usize;
    for ((e, x), s) in est_a.iter().zip(&exact).zip(&err_a) {
        if *s > 0.0 {
            sampled += 1;
            if (e - x).abs() <= 2.0 * s {
                covered += 1;
            }
        }
    }
    let coverage = covered as f64 / sampled.max(1) as f64;
    println!("reported stderr: |err| <= 2se on {coverage:.3} of {sampled} sampled vertices");

    // Incremental phase: >= 20 Local chord toggles with the adaptive
    // estimator live, then a bitwise check of estimates *and* stderr
    // against the from-scratch adaptive oracle.
    const WANT_CHORDS: usize = 8;
    let top_index = (0..d.subgraphs.len())
        .max_by_key(|&i| d.subgraphs[i].num_vertices())
        .expect("non-empty decomposition");
    let mut chords: Vec<(u32, u32)> = Vec::new();
    for si in 0..d.subgraphs.len() {
        if chords.len() == WANT_CHORDS {
            break;
        }
        if si == top_index || d.subgraphs[si].num_vertices() < 10 {
            continue;
        }
        let sg = &d.subgraphs[si];
        let interior: Vec<u32> = (0..sg.num_vertices() as u32)
            .filter(|&l| !sg.is_boundary[l as usize] && !sg.is_whisker[l as usize])
            .collect();
        'outer: for (a, &lu) in interior.iter().enumerate() {
            for &lv in &interior[a + 1..] {
                if !sg.graph.out_neighbors(lu).contains(&lv) {
                    chords.push((sg.globals[lu as usize], sg.globals[lv as usize]));
                    break 'outer;
                }
            }
        }
    }
    assert!(chords.len() >= 4, "only {} community chords found", chords.len());

    engine.enable_approx(adaptive.clone());
    let (seed_ap, seed_refresh_t) = time(|| engine.approx_snapshot().expect("estimator enabled"));
    println!(
        "adaptive seed refresh: {} sub-graphs, {} sampled + {} pilot roots, in {} \
         (budget utilization {:.3})",
        seed_ap.refresh.resampled,
        seed_ap.refresh.sampled_roots,
        seed_ap.refresh.pilot_roots,
        fmt_secs(seed_refresh_t.as_secs_f64()),
        seed_ap.refresh.budget_utilization()
    );

    let toggles = if opts.smoke { 6 } else { 20 };
    let mut refresh_times = Vec::with_capacity(toggles);
    let mut resampled_max = 0usize;
    let mut last_ap = seed_ap;
    for k in 0..toggles {
        let (u, v) = chords[(k / 2) % chords.len()];
        let batch = if k.is_multiple_of(2) {
            MutationBatch::new().add_edge(u, v)
        } else {
            MutationBatch::new().remove_edge(u, v)
        };
        let report = engine.apply(&batch);
        assert_eq!(report.class, BatchClass::Local, "batch {k} not local: {}", report.reason);
        let (ap, incr_t) = time(|| engine.approx_snapshot().expect("estimator enabled"));
        refresh_times.push(incr_t.as_secs_f64());
        resampled_max = resampled_max.max(ap.refresh.resampled);
        last_ap = ap;
    }
    let refresh_mean = refresh_times.iter().sum::<f64>() / refresh_times.len() as f64;
    println!(
        "{toggles} local batches: adaptive refresh mean {} per publish \
         (<= {resampled_max} sub-graph(s) resampled per refresh)",
        fmt_secs(refresh_mean)
    );

    let (oracle_est, oracle_err) =
        bc_sampled_with_stderr_from_decomposition(engine.decomposition(), &bopts, &adaptive);
    let served = last_ap.estimates.to_vec();
    assert_eq!(served.len(), oracle_est.len());
    let est_mismatches =
        served.iter().zip(&oracle_est).filter(|(a, b)| a.to_bits() != b.to_bits()).count();
    let err_mismatches = (0..oracle_err.len())
        .filter(|&v| last_ap.stderr(v).to_bits() != oracle_err[v].to_bits())
        .count();
    assert_eq!(est_mismatches, 0, "incremental adaptive estimates diverge bitwise from oracle");
    assert_eq!(err_mismatches, 0, "incremental stderr diverges bitwise from oracle");
    println!(
        "bitwise cross-check vs from-scratch adaptive oracle after {toggles} batches: \
         {} vertices, 0 estimate / 0 stderr mismatches",
        oracle_est.len()
    );

    let pass = improvement >= 1.5;
    assert!(
        pass || opts.smoke,
        "adaptive MAE improvement {improvement:.2}x below the 1.5x acceptance bar"
    );

    json.insert(
        "bench_pr10".into(),
        json!({
            "measurement_mode": measurement_mode,
            "execution": {
                "hardware_threads": cores,
                "refresh_threads": 1,
                "parallel": false,
                "kernel_policy": "seq",
            },
            "graph": {
                "family": "whiskered-community", "seed": 4242,
                "vertices": g.num_vertices(), "edges": g.num_edges(),
                "subgraphs": num_subgraphs,
                "smoke": opts.smoke,
            },
            "budget": {
                "uniform_cap": UNIFORM_CAP,
                "total_roots": budget,
                "adaptive_allocated": allocated,
                "adaptive_pilot_roots": plan.pilot_roots,
                "adaptive_k_max": k_max,
                "seed": seed,
            },
            "error_at_equal_budget": {
                "uniform_mae": mae_u,
                "adaptive_mae": mae_a,
                "improvement": improvement,
                "uniform_estimator_seconds": t_u.as_secs_f64(),
                "adaptive_estimator_seconds": t_a.as_secs_f64(),
            },
            "stderr_two_sigma_coverage": {
                "fraction": coverage,
                "sampled_vertices": sampled,
            },
            "incremental": {
                "batches": toggles,
                "mean_refresh_seconds": refresh_mean,
                "subgraphs_resampled_max": resampled_max,
                "seed_refresh_seconds": seed_refresh_t.as_secs_f64(),
                "budget_utilization": last_ap.refresh.budget_utilization(),
                "estimate_mismatches": est_mismatches,
                "stderr_mismatches": err_mismatches,
            },
            "acceptance": {
                "required_improvement": 1.5,
                "measured_improvement": improvement,
                "bitwise_incremental": est_mismatches == 0 && err_mismatches == 0,
                "pass": pass && est_mismatches == 0 && err_mismatches == 0,
                "measured_with": measurement_mode,
            },
            "notes": [
                "Both arms spend the same total root budget B = sum over \
                 sub-graphs of min(8, |R_i|). The uniform arm is the PR 9 \
                 estimator; the adaptive arm distributes B proportionally \
                 to |R_i| * sigma_i from deterministic pilot sweeps \
                 (DESIGN.md section 3.13) and reports per-vertex standard \
                 errors from the same Welford accumulators.",
                "The incremental phase publishes after each of the Local \
                 chord-toggle batches and cross-checks the final estimates \
                 and standard errors bitwise against the from-scratch \
                 adaptive oracle; --features invariants asserts the same \
                 equality inside SampleStore::refresh after every publish.",
            ],
        }),
    );
}

// --------------------------------------------------------------- bench-pr4

/// A minimal keep-alive HTTP/1.1 client for the load generator: one
/// persistent connection, one in-flight request at a time.
struct LoadClient {
    reader: std::io::BufReader<std::net::TcpStream>,
    writer: std::net::TcpStream,
}

impl LoadClient {
    fn connect(addr: std::net::SocketAddr) -> std::io::Result<Self> {
        let stream = std::net::TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(LoadClient { reader: std::io::BufReader::new(stream), writer })
    }

    /// Sends one request and reads the full response; returns
    /// `(status, body)`.
    fn request(&mut self, method: &str, path: &str, body: &str) -> std::io::Result<(u16, String)> {
        use std::io::{BufRead, Read, Write};
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nHost: bench\r\nConnection: keep-alive\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        )?;
        self.writer.flush()?;
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        let status: u16 =
            line.split_whitespace().nth(1).and_then(|s| s.parse().ok()).ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status")
            })?;
        let mut content_length = 0usize;
        loop {
            line.clear();
            self.reader.read_line(&mut line)?;
            let trimmed = line.trim_end_matches(['\r', '\n']);
            if trimmed.is_empty() {
                break;
            }
            if let Some((name, value)) = trimmed.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().unwrap_or(0);
                }
            }
        }
        let mut buf = vec![0u8; content_length];
        self.reader.read_exact(&mut buf)?;
        Ok((status, String::from_utf8_lossy(&buf).into_owned()))
    }
}

/// Extracts the raw text of a top-level value from the service's flat JSON
/// responses (`"key":<value>` up to the next `,` or `}`).
fn flat_json_value<'a>(body: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let start = body.find(&needle)? + needle.len();
    let rest = &body[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

/// What one load-generator thread did.
struct ClientTally {
    queries: u64,
    query_latency_micros: Vec<u64>,
    mutations_accepted: u64,
    mutations_rejected: u64,
}

/// PR-4 acceptance benchmark: closed-loop load against an in-process
/// `apgre-serve` instance. Four client threads each hold one keep-alive
/// connection and issue `GET /bc/:v` queries, with every 64th request a
/// `POST /mutate` toggling a chord inside that thread's own community
/// sub-graph (the Local class the writer coalesces). After the window the
/// service is quiesced, one structural batch forces a fresh decomposition,
/// and the served scores are cross-checked **bitwise** against a
/// from-scratch APGRE run on the checkpointed graph.
fn bench_pr4(opts: &Opts, json: &mut serde_json::Map<String, serde_json::Value>) {
    use apgre_bc::apgre::KernelPolicy;
    use apgre_graph::io::read_edge_list;
    use apgre_serve::{serve, ServeConfig};
    use std::time::{Duration, Instant};

    const CLIENT_THREADS: usize = 4;
    const MUTATE_EVERY: u64 = 64;
    println!("\n=== bench-pr4: apgre-serve closed-loop load ===\n");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // The service and the load generator are plain OS threads, so the
    // vendored sequential rayon stand-in does not serialize them — but on a
    // single hardware thread "concurrency" is time slicing, and the record
    // must say which one was measured.
    let measurement_mode = if cores > 1 {
        "os-threads-parallel"
    } else {
        "os-threads-timesliced (1 hardware thread: clients, workers, and the \
         writer interleave on one core; NOT a parallel-capacity measurement)"
    };
    println!("execution: {cores} hardware thread(s) available");

    let params = if opts.smoke {
        apgre_graph::generators::WhiskeredCommunityParams {
            core_vertices: 600,
            core_attach: 3,
            community_count: 24,
            community_size: 30,
            community_density: 1.8,
            whiskers: 2_000,
            seed: 4242,
        }
    } else {
        apgre_graph::generators::WhiskeredCommunityParams {
            core_vertices: 6000,
            core_attach: 3,
            community_count: 220,
            community_size: 40,
            community_density: 1.8,
            whiskers: 36_000,
            seed: 4242,
        }
    };
    let g = apgre_graph::generators::whiskered_community(&params);
    if !opts.smoke {
        assert!(g.num_vertices() >= 50_000, "acceptance graph too small: {}", g.num_vertices());
    }
    println!(
        "whiskered-community{}: {} vertices, {} edges",
        if opts.smoke { " (smoke)" } else { "" },
        g.num_vertices(),
        g.num_edges()
    );

    // The served snapshot must be reproducible bitwise by a from-scratch run
    // on the checkpointed graph; the sequential kernel plus a final
    // structural batch (fresh decomposition, ascending-index refold) is the
    // configuration that contract is pinned for.
    let bopts = ApgreOptions { kernel: KernelPolicy::Seq, ..Default::default() };

    // One chord (two interior, non-adjacent vertices) per client thread,
    // each inside a distinct non-top community sub-graph, so concurrent
    // toggles never collide and every batch classifies Local.
    let d = decompose(&g, &bopts.partition);
    let top_index = (0..d.subgraphs.len())
        .max_by_key(|&i| d.subgraphs[i].num_vertices())
        .expect("non-empty decomposition");
    let mut chords: Vec<(u32, u32)> = Vec::new();
    for si in 0..d.subgraphs.len() {
        if chords.len() == CLIENT_THREADS {
            break;
        }
        if si == top_index || d.subgraphs[si].num_vertices() < 10 {
            continue;
        }
        let sg = &d.subgraphs[si];
        let interior: Vec<u32> = (0..sg.num_vertices() as u32)
            .filter(|&l| !sg.is_boundary[l as usize] && !sg.is_whisker[l as usize])
            .collect();
        'outer: for (a, &lu) in interior.iter().enumerate() {
            for &lv in &interior[a + 1..] {
                if !sg.graph.out_neighbors(lu).contains(&lv) {
                    chords.push((sg.globals[lu as usize], sg.globals[lv as usize]));
                    break 'outer;
                }
            }
        }
    }
    assert_eq!(chords.len(), CLIENT_THREADS, "not enough community sub-graphs with chords");
    drop(d);

    let cfg = ServeConfig {
        opts: bopts.clone(),
        queue_depth: 512,
        workers: CLIENT_THREADS,
        max_coalesce: 64,
        ..ServeConfig::default()
    };
    let (handle, boot_t) = time(|| serve(&g, cfg).expect("bind"));
    let addr = handle.local_addr();
    println!(
        "service booted (engine seeded + snapshot published) in {}",
        fmt_secs(boot_t.as_secs_f64())
    );

    let warmup = if opts.smoke { Duration::from_millis(300) } else { Duration::from_secs(1) };
    let window = if opts.smoke { Duration::from_millis(1500) } else { Duration::from_secs(8) };
    let t0 = Instant::now();
    let measure_start = t0 + warmup;
    let deadline = measure_start + window;
    let nv = g.num_vertices() as u64;

    let clients: Vec<std::thread::JoinHandle<ClientTally>> = (0..CLIENT_THREADS)
        .map(|ti| {
            let (cu, cv) = chords[ti];
            std::thread::spawn(move || {
                let mut client = LoadClient::connect(addr).expect("connect load client");
                let mut tally = ClientTally {
                    queries: 0,
                    query_latency_micros: Vec::with_capacity(1 << 16),
                    mutations_accepted: 0,
                    mutations_rejected: 0,
                };
                // Splitmix-style per-thread vertex stream, deterministic.
                let mut x = 0x9e3779b97f4a7c15u64.wrapping_mul(ti as u64 + 1);
                let mut requests = 0u64;
                let mut chord_present = false;
                loop {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let measuring = now >= measure_start;
                    requests += 1;
                    if requests.is_multiple_of(MUTATE_EVERY) {
                        let body = if chord_present {
                            format!("remove {cu} {cv}\n")
                        } else {
                            format!("add {cu} {cv}\n")
                        };
                        let (status, _) = client.request("POST", "/mutate", &body).expect("mutate");
                        match status {
                            // Only an accepted toggle changes the graph; on
                            // 429 the chord state is unchanged and the next
                            // attempt re-sends the same toggle.
                            202 => {
                                chord_present = !chord_present;
                                tally.mutations_accepted += 1;
                            }
                            429 => tally.mutations_rejected += 1,
                            other => panic!("mutate returned {other}"),
                        }
                        continue;
                    }
                    x ^= x >> 30;
                    x = x.wrapping_mul(0xbf58476d1ce4e5b9);
                    x ^= x >> 27;
                    let v = x % nv;
                    let started = Instant::now();
                    let (status, _) =
                        client.request("GET", &format!("/bc/{v}"), "").expect("query");
                    assert_eq!(status, 200, "query for vertex {v} failed");
                    if measuring {
                        tally.queries += 1;
                        tally.query_latency_micros.push(started.elapsed().as_micros() as u64);
                    }
                }
                tally
            })
        })
        .collect();

    let mut queries = 0u64;
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    for c in clients {
        let tally = c.join().expect("client thread");
        queries += tally.queries;
        accepted += tally.mutations_accepted;
        rejected += tally.mutations_rejected;
        latencies.extend(tally.query_latency_micros);
    }
    latencies.sort_unstable();
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx] as f64 / 1000.0
    };
    let (p50_ms, p90_ms, p99_ms) = (pct(0.50), pct(0.90), pct(0.99));
    let max_ms = latencies.last().copied().unwrap_or(0) as f64 / 1000.0;
    let qps = queries as f64 / window.as_secs_f64();
    println!(
        "{CLIENT_THREADS} clients x {}s window: {queries} queries ({qps:.0}/s), \
         {accepted} mutation batches accepted, {rejected} rejected (429)",
        window.as_secs_f64()
    );
    println!("query latency: p50 {p50_ms:.3}ms / p90 {p90_ms:.3}ms / p99 {p99_ms:.3}ms / max {max_ms:.3}ms");

    // ---- quiesce, force a fresh decomposition, and cross-check bitwise ----
    let mut verifier = LoadClient::connect(addr).expect("connect verifier");
    let await_generation = |client: &mut LoadClient, want: u64| {
        let patience = Instant::now() + Duration::from_secs(120);
        loop {
            let (status, body) = client.request("GET", "/stats", "").expect("stats");
            assert_eq!(status, 200);
            let generation: u64 = flat_json_value(&body, "generation")
                .and_then(|v| v.parse().ok())
                .expect("generation field");
            if generation >= want {
                return;
            }
            assert!(Instant::now() < patience, "writer never reached generation {want}");
            std::thread::sleep(Duration::from_millis(25));
        }
    };
    await_generation(&mut verifier, accepted);
    // The structural batch: a new vertex attached into one community. A
    // fresh decomposition re-derives every contribution, so the snapshot is
    // a pure function of the post-mutation graph.
    let new_vertex = g.num_vertices();
    let (status, _) = verifier
        .request("POST", "/mutate", &format!("add-vertex\nadd {new_vertex} {}\n", chords[0].0))
        .expect("structural mutate");
    assert_eq!(status, 202);
    await_generation(&mut verifier, accepted + 1);

    let (status, checkpoint) = verifier.request("POST", "/checkpoint", "").expect("checkpoint");
    assert_eq!(status, 200);
    let served_graph = read_edge_list(checkpoint.as_bytes(), false).expect("re-load checkpoint");
    assert_eq!(served_graph.num_vertices(), new_vertex + 1);
    let (scratch, _) = bc_apgre_with(&served_graph, &bopts);
    let mut sampled = 0usize;
    let mut mismatches = 0usize;
    let mut check = |v: usize| {
        let (status, body) =
            verifier.request("GET", &format!("/bc/{v}"), "").expect("verify query");
        assert_eq!(status, 200, "{body}");
        assert_eq!(flat_json_value(&body, "tier"), Some("\"exact\""));
        let got: f64 = flat_json_value(&body, "score").and_then(|s| s.parse().ok()).expect("score");
        sampled += 1;
        if got.to_bits() != scratch[v].to_bits() {
            mismatches += 1;
            eprintln!("vertex {v}: served {got:?} != scratch {:?} (bitwise)", scratch[v]);
        }
    };
    for v in (0..served_graph.num_vertices()).step_by(if opts.smoke { 17 } else { 257 }) {
        check(v);
    }
    for &(cu, cv) in &chords {
        check(cu as usize);
        check(cv as usize);
    }
    check(new_vertex);
    assert_eq!(mismatches, 0, "served scores diverged from scratch recompute");
    println!("bitwise cross-check vs from-scratch APGRE on the checkpointed graph: {sampled} vertices, 0 mismatches");

    let (status, _) = verifier.request("POST", "/shutdown", "").expect("shutdown");
    assert_eq!(status, 200);
    handle.wait();

    let required_qps = 5000.0;
    let required_p99_ms = 10.0;
    let pass = qps >= required_qps && p99_ms < required_p99_ms;
    println!(
        "acceptance: >= {required_qps:.0} queries/s with p99 < {required_p99_ms:.0}ms under \
         concurrent mutation batches — measured {qps:.0}/s, p99 {p99_ms:.3}ms ({}, {})",
        if pass { "PASS" } else { "FAIL" },
        measurement_mode
    );

    json.insert(
        "bench_pr4".into(),
        json!({
            "measurement_mode": measurement_mode,
            "execution": {
                "client_threads": CLIENT_THREADS,
                "server_workers": CLIENT_THREADS,
                "available_parallelism": cores,
                "smoke": opts.smoke,
            },
            "graph": {
                "family": "whiskered-community", "seed": 4242,
                "vertices": g.num_vertices(), "edges": g.num_edges(),
            },
            "service": {
                "kernel_policy": "seq",
                "queue_depth": 512,
                "max_coalesce": 64,
                "boot_seconds": boot_t.as_secs_f64(),
            },
            "window_seconds": window.as_secs_f64(),
            "requests": {
                "queries": queries,
                "mutation_batches_accepted": accepted,
                "mutation_batches_rejected_429": rejected,
            },
            "throughput_queries_per_second": qps,
            "query_latency_ms": {
                "p50": p50_ms, "p90": p90_ms, "p99": p99_ms, "max": max_ms,
            },
            "bitwise_check": { "sampled_vertices": sampled, "mismatches": mismatches },
            "acceptance": {
                "required_queries_per_second": required_qps,
                "required_p99_ms": required_p99_ms,
                "measured_queries_per_second": qps,
                "measured_p99_ms": p99_ms,
                "pass": pass,
                "measured_with": measurement_mode,
            },
            "notes": [
                "Closed loop: each client holds one keep-alive connection and \
                 issues the next request only after the previous response; \
                 every 64th request is a POST /mutate toggling that client's \
                 own community chord (Local class), so queries always race \
                 live writer recomputation.",
                "Latency is measured client-side around GET /bc only, \
                 excluding the warm-up period; mutations and the warm-up are \
                 excluded from throughput as well.",
                "After the window the service is quiesced, one structural \
                 batch (add-vertex + attach) forces a fresh decomposition, \
                 and every sampled served score must equal a from-scratch \
                 APGRE run on the checkpointed graph bit for bit.",
                "The service runs on plain OS threads, so the vendored \
                 sequential rayon stand-in does not serialize it; on a \
                 1-hardware-thread container the figure measures time-sliced \
                 interleaving, not parallel capacity.",
            ],
        }),
    );
}
