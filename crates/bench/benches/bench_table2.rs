//! Criterion micro-benchmark backing Table 2: every algorithm on every
//! Table-1 stand-in (tiny scale, so a full `cargo bench` stays tractable;
//! the `experiments` binary runs the full-scale version).

use apgre_bench::{run_algorithm, ALGORITHMS};
use apgre_workloads::{registry, Scale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for spec in registry() {
        let g = spec.graph(Scale::Tiny);
        for &algo in ALGORITHMS {
            group.bench_with_input(BenchmarkId::new(algo, spec.name), &g, |b, g| {
                b.iter(|| run_algorithm(algo, g))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
