//! Criterion micro-benchmark for the decomposition substrate: Algorithm 1's
//! partition and the two α/β strategies (ablation A2's micro view).

use apgre_decomp::{biconnected_components, decompose, AlphaBetaMethod, PartitionOptions};
use apgre_workloads::{get, Scale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_decomposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("decomposition");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for name in ["email-enron-like", "wikitalk-like", "usa-road-ny-like"] {
        let g = get(name).unwrap().graph(Scale::Small);
        let und = g.to_undirected();
        group.bench_with_input(BenchmarkId::new("bcc", name), &und, |b, und| {
            b.iter(|| biconnected_components(und))
        });
        group.bench_with_input(BenchmarkId::new("decompose-auto", name), &g, |b, g| {
            b.iter(|| decompose(g, &PartitionOptions::default()))
        });
        group.bench_with_input(BenchmarkId::new("decompose-bfs-ab", name), &g, |b, g| {
            b.iter(|| {
                decompose(
                    g,
                    &PartitionOptions {
                        alpha_beta: AlphaBetaMethod::BlockedBfs,
                        ..Default::default()
                    },
                )
            })
        });
    }
    // Threshold sweep on one representative graph.
    let g = get("email-enron-like").unwrap().graph(Scale::Small);
    for threshold in [1usize, 32, 1024] {
        group.bench_with_input(BenchmarkId::new("threshold", threshold), &g, |b, g| {
            b.iter(|| {
                decompose(g, &PartitionOptions { merge_threshold: threshold, ..Default::default() })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decomposition);
criterion_main!(benches);
