//! Criterion micro-benchmarks for the extension modules: weighted BC,
//! source-sampled approximation, and the memoized evolving-graph layer.

use apgre_bc::approx::bc_approx;
use apgre_bc::memo::MemoizedBc;
use apgre_bc::weighted::{bc_weighted_apgre, bc_weighted_serial};
use apgre_decomp::PartitionOptions;
use apgre_graph::WeightedGraph;
use apgre_workloads::{get, Scale};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_extensions(c: &mut Criterion) {
    let mut group = c.benchmark_group("extensions");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    let g = get("email-enron-like").unwrap().graph(Scale::Tiny);
    let wg = WeightedGraph::random_weights(g.clone(), 8, 1);
    group.bench_function("weighted-serial", |b| b.iter(|| bc_weighted_serial(&wg)));
    group.bench_function("weighted-apgre", |b| b.iter(|| bc_weighted_apgre(&wg)));
    group.bench_function("approx-10pct", |b| b.iter(|| bc_approx(&g, g.num_vertices() / 10, 3)));
    group.bench_function("memo-warm", |b| {
        let mut memo = MemoizedBc::new(PartitionOptions::default());
        let _ = memo.compute(&g);
        b.iter(|| memo.compute(&g))
    });
    group.finish();
}

criterion_group!(benches, bench_extensions);
criterion_main!(benches);
