//! Criterion micro-benchmark for the traversal substrate: sequential,
//! level-synchronous parallel, and direction-optimizing BFS.

use apgre_graph::traversal::{
    bfs_distances, hybrid_bfs_distances, parallel_bfs_distances, HybridPolicy,
};
use apgre_workloads::{get, Scale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_bfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("bfs");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for name in ["email-enron-like", "usa-road-ny-like"] {
        let g = get(name).unwrap().graph(Scale::Small);
        // Start from the highest-degree vertex so the traversal covers the
        // giant component (corner vertices of the perforated road grids can
        // be nearly isolated).
        let src = g.vertices().max_by_key(|&v| g.out_degree(v)).unwrap_or(0);
        group.bench_with_input(BenchmarkId::new("sequential", name), &g, |b, g| {
            b.iter(|| bfs_distances(g.csr(), src))
        });
        group.bench_with_input(BenchmarkId::new("parallel", name), &g, |b, g| {
            b.iter(|| parallel_bfs_distances(g.csr(), src))
        });
        group.bench_with_input(BenchmarkId::new("direction-optimizing", name), &g, |b, g| {
            b.iter(|| hybrid_bfs_distances(g.csr(), g.rev_csr(), src, HybridPolicy::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bfs);
criterion_main!(benches);
