//! Criterion micro-benchmark behind Figures 9/10: APGRE and the `succs`
//! baseline under different rayon pool sizes (on a many-core host this shows
//! the scaling curves; on a 1-core container it documents the overhead of
//! oversubscription).

use apgre_bench::{run_algorithm, with_threads};
use apgre_workloads::{get, Scale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let g = get("dblp-like").unwrap().graph(Scale::Tiny);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("apgre", threads), &g, |b, g| {
            b.iter(|| with_threads(threads, || run_algorithm("APGRE", g)))
        });
        group.bench_with_input(BenchmarkId::new("succs", threads), &g, |b, g| {
            b.iter(|| with_threads(threads, || run_algorithm("succs", g)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
