//! `bc-tool`: betweenness centrality from the command line.
//!
//! ```text
//! bc-tool <input> [options]
//! bc-tool serve --graph <input> [serve options]
//!
//! input:
//!   path to an edge-list file (# comments, "u v" per line),
//!   path to a DIMACS .gr file (detected by extension), or
//!   workload:<name>[:tiny|small|medium] for a built-in stand-in
//!
//! serve options (see `apgre-serve`; service runs until POST /shutdown):
//!   --addr <a>              bind address (default 127.0.0.1:7171; use
//!                           port 0 for an ephemeral port)
//!   --queue-depth <n>       mutation queue capacity, full => 429
//!                           (default 256)
//!   --workers <n>           request worker threads (default 4)
//!   --staleness-ms <n>      approx-tier staleness budget (default 250)
//!   --approx-samples <k>    incremental estimator root samples per
//!                           sub-graph (default 8; 0 disables the tier)
//!   --approx-budget <n>     global adaptive root budget for the
//!                           estimator: replaces the uniform per-sub-graph
//!                           cap with the variance-guided allocator and
//!                           surfaces `stderr` (default 0 = uniform mode)
//!   --approx-seed <s>       incremental estimator RNG seed (default 42)
//!   --kernel/--threshold/--grain/--directed as below
//!
//! options:
//!   --algo <serial|preds|succs|lockfree|coarse|hybrid|apgre|approx|edge>
//!                           (default apgre; approx uses --samples, edge
//!                           ranks edges instead of vertices)
//!   --directed              treat the input file as directed
//!   --top <k>               print the k highest-BC vertices (default 10)
//!   --threshold <n>         APGRE merge threshold (default 32)
//!   --kernel <p>            APGRE per-sub-graph kernel policy:
//!                           auto|seq|rootpar|levelsync (default auto)
//!   --grain <n>             APGRE scheduling grain: min roots per
//!                           root-parallel chunk / min level width before
//!                           the level-sync kernel forks (default 256)
//!   --threads <t>           rayon thread count (default: all cores)
//!   --samples <k>           pivot count for --algo approx (default n/10)
//!   --dynamic <n>           incremental mode: seed a [`DynamicBc`] engine,
//!                           apply n random single-edit batches, and print a
//!                           per-batch report line (classification, dirty
//!                           sub-graphs, reused contributions, wall-clock)
//!   --seed <s>              RNG seed for the --dynamic edit stream
//!   --stats                 print decomposition + redundancy statistics
//!   --normalize             halve scores (undirected textbook convention)
//! ```

use apgre_bc::apgre::{bc_apgre_with, ApgreOptions, KernelPolicy, DEFAULT_GRAIN};
use apgre_bc::parallel::{bc_coarse, bc_hybrid, bc_lock_free, bc_preds, bc_succs};
use apgre_bc::{brandes::bc_serial, normalize_undirected};
use apgre_decomp::{decompose, PartitionOptions};
use apgre_dynamic::{BatchClass, DynamicBc, MutationBatch};
use apgre_graph::Graph;
use apgre_workloads::Scale;
use std::process::exit;
use std::time::Instant;

struct Args {
    input: String,
    algo: String,
    directed: bool,
    top: usize,
    threshold: usize,
    kernel: KernelPolicy,
    grain: usize,
    threads: Option<usize>,
    samples: Option<usize>,
    dynamic: Option<usize>,
    seed: u64,
    stats: bool,
    normalize: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: bc-tool <edge-list|file.gr|workload:<name>[:scale]> \
         [--algo serial|preds|succs|lockfree|coarse|hybrid|apgre] [--directed] \
         [--top K] [--threshold N] [--kernel auto|seq|rootpar|levelsync] [--grain N] \
         [--threads T] [--dynamic N] [--seed S] [--stats] [--normalize]\n\
         or:    bc-tool serve --graph <input> [--addr A] [--queue-depth N] [--workers N] \
         [--staleness-ms N] [--approx-samples K] [--approx-budget N] [--approx-seed S] \
         [--kernel P] [--threshold N] [--grain N] [--directed]\n\
         workloads: {}",
        apgre_workloads::registry().iter().map(|w| w.name).collect::<Vec<_>>().join(", ")
    );
    exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        input: String::new(),
        algo: "apgre".into(),
        directed: false,
        top: 10,
        threshold: 32,
        kernel: KernelPolicy::Auto,
        grain: DEFAULT_GRAIN,
        threads: None,
        samples: None,
        dynamic: None,
        seed: 0xD1CE,
        stats: false,
        normalize: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut next_usize = |flag: &str| -> usize {
            it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("{flag} needs a number");
                usage()
            })
        };
        match a.as_str() {
            "--algo" => args.algo = it.next().unwrap_or_else(|| usage()),
            "--directed" => args.directed = true,
            "--top" => args.top = next_usize("--top"),
            "--threshold" => args.threshold = next_usize("--threshold"),
            "--kernel" => {
                args.kernel =
                    it.next().unwrap_or_else(|| usage()).parse().unwrap_or_else(|e: String| {
                        eprintln!("{e}");
                        usage()
                    })
            }
            "--grain" => args.grain = next_usize("--grain"),
            "--threads" => args.threads = Some(next_usize("--threads")),
            "--samples" => args.samples = Some(next_usize("--samples")),
            "--dynamic" => args.dynamic = Some(next_usize("--dynamic")),
            "--seed" => args.seed = next_usize("--seed") as u64,
            "--stats" => args.stats = true,
            "--normalize" => args.normalize = true,
            "--help" | "-h" => usage(),
            _ if a.starts_with("--") => {
                eprintln!("unknown option {a}");
                usage()
            }
            _ if args.input.is_empty() => args.input = a,
            _ => usage(),
        }
    }
    if args.input.is_empty() {
        usage()
    }
    args
}

fn load_graph(args: &Args) -> Graph {
    load_graph_from(&args.input, args.directed)
}

fn load_graph_from(input: &str, directed: bool) -> Graph {
    if let Some(rest) = input.strip_prefix("workload:") {
        let mut parts = rest.splitn(2, ':');
        let name = parts.next().unwrap();
        let scale = match parts.next().unwrap_or("small") {
            "tiny" => Scale::Tiny,
            "small" => Scale::Small,
            "medium" => Scale::Medium,
            other => {
                eprintln!("unknown scale {other:?} (tiny|small|medium)");
                exit(2)
            }
        };
        match apgre_workloads::get(name) {
            Some(spec) => return spec.graph(scale),
            None => {
                eprintln!("unknown workload {name:?}");
                usage()
            }
        }
    }
    let result = if input.ends_with(".gr") {
        match std::fs::File::open(input) {
            Ok(f) => apgre_graph::io::read_dimacs(f, directed),
            Err(e) => {
                eprintln!("cannot open {input}: {e}");
                exit(1)
            }
        }
    } else {
        apgre_graph::io::read_edge_list_file(input, directed)
    };
    result.unwrap_or_else(|e| {
        eprintln!("cannot parse {input}: {e}");
        exit(1)
    })
}

/// `bc-tool serve ...`: boot the query service and block until shutdown
/// (`POST /shutdown` or process signal).
fn serve_main() -> ! {
    let mut input = String::new();
    let mut cfg = apgre_serve::ServeConfig { addr: "127.0.0.1:7171".into(), ..Default::default() };
    let mut directed = false;
    let mut threshold = 32usize;
    let mut kernel = KernelPolicy::Auto;
    let mut grain = DEFAULT_GRAIN;

    let mut it = std::env::args().skip(2);
    while let Some(a) = it.next() {
        let mut next_usize = |flag: &str| -> usize {
            it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("{flag} needs a number");
                usage()
            })
        };
        match a.as_str() {
            "--graph" => input = it.next().unwrap_or_else(|| usage()),
            "--addr" => cfg.addr = it.next().unwrap_or_else(|| usage()),
            "--queue-depth" => cfg.queue_depth = next_usize("--queue-depth"),
            "--workers" => cfg.workers = next_usize("--workers"),
            "--staleness-ms" => {
                cfg.staleness_budget =
                    std::time::Duration::from_millis(next_usize("--staleness-ms") as u64)
            }
            "--approx-samples" => cfg.approx_samples = next_usize("--approx-samples"),
            "--approx-budget" => cfg.approx_budget = next_usize("--approx-budget"),
            "--approx-seed" => cfg.approx_seed = next_usize("--approx-seed") as u64,
            "--threshold" => threshold = next_usize("--threshold"),
            "--grain" => grain = next_usize("--grain"),
            "--kernel" => {
                kernel = it.next().unwrap_or_else(|| usage()).parse().unwrap_or_else(|e: String| {
                    eprintln!("{e}");
                    usage()
                })
            }
            "--directed" => directed = true,
            "--help" | "-h" => usage(),
            _ if a.starts_with("--") => {
                eprintln!("unknown serve option {a}");
                usage()
            }
            _ if input.is_empty() => input = a,
            _ => usage(),
        }
    }
    if input.is_empty() {
        eprintln!("serve needs a graph (--graph <input>)");
        usage()
    }

    let g = load_graph_from(&input, directed);
    println!(
        "graph: {} vertices, {} edges, directed = {}",
        g.num_vertices(),
        g.num_edges(),
        g.is_directed()
    );
    cfg.opts = ApgreOptions {
        partition: PartitionOptions { merge_threshold: threshold, ..Default::default() },
        kernel,
        grain,
        ..Default::default()
    };
    let t = Instant::now();
    let handle = apgre_serve::serve(&g, cfg).unwrap_or_else(|e| {
        eprintln!("cannot start service: {e}");
        exit(1)
    });
    println!("seeded engine and published snapshot in {:.2?}", t.elapsed());
    println!("listening on http://{}", handle.local_addr());
    // The smoke test (and any supervisor) reads the line above through a
    // pipe to discover the ephemeral port; without a flush it sits in the
    // stdio buffer until exit.
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    handle.wait();
    println!("shutdown complete");
    exit(0)
}

fn main() {
    if std::env::args().nth(1).as_deref() == Some("serve") {
        serve_main();
    }
    let args = parse_args();
    if let Some(t) = args.threads {
        rayon::ThreadPoolBuilder::new().num_threads(t).build_global().unwrap_or_else(|e| {
            eprintln!("thread pool: {e}");
            exit(1)
        });
    }
    let g = load_graph(&args);
    println!(
        "graph: {} vertices, {} edges, directed = {}",
        g.num_vertices(),
        g.num_edges(),
        g.is_directed()
    );

    let partition = PartitionOptions { merge_threshold: args.threshold, ..Default::default() };
    if args.stats {
        let t = Instant::now();
        let d = decompose(&g, &partition);
        let dt = t.elapsed();
        let arts = d.is_articulation.iter().filter(|&&a| a).count();
        let whiskers: usize =
            d.subgraphs.iter().map(|sg| sg.is_whisker.iter().filter(|&&w| w).count()).sum();
        println!("decomposition ({dt:.2?}):");
        println!(
            "  {} BCCs -> {} sub-graphs, {} articulation points, {} whiskers",
            d.num_bccs,
            d.num_subgraphs(),
            arts,
            whiskers
        );
        for (rank, sg) in d.subgraphs_by_size().iter().take(3).enumerate() {
            println!(
                "  #{} sub-graph: {} vertices ({:.1}%), {} edges ({:.1}%)",
                rank + 1,
                sg.num_vertices(),
                100.0 * sg.num_vertices() as f64 / g.num_vertices() as f64,
                sg.num_edges(),
                100.0 * sg.num_edges() as f64 / g.num_edges().max(1) as f64,
            );
        }
        let r = apgre_bc::redundancy::analyze(&g, &d);
        println!(
            "  Brandes redundancy: {:.1}% partial, {:.1}% total, {:.1}% essential",
            100.0 * r.partial_fraction(),
            100.0 * r.total_fraction(),
            100.0 * r.essential_fraction()
        );
    }

    if let Some(n_batches) = args.dynamic {
        let opts = ApgreOptions {
            partition,
            kernel: args.kernel,
            grain: args.grain,
            ..Default::default()
        };
        run_dynamic(&g, n_batches, args.seed, &opts, args.top);
        return;
    }

    if args.algo == "edge" {
        rank_edges(&g, args.top);
        return;
    }
    let t = Instant::now();
    let mut scores = match args.algo.as_str() {
        "serial" => bc_serial(&g),
        "approx" => {
            let k = args.samples.unwrap_or((g.num_vertices() / 10).max(1));
            println!("approx: {k} source pivots (of {})", g.num_vertices());
            apgre_bc::approx::bc_approx(&g, k, 0xA99)
        }
        "preds" => bc_preds(&g),
        "succs" => bc_succs(&g),
        "lockfree" => bc_lock_free(&g),
        "coarse" | "async" => bc_coarse(&g),
        "hybrid" => bc_hybrid(&g),
        "apgre" => {
            let opts = ApgreOptions {
                partition: partition.clone(),
                kernel: args.kernel,
                grain: args.grain,
                ..Default::default()
            };
            let (scores, report) = bc_apgre_with(&g, &opts);
            println!(
                "apgre: partition {:.2?}, α/β {:.2?}, bc {:.2?} ({} sub-graphs, {} roots)",
                report.partition_time,
                report.alpha_beta_time,
                report.bc_time,
                report.num_subgraphs,
                report.total_roots
            );
            let (seq, rootpar, levelsync) = report.kernel_counts;
            println!(
                "apgre kernels ({:?}, grain {}): {seq} seq, {rootpar} root-parallel, \
                 {levelsync} level-sync; top sub-graph ran {} in {:.2?}",
                report.kernel_policy,
                report.grain,
                report.top_subgraph_kernel.map_or("n/a".to_string(), |k| format!("{k:?}")),
                report.top_subgraph_bc_time
            );
            scores
        }
        other => {
            eprintln!("unknown algorithm {other:?}");
            usage()
        }
    };
    let dt = t.elapsed();
    if args.normalize {
        if g.is_directed() {
            eprintln!("--normalize is for undirected graphs; ignoring");
        } else {
            normalize_undirected(&mut scores);
        }
    }
    let nm = g.num_vertices() as f64 * g.num_edges() as f64;
    println!(
        "{} finished in {dt:.2?} ({:.1} MTEPS by the paper's n·m/t metric)",
        args.algo,
        nm / dt.as_secs_f64() / 1e6
    );

    let mut ranked: Vec<(usize, f64)> = scores.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top {} vertices by betweenness:", args.top.min(ranked.len()));
    for &(v, s) in ranked.iter().take(args.top) {
        println!("  {v:>8}  {s:>16.2}");
    }
}

/// Incremental mode: seed a [`DynamicBc`] engine on the loaded graph, apply
/// `n_batches` random single-edit batches, and print one report line per
/// batch plus the final top-`top` ranking.
///
/// Uses an inline xorshift64* stream (seeded by `--seed`) so edit streams
/// are reproducible across builds regardless of which `rand` is linked.
fn run_dynamic(g: &Graph, n_batches: usize, seed: u64, opts: &ApgreOptions, top: usize) {
    let mut state = seed | 1;
    let mut next = move || -> u64 {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };

    let t = Instant::now();
    let mut engine = DynamicBc::new(g, opts.clone());
    println!(
        "dynamic: seeded engine in {:.2?} ({} sub-graphs)",
        t.elapsed(),
        engine.decomposition().num_subgraphs()
    );
    // Drain the seed publish (it copies everything once) so the accounting
    // printed after the replay covers exactly the edit stream's dirty set.
    let _ = engine.snapshot();

    let mut totals = (0usize, 0usize, 0usize); // (noop, local, structural)
    let mut spliced = 0usize;
    let mut rebuilt = 0usize;
    let mut maintain_total = std::time::Duration::ZERO;
    let mut rebuild_total = std::time::Duration::ZERO;
    for k in 0..n_batches {
        let n = engine.num_vertices() as u64;
        let batch = match next() % 100 {
            0..=54 => MutationBatch::new().add_edge((next() % n) as u32, (next() % n) as u32),
            55..=89 => {
                let cur = engine.current_graph();
                let edges: Vec<(u32, u32)> = if cur.is_directed() {
                    cur.arcs().collect()
                } else {
                    cur.undirected_edges().collect()
                };
                if edges.is_empty() {
                    MutationBatch::new().add_edge(0, (n - 1) as u32)
                } else {
                    let (u, v) = edges[(next() % edges.len() as u64) as usize];
                    MutationBatch::new().remove_edge(u, v)
                }
            }
            _ => MutationBatch::new().add_vertex().add_edge(n as u32, (next() % n) as u32),
        };
        let report = engine.apply(&batch);
        match report.class {
            BatchClass::Noop => totals.0 += 1,
            BatchClass::Local => totals.1 += 1,
            BatchClass::Structural => totals.2 += 1,
        }
        maintain_total += report.maintain_time;
        rebuild_total += report.rebuild_time;
        let path = if report.rebuilt {
            rebuilt += 1;
            " rebuild"
        } else if report.class == BatchClass::Structural {
            spliced += 1;
            " splice"
        } else {
            ""
        };
        println!(
            "  batch {k:>4}: {:<10} {:>3} dirty, {:>4} reused of {:>4} sub-graphs, \
             {} local / {} structural edits, {} region blocks, {} split, \
             {} applied, {} no-op, {:>10.2?}  [{}{}]",
            format!("{:?}", report.class),
            report.dirty_subgraphs,
            report.reused_contributions,
            report.total_subgraphs,
            report.local_edits,
            report.structural_edits,
            report.region_blocks,
            report.subgraphs_split,
            report.applied_mutations,
            report.noop_mutations,
            report.wall_clock,
            report.reason,
            path,
        );
    }
    println!(
        "dynamic: {n_batches} batches in {:.2?} ({} noop, {} local, {} structural: \
         {spliced} spliced + {rebuilt} rebuilt; decomp maintain {:.2?}, rebuild {:.2?})",
        t.elapsed(),
        totals.0,
        totals.1,
        totals.2,
        maintain_total,
        rebuild_total,
    );
    let snap = engine.snapshot();
    println!(
        "publish: {} score span(s) copied / {} shared, {} graph chunk(s) copied / {} shared \
         (snapshot cost tracks the dirty set; DESIGN.md \u{a7}3.11)",
        snap.publish.score_chunks_copied,
        snap.publish.score_chunks_reused,
        snap.publish.graph_chunks_copied,
        snap.publish.graph_chunks_reused,
    );

    let mut ranked: Vec<(usize, f64)> = engine.scores().iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top {} vertices by betweenness (after edits):", top.min(ranked.len()));
    for &(v, s) in ranked.iter().take(top) {
        println!("  {v:>8}  {s:>16.2}");
    }
}

fn rank_edges(g: &apgre_graph::Graph, top: usize) {
    let t = Instant::now();
    let scores = apgre_bc::edge::edge_bc(g);
    println!("edge betweenness finished in {:.2?}", t.elapsed());
    if g.is_directed() {
        let csr = g.csr();
        let mut ranked: Vec<((u32, u32), f64)> = csr.edges().zip(scores.iter().copied()).collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
        println!("top {} arcs by betweenness:", top.min(ranked.len()));
        for ((u, v), s) in ranked.into_iter().take(top) {
            println!("  {u:>7} -> {v:<7} {s:>14.2}");
        }
    } else {
        let mut ranked = apgre_bc::edge::undirected_edge_scores(g, &scores);
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
        println!("top {} edges by betweenness:", top.min(ranked.len()));
        for ((u, v), s) in ranked.into_iter().take(top) {
            println!("  {u:>7} -- {v:<7} {s:>14.2}");
        }
    }
}
