//! End-to-end tests of the `bc-tool` binary.

use std::process::Command;

fn bc_tool() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bc-tool"))
}

#[test]
fn runs_on_builtin_workload_with_stats() {
    let out = bc_tool()
        .args(["workload:usa-road-ny-like:tiny", "--stats", "--top", "3"])
        .output()
        .expect("spawn bc-tool");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("decomposition"));
    assert!(stdout.contains("Brandes redundancy"));
    assert!(stdout.contains("top 3 vertices"));
}

#[test]
fn serial_and_apgre_agree_on_top_vertex() {
    let top1 = |algo: &str| -> String {
        let out = bc_tool()
            .args(["workload:email-enron-like:tiny", "--algo", algo, "--top", "1"])
            .output()
            .expect("spawn");
        assert!(out.status.success(), "{algo}: {}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8_lossy(&out.stdout).lines().last().unwrap_or_default().to_string()
    };
    assert_eq!(top1("serial"), top1("apgre"));
}

#[test]
fn reads_edge_list_file() {
    let dir = std::env::temp_dir().join("apgre-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tiny.txt");
    std::fs::write(&path, "# tiny\n0 1\n1 2\n2 3\n").unwrap();
    let out = bc_tool().args([path.to_str().unwrap(), "--algo", "serial"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("4 vertices"), "{stdout}");
}

#[test]
fn edge_mode_ranks_edges() {
    let out = bc_tool()
        .args(["workload:dblp-like:tiny", "--algo", "edge", "--top", "2"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("top 2 arcs") || stdout.contains("top 2 edges"), "{stdout}");
}

#[test]
fn dynamic_mode_reports_batches() {
    let out = bc_tool()
        .args(["workload:email-enron-like:tiny", "--dynamic", "6", "--seed", "7", "--top", "3"])
        .output()
        .expect("spawn bc-tool");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("dynamic: seeded engine"), "{stdout}");
    assert_eq!(stdout.matches("batch ").count(), 6, "{stdout}");
    assert!(stdout.contains("6 batches in"), "{stdout}");
    assert!(stdout.contains("top 3 vertices by betweenness (after edits)"), "{stdout}");
}

#[test]
fn rejects_unknown_algorithm() {
    let out = bc_tool().args(["workload:dblp-like:tiny", "--algo", "bogus"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn rejects_missing_file() {
    let out = bc_tool().args(["/nonexistent/graph.txt"]).output().unwrap();
    assert!(!out.status.success());
}
