//! End-to-end tests of the `bc-tool` binary.

use std::process::Command;

fn bc_tool() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bc-tool"))
}

#[test]
fn runs_on_builtin_workload_with_stats() {
    let out = bc_tool()
        .args(["workload:usa-road-ny-like:tiny", "--stats", "--top", "3"])
        .output()
        .expect("spawn bc-tool");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("decomposition"));
    assert!(stdout.contains("Brandes redundancy"));
    assert!(stdout.contains("top 3 vertices"));
}

#[test]
fn serial_and_apgre_agree_on_top_vertex() {
    let top1 = |algo: &str| -> String {
        let out = bc_tool()
            .args(["workload:email-enron-like:tiny", "--algo", algo, "--top", "1"])
            .output()
            .expect("spawn");
        assert!(out.status.success(), "{algo}: {}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8_lossy(&out.stdout).lines().last().unwrap_or_default().to_string()
    };
    assert_eq!(top1("serial"), top1("apgre"));
}

#[test]
fn reads_edge_list_file() {
    let dir = std::env::temp_dir().join("apgre-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tiny.txt");
    std::fs::write(&path, "# tiny\n0 1\n1 2\n2 3\n").unwrap();
    let out = bc_tool().args([path.to_str().unwrap(), "--algo", "serial"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("4 vertices"), "{stdout}");
}

#[test]
fn edge_mode_ranks_edges() {
    let out = bc_tool()
        .args(["workload:dblp-like:tiny", "--algo", "edge", "--top", "2"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("top 2 arcs") || stdout.contains("top 2 edges"), "{stdout}");
}

#[test]
fn dynamic_mode_reports_batches() {
    let out = bc_tool()
        .args(["workload:email-enron-like:tiny", "--dynamic", "6", "--seed", "7", "--top", "3"])
        .output()
        .expect("spawn bc-tool");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("dynamic: seeded engine"), "{stdout}");
    assert_eq!(stdout.matches("batch ").count(), 6, "{stdout}");
    assert!(stdout.contains("6 batches in"), "{stdout}");
    assert!(stdout.contains("top 3 vertices by betweenness (after edits)"), "{stdout}");
}

#[test]
fn rejects_unknown_algorithm() {
    let out = bc_tool().args(["workload:dblp-like:tiny", "--algo", "bogus"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn rejects_missing_file() {
    let out = bc_tool().args(["/nonexistent/graph.txt"]).output().unwrap();
    assert!(!out.status.success());
}

/// Boots `bc-tool serve` on an ephemeral port, discovers the port from the
/// "listening on" stdout line, exchanges real HTTP over `TcpStream`, and
/// shuts the service down cleanly via `POST /shutdown`.
#[test]
fn serve_smoke_boot_query_shutdown() {
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::TcpStream;
    use std::process::Stdio;

    let mut child = bc_tool()
        .args([
            "serve",
            "--graph",
            "workload:email-enron-like:tiny",
            "--addr",
            "127.0.0.1:0",
            "--kernel",
            "seq",
            "--queue-depth",
            "8",
            "--workers",
            "2",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn bc-tool serve");

    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("serve exited before announcing its address")
            .expect("readable stdout");
        if let Some(rest) = line.strip_prefix("listening on http://") {
            break rest.to_owned();
        }
    };

    let exchange = |method: &str, path: &str, body: &str| -> (u16, String) {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream
            .write_all(
                format!(
                    "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
                     Content-Length: {}\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            )
            .expect("send");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("recv");
        let status = raw.split_whitespace().nth(1).expect("status").parse().expect("numeric");
        (status, raw.split_once("\r\n\r\n").map(|(_, b)| b.to_owned()).unwrap_or_default())
    };

    let (status, body) = exchange("GET", "/bc/0", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"tier\":\"exact\""), "{body}");

    let (status, body) = exchange("POST", "/mutate", "add-vertex\n");
    assert_eq!(status, 202, "{body}");

    let (status, _) = exchange("POST", "/shutdown", "");
    assert_eq!(status, 200);

    let out = child.wait_with_output().expect("service exits after /shutdown");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
}
