//! Mutation batches: the unit of change the incremental engine consumes.

use apgre_graph::VertexId;

/// One elementary change to the graph.
///
/// Semantics match [`apgre_graph::GraphOverlay`]: on undirected graphs an
/// edge mutation affects the unordered pair `{u, v}`; on directed graphs it
/// affects the arc `u -> v`. Self-loops and duplicate adds / absent removes
/// are no-ops (counted in [`crate::DynamicReport::noop_mutations`], never an
/// error). Removing a vertex strips its incident edges but keeps the id slot
/// as an isolated vertex, so vertex ids are stable across batches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Insert the edge `u - v` (arc `u -> v` when directed).
    AddEdge(VertexId, VertexId),
    /// Delete the edge `u - v` (arc `u -> v` when directed).
    RemoveEdge(VertexId, VertexId),
    /// Append a fresh isolated vertex (its id is the current vertex count).
    AddVertex,
    /// Strip every edge incident to the vertex, leaving it isolated.
    RemoveVertex(VertexId),
}

/// An ordered group of mutations applied as one unit by
/// [`crate::DynamicBc::apply`]. The batch is the granularity of
/// classification and of score refresh: scores are consistent after every
/// batch, not after every mutation.
#[derive(Clone, Debug, Default)]
pub struct MutationBatch {
    mutations: Vec<Mutation>,
}

impl MutationBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an edge insertion; returns `self` for chaining.
    pub fn add_edge(mut self, u: VertexId, v: VertexId) -> Self {
        self.mutations.push(Mutation::AddEdge(u, v));
        self
    }

    /// Records an edge deletion; returns `self` for chaining.
    pub fn remove_edge(mut self, u: VertexId, v: VertexId) -> Self {
        self.mutations.push(Mutation::RemoveEdge(u, v));
        self
    }

    /// Records a vertex insertion; returns `self` for chaining.
    pub fn add_vertex(mut self) -> Self {
        self.mutations.push(Mutation::AddVertex);
        self
    }

    /// Records a vertex removal; returns `self` for chaining.
    pub fn remove_vertex(mut self, v: VertexId) -> Self {
        self.mutations.push(Mutation::RemoveVertex(v));
        self
    }

    /// Appends a mutation in place.
    pub fn push(&mut self, m: Mutation) {
        self.mutations.push(m);
    }

    /// The recorded mutations, in application order.
    pub fn mutations(&self) -> &[Mutation] {
        &self.mutations
    }

    /// Number of recorded mutations.
    pub fn len(&self) -> usize {
        self.mutations.len()
    }

    /// Whether the batch records no mutations.
    pub fn is_empty(&self) -> bool {
        self.mutations.is_empty()
    }
}

impl From<Vec<Mutation>> for MutationBatch {
    fn from(mutations: Vec<Mutation>) -> Self {
        MutationBatch { mutations }
    }
}

impl FromIterator<Mutation> for MutationBatch {
    fn from_iter<I: IntoIterator<Item = Mutation>>(iter: I) -> Self {
        MutationBatch { mutations: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_records_in_order() {
        let b = MutationBatch::new().add_edge(0, 1).remove_edge(1, 2).add_vertex().remove_vertex(3);
        assert_eq!(b.len(), 4);
        assert!(!b.is_empty());
        assert_eq!(
            b.mutations(),
            &[
                Mutation::AddEdge(0, 1),
                Mutation::RemoveEdge(1, 2),
                Mutation::AddVertex,
                Mutation::RemoveVertex(3),
            ]
        );
    }

    #[test]
    fn from_vec_and_iter() {
        let v = vec![Mutation::AddEdge(4, 5)];
        assert_eq!(MutationBatch::from(v.clone()).mutations(), &v[..]);
        assert_eq!(v.iter().copied().collect::<MutationBatch>().mutations(), &v[..]);
    }
}
