//! The incremental engine: per-edit partitioning over a maintained
//! decomposition, dirty-sub-graph recompute, and exact contribution
//! maintenance.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use apgre_approx::{SampleOptions, SampleRefresh, SampleStore};
use apgre_bc::apgre::{ApgreReport, KernelChoice, SubgraphKernelRun};
use apgre_bc::{run_subgraph_kernels, ApgreOptions};
use apgre_decomp::{decompose, Decomposition, EdgeEdit, MaintainedDecomposition};
use apgre_graph::{Graph, GraphOverlay};
use apgre_store::{CowGraph, FoldStore, GraphView, PublishStats, ScoreChunks};

use crate::mutation::{Mutation, MutationBatch};

/// How a batch was handled (the cheap-to-expensive ladder).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchClass {
    /// Every mutation was a no-op (duplicate add, absent remove, self-loop,
    /// removal of an already-isolated vertex): nothing recomputed.
    Noop,
    /// Every effective edit was confined to existing blocks (in-place block
    /// patches): only the owning sub-graphs' kernels re-ran, indices and
    /// α/β untouched.
    Local,
    /// The block-cut tree changed shape. Either the affected region was
    /// re-decomposed and spliced in place (`rebuilt == false`) or the whole
    /// decomposition was rebuilt from scratch (`rebuilt == true`); in both
    /// cases contributions of surviving sub-graphs were carried forward.
    Structural,
}

/// Per-batch accounting returned by [`DynamicBc::apply`].
#[derive(Clone, Debug)]
pub struct DynamicReport {
    /// How the batch was classified and executed.
    pub class: BatchClass,
    /// Human-readable reason for the classification (e.g. why a batch was
    /// escalated to a full rebuild).
    pub reason: &'static str,
    /// Sub-graphs whose kernel re-ran this batch.
    pub dirty_subgraphs: usize,
    /// Sub-graphs whose stored contribution was reused unchanged.
    pub reused_contributions: usize,
    /// Mutations that changed the graph.
    pub applied_mutations: usize,
    /// Mutations that were no-ops.
    pub noop_mutations: usize,
    /// Sub-graphs in the (possibly rebuilt) decomposition after the batch.
    pub total_subgraphs: usize,
    /// Effective edge edits applied through the in-place block patch path.
    pub local_edits: usize,
    /// Effective edge edits that restructured the block-cut tree (on a full
    /// rebuild: every effective edge edit).
    pub structural_edits: usize,
    /// Sub-graphs dissolved plus created by the region splice (zero for
    /// patch-only batches and full rebuilds).
    pub subgraphs_spliced: usize,
    /// Surviving sub-graphs the splice split in place (their blocks landed
    /// in two or more new merge groups).
    pub subgraphs_split: usize,
    /// Blocks whose union formed the re-decomposed region.
    pub region_blocks: usize,
    /// Whether the batch fell back to a from-scratch re-decomposition.
    pub rebuilt: bool,
    /// Time spent in incremental decomposition maintenance.
    pub maintain_time: Duration,
    /// Time spent re-decomposing from scratch (zero unless `rebuilt`).
    pub rebuild_time: Duration,
    /// Wall clock of the whole `apply` call.
    pub wall_clock: Duration,
}

impl DynamicReport {
    fn empty(class: BatchClass, reason: &'static str) -> Self {
        DynamicReport {
            class,
            reason,
            dirty_subgraphs: 0,
            reused_contributions: 0,
            applied_mutations: 0,
            noop_mutations: 0,
            total_subgraphs: 0,
            local_edits: 0,
            structural_edits: 0,
            subgraphs_spliced: 0,
            subgraphs_split: 0,
            region_blocks: 0,
            rebuilt: false,
            maintain_time: Duration::ZERO,
            rebuild_time: Duration::ZERO,
            wall_clock: Duration::ZERO,
        }
    }
}

/// The incremental BC engine.
///
/// Holds a mutable [`GraphOverlay`], a [`MaintainedDecomposition`] (the
/// block store that lets edge edits re-decompose only the affected region),
/// one local score vector per sub-graph (a slot-stable [`FoldStore`]), and
/// the folded global score vector. After every [`apply`](DynamicBc::apply)
/// the scores equal what a from-scratch APGRE run would produce on the
/// current graph (to 1e-9 relative; bitwise for the forced-`Seq` kernel
/// against the engine's own decomposition).
///
/// Every undirected batch — including vertex additions and removals, which
/// lower to edge edits — goes through the maintainer: edits interior to one
/// block patch it in place (class [`BatchClass::Local`]), everything else
/// re-runs Tarjan on the affected blocks only and splices the result back
/// (class [`BatchClass::Structural`] with `rebuilt == false`). Sub-graphs
/// whose block set survives the splice keep their kernel contributions **by
/// index** — no fingerprint scan. The from-scratch rebuild remains only as
/// a fallback (directed graphs, batches the maintainer declines, and the
/// [`set_force_rebuild`](DynamicBc::set_force_rebuild) escape hatch), where
/// carry-forward falls back to fingerprint matching.
///
/// The global vector is always folded **from zeros in ascending sub-graph
/// index order** rather than patched by subtract-then-add, so stored and
/// folded contributions stay exactly consistent: the fold order matches the
/// batch driver's reorder-buffer merge, and no floating-point cancellation
/// error can accumulate across batches. After a maintained batch only the
/// vertices whose owning sub-graphs changed are refolded — bitwise safe
/// because every other vertex's fold input sequence is unchanged (splices
/// preserve survivors' relative order and spans).
///
/// Publishing is copy-on-write: the engine mirrors every effective edit
/// into a chunked [`CowGraph`] and keeps contributions as `Arc` spans in
/// the [`FoldStore`], so [`snapshot`](DynamicBc::snapshot) costs O(dirty
/// chunks) pointer work instead of materializing the graph and cloning the
/// score vector (DESIGN.md §3.11).
pub struct DynamicBc {
    opts: ApgreOptions,
    overlay: GraphOverlay,
    maintained: MaintainedDecomposition,
    /// Chunked copy-on-write mirror of the overlay, fed the same effective
    /// edits; snapshots share every chunk a batch did not touch.
    cow: CowGraph,
    /// One contribution span per sub-graph, same indexing as
    /// `decomposition().subgraphs`; `scores` is their Equation-8 fold.
    fold: FoldStore,
    scores: Vec<f64>,
    /// When set, every batch takes the from-scratch rebuild path (the
    /// pre-maintenance behavior; kept as a benchmark arm and escape hatch).
    force_rebuild: bool,
    /// Lifetime accounting: structure fields mirror the *current*
    /// decomposition, timing/kernel counters accumulate across the seed run
    /// and every subsequent batch (see [`DynamicBc::report`]).
    report: ApgreReport,
    /// The report of the most recent [`DynamicBc::apply`] call.
    last_batch: Option<DynamicReport>,
    /// The incremental sampled estimator, when enabled
    /// ([`DynamicBc::enable_approx`]). The engine mirrors every splice and
    /// dirty set into it per batch (cheap bookkeeping, no kernels);
    /// resampling is deferred to [`DynamicBc::approx_snapshot`].
    approx: Option<ApproxState>,
}

/// The deferred sampled-estimator state riding inside the engine.
struct ApproxState {
    store: SampleStore,
    opts: SampleOptions,
}

impl DynamicBc {
    /// Builds the engine from an initial graph: decomposes, seeds the block
    /// store, runs every sub-graph kernel once, and stores the
    /// per-sub-graph contributions.
    ///
    /// The graph is normalized through the overlay first (parallel arcs
    /// collapsed, self-loops dropped — [`GraphOverlay`]'s invariants), so
    /// the engine always scores the **simple** graph. For already-simple
    /// inputs the normalization is the identity.
    pub fn new(g: &Graph, opts: ApgreOptions) -> Self {
        let overlay = GraphOverlay::from_graph(g);
        let g = &overlay.to_graph();
        let cow = CowGraph::from_graph(g);
        let maintained = MaintainedDecomposition::new(g, &opts.partition);
        let decomp = maintained.decomp();
        let all: Vec<usize> = (0..decomp.num_subgraphs()).collect();
        let runs = run_subgraph_kernels(decomp, &all, &opts);
        let mut report = structure_report(decomp, &opts);
        absorb_runs(&mut report, decomp.top_subgraph, &runs);
        let mut spans: Vec<(Arc<[u32]>, Arc<[f64]>)> = decomp
            .subgraphs
            .iter()
            .map(|sg| (Arc::from(&sg.globals[..]), Arc::from(vec![0.0f64; sg.globals.len()])))
            .collect();
        for run in runs {
            spans[run.index].1 = Arc::from(run.local);
        }
        let mut fold = FoldStore::default();
        fold.rebuild(overlay.num_vertices(), spans);
        let scores = fold.to_flat();
        DynamicBc {
            opts,
            overlay,
            maintained,
            cow,
            fold,
            scores,
            force_rebuild: false,
            report,
            last_batch: None,
            approx: None,
        }
    }

    /// Turns on the incremental sampled estimator with the given sampling
    /// parameters. Every sub-graph starts pending; the first
    /// [`DynamicBc::approx_snapshot`] pays the full composed-estimator
    /// cost, subsequent ones resample only what batches dirtied.
    pub fn enable_approx(&mut self, sopts: SampleOptions) {
        self.approx =
            Some(ApproxState { store: SampleStore::seed(self.maintained.decomp()), opts: sopts });
    }

    /// Whether [`DynamicBc::enable_approx`] was called.
    pub fn approx_enabled(&self) -> bool {
        self.approx.is_some()
    }

    /// Refreshes the incremental sampled estimator — resampling exactly the
    /// sub-graphs dirtied since the last refresh — and publishes its
    /// estimates as immutable chunks. Returns `None` when the estimator is
    /// disabled.
    ///
    /// Determinism contract: the returned estimates are bitwise-identical
    /// to [`apgre_approx::bc_sampled_from_decomposition`] on the engine's
    /// current decomposition with the same [`SampleOptions`] (asserted
    /// after every refresh under `--features invariants`).
    pub fn approx_snapshot(&mut self) -> Option<ApproxSnapshot> {
        let ap = self.approx.as_mut()?;
        let refresh = ap.store.refresh(self.maintained.decomp(), &self.opts, &ap.opts);
        Some(ApproxSnapshot {
            estimates: ap.store.chunks(),
            stderr_sq: ap.store.stderr_chunks(),
            stderr_max: ap.store.stderr_max(),
            refresh,
            options: ap.opts.clone(),
        })
    }

    /// The current global BC scores (ordered-pair convention, matching
    /// [`apgre_bc::bc_apgre`]), indexed by vertex id.
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// Lifetime accounting in [`ApgreReport`] shape, borrowed for free.
    ///
    /// Structure fields (`num_subgraphs`, `top_subgraph_*`, `total_roots`,
    /// `total_whiskers`, articulation count) mirror the **current**
    /// decomposition; the timing and kernel counters (`partition_time`,
    /// `alpha_beta_time`, `bc_time`, `edges_traversed`, `kernel_counts`)
    /// **accumulate** across the seed run and every batch — the shape a
    /// long-running service wants for monotonic metrics counters.
    pub fn report(&self) -> &ApgreReport {
        &self.report
    }

    /// The report of the most recent [`DynamicBc::apply`] call, if any.
    pub fn last_batch(&self) -> Option<&DynamicReport> {
        self.last_batch.as_ref()
    }

    /// The options the engine was built with.
    pub fn options(&self) -> &ApgreOptions {
        &self.opts
    }

    /// Forces every subsequent batch onto the from-scratch rebuild path
    /// (the pre-maintenance behavior). Used as the baseline arm of the
    /// maintenance benchmark and as an operational escape hatch. Turning it
    /// back off reseeds the block store on the next structural batch.
    pub fn set_force_rebuild(&mut self, on: bool) {
        self.force_rebuild = on;
    }

    /// Publishes the engine's current state as an immutable, `Send + Sync`
    /// [`EngineSnapshot`] a concurrent reader can hold (e.g. behind an
    /// `Arc` swapped on every publish) while the engine keeps mutating.
    ///
    /// Copy-on-write: the snapshot shares every graph chunk and score span
    /// no batch touched since the previous snapshot, so its cost is
    /// O(dirty chunks) `Arc` work, not O(V+E). Takes `&mut self` only to
    /// close the publish accounting window ([`EngineSnapshot::publish`]) —
    /// scores and graph are not mutated.
    pub fn snapshot(&mut self) -> EngineSnapshot {
        let (graph_copied, graph_total) = self.cow.take_copied();
        let (score_copied, score_live) = self.fold.take_copied();
        let publish = PublishStats {
            score_chunks_copied: score_copied,
            score_chunks_reused: score_live - score_copied,
            graph_chunks_copied: graph_copied,
            graph_chunks_reused: graph_total - graph_copied,
        };
        EngineSnapshot {
            graph: self.cow.view(),
            scores: self.fold.chunks(),
            publish,
            num_subgraphs: self.decomposition().num_subgraphs(),
            num_articulation_points: self.report.num_articulation_points,
            report: self.report.clone(),
            last_batch: self.last_batch.clone(),
        }
    }

    /// The engine's maintained decomposition — always a valid APGRE
    /// decomposition of the current graph, equivalent to a fresh
    /// `decompose` up to sub-graph indexing.
    pub fn decomposition(&self) -> &Decomposition {
        self.maintained.decomp()
    }

    /// Materializes the current graph as an immutable CSR snapshot.
    pub fn current_graph(&self) -> Graph {
        self.overlay.to_graph()
    }

    /// Number of vertices currently tracked.
    pub fn num_vertices(&self) -> usize {
        self.overlay.num_vertices()
    }

    /// Applies one batch: mutates the overlay, routes the effective edits
    /// through the maintained decomposition (or the rebuild fallback),
    /// recomputes exactly the dirty sub-graphs, and refreshes the global
    /// scores. Scores are consistent with the post-batch graph on return.
    ///
    /// # Panics
    /// Panics if a mutation references a vertex id that does not exist at
    /// the point the mutation is applied (mutations earlier in the batch —
    /// including [`Mutation::AddVertex`] — are visible to later ones).
    pub fn apply(&mut self, batch: &MutationBatch) -> DynamicReport {
        let start = Instant::now();
        let directed = self.overlay.is_directed();

        // Phase 1: push the batch into the overlay, recording which
        // mutations actually changed state. Vertex removals lower to edge
        // removals (the id stays allocated, isolated), so the maintainer
        // sees a pure edge-edit stream; vertex additions only grow the id
        // space, which the maintainer tracks via `num_vertices`. Effective
        // undirected edits are mirrored into the copy-on-write graph as
        // they happen; directed batches always rebuild, which resets it.
        let mut edits: Vec<EdgeEdit> = Vec::new();
        let mut noops = 0usize;
        for &m in batch.mutations() {
            match m {
                Mutation::AddEdge(u, v) => {
                    if self.overlay.add_edge(u, v) {
                        if !directed {
                            self.cow.add_edge(u, v);
                        }
                        edits.push(EdgeEdit { add: true, u, v });
                    } else {
                        noops += 1;
                    }
                }
                Mutation::RemoveEdge(u, v) => {
                    if self.overlay.remove_edge(u, v) {
                        if !directed {
                            self.cow.remove_edge(u, v);
                        }
                        edits.push(EdgeEdit { add: false, u, v });
                    } else {
                        noops += 1;
                    }
                }
                Mutation::AddVertex => {
                    self.overlay.add_vertex();
                    if !directed {
                        self.cow.add_vertex();
                    }
                }
                Mutation::RemoveVertex(v) => {
                    let nbrs =
                        if directed { Vec::new() } else { self.overlay.neighbors(v).to_vec() };
                    if self.overlay.remove_vertex(v) > 0 {
                        for w in nbrs {
                            self.cow.remove_edge(v, w);
                            edits.push(EdgeEdit { add: false, u: v, v: w });
                        }
                    } else {
                        noops += 1;
                    }
                }
            }
        }
        let applied = batch.len() - noops;

        // Phase 2: route. An all-noop batch touches nothing.
        if applied == 0 {
            let mut report =
                DynamicReport::empty(BatchClass::Noop, "no mutation changed the graph");
            report.reused_contributions = self.decomposition().num_subgraphs();
            report.noop_mutations = noops;
            report.total_subgraphs = self.decomposition().num_subgraphs();
            report.wall_clock = start.elapsed();
            self.last_batch = Some(report.clone());
            return report;
        }

        let mut report = if self.force_rebuild {
            self.rebuild_structural("forced rebuild", edits.len())
        } else if directed {
            // The maintenance soundness argument is undirected: directed
            // reachability is not separated by articulation points the same
            // way, so every directed edit rebuilds.
            self.rebuild_structural("directed graph: maintenance not supported", edits.len())
        } else {
            match self.maintained.apply_edits(self.overlay.num_vertices(), &edits) {
                Ok(outcome) => self.absorb_maintained(outcome),
                Err(reason) => self.rebuild_structural(reason, edits.len()),
            }
        };

        report.applied_mutations = applied;
        report.noop_mutations = noops;
        report.total_subgraphs = self.decomposition().num_subgraphs();
        report.wall_clock = start.elapsed();

        #[cfg(feature = "invariants")]
        {
            if !directed && self.maintained.store_valid() {
                self.maintained
                    .verify_against_fresh(&self.overlay.to_graph())
                    .expect("maintained decomposition diverged from fresh decompose");
            }
            self.cow
                .verify_against_fresh(&self.overlay.to_graph())
                .expect("copy-on-write graph diverged from the overlay");
            let spans: Vec<(Arc<[u32]>, Arc<[f64]>)> = self
                .maintained
                .decomp()
                .subgraphs
                .iter()
                .enumerate()
                .map(|(i, sg)| (Arc::from(&sg.globals[..]), self.fold.values_of(i)))
                .collect();
            self.fold
                .verify_against_fresh(self.overlay.num_vertices(), spans)
                .expect("fold store diverged from a fresh rebuild");
            let flat = self.fold.to_flat();
            assert_eq!(flat.len(), self.scores.len(), "incremental refold length drift");
            for (v, (full, inc)) in flat.iter().zip(&self.scores).enumerate() {
                assert_eq!(
                    full.to_bits(),
                    inc.to_bits(),
                    "incremental refold diverged from full refold at vertex {v}"
                );
            }
        }

        self.last_batch = Some(report.clone());
        report
    }

    /// Commits a successful maintenance outcome: splices the contribution
    /// store (survivors keep their spans by slot), re-runs exactly the
    /// dirty kernels, and refolds exactly the vertices whose owning
    /// sub-graphs changed.
    fn absorb_maintained(&mut self, outcome: apgre_decomp::MaintainOutcome) -> DynamicReport {
        let total = self.decomposition().num_subgraphs();
        let n = self.overlay.num_vertices();
        let new_globals: Vec<&[u32]> =
            self.maintained.decomp().subgraphs.iter().map(|sg| &sg.globals[..]).collect();
        let mut touched = self.fold.apply_splice(n, &outcome.old_to_new, &new_globals);
        if let Some(ap) = &mut self.approx {
            // Mirror the splice and the dirty set into the sampled
            // estimator; resampling itself is deferred to
            // `approx_snapshot`, so an unqueried estimator costs only this
            // bookkeeping.
            ap.store.apply_splice(n, &outcome.old_to_new, self.maintained.decomp());
            ap.store.mark_dirty(&outcome.dirty);
        }

        let runs = run_subgraph_kernels(self.maintained.decomp(), &outcome.dirty, &self.opts);
        let top = self.maintained.decomp().top_subgraph;
        absorb_runs(&mut self.report, top, &runs);
        refresh_structure(&mut self.report, self.maintained.decomp());
        for run in runs {
            touched.extend_from_slice(&self.maintained.decomp().subgraphs[run.index].globals);
            self.fold.set_values(run.index, Arc::from(run.local));
        }
        touched.sort_unstable();
        touched.dedup();
        self.refold_touched(&touched);

        let stats = outcome.stats;
        let class = if stats.spliced { BatchClass::Structural } else { BatchClass::Local };
        let reason = if stats.spliced {
            "region splice: block-cut tree restructured in place"
        } else if stats.patched_edits > 0 {
            "all edits patched inside existing blocks"
        } else {
            "edits cancelled out: edge set unchanged"
        };
        let mut report = DynamicReport::empty(class, reason);
        report.dirty_subgraphs = outcome.dirty.len();
        report.reused_contributions = total - outcome.dirty.len();
        report.local_edits = stats.patched_edits;
        report.structural_edits = stats.structural_edits;
        report.subgraphs_spliced = stats.subgraphs_removed + stats.subgraphs_added;
        report.subgraphs_split = stats.subgraph_splits;
        report.region_blocks = stats.region_blocks;
        report.maintain_time = stats.maintain_time;
        report
    }

    /// The fallback path: re-decompose the current graph from scratch,
    /// carry forward contributions of sub-graphs whose kernel input is
    /// unchanged (matched by [`apgre_decomp::SubGraph::fingerprint`], a
    /// hash of the exact kernel input stream — indices are lost across a
    /// rebuild, so identity-by-content is all there is), and recompute the
    /// rest.
    fn rebuild_structural(&mut self, reason: &'static str, edit_count: usize) -> DynamicReport {
        let t0 = Instant::now();
        let g = self.overlay.to_graph();
        let new_decomp = decompose(&g, &self.opts.partition);
        if self.overlay.is_directed() {
            // Directed edits are not mirrored in phase 1 (the cow stores
            // forward arcs only through undirected edits); rebuild the
            // chunked graph wholesale — a full rebuild pays O(V+E) anyway.
            self.cow.reset_from(&g);
        }

        // Multiset map: fingerprint -> stored contributions. Duplicate
        // fingerprints (e.g. many identical whisker stars) each carry at
        // most once; the spans are interchangeable because equal
        // fingerprints mean bitwise-equal kernel inputs.
        let mut carry: HashMap<u64, Vec<Arc<[f64]>>> = HashMap::new();
        for (sg, contrib) in
            self.maintained.decomp().subgraphs.iter().zip(self.fold.values_in_order())
        {
            carry.entry(sg.fingerprint()).or_default().push(contrib);
        }

        let total = new_decomp.num_subgraphs();
        let mut spans: Vec<(Arc<[u32]>, Arc<[f64]>)> = new_decomp
            .subgraphs
            .iter()
            .map(|sg| (Arc::from(&sg.globals[..]), Arc::from(vec![0.0f64; sg.globals.len()])))
            .collect();
        let mut misses: Vec<usize> = Vec::new();
        for (i, sg) in new_decomp.subgraphs.iter().enumerate() {
            match carry.get_mut(&sg.fingerprint()).and_then(Vec::pop) {
                Some(v) => spans[i].1 = v,
                None => misses.push(i),
            }
        }
        let recomputed = misses.len();
        let runs = run_subgraph_kernels(&new_decomp, &misses, &self.opts);

        // Accounting: the re-decomposition's timings and the recomputed
        // kernels' work accumulate; structure fields switch to the new
        // decomposition. A carried-forward top sub-graph keeps its last
        // known kernel choice (no run happened this batch to observe one).
        self.report.partition_time += new_decomp.timings.partition;
        self.report.alpha_beta_time += new_decomp.timings.alpha_beta;
        refresh_structure(&mut self.report, &new_decomp);
        absorb_runs(&mut self.report, new_decomp.top_subgraph, &runs);

        for run in runs {
            spans[run.index].1 = Arc::from(run.local);
        }

        if self.force_rebuild {
            // The benchmark arm: adopting without reseeding keeps the old
            // path's cost honest (no hidden extra Tarjan pass); the store
            // is marked stale and recovers on the next non-forced batch.
            self.maintained.adopt_stale(new_decomp);
        } else {
            self.maintained =
                MaintainedDecomposition::from_decomposition(&g, new_decomp, &self.opts.partition);
        }
        self.fold.rebuild(self.overlay.num_vertices(), spans);
        self.scores = self.fold.to_flat();
        if let Some(ap) = &mut self.approx {
            // Rebuild the estimator over the fresh decomposition with the
            // same fingerprint carry the exact store uses: equal
            // fingerprints mean equal kernel input *and* equal sample draw,
            // so carried sample spans are bitwise what resampling would
            // produce.
            ap.store.rebuild(self.maintained.decomp());
        }

        let mut report = DynamicReport::empty(BatchClass::Structural, reason);
        report.dirty_subgraphs = recomputed;
        report.reused_contributions = total - recomputed;
        report.structural_edits = edit_count;
        report.rebuilt = true;
        report.rebuild_time = t0.elapsed();
        report
    }

    /// Refolds exactly `touched` (sorted, deduplicated) into the flat
    /// score vector; every other entry is carried over untouched.
    ///
    /// Each refolded vertex is summed from `0.0` in ascending sub-graph
    /// index order — the exact float-add sequence of a full from-zeros
    /// refold. Untouched vertices keep their value, which is bitwise-equal
    /// to what a full refold would produce: their owning sub-graphs all
    /// survived with unchanged spans, and splices preserve survivors'
    /// relative order, so their fold input sequence is identical. Hence a
    /// forced-`Seq` engine stays bitwise-identical to
    /// `bc_from_decomposition` on the same decomposition while paying
    /// O(touched) instead of O(V) per batch.
    fn refold_touched(&mut self, touched: &[u32]) {
        self.scores.resize(self.overlay.num_vertices(), 0.0);
        for &v in touched {
            self.scores[v as usize] = self.fold.fold_vertex(v);
        }
    }
}

/// An immutable, structurally-shared view of a [`DynamicBc`]'s state at
/// one instant: the chunked graph, the chunked score vector, publish
/// accounting, decomposition summary counts, and the cumulative +
/// last-batch reports.
///
/// Everything is owned or `Arc`-shared (no borrows into the engine), so
/// the snapshot is `Send + Sync` by construction and can be published
/// behind an `Arc` to concurrent readers while the engine continues to
/// mutate — chunks the engine later rewrites are copied on write, never
/// mutated in place.
#[derive(Clone, Debug)]
pub struct EngineSnapshot {
    /// The graph the scores were computed on ([`GraphView::to_graph`]
    /// materializes a real CSR when one is needed, e.g. checkpointing).
    pub graph: GraphView,
    /// Global BC scores (ordered-pair convention), indexed by vertex id;
    /// [`ScoreChunks::score`] folds one vertex, [`ScoreChunks::to_vec`]
    /// the whole vector — both bitwise-equal to the engine's flat scores.
    pub scores: ScoreChunks,
    /// Chunk-reuse accounting for this publish: what this snapshot had to
    /// copy versus what it shares with the previous one.
    pub publish: PublishStats,
    /// Sub-graphs in the engine's decomposition at snapshot time.
    pub num_subgraphs: usize,
    /// Articulation points in the engine's decomposition at snapshot time.
    pub num_articulation_points: usize,
    /// Cumulative accounting (see [`DynamicBc::report`]).
    pub report: ApgreReport,
    /// The report of the batch applied most recently before the snapshot.
    pub last_batch: Option<DynamicReport>,
}

/// An immutable publication of the incremental sampled estimator
/// ([`DynamicBc::approx_snapshot`]): `Arc`-shared estimate spans plus the
/// refresh accounting, `Send + Sync` like [`EngineSnapshot`].
#[derive(Clone, Debug)]
pub struct ApproxSnapshot {
    /// Sampled BC estimates, indexed by vertex id ([`ScoreChunks::score`]
    /// folds one vertex on demand).
    pub estimates: ScoreChunks,
    /// Squared per-vertex standard errors, same span layout as
    /// `estimates`; fold a vertex and take the square root to recover its
    /// standard error. All-zero in uniform-budget mode.
    pub stderr_sq: ScoreChunks,
    /// The largest per-vertex standard error in this snapshot (0 in
    /// uniform mode).
    pub stderr_max: f64,
    /// What the refresh producing this snapshot resampled vs reused.
    pub refresh: SampleRefresh,
    /// The sampling parameters the estimates were drawn with.
    pub options: SampleOptions,
}

impl ApproxSnapshot {
    /// One vertex's standard error (square root of the folded squared
    /// errors; 0 in uniform mode).
    pub fn stderr(&self, v: usize) -> f64 {
        self.stderr_sq.score(v).sqrt()
    }
}

/// Seeds an [`ApgreReport`] from a fresh decomposition: timings come from
/// the decomposition, every kernel counter starts at zero (to be filled by
/// [`absorb_runs`]).
fn structure_report(decomp: &Decomposition, opts: &ApgreOptions) -> ApgreReport {
    let mut report = ApgreReport {
        partition_time: decomp.timings.partition,
        alpha_beta_time: decomp.timings.alpha_beta,
        bc_time: Duration::ZERO,
        top_subgraph_bc_time: Duration::ZERO,
        num_subgraphs: 0,
        num_articulation_points: 0,
        top_subgraph_vertices: 0,
        top_subgraph_edges: 0,
        total_roots: 0,
        total_whiskers: 0,
        edges_traversed: 0,
        kernel_policy: opts.kernel,
        grain: opts.grain,
        top_subgraph_kernel: None,
        kernel_counts: (0, 0, 0),
    };
    refresh_structure(&mut report, decomp);
    report
}

/// Overwrites the structure fields of `report` (counts that describe the
/// *current* decomposition, not accumulated work) from `decomp`.
fn refresh_structure(report: &mut ApgreReport, decomp: &Decomposition) {
    let top = decomp.subgraphs.get(decomp.top_subgraph);
    report.num_subgraphs = decomp.num_subgraphs();
    report.num_articulation_points = decomp.is_articulation.iter().filter(|&&a| a).count();
    report.top_subgraph_vertices = top.map_or(0, |sg| sg.num_vertices());
    report.top_subgraph_edges = top.map_or(0, |sg| sg.num_edges());
    report.total_roots = decomp.subgraphs.iter().map(|sg| sg.roots.len()).sum();
    report.total_whiskers =
        decomp.subgraphs.iter().map(|sg| sg.is_whisker.iter().filter(|&&w| w).count()).sum();
}

/// Accumulates kernel-run work (time, traversed edges, per-kernel counts)
/// into `report`; `top_index` marks the run whose choice/time also fills
/// the top-sub-graph fields.
fn absorb_runs(report: &mut ApgreReport, top_index: usize, runs: &[SubgraphKernelRun]) {
    for run in runs {
        report.bc_time += run.time;
        report.edges_traversed += run.edges;
        match run.choice {
            KernelChoice::Seq => report.kernel_counts.0 += 1,
            KernelChoice::RootParallel => report.kernel_counts.1 += 1,
            KernelChoice::LevelSync => report.kernel_counts.2 += 1,
        }
        if run.index == top_index {
            report.top_subgraph_kernel = Some(run.choice);
            report.top_subgraph_bc_time += run.time;
        }
    }
}

/// One-shot convenience and serial-oracle anchor: builds a [`DynamicBc`]
/// over `g`, replays `batches` in order, and returns the final scores —
/// equal (1e-9 relative) to a from-scratch APGRE/Brandes run on the final
/// graph.
pub fn bc_dynamic(g: &Graph, batches: &[MutationBatch], opts: &ApgreOptions) -> Vec<f64> {
    let mut engine = DynamicBc::new(g, opts.clone());
    for batch in batches {
        engine.apply(batch);
    }
    engine.scores().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use apgre_bc::bc_serial;
    use apgre_decomp::PartitionOptions;

    /// Unmerged decomposition: on the tiny test graphs below, the default
    /// `merge_threshold` folds everything into one sub-graph, which would
    /// make every edge edit trivially local. Threshold 0 keeps the BCCs
    /// separate so both classification paths are exercised.
    fn fine_opts() -> ApgreOptions {
        ApgreOptions {
            partition: PartitionOptions { merge_threshold: 0, ..Default::default() },
            ..Default::default()
        }
    }

    fn assert_close(ctx: &str, got: &[f64], want: &[f64]) {
        assert_eq!(got.len(), want.len(), "{ctx}");
        for i in 0..want.len() {
            assert!(
                (got[i] - want[i]).abs() <= 1e-9 * (1.0 + got[i].abs().max(want[i].abs())),
                "{ctx}: vertex {i}: {} vs {}",
                got[i],
                want[i]
            );
        }
    }

    /// Two triangles joined at an articulation point, each with a whisker.
    fn two_triangles() -> Graph {
        Graph::undirected_from_edges(
            8,
            &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2), (0, 5), (4, 6)],
        )
    }

    /// A K4 and a triangle joined at articulation vertex 3, whiskers on
    /// each side. Removing one K4 chord leaves the block biconnected on
    /// the same vertex set — a true in-place patch.
    fn clique_and_triangle() -> Graph {
        Graph::undirected_from_edges(
            8,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 3),
                (0, 6),
                (4, 7),
            ],
        )
    }

    #[test]
    fn initial_scores_match_serial() {
        let g = two_triangles();
        let engine = DynamicBc::new(&g, ApgreOptions::default());
        assert_close("init", engine.scores(), &bc_serial(&g));
    }

    #[test]
    fn chord_edit_patches_one_subgraph() {
        let g = clique_and_triangle();
        let mut engine = DynamicBc::new(&g, fine_opts());
        // The K4 {0,1,2,3} is its own sub-graph at threshold 0. Removing
        // chord 1-2 keeps it biconnected on the same vertex set, so the
        // edit patches the block in place and dirties exactly one
        // sub-graph.
        let rep = engine.apply(&MutationBatch::new().remove_edge(1, 2));
        assert_eq!(rep.class, BatchClass::Local, "{}", rep.reason);
        assert_eq!(rep.dirty_subgraphs, 1);
        assert_eq!(rep.local_edits, 1);
        assert_eq!(rep.structural_edits, 0);
        assert!(!rep.rebuilt);
        assert_eq!(rep.reused_contributions, rep.total_subgraphs - 1);
        assert_close("chord off", engine.scores(), &bc_serial(&engine.current_graph()));
        // Putting it back is a chord addition — also an in-place patch.
        let rep = engine.apply(&MutationBatch::new().add_edge(1, 2));
        assert_eq!(rep.class, BatchClass::Local, "{}", rep.reason);
        assert_close("chord on", engine.scores(), &bc_serial(&engine.current_graph()));
        assert_close("back to start", engine.scores(), &bc_serial(&g));
    }

    #[test]
    fn block_splitting_edit_is_structural_splice() {
        let g = two_triangles();
        let mut engine = DynamicBc::new(&g, fine_opts());
        // Removing chord 0-2 from triangle {0,1,2} keeps the sub-graph
        // connected but splits the block into two bridges (vertex 1
        // becomes an articulation point): a region splice, not a patch.
        let rep = engine.apply(&MutationBatch::new().remove_edge(0, 2));
        assert_eq!(rep.class, BatchClass::Structural, "{}", rep.reason);
        assert!(!rep.rebuilt, "handled by the maintainer, not a rebuild");
        assert!(rep.subgraphs_spliced > 0);
        assert_close("split", engine.scores(), &bc_serial(&engine.current_graph()));
        let rep = engine.apply(&MutationBatch::new().add_edge(0, 2));
        assert_eq!(rep.class, BatchClass::Structural, "{}", rep.reason);
        assert!(!rep.rebuilt);
        assert_close("merged back", engine.scores(), &bc_serial(&engine.current_graph()));
        assert_close("back to start", engine.scores(), &bc_serial(&g));
    }

    #[test]
    fn mixed_batch_splits_cheap_and_structural_edits() {
        let g = clique_and_triangle();
        let mut engine = DynamicBc::new(&g, fine_opts());
        // One chord toggle inside the K4 (patchable) plus one bridge
        // between the whisker tips (restructures): the chord must ride the
        // cheap path even though the batch as a whole is structural.
        let rep = engine.apply(&MutationBatch::new().remove_edge(1, 2).add_edge(6, 7));
        assert_eq!(rep.class, BatchClass::Structural, "{}", rep.reason);
        assert!(!rep.rebuilt, "maintained, not rebuilt");
        assert_eq!(rep.local_edits, 1, "the chord removal patched in place");
        assert_eq!(rep.structural_edits, 1, "only the bridge spliced");
        assert!(rep.region_blocks > 0);
        assert!(rep.maintain_time > Duration::ZERO);
        assert_eq!(rep.rebuild_time, Duration::ZERO);
        assert_close("mixed", engine.scores(), &bc_serial(&engine.current_graph()));
    }

    #[test]
    fn net_zero_batch_is_effective_but_exact() {
        let g = two_triangles();
        let mut engine = DynamicBc::new(&g, ApgreOptions::default());
        // remove+add of the same edge nets to no change of the edge set but
        // both edits are effective (each changed state when applied).
        let rep = engine.apply(&MutationBatch::new().remove_edge(0, 1).add_edge(0, 1));
        assert_eq!(rep.applied_mutations, 2);
        assert_eq!(rep.class, BatchClass::Local, "{}", rep.reason);
        assert_eq!(rep.dirty_subgraphs, 0, "cancelled edits re-run nothing");
        assert_close("net-zero batch", engine.scores(), &bc_serial(&engine.current_graph()));
    }

    #[test]
    fn noop_batch_reuses_everything() {
        let g = two_triangles();
        let mut engine = DynamicBc::new(&g, ApgreOptions::default());
        let before = engine.scores().to_vec();
        let rep = engine.apply(&MutationBatch::new().add_edge(0, 1).remove_edge(0, 7));
        assert_eq!(rep.class, BatchClass::Noop);
        assert_eq!(rep.dirty_subgraphs, 0);
        assert_eq!(rep.noop_mutations, 2);
        assert_eq!(engine.scores(), &before[..], "noop batch is bitwise stable");
    }

    #[test]
    fn structural_bridge_add() {
        let g = two_triangles();
        let mut engine = DynamicBc::new(&g, fine_opts());
        // Whisker tip 5 to whisker tip 6: merges structure across the
        // articulation point — a splice, and still exact.
        let rep = engine.apply(&MutationBatch::new().add_edge(5, 6));
        assert_eq!(rep.class, BatchClass::Structural);
        assert!(!rep.rebuilt);
        assert_close("bridge", engine.scores(), &bc_serial(&engine.current_graph()));
    }

    #[test]
    fn vertex_mutations_are_structural_and_exact() {
        let g = two_triangles();
        let mut engine = DynamicBc::new(&g, ApgreOptions::default());
        let rep = engine.apply(&MutationBatch::new().add_vertex().add_edge(8, 2));
        assert_eq!(rep.class, BatchClass::Structural);
        assert!(!rep.rebuilt, "vertex growth + attachment is maintainable");
        assert_eq!(engine.num_vertices(), 9);
        assert_close("grow", engine.scores(), &bc_serial(&engine.current_graph()));
        // Removing a hub lowers to edge removals — still maintained.
        let rep = engine.apply(&MutationBatch::new().remove_vertex(2));
        assert_eq!(rep.class, BatchClass::Structural);
        assert!(!rep.rebuilt);
        assert_close("strip hub", engine.scores(), &bc_serial(&engine.current_graph()));
        // Stripping an already-isolated vertex is a noop.
        let rep = engine.apply(&MutationBatch::new().remove_vertex(2));
        assert_eq!(rep.class, BatchClass::Noop);
    }

    #[test]
    fn whisker_add_and_remove_stay_correct() {
        let g = two_triangles();
        let mut engine = DynamicBc::new(&g, fine_opts());
        // Remove whisker edge 0-5: vertex 5 becomes isolated (component
        // split — handled by the splice path's per-component re-merge).
        let rep = engine.apply(&MutationBatch::new().remove_edge(0, 5));
        assert_eq!(rep.class, BatchClass::Structural);
        assert!(!rep.rebuilt);
        assert_close("whisker off", engine.scores(), &bc_serial(&engine.current_graph()));
        let rep = engine.apply(&MutationBatch::new().add_edge(0, 5));
        assert_eq!(rep.class, BatchClass::Structural, "reattach joins components");
        assert!(!rep.rebuilt, "a single component bridge is maintainable");
        assert_close("whisker on", engine.scores(), &bc_serial(&engine.current_graph()));
    }

    #[test]
    fn directed_always_rebuilds() {
        let g = Graph::directed_from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 0)]);
        let mut engine = DynamicBc::new(&g, ApgreOptions::default());
        let rep = engine.apply(&MutationBatch::new().add_edge(1, 3));
        assert_eq!(rep.class, BatchClass::Structural);
        assert!(rep.rebuilt);
        assert!(rep.rebuild_time > Duration::ZERO);
        assert_close("directed", engine.scores(), &bc_serial(&engine.current_graph()));
    }

    #[test]
    fn force_rebuild_arm_and_recovery() {
        let g = clique_and_triangle();
        let mut engine = DynamicBc::new(&g, fine_opts());
        engine.set_force_rebuild(true);
        let rep = engine.apply(&MutationBatch::new().remove_edge(1, 2));
        assert_eq!(rep.class, BatchClass::Structural);
        assert!(rep.rebuilt);
        assert_eq!(rep.reason, "forced rebuild");
        assert_close("forced", engine.scores(), &bc_serial(&engine.current_graph()));

        // Turning the knob back off: the store is stale from `adopt_stale`,
        // so the next batch rebuilds once more (reseeding), after which
        // maintenance resumes.
        engine.set_force_rebuild(false);
        let rep = engine.apply(&MutationBatch::new().add_edge(1, 2));
        assert!(rep.rebuilt, "stale store forces one recovery rebuild");
        let rep = engine.apply(&MutationBatch::new().remove_edge(1, 2));
        assert_eq!(rep.class, BatchClass::Local, "{}", rep.reason);
        assert!(!rep.rebuilt, "store reseeded: maintenance resumed");
        assert_close("recovered", engine.scores(), &bc_serial(&engine.current_graph()));
    }

    #[test]
    fn report_accumulates_and_tracks_structure() {
        let g = clique_and_triangle();
        let mut engine = DynamicBc::new(&g, fine_opts());
        let seed = engine.report().clone();
        assert_eq!(seed.num_subgraphs, engine.decomposition().num_subgraphs());
        let seed_kernels = seed.kernel_counts.0 + seed.kernel_counts.1 + seed.kernel_counts.2;
        assert_eq!(seed_kernels, seed.num_subgraphs, "seed run touches every sub-graph");
        assert!(engine.last_batch().is_none(), "no batch applied yet");

        // A patch batch re-runs exactly one kernel: counters grow by one.
        let rep = engine.apply(&MutationBatch::new().remove_edge(1, 2));
        assert_eq!(rep.class, BatchClass::Local, "{}", rep.reason);
        let after = engine.report();
        let after_kernels = after.kernel_counts.0 + after.kernel_counts.1 + after.kernel_counts.2;
        assert_eq!(after_kernels, seed_kernels + 1);
        assert!(after.edges_traversed >= seed.edges_traversed);
        assert_eq!(engine.last_batch().unwrap().class, BatchClass::Local);

        // A structural batch splices: structure mirrors the updated
        // decomposition, counters keep accumulating.
        engine.apply(&MutationBatch::new().add_edge(6, 7));
        let after = engine.report();
        assert_eq!(after.num_subgraphs, engine.decomposition().num_subgraphs());
        assert_eq!(engine.last_batch().unwrap().class, BatchClass::Structural);
    }

    #[test]
    fn snapshot_is_immutable_copy() {
        let g = clique_and_triangle();
        let mut engine = DynamicBc::new(&g, fine_opts());
        let snap = engine.snapshot();
        assert_eq!(snap.scores.to_vec(), engine.scores());
        assert_eq!(snap.graph.num_edges(), engine.current_graph().num_edges());
        assert!(snap.last_batch.is_none());

        // Mutating the engine must not affect the already-taken snapshot.
        engine.apply(&MutationBatch::new().remove_edge(1, 2));
        assert_ne!(snap.scores.to_vec(), engine.scores(), "engine moved on");
        assert_close(
            "snapshot still scores the old graph",
            &snap.scores.to_vec(),
            &bc_serial(&snap.graph.to_graph()),
        );

        let snap2 = engine.snapshot();
        assert_eq!(snap2.scores.to_vec(), engine.scores());
        assert_eq!(snap2.last_batch.as_ref().unwrap().class, BatchClass::Local);

        // Snapshots are Send + Sync by construction.
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        assert_send_sync(&snap2);
    }

    #[test]
    fn publish_shares_everything_a_batch_did_not_touch() {
        let g = clique_and_triangle();
        let mut engine = DynamicBc::new(&g, fine_opts());
        let first = engine.snapshot();
        assert!(first.publish.score_chunks_copied > 0, "seed build copies everything");

        // Nothing mutated since: a second publish copies zero chunks.
        let second = engine.snapshot();
        assert_eq!(second.publish.score_chunks_copied, 0);
        assert_eq!(second.publish.graph_chunks_copied, 0);
        assert_eq!(second.publish.score_chunks_reused, second.num_subgraphs);
        assert!(second.publish.graph_chunks_reused > 0);

        // A local chord toggle dirties exactly one sub-graph span; the
        // graph fits one adjacency chunk, which the edit touched.
        let rep = engine.apply(&MutationBatch::new().remove_edge(1, 2));
        assert_eq!(rep.class, BatchClass::Local, "{}", rep.reason);
        let third = engine.snapshot();
        assert_eq!(third.publish.score_chunks_copied, 1);
        assert_eq!(third.publish.score_chunks_reused, third.num_subgraphs - 1);
        assert_eq!(third.publish.graph_chunks_copied, 1);
        let shared = (0..third.num_subgraphs)
            .filter(|&i| first.scores.shares_span(&third.scores, i))
            .count();
        assert_eq!(shared, third.num_subgraphs - 1, "only the K4 span was replaced");
    }

    #[test]
    fn snapshot_scores_are_bitwise_the_engine_scores() {
        let g = two_triangles();
        let mut engine = DynamicBc::new(&g, fine_opts());
        // Exercise every path: patch, splice, merge, vertex growth, and
        // the forced-rebuild carry — the incremental refold plus the
        // chunked per-vertex fold must stay bitwise-equal to the engine's
        // flat vector throughout.
        let batches = [
            MutationBatch::new().remove_edge(0, 2),
            MutationBatch::new().add_edge(0, 2).add_edge(5, 6),
            MutationBatch::new().remove_edge(5, 6),
            MutationBatch::new().add_vertex().add_edge(8, 2),
            MutationBatch::new().remove_vertex(4),
        ];
        for (i, b) in batches.iter().enumerate() {
            engine.apply(b);
            let snap = engine.snapshot();
            let flat = snap.scores.to_vec();
            assert_eq!(flat.len(), engine.scores().len(), "batch {i}");
            for (v, (chunked, eng)) in flat.iter().zip(engine.scores()).enumerate() {
                assert_eq!(chunked.to_bits(), eng.to_bits(), "batch {i} vertex {v}");
                assert_eq!(
                    snap.scores.score(v).to_bits(),
                    eng.to_bits(),
                    "batch {i} vertex {v} single-vertex fold"
                );
            }
        }
    }

    #[test]
    fn bc_dynamic_matches_serial_replay() {
        let g = two_triangles();
        let batches = vec![
            MutationBatch::new().add_edge(1, 4),
            MutationBatch::new().remove_edge(2, 3),
            MutationBatch::new().add_vertex().add_edge(8, 1).add_edge(8, 0),
        ];
        let got = bc_dynamic(&g, &batches, &ApgreOptions::default());
        let mut engine = DynamicBc::new(&g, ApgreOptions::default());
        for b in &batches {
            engine.apply(b);
        }
        assert_close("bc_dynamic replay", &got, &bc_serial(&engine.current_graph()));
    }
}
