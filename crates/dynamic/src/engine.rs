//! The incremental engine: classification, dirty-sub-graph recompute, and
//! exact contribution maintenance.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::time::{Duration, Instant};

use apgre_bc::apgre::{ApgreReport, KernelChoice, SubgraphKernelRun};
use apgre_bc::{run_subgraph_kernels, ApgreOptions};
use apgre_decomp::{decompose, Decomposition};
use apgre_graph::{Graph, GraphOverlay, VertexId};

use crate::mutation::{Mutation, MutationBatch};

/// How a batch was handled (the cheap-to-expensive ladder).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchClass {
    /// Every mutation was a no-op (duplicate add, absent remove, self-loop,
    /// removal of an already-isolated vertex): nothing recomputed.
    Noop,
    /// All effective edits were edge edits confined to existing sub-graphs:
    /// only those sub-graphs' kernels re-ran, everything else was reused.
    Local,
    /// The block-cut tree may have changed shape: the decomposition was
    /// rebuilt and contributions of structurally unchanged sub-graphs were
    /// carried forward by fingerprint.
    Structural,
}

/// Per-batch accounting returned by [`DynamicBc::apply`].
#[derive(Clone, Debug)]
pub struct DynamicReport {
    /// How the batch was classified and executed.
    pub class: BatchClass,
    /// Human-readable reason for the classification (e.g. why a batch was
    /// escalated to structural).
    pub reason: &'static str,
    /// Sub-graphs whose kernel re-ran this batch.
    pub dirty_subgraphs: usize,
    /// Sub-graphs whose stored contribution was reused unchanged.
    pub reused_contributions: usize,
    /// Mutations that changed the graph.
    pub applied_mutations: usize,
    /// Mutations that were no-ops.
    pub noop_mutations: usize,
    /// Sub-graphs in the (possibly rebuilt) decomposition after the batch.
    pub total_subgraphs: usize,
    /// Wall clock of the whole `apply` call.
    pub wall_clock: Duration,
}

/// An effective (state-changing) edge edit, in global ids.
#[derive(Clone, Copy)]
struct EdgeEdit {
    add: bool,
    u: VertexId,
    v: VertexId,
}

/// The incremental BC engine.
///
/// Holds a mutable [`GraphOverlay`], the maintained decomposition, one local
/// score vector per sub-graph (`contribs`), and the folded global score
/// vector. After every [`apply`](DynamicBc::apply) the scores equal what a
/// from-scratch APGRE run would produce on the current graph (to 1e-9
/// relative; bitwise for the forced-`Seq` kernel against the engine's own
/// decomposition — see DESIGN.md §3.8 for why a *fresh* decomposition may
/// legitimately split differently after local batches).
///
/// The global vector is always **refolded from zeros in ascending sub-graph
/// index order** rather than patched by subtract-then-add, so stored and
/// folded contributions stay exactly consistent: the fold order matches the
/// batch driver's reorder-buffer merge, and no floating-point cancellation
/// error can accumulate across batches.
pub struct DynamicBc {
    opts: ApgreOptions,
    overlay: GraphOverlay,
    decomp: Decomposition,
    /// One local score vector per sub-graph, same indexing as
    /// `decomp.subgraphs`; `scores` is their Equation-8 fold.
    contribs: Vec<Vec<f64>>,
    scores: Vec<f64>,
    /// Vertex -> sorted list of sub-graph indices containing it.
    memberships: Vec<Vec<u32>>,
    /// Lifetime accounting: structure fields mirror the *current*
    /// decomposition, timing/kernel counters accumulate across the seed run
    /// and every subsequent batch (see [`DynamicBc::report`]).
    report: ApgreReport,
    /// The report of the most recent [`DynamicBc::apply`] call.
    last_batch: Option<DynamicReport>,
}

impl DynamicBc {
    /// Builds the engine from an initial graph: decomposes, runs every
    /// sub-graph kernel once, and stores the per-sub-graph contributions.
    ///
    /// The graph is normalized through the overlay first (parallel arcs
    /// collapsed, self-loops dropped — [`GraphOverlay`]'s invariants), so
    /// the engine always scores the **simple** graph. For already-simple
    /// inputs the normalization is the identity.
    pub fn new(g: &Graph, opts: ApgreOptions) -> Self {
        let overlay = GraphOverlay::from_graph(g);
        let g = &overlay.to_graph();
        let decomp = decompose(g, &opts.partition);
        let all: Vec<usize> = (0..decomp.num_subgraphs()).collect();
        let runs = run_subgraph_kernels(&decomp, &all, &opts);
        let mut report = structure_report(&decomp, &opts);
        absorb_runs(&mut report, decomp.top_subgraph, &runs);
        let contribs: Vec<Vec<f64>> = runs.into_iter().map(|r| r.local).collect();
        let memberships = build_memberships(&decomp, g.num_vertices());
        let mut engine = DynamicBc {
            opts,
            overlay,
            decomp,
            contribs,
            scores: Vec::new(),
            memberships,
            report,
            last_batch: None,
        };
        engine.refold();
        engine
    }

    /// The current global BC scores (ordered-pair convention, matching
    /// [`apgre_bc::bc_apgre`]), indexed by vertex id.
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// Lifetime accounting in [`ApgreReport`] shape, borrowed for free.
    ///
    /// Structure fields (`num_subgraphs`, `top_subgraph_*`, `total_roots`,
    /// `total_whiskers`, articulation count) mirror the **current**
    /// decomposition; the timing and kernel counters (`partition_time`,
    /// `alpha_beta_time`, `bc_time`, `edges_traversed`, `kernel_counts`)
    /// **accumulate** across the seed run and every batch — the shape a
    /// long-running service wants for monotonic metrics counters.
    pub fn report(&self) -> &ApgreReport {
        &self.report
    }

    /// The report of the most recent [`DynamicBc::apply`] call, if any.
    pub fn last_batch(&self) -> Option<&DynamicReport> {
        self.last_batch.as_ref()
    }

    /// The options the engine was built with.
    pub fn options(&self) -> &ApgreOptions {
        &self.opts
    }

    /// Clones the engine's current state into an immutable, `Send + Sync`
    /// [`EngineSnapshot`] a concurrent reader can hold (e.g. behind an
    /// `Arc` swapped on every publish) while the engine keeps mutating.
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            graph: self.overlay.to_graph(),
            scores: self.scores.clone(),
            num_subgraphs: self.decomp.num_subgraphs(),
            num_articulation_points: self.report.num_articulation_points,
            report: self.report.clone(),
            last_batch: self.last_batch.clone(),
        }
    }

    /// The engine's maintained decomposition. After local batches this may
    /// be coarser than a fresh `decompose` of the current graph (a local
    /// edit can create articulation points *internal* to a sub-graph, which
    /// the engine deliberately does not re-split on), but it always remains
    /// a valid APGRE decomposition of the current graph.
    pub fn decomposition(&self) -> &Decomposition {
        &self.decomp
    }

    /// Materializes the current graph as an immutable CSR snapshot.
    pub fn current_graph(&self) -> Graph {
        self.overlay.to_graph()
    }

    /// Number of vertices currently tracked.
    pub fn num_vertices(&self) -> usize {
        self.overlay.num_vertices()
    }

    /// Applies one batch: mutates the overlay, classifies the change,
    /// recomputes exactly the dirty sub-graphs, and refreshes the global
    /// scores. Scores are consistent with the post-batch graph on return.
    ///
    /// # Panics
    /// Panics if a mutation references a vertex id that does not exist at
    /// the point the mutation is applied (mutations earlier in the batch —
    /// including [`Mutation::AddVertex`] — are visible to later ones).
    pub fn apply(&mut self, batch: &MutationBatch) -> DynamicReport {
        let start = Instant::now();

        // Phase 1: push the batch into the overlay, recording which
        // mutations actually changed state. Vertex-set changes force the
        // structural path outright.
        let mut edits: Vec<EdgeEdit> = Vec::new();
        let mut noops = 0usize;
        let mut vertex_change = false;
        for &m in batch.mutations() {
            match m {
                Mutation::AddEdge(u, v) => {
                    if self.overlay.add_edge(u, v) {
                        edits.push(EdgeEdit { add: true, u, v });
                    } else {
                        noops += 1;
                    }
                }
                Mutation::RemoveEdge(u, v) => {
                    if self.overlay.remove_edge(u, v) {
                        edits.push(EdgeEdit { add: false, u, v });
                    } else {
                        noops += 1;
                    }
                }
                Mutation::AddVertex => {
                    self.overlay.add_vertex();
                    vertex_change = true;
                }
                Mutation::RemoveVertex(v) => {
                    if self.overlay.remove_vertex(v) > 0 {
                        vertex_change = true;
                    } else {
                        noops += 1;
                    }
                }
            }
        }
        let applied = batch.len() - noops;

        // Phase 2: classify and recompute.
        if applied == 0 {
            let report = DynamicReport {
                class: BatchClass::Noop,
                reason: "no mutation changed the graph",
                dirty_subgraphs: 0,
                reused_contributions: self.decomp.num_subgraphs(),
                applied_mutations: 0,
                noop_mutations: noops,
                total_subgraphs: self.decomp.num_subgraphs(),
                wall_clock: start.elapsed(),
            };
            self.last_batch = Some(report.clone());
            return report;
        }

        let structural_reason = if vertex_change {
            Some("vertex set changed")
        } else if self.overlay.is_directed() {
            // The local soundness argument (DESIGN.md §3.8) is undirected:
            // directed reachability is not separated by articulation points
            // the same way, so every directed edit escalates.
            Some("directed graph: local path not supported")
        } else {
            None
        };

        let (class, reason, dirty, reused) = match structural_reason {
            Some(reason) => {
                let (reused, recomputed) = self.rebuild_structural();
                (BatchClass::Structural, reason, recomputed, reused)
            }
            None => match self.try_local(&edits) {
                Ok(dirty) => {
                    let reused = self.decomp.num_subgraphs() - dirty;
                    (BatchClass::Local, "all edits inside existing sub-graphs", dirty, reused)
                }
                Err(reason) => {
                    let (reused, recomputed) = self.rebuild_structural();
                    (BatchClass::Structural, reason, recomputed, reused)
                }
            },
        };

        let report = DynamicReport {
            class,
            reason,
            dirty_subgraphs: dirty,
            reused_contributions: reused,
            applied_mutations: applied,
            noop_mutations: noops,
            total_subgraphs: self.decomp.num_subgraphs(),
            wall_clock: start.elapsed(),
        };
        self.last_batch = Some(report.clone());
        report
    }

    /// Attempts the local path for a batch of effective edge edits. Returns
    /// the number of dirty sub-graphs on success, or the escalation reason
    /// when the batch must take the structural path. Mutates `self` only
    /// after every check has passed.
    fn try_local(&mut self, edits: &[EdgeEdit]) -> Result<usize, &'static str> {
        // Map every edit to the unique sub-graph containing both endpoints.
        // Merged sub-graphs pairwise share at most one vertex (they are
        // vertex-disjoint unions of BCCs glued at articulation points), so
        // a pair of distinct vertices lies in at most one sub-graph — the
        // intersection below has size 0 or 1.
        let mut per_sg: BTreeMap<usize, Vec<(bool, u32, u32)>> = BTreeMap::new();
        for e in edits {
            let su = &self.memberships[e.u as usize];
            let sv = &self.memberships[e.v as usize];
            let mut common = su.iter().filter(|s| sv.binary_search(s).is_ok());
            let s = match (common.next(), common.next()) {
                (Some(&s), None) => s as usize,
                (None, _) => return Err("edit endpoints span sub-graphs"),
                (Some(_), Some(_)) => return Err("ambiguous sub-graph membership"),
            };
            let sg = &self.decomp.subgraphs[s];
            let (lu, lv) = match (sg.local_of(e.u), sg.local_of(e.v)) {
                (Some(a), Some(b)) => (a, b),
                _ => return Err("membership map out of sync"),
            };
            per_sg.entry(s).or_default().push((e.add, lu, lv));
        }

        // Validate every dirty sub-graph before committing any of them.
        let mut replacements: Vec<(usize, Graph)> = Vec::with_capacity(per_sg.len());
        for (&s, sg_edits) in &per_sg {
            let sg = &self.decomp.subgraphs[s];
            let ln = sg.num_vertices();
            let mut edges: BTreeSet<(u32, u32)> = sg.graph.undirected_edges().collect();
            for &(add, lu, lv) in sg_edits {
                let key = (lu.min(lv), lu.max(lv));
                let changed = if add { edges.insert(key) } else { edges.remove(&key) };
                if !changed {
                    // The overlay accepted this edit, so the sub-graph's
                    // local edge set disagrees with the global graph — only
                    // possible if this edge was assigned to a different
                    // sub-graph. Escalate rather than guess.
                    return Err("edge not owned by the candidate sub-graph");
                }
            }
            if !is_connected(ln, &edges) {
                // A disconnecting removal changes reachability counts (and
                // therefore other sub-graphs' α/β), which only a fresh
                // decomposition accounts for.
                return Err("removal disconnects a sub-graph");
            }
            let list: Vec<(u32, u32)> = edges.into_iter().collect();
            replacements.push((s, Graph::undirected_from_edges(ln, &list)));
        }

        // Commit: swap in the edited local graphs, refresh the whisker
        // folding (boundary flags and α/β are untouched by construction —
        // that is what makes the edit local), re-run only the dirty
        // kernels, and refold.
        let dirty: Vec<usize> = per_sg.keys().copied().collect();
        for (s, graph) in replacements {
            let sg = &mut self.decomp.subgraphs[s];
            sg.graph = graph;
            sg.recompute_whiskers();
        }
        let runs = run_subgraph_kernels(&self.decomp, &dirty, &self.opts);
        absorb_runs(&mut self.report, self.decomp.top_subgraph, &runs);
        refresh_structure(&mut self.report, &self.decomp);
        for run in runs {
            self.contribs[run.index] = run.local;
        }
        self.refold();
        Ok(dirty.len())
    }

    /// The structural path: re-decompose the current graph, carry forward
    /// contributions of sub-graphs whose kernel input is unchanged (matched
    /// by [`apgre_decomp::SubGraph::fingerprint`], a hash of the exact
    /// kernel input stream), and recompute the rest. Returns
    /// `(reused, recomputed)`.
    fn rebuild_structural(&mut self) -> (usize, usize) {
        let g = self.overlay.to_graph();
        let new_decomp = decompose(&g, &self.opts.partition);

        // Multiset map: fingerprint -> stored contributions. Duplicate
        // fingerprints (e.g. many identical whisker stars) each carry at
        // most once; the vectors are interchangeable because equal
        // fingerprints mean bitwise-equal kernel inputs.
        let mut carry: HashMap<u64, Vec<Vec<f64>>> = HashMap::new();
        for (sg, contrib) in self.decomp.subgraphs.iter().zip(self.contribs.drain(..)) {
            carry.entry(sg.fingerprint()).or_default().push(contrib);
        }

        let total = new_decomp.num_subgraphs();
        let mut contribs: Vec<Vec<f64>> = vec![Vec::new(); total];
        let mut misses: Vec<usize> = Vec::new();
        for (i, sg) in new_decomp.subgraphs.iter().enumerate() {
            match carry.get_mut(&sg.fingerprint()).and_then(Vec::pop) {
                Some(v) => contribs[i] = v,
                None => misses.push(i),
            }
        }
        let recomputed = misses.len();
        let runs = run_subgraph_kernels(&new_decomp, &misses, &self.opts);

        // Accounting: the re-decomposition's timings and the recomputed
        // kernels' work accumulate; structure fields switch to the new
        // decomposition. A carried-forward top sub-graph keeps its last
        // known kernel choice (no run happened this batch to observe one).
        self.report.partition_time += new_decomp.timings.partition;
        self.report.alpha_beta_time += new_decomp.timings.alpha_beta;
        refresh_structure(&mut self.report, &new_decomp);
        absorb_runs(&mut self.report, new_decomp.top_subgraph, &runs);

        for run in runs {
            contribs[run.index] = run.local;
        }

        self.memberships = build_memberships(&new_decomp, g.num_vertices());
        self.decomp = new_decomp;
        self.contribs = contribs;
        self.refold();
        (total - recomputed, recomputed)
    }

    /// Folds the stored contributions into the global score vector, from
    /// zeros, in ascending sub-graph index order — the exact fold order of
    /// the batch driver's reorder-buffer merge, so a forced-`Seq` engine is
    /// bitwise-identical to `bc_from_decomposition` on the same
    /// decomposition.
    fn refold(&mut self) {
        let n = self.overlay.num_vertices();
        let mut scores = vec![0.0f64; n];
        for (sg, contrib) in self.decomp.subgraphs.iter().zip(&self.contribs) {
            for (l, &x) in contrib.iter().enumerate() {
                scores[sg.globals[l] as usize] += x;
            }
        }
        self.scores = scores;
    }
}

/// An immutable, self-contained copy of a [`DynamicBc`]'s state at one
/// instant: the materialized graph, the score vector, decomposition
/// summary counts, and the cumulative + last-batch reports.
///
/// Everything is owned (no borrows into the engine), so the snapshot is
/// `Send + Sync` by construction and can be published behind an `Arc` to
/// concurrent readers while the engine continues to mutate.
#[derive(Clone, Debug)]
pub struct EngineSnapshot {
    /// The graph the scores were computed on, as an immutable CSR.
    pub graph: Graph,
    /// Global BC scores (ordered-pair convention), indexed by vertex id.
    pub scores: Vec<f64>,
    /// Sub-graphs in the engine's decomposition at snapshot time.
    pub num_subgraphs: usize,
    /// Articulation points in the engine's decomposition at snapshot time.
    pub num_articulation_points: usize,
    /// Cumulative accounting (see [`DynamicBc::report`]).
    pub report: ApgreReport,
    /// The report of the batch applied most recently before the snapshot.
    pub last_batch: Option<DynamicReport>,
}

/// Seeds an [`ApgreReport`] from a fresh decomposition: timings come from
/// the decomposition, every kernel counter starts at zero (to be filled by
/// [`absorb_runs`]).
fn structure_report(decomp: &Decomposition, opts: &ApgreOptions) -> ApgreReport {
    let mut report = ApgreReport {
        partition_time: decomp.timings.partition,
        alpha_beta_time: decomp.timings.alpha_beta,
        bc_time: Duration::ZERO,
        top_subgraph_bc_time: Duration::ZERO,
        num_subgraphs: 0,
        num_articulation_points: 0,
        top_subgraph_vertices: 0,
        top_subgraph_edges: 0,
        total_roots: 0,
        total_whiskers: 0,
        edges_traversed: 0,
        kernel_policy: opts.kernel,
        grain: opts.grain,
        top_subgraph_kernel: None,
        kernel_counts: (0, 0, 0),
    };
    refresh_structure(&mut report, decomp);
    report
}

/// Overwrites the structure fields of `report` (counts that describe the
/// *current* decomposition, not accumulated work) from `decomp`.
fn refresh_structure(report: &mut ApgreReport, decomp: &Decomposition) {
    let top = decomp.subgraphs.get(decomp.top_subgraph);
    report.num_subgraphs = decomp.num_subgraphs();
    report.num_articulation_points = decomp.is_articulation.iter().filter(|&&a| a).count();
    report.top_subgraph_vertices = top.map_or(0, |sg| sg.num_vertices());
    report.top_subgraph_edges = top.map_or(0, |sg| sg.num_edges());
    report.total_roots = decomp.subgraphs.iter().map(|sg| sg.roots.len()).sum();
    report.total_whiskers =
        decomp.subgraphs.iter().map(|sg| sg.is_whisker.iter().filter(|&&w| w).count()).sum();
}

/// Accumulates kernel-run work (time, traversed edges, per-kernel counts)
/// into `report`; `top_index` marks the run whose choice/time also fills
/// the top-sub-graph fields.
fn absorb_runs(report: &mut ApgreReport, top_index: usize, runs: &[SubgraphKernelRun]) {
    for run in runs {
        report.bc_time += run.time;
        report.edges_traversed += run.edges;
        match run.choice {
            KernelChoice::Seq => report.kernel_counts.0 += 1,
            KernelChoice::RootParallel => report.kernel_counts.1 += 1,
            KernelChoice::LevelSync => report.kernel_counts.2 += 1,
        }
        if run.index == top_index {
            report.top_subgraph_kernel = Some(run.choice);
            report.top_subgraph_bc_time += run.time;
        }
    }
}

/// Vertex -> sorted sub-graph indices. Articulation points appear in every
/// sub-graph they border; every other vertex in exactly one.
fn build_memberships(decomp: &Decomposition, n: usize) -> Vec<Vec<u32>> {
    let mut memberships: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, sg) in decomp.subgraphs.iter().enumerate() {
        for &v in &sg.globals {
            memberships[v as usize].push(i as u32);
        }
    }
    // Built in ascending sub-graph order, so each list is already sorted.
    memberships
}

/// BFS connectivity over an edge set on `n` local vertices.
fn is_connected(n: usize, edges: &BTreeSet<(u32, u32)>) -> bool {
    if n <= 1 {
        return true;
    }
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(u, v) in edges {
        adj[u as usize].push(v);
        adj[v as usize].push(u);
    }
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::from([0u32]);
    seen[0] = true;
    let mut count = 1usize;
    while let Some(u) = queue.pop_front() {
        for &w in &adj[u as usize] {
            if !seen[w as usize] {
                seen[w as usize] = true;
                count += 1;
                queue.push_back(w);
            }
        }
    }
    count == n
}

/// One-shot convenience and serial-oracle anchor: builds a [`DynamicBc`]
/// over `g`, replays `batches` in order, and returns the final scores —
/// equal (1e-9 relative) to a from-scratch APGRE/Brandes run on the final
/// graph.
pub fn bc_dynamic(g: &Graph, batches: &[MutationBatch], opts: &ApgreOptions) -> Vec<f64> {
    let mut engine = DynamicBc::new(g, opts.clone());
    for batch in batches {
        engine.apply(batch);
    }
    engine.scores().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use apgre_bc::bc_serial;
    use apgre_decomp::PartitionOptions;

    /// Unmerged decomposition: on the tiny test graphs below, the default
    /// `merge_threshold` folds everything into one sub-graph, which would
    /// make every edge edit trivially local. Threshold 0 keeps the BCCs
    /// separate so both classification paths are exercised.
    fn fine_opts() -> ApgreOptions {
        ApgreOptions {
            partition: PartitionOptions { merge_threshold: 0, ..Default::default() },
            ..Default::default()
        }
    }

    fn assert_close(ctx: &str, got: &[f64], want: &[f64]) {
        assert_eq!(got.len(), want.len(), "{ctx}");
        for i in 0..want.len() {
            assert!(
                (got[i] - want[i]).abs() <= 1e-9 * (1.0 + got[i].abs().max(want[i].abs())),
                "{ctx}: vertex {i}: {} vs {}",
                got[i],
                want[i]
            );
        }
    }

    /// Two triangles joined at an articulation point, each with a whisker.
    fn two_triangles() -> Graph {
        Graph::undirected_from_edges(
            8,
            &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2), (0, 5), (4, 6)],
        )
    }

    #[test]
    fn initial_scores_match_serial() {
        let g = two_triangles();
        let engine = DynamicBc::new(&g, ApgreOptions::default());
        assert_close("init", engine.scores(), &bc_serial(&g));
    }

    #[test]
    fn local_edit_inside_one_subgraph() {
        let g = two_triangles();
        let mut engine = DynamicBc::new(&g, fine_opts());
        // Triangle {0, 1, 2} is its own sub-graph at threshold 0. Removing
        // chord 0-2 keeps it connected (via 1), so the edit is local and
        // dirties exactly one sub-graph.
        let rep = engine.apply(&MutationBatch::new().remove_edge(0, 2));
        assert_eq!(rep.class, BatchClass::Local, "{}", rep.reason);
        assert_eq!(rep.dirty_subgraphs, 1);
        assert_eq!(rep.reused_contributions, rep.total_subgraphs - 1);
        assert_close("chord off", engine.scores(), &bc_serial(&engine.current_graph()));
        // Putting it back is local too.
        let rep = engine.apply(&MutationBatch::new().add_edge(0, 2));
        assert_eq!(rep.class, BatchClass::Local, "{}", rep.reason);
        assert_close("chord on", engine.scores(), &bc_serial(&engine.current_graph()));
        assert_close("back to start", engine.scores(), &bc_serial(&g));
    }

    #[test]
    fn net_zero_batch_is_effective_but_exact() {
        let g = two_triangles();
        let mut engine = DynamicBc::new(&g, ApgreOptions::default());
        // remove+add of the same edge nets to no change of the edge set but
        // both edits are effective (each changed state when applied).
        let rep = engine.apply(&MutationBatch::new().remove_edge(0, 1).add_edge(0, 1));
        assert_eq!(rep.applied_mutations, 2);
        assert_close("net-zero batch", engine.scores(), &bc_serial(&engine.current_graph()));
    }

    #[test]
    fn noop_batch_reuses_everything() {
        let g = two_triangles();
        let mut engine = DynamicBc::new(&g, ApgreOptions::default());
        let before = engine.scores().to_vec();
        let rep = engine.apply(&MutationBatch::new().add_edge(0, 1).remove_edge(0, 7));
        assert_eq!(rep.class, BatchClass::Noop);
        assert_eq!(rep.dirty_subgraphs, 0);
        assert_eq!(rep.noop_mutations, 2);
        assert_eq!(engine.scores(), &before[..], "noop batch is bitwise stable");
    }

    #[test]
    fn structural_bridge_add() {
        let g = two_triangles();
        let mut engine = DynamicBc::new(&g, fine_opts());
        // Whisker tip 5 to whisker tip 6: merges structure across the
        // articulation point — must escalate and still be exact.
        let rep = engine.apply(&MutationBatch::new().add_edge(5, 6));
        assert_eq!(rep.class, BatchClass::Structural);
        assert_close("bridge", engine.scores(), &bc_serial(&engine.current_graph()));
    }

    #[test]
    fn vertex_mutations_are_structural_and_exact() {
        let g = two_triangles();
        let mut engine = DynamicBc::new(&g, ApgreOptions::default());
        let rep = engine.apply(&MutationBatch::new().add_vertex().add_edge(8, 2));
        assert_eq!(rep.class, BatchClass::Structural);
        assert_eq!(engine.num_vertices(), 9);
        assert_close("grow", engine.scores(), &bc_serial(&engine.current_graph()));
        let rep = engine.apply(&MutationBatch::new().remove_vertex(2));
        assert_eq!(rep.class, BatchClass::Structural);
        assert_close("strip hub", engine.scores(), &bc_serial(&engine.current_graph()));
        // Stripping an already-isolated vertex is a noop.
        let rep = engine.apply(&MutationBatch::new().remove_vertex(2));
        assert_eq!(rep.class, BatchClass::Noop);
    }

    #[test]
    fn whisker_add_and_remove_stay_correct() {
        let g = two_triangles();
        let mut engine = DynamicBc::new(&g, fine_opts());
        // Remove whisker edge 0-5: vertex 5 becomes isolated. This
        // disconnects the sub-graph containing it, so it must escalate.
        let rep = engine.apply(&MutationBatch::new().remove_edge(0, 5));
        assert_eq!(rep.class, BatchClass::Structural);
        assert_close("whisker off", engine.scores(), &bc_serial(&engine.current_graph()));
        let rep = engine.apply(&MutationBatch::new().add_edge(0, 5));
        assert_eq!(rep.class, BatchClass::Structural, "reattach joins components");
        assert_close("whisker on", engine.scores(), &bc_serial(&engine.current_graph()));
    }

    #[test]
    fn directed_always_structural() {
        let g = Graph::directed_from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 0)]);
        let mut engine = DynamicBc::new(&g, ApgreOptions::default());
        let rep = engine.apply(&MutationBatch::new().add_edge(1, 3));
        assert_eq!(rep.class, BatchClass::Structural);
        assert_close("directed", engine.scores(), &bc_serial(&engine.current_graph()));
    }

    #[test]
    fn report_accumulates_and_tracks_structure() {
        let g = two_triangles();
        let mut engine = DynamicBc::new(&g, fine_opts());
        let seed = engine.report().clone();
        assert_eq!(seed.num_subgraphs, engine.decomposition().num_subgraphs());
        let seed_kernels = seed.kernel_counts.0 + seed.kernel_counts.1 + seed.kernel_counts.2;
        assert_eq!(seed_kernels, seed.num_subgraphs, "seed run touches every sub-graph");
        assert!(engine.last_batch().is_none(), "no batch applied yet");

        // A local batch re-runs exactly one kernel: counters grow by one.
        let rep = engine.apply(&MutationBatch::new().remove_edge(0, 2));
        assert_eq!(rep.class, BatchClass::Local, "{}", rep.reason);
        let after = engine.report();
        let after_kernels = after.kernel_counts.0 + after.kernel_counts.1 + after.kernel_counts.2;
        assert_eq!(after_kernels, seed_kernels + 1);
        assert!(after.edges_traversed >= seed.edges_traversed);
        assert_eq!(engine.last_batch().unwrap().class, BatchClass::Local);

        // A structural batch rebuilds: structure mirrors the new
        // decomposition, counters keep accumulating.
        engine.apply(&MutationBatch::new().add_edge(5, 6));
        let after = engine.report();
        assert_eq!(after.num_subgraphs, engine.decomposition().num_subgraphs());
        assert!(after.partition_time >= seed.partition_time);
        assert_eq!(engine.last_batch().unwrap().class, BatchClass::Structural);
    }

    #[test]
    fn snapshot_is_immutable_copy() {
        let g = two_triangles();
        let mut engine = DynamicBc::new(&g, fine_opts());
        let snap = engine.snapshot();
        assert_eq!(snap.scores, engine.scores());
        assert_eq!(snap.graph.num_edges(), engine.current_graph().num_edges());
        assert!(snap.last_batch.is_none());

        // Mutating the engine must not affect the already-taken snapshot.
        engine.apply(&MutationBatch::new().remove_edge(0, 2));
        assert_ne!(snap.scores, engine.scores(), "engine moved on");
        assert_close("snapshot still scores the old graph", &snap.scores, &bc_serial(&snap.graph));

        let snap2 = engine.snapshot();
        assert_eq!(snap2.scores, engine.scores());
        assert_eq!(snap2.last_batch.as_ref().unwrap().class, BatchClass::Local);

        // Snapshots are Send + Sync by construction.
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        assert_send_sync(&snap2);
    }

    #[test]
    fn bc_dynamic_matches_serial_replay() {
        let g = two_triangles();
        let batches = vec![
            MutationBatch::new().add_edge(1, 4),
            MutationBatch::new().remove_edge(2, 3),
            MutationBatch::new().add_vertex().add_edge(8, 1).add_edge(8, 0),
        ];
        let got = bc_dynamic(&g, &batches, &ApgreOptions::default());
        let mut engine = DynamicBc::new(&g, ApgreOptions::default());
        for b in &batches {
            engine.apply(b);
        }
        assert_close("bc_dynamic replay", &got, &bc_serial(&engine.current_graph()));
    }
}
