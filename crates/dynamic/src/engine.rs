//! The incremental engine: classification, dirty-sub-graph recompute, and
//! exact contribution maintenance.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::time::{Duration, Instant};

use apgre_bc::{run_subgraph_kernels, ApgreOptions};
use apgre_decomp::{decompose, Decomposition};
use apgre_graph::{Graph, GraphOverlay, VertexId};

use crate::mutation::{Mutation, MutationBatch};

/// How a batch was handled (the cheap-to-expensive ladder).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchClass {
    /// Every mutation was a no-op (duplicate add, absent remove, self-loop,
    /// removal of an already-isolated vertex): nothing recomputed.
    Noop,
    /// All effective edits were edge edits confined to existing sub-graphs:
    /// only those sub-graphs' kernels re-ran, everything else was reused.
    Local,
    /// The block-cut tree may have changed shape: the decomposition was
    /// rebuilt and contributions of structurally unchanged sub-graphs were
    /// carried forward by fingerprint.
    Structural,
}

/// Per-batch accounting returned by [`DynamicBc::apply`].
#[derive(Clone, Debug)]
pub struct DynamicReport {
    /// How the batch was classified and executed.
    pub class: BatchClass,
    /// Human-readable reason for the classification (e.g. why a batch was
    /// escalated to structural).
    pub reason: &'static str,
    /// Sub-graphs whose kernel re-ran this batch.
    pub dirty_subgraphs: usize,
    /// Sub-graphs whose stored contribution was reused unchanged.
    pub reused_contributions: usize,
    /// Mutations that changed the graph.
    pub applied_mutations: usize,
    /// Mutations that were no-ops.
    pub noop_mutations: usize,
    /// Sub-graphs in the (possibly rebuilt) decomposition after the batch.
    pub total_subgraphs: usize,
    /// Wall clock of the whole `apply` call.
    pub wall_clock: Duration,
}

/// An effective (state-changing) edge edit, in global ids.
#[derive(Clone, Copy)]
struct EdgeEdit {
    add: bool,
    u: VertexId,
    v: VertexId,
}

/// The incremental BC engine.
///
/// Holds a mutable [`GraphOverlay`], the maintained decomposition, one local
/// score vector per sub-graph (`contribs`), and the folded global score
/// vector. After every [`apply`](DynamicBc::apply) the scores equal what a
/// from-scratch APGRE run would produce on the current graph (to 1e-9
/// relative; bitwise for the forced-`Seq` kernel against the engine's own
/// decomposition — see DESIGN.md §3.8 for why a *fresh* decomposition may
/// legitimately split differently after local batches).
///
/// The global vector is always **refolded from zeros in ascending sub-graph
/// index order** rather than patched by subtract-then-add, so stored and
/// folded contributions stay exactly consistent: the fold order matches the
/// batch driver's reorder-buffer merge, and no floating-point cancellation
/// error can accumulate across batches.
pub struct DynamicBc {
    opts: ApgreOptions,
    overlay: GraphOverlay,
    decomp: Decomposition,
    /// One local score vector per sub-graph, same indexing as
    /// `decomp.subgraphs`; `scores` is their Equation-8 fold.
    contribs: Vec<Vec<f64>>,
    scores: Vec<f64>,
    /// Vertex -> sorted list of sub-graph indices containing it.
    memberships: Vec<Vec<u32>>,
}

impl DynamicBc {
    /// Builds the engine from an initial graph: decomposes, runs every
    /// sub-graph kernel once, and stores the per-sub-graph contributions.
    ///
    /// The graph is normalized through the overlay first (parallel arcs
    /// collapsed, self-loops dropped — [`GraphOverlay`]'s invariants), so
    /// the engine always scores the **simple** graph. For already-simple
    /// inputs the normalization is the identity.
    pub fn new(g: &Graph, opts: ApgreOptions) -> Self {
        let overlay = GraphOverlay::from_graph(g);
        let g = &overlay.to_graph();
        let decomp = decompose(g, &opts.partition);
        let all: Vec<usize> = (0..decomp.num_subgraphs()).collect();
        let runs = run_subgraph_kernels(&decomp, &all, &opts);
        let contribs: Vec<Vec<f64>> = runs.into_iter().map(|r| r.local).collect();
        let memberships = build_memberships(&decomp, g.num_vertices());
        let mut engine =
            DynamicBc { opts, overlay, decomp, contribs, scores: Vec::new(), memberships };
        engine.refold();
        engine
    }

    /// The current global BC scores (ordered-pair convention, matching
    /// [`apgre_bc::bc_apgre`]), indexed by vertex id.
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// The engine's maintained decomposition. After local batches this may
    /// be coarser than a fresh `decompose` of the current graph (a local
    /// edit can create articulation points *internal* to a sub-graph, which
    /// the engine deliberately does not re-split on), but it always remains
    /// a valid APGRE decomposition of the current graph.
    pub fn decomposition(&self) -> &Decomposition {
        &self.decomp
    }

    /// Materializes the current graph as an immutable CSR snapshot.
    pub fn current_graph(&self) -> Graph {
        self.overlay.to_graph()
    }

    /// Number of vertices currently tracked.
    pub fn num_vertices(&self) -> usize {
        self.overlay.num_vertices()
    }

    /// Applies one batch: mutates the overlay, classifies the change,
    /// recomputes exactly the dirty sub-graphs, and refreshes the global
    /// scores. Scores are consistent with the post-batch graph on return.
    ///
    /// # Panics
    /// Panics if a mutation references a vertex id that does not exist at
    /// the point the mutation is applied (mutations earlier in the batch —
    /// including [`Mutation::AddVertex`] — are visible to later ones).
    pub fn apply(&mut self, batch: &MutationBatch) -> DynamicReport {
        let start = Instant::now();

        // Phase 1: push the batch into the overlay, recording which
        // mutations actually changed state. Vertex-set changes force the
        // structural path outright.
        let mut edits: Vec<EdgeEdit> = Vec::new();
        let mut noops = 0usize;
        let mut vertex_change = false;
        for &m in batch.mutations() {
            match m {
                Mutation::AddEdge(u, v) => {
                    if self.overlay.add_edge(u, v) {
                        edits.push(EdgeEdit { add: true, u, v });
                    } else {
                        noops += 1;
                    }
                }
                Mutation::RemoveEdge(u, v) => {
                    if self.overlay.remove_edge(u, v) {
                        edits.push(EdgeEdit { add: false, u, v });
                    } else {
                        noops += 1;
                    }
                }
                Mutation::AddVertex => {
                    self.overlay.add_vertex();
                    vertex_change = true;
                }
                Mutation::RemoveVertex(v) => {
                    if self.overlay.remove_vertex(v) > 0 {
                        vertex_change = true;
                    } else {
                        noops += 1;
                    }
                }
            }
        }
        let applied = batch.len() - noops;

        // Phase 2: classify and recompute.
        if applied == 0 {
            return DynamicReport {
                class: BatchClass::Noop,
                reason: "no mutation changed the graph",
                dirty_subgraphs: 0,
                reused_contributions: self.decomp.num_subgraphs(),
                applied_mutations: 0,
                noop_mutations: noops,
                total_subgraphs: self.decomp.num_subgraphs(),
                wall_clock: start.elapsed(),
            };
        }

        let structural_reason = if vertex_change {
            Some("vertex set changed")
        } else if self.overlay.is_directed() {
            // The local soundness argument (DESIGN.md §3.8) is undirected:
            // directed reachability is not separated by articulation points
            // the same way, so every directed edit escalates.
            Some("directed graph: local path not supported")
        } else {
            None
        };

        let (class, reason, dirty, reused) = match structural_reason {
            Some(reason) => {
                let (reused, recomputed) = self.rebuild_structural();
                (BatchClass::Structural, reason, recomputed, reused)
            }
            None => match self.try_local(&edits) {
                Ok(dirty) => {
                    let reused = self.decomp.num_subgraphs() - dirty;
                    (BatchClass::Local, "all edits inside existing sub-graphs", dirty, reused)
                }
                Err(reason) => {
                    let (reused, recomputed) = self.rebuild_structural();
                    (BatchClass::Structural, reason, recomputed, reused)
                }
            },
        };

        DynamicReport {
            class,
            reason,
            dirty_subgraphs: dirty,
            reused_contributions: reused,
            applied_mutations: applied,
            noop_mutations: noops,
            total_subgraphs: self.decomp.num_subgraphs(),
            wall_clock: start.elapsed(),
        }
    }

    /// Attempts the local path for a batch of effective edge edits. Returns
    /// the number of dirty sub-graphs on success, or the escalation reason
    /// when the batch must take the structural path. Mutates `self` only
    /// after every check has passed.
    fn try_local(&mut self, edits: &[EdgeEdit]) -> Result<usize, &'static str> {
        // Map every edit to the unique sub-graph containing both endpoints.
        // Merged sub-graphs pairwise share at most one vertex (they are
        // vertex-disjoint unions of BCCs glued at articulation points), so
        // a pair of distinct vertices lies in at most one sub-graph — the
        // intersection below has size 0 or 1.
        let mut per_sg: BTreeMap<usize, Vec<(bool, u32, u32)>> = BTreeMap::new();
        for e in edits {
            let su = &self.memberships[e.u as usize];
            let sv = &self.memberships[e.v as usize];
            let mut common = su.iter().filter(|s| sv.binary_search(s).is_ok());
            let s = match (common.next(), common.next()) {
                (Some(&s), None) => s as usize,
                (None, _) => return Err("edit endpoints span sub-graphs"),
                (Some(_), Some(_)) => return Err("ambiguous sub-graph membership"),
            };
            let sg = &self.decomp.subgraphs[s];
            let (lu, lv) = match (sg.local_of(e.u), sg.local_of(e.v)) {
                (Some(a), Some(b)) => (a, b),
                _ => return Err("membership map out of sync"),
            };
            per_sg.entry(s).or_default().push((e.add, lu, lv));
        }

        // Validate every dirty sub-graph before committing any of them.
        let mut replacements: Vec<(usize, Graph)> = Vec::with_capacity(per_sg.len());
        for (&s, sg_edits) in &per_sg {
            let sg = &self.decomp.subgraphs[s];
            let ln = sg.num_vertices();
            let mut edges: BTreeSet<(u32, u32)> = sg.graph.undirected_edges().collect();
            for &(add, lu, lv) in sg_edits {
                let key = (lu.min(lv), lu.max(lv));
                let changed = if add { edges.insert(key) } else { edges.remove(&key) };
                if !changed {
                    // The overlay accepted this edit, so the sub-graph's
                    // local edge set disagrees with the global graph — only
                    // possible if this edge was assigned to a different
                    // sub-graph. Escalate rather than guess.
                    return Err("edge not owned by the candidate sub-graph");
                }
            }
            if !is_connected(ln, &edges) {
                // A disconnecting removal changes reachability counts (and
                // therefore other sub-graphs' α/β), which only a fresh
                // decomposition accounts for.
                return Err("removal disconnects a sub-graph");
            }
            let list: Vec<(u32, u32)> = edges.into_iter().collect();
            replacements.push((s, Graph::undirected_from_edges(ln, &list)));
        }

        // Commit: swap in the edited local graphs, refresh the whisker
        // folding (boundary flags and α/β are untouched by construction —
        // that is what makes the edit local), re-run only the dirty
        // kernels, and refold.
        let dirty: Vec<usize> = per_sg.keys().copied().collect();
        for (s, graph) in replacements {
            let sg = &mut self.decomp.subgraphs[s];
            sg.graph = graph;
            sg.recompute_whiskers();
        }
        let runs = run_subgraph_kernels(&self.decomp, &dirty, &self.opts);
        for run in runs {
            self.contribs[run.index] = run.local;
        }
        self.refold();
        Ok(dirty.len())
    }

    /// The structural path: re-decompose the current graph, carry forward
    /// contributions of sub-graphs whose kernel input is unchanged (matched
    /// by [`apgre_decomp::SubGraph::fingerprint`], a hash of the exact
    /// kernel input stream), and recompute the rest. Returns
    /// `(reused, recomputed)`.
    fn rebuild_structural(&mut self) -> (usize, usize) {
        let g = self.overlay.to_graph();
        let new_decomp = decompose(&g, &self.opts.partition);

        // Multiset map: fingerprint -> stored contributions. Duplicate
        // fingerprints (e.g. many identical whisker stars) each carry at
        // most once; the vectors are interchangeable because equal
        // fingerprints mean bitwise-equal kernel inputs.
        let mut carry: HashMap<u64, Vec<Vec<f64>>> = HashMap::new();
        for (sg, contrib) in self.decomp.subgraphs.iter().zip(self.contribs.drain(..)) {
            carry.entry(sg.fingerprint()).or_default().push(contrib);
        }

        let total = new_decomp.num_subgraphs();
        let mut contribs: Vec<Vec<f64>> = vec![Vec::new(); total];
        let mut misses: Vec<usize> = Vec::new();
        for (i, sg) in new_decomp.subgraphs.iter().enumerate() {
            match carry.get_mut(&sg.fingerprint()).and_then(Vec::pop) {
                Some(v) => contribs[i] = v,
                None => misses.push(i),
            }
        }
        let recomputed = misses.len();
        let runs = run_subgraph_kernels(&new_decomp, &misses, &self.opts);
        for run in runs {
            contribs[run.index] = run.local;
        }

        self.memberships = build_memberships(&new_decomp, g.num_vertices());
        self.decomp = new_decomp;
        self.contribs = contribs;
        self.refold();
        (total - recomputed, recomputed)
    }

    /// Folds the stored contributions into the global score vector, from
    /// zeros, in ascending sub-graph index order — the exact fold order of
    /// the batch driver's reorder-buffer merge, so a forced-`Seq` engine is
    /// bitwise-identical to `bc_from_decomposition` on the same
    /// decomposition.
    fn refold(&mut self) {
        let n = self.overlay.num_vertices();
        let mut scores = vec![0.0f64; n];
        for (sg, contrib) in self.decomp.subgraphs.iter().zip(&self.contribs) {
            for (l, &x) in contrib.iter().enumerate() {
                scores[sg.globals[l] as usize] += x;
            }
        }
        self.scores = scores;
    }
}

/// Vertex -> sorted sub-graph indices. Articulation points appear in every
/// sub-graph they border; every other vertex in exactly one.
fn build_memberships(decomp: &Decomposition, n: usize) -> Vec<Vec<u32>> {
    let mut memberships: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, sg) in decomp.subgraphs.iter().enumerate() {
        for &v in &sg.globals {
            memberships[v as usize].push(i as u32);
        }
    }
    // Built in ascending sub-graph order, so each list is already sorted.
    memberships
}

/// BFS connectivity over an edge set on `n` local vertices.
fn is_connected(n: usize, edges: &BTreeSet<(u32, u32)>) -> bool {
    if n <= 1 {
        return true;
    }
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(u, v) in edges {
        adj[u as usize].push(v);
        adj[v as usize].push(u);
    }
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::from([0u32]);
    seen[0] = true;
    let mut count = 1usize;
    while let Some(u) = queue.pop_front() {
        for &w in &adj[u as usize] {
            if !seen[w as usize] {
                seen[w as usize] = true;
                count += 1;
                queue.push_back(w);
            }
        }
    }
    count == n
}

/// One-shot convenience and serial-oracle anchor: builds a [`DynamicBc`]
/// over `g`, replays `batches` in order, and returns the final scores —
/// equal (1e-9 relative) to a from-scratch APGRE/Brandes run on the final
/// graph.
pub fn bc_dynamic(g: &Graph, batches: &[MutationBatch], opts: &ApgreOptions) -> Vec<f64> {
    let mut engine = DynamicBc::new(g, opts.clone());
    for batch in batches {
        engine.apply(batch);
    }
    engine.scores().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use apgre_bc::bc_serial;
    use apgre_decomp::PartitionOptions;

    /// Unmerged decomposition: on the tiny test graphs below, the default
    /// `merge_threshold` folds everything into one sub-graph, which would
    /// make every edge edit trivially local. Threshold 0 keeps the BCCs
    /// separate so both classification paths are exercised.
    fn fine_opts() -> ApgreOptions {
        ApgreOptions {
            partition: PartitionOptions { merge_threshold: 0, ..Default::default() },
            ..Default::default()
        }
    }

    fn assert_close(ctx: &str, got: &[f64], want: &[f64]) {
        assert_eq!(got.len(), want.len(), "{ctx}");
        for i in 0..want.len() {
            assert!(
                (got[i] - want[i]).abs() <= 1e-9 * (1.0 + got[i].abs().max(want[i].abs())),
                "{ctx}: vertex {i}: {} vs {}",
                got[i],
                want[i]
            );
        }
    }

    /// Two triangles joined at an articulation point, each with a whisker.
    fn two_triangles() -> Graph {
        Graph::undirected_from_edges(
            8,
            &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2), (0, 5), (4, 6)],
        )
    }

    #[test]
    fn initial_scores_match_serial() {
        let g = two_triangles();
        let engine = DynamicBc::new(&g, ApgreOptions::default());
        assert_close("init", engine.scores(), &bc_serial(&g));
    }

    #[test]
    fn local_edit_inside_one_subgraph() {
        let g = two_triangles();
        let mut engine = DynamicBc::new(&g, fine_opts());
        // Triangle {0, 1, 2} is its own sub-graph at threshold 0. Removing
        // chord 0-2 keeps it connected (via 1), so the edit is local and
        // dirties exactly one sub-graph.
        let rep = engine.apply(&MutationBatch::new().remove_edge(0, 2));
        assert_eq!(rep.class, BatchClass::Local, "{}", rep.reason);
        assert_eq!(rep.dirty_subgraphs, 1);
        assert_eq!(rep.reused_contributions, rep.total_subgraphs - 1);
        assert_close("chord off", engine.scores(), &bc_serial(&engine.current_graph()));
        // Putting it back is local too.
        let rep = engine.apply(&MutationBatch::new().add_edge(0, 2));
        assert_eq!(rep.class, BatchClass::Local, "{}", rep.reason);
        assert_close("chord on", engine.scores(), &bc_serial(&engine.current_graph()));
        assert_close("back to start", engine.scores(), &bc_serial(&g));
    }

    #[test]
    fn net_zero_batch_is_effective_but_exact() {
        let g = two_triangles();
        let mut engine = DynamicBc::new(&g, ApgreOptions::default());
        // remove+add of the same edge nets to no change of the edge set but
        // both edits are effective (each changed state when applied).
        let rep = engine.apply(&MutationBatch::new().remove_edge(0, 1).add_edge(0, 1));
        assert_eq!(rep.applied_mutations, 2);
        assert_close("net-zero batch", engine.scores(), &bc_serial(&engine.current_graph()));
    }

    #[test]
    fn noop_batch_reuses_everything() {
        let g = two_triangles();
        let mut engine = DynamicBc::new(&g, ApgreOptions::default());
        let before = engine.scores().to_vec();
        let rep = engine.apply(&MutationBatch::new().add_edge(0, 1).remove_edge(0, 7));
        assert_eq!(rep.class, BatchClass::Noop);
        assert_eq!(rep.dirty_subgraphs, 0);
        assert_eq!(rep.noop_mutations, 2);
        assert_eq!(engine.scores(), &before[..], "noop batch is bitwise stable");
    }

    #[test]
    fn structural_bridge_add() {
        let g = two_triangles();
        let mut engine = DynamicBc::new(&g, fine_opts());
        // Whisker tip 5 to whisker tip 6: merges structure across the
        // articulation point — must escalate and still be exact.
        let rep = engine.apply(&MutationBatch::new().add_edge(5, 6));
        assert_eq!(rep.class, BatchClass::Structural);
        assert_close("bridge", engine.scores(), &bc_serial(&engine.current_graph()));
    }

    #[test]
    fn vertex_mutations_are_structural_and_exact() {
        let g = two_triangles();
        let mut engine = DynamicBc::new(&g, ApgreOptions::default());
        let rep = engine.apply(&MutationBatch::new().add_vertex().add_edge(8, 2));
        assert_eq!(rep.class, BatchClass::Structural);
        assert_eq!(engine.num_vertices(), 9);
        assert_close("grow", engine.scores(), &bc_serial(&engine.current_graph()));
        let rep = engine.apply(&MutationBatch::new().remove_vertex(2));
        assert_eq!(rep.class, BatchClass::Structural);
        assert_close("strip hub", engine.scores(), &bc_serial(&engine.current_graph()));
        // Stripping an already-isolated vertex is a noop.
        let rep = engine.apply(&MutationBatch::new().remove_vertex(2));
        assert_eq!(rep.class, BatchClass::Noop);
    }

    #[test]
    fn whisker_add_and_remove_stay_correct() {
        let g = two_triangles();
        let mut engine = DynamicBc::new(&g, fine_opts());
        // Remove whisker edge 0-5: vertex 5 becomes isolated. This
        // disconnects the sub-graph containing it, so it must escalate.
        let rep = engine.apply(&MutationBatch::new().remove_edge(0, 5));
        assert_eq!(rep.class, BatchClass::Structural);
        assert_close("whisker off", engine.scores(), &bc_serial(&engine.current_graph()));
        let rep = engine.apply(&MutationBatch::new().add_edge(0, 5));
        assert_eq!(rep.class, BatchClass::Structural, "reattach joins components");
        assert_close("whisker on", engine.scores(), &bc_serial(&engine.current_graph()));
    }

    #[test]
    fn directed_always_structural() {
        let g = Graph::directed_from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 0)]);
        let mut engine = DynamicBc::new(&g, ApgreOptions::default());
        let rep = engine.apply(&MutationBatch::new().add_edge(1, 3));
        assert_eq!(rep.class, BatchClass::Structural);
        assert_close("directed", engine.scores(), &bc_serial(&engine.current_graph()));
    }

    #[test]
    fn bc_dynamic_matches_serial_replay() {
        let g = two_triangles();
        let batches = vec![
            MutationBatch::new().add_edge(1, 4),
            MutationBatch::new().remove_edge(2, 3),
            MutationBatch::new().add_vertex().add_edge(8, 1).add_edge(8, 0),
        ];
        let got = bc_dynamic(&g, &batches, &ApgreOptions::default());
        let mut engine = DynamicBc::new(&g, ApgreOptions::default());
        for b in &batches {
            engine.apply(b);
        }
        assert_close("bc_dynamic replay", &got, &bc_serial(&engine.current_graph()));
    }
}
