//! Incremental betweenness centrality over the APGRE decomposition.
//!
//! The batch pipeline recomputes everything on any change; this crate turns
//! it into an updatable engine. The key observation is the same one APGRE
//! itself rests on: the block-cut tree separates the graph into merged
//! biconnected sub-graphs that interact **only** through the α/β tables of
//! their boundary articulation points. An edit whose endpoints both lie
//! inside one sub-graph leaves every other sub-graph's DAGs — and all
//! boundary α/β — untouched, so only that sub-graph's local score
//! contribution needs recomputing.
//!
//! Pieces:
//!
//! * [`MutationBatch`] — a recorded group of edge/vertex [`Mutation`]s,
//!   applied atomically per batch,
//! * [`DynamicBc`] — the engine: a mutable
//!   [`apgre_graph::GraphOverlay`], the maintained decomposition, one stored
//!   score contribution per sub-graph, and the classification + recompute
//!   scheduler ([`DynamicBc::apply`]),
//! * [`DynamicReport`] — per-batch counters (classification, dirty
//!   sub-graphs, reused contributions, wall clock),
//! * [`bc_dynamic`] — the one-shot entry point: build, replay batches,
//!   return final scores.
//!
//! Publishing ([`DynamicBc::snapshot`] / [`EngineSnapshot`]) is
//! copy-on-write through `apgre-store`'s chunked [`GraphView`] and
//! [`ScoreChunks`], so a snapshot costs O(chunks touched since the last
//! one) instead of O(V+E); [`PublishStats`] accounts for the sharing.
//!
//! Correctness argument and the local/structural classification rules are
//! in DESIGN.md §3.8; the snapshot store's layering is §3.11.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod mutation;

pub use apgre_approx::{SampleBudget, SampleOptions, SampleRefresh};
pub use apgre_store::{GraphView, PublishStats, ScoreChunks, TopCache};
pub use engine::{
    bc_dynamic, ApproxSnapshot, BatchClass, DynamicBc, DynamicReport, EngineSnapshot,
};
pub use mutation::{Mutation, MutationBatch};
