//! Property-based tests: incremental BC ≡ from-scratch APGRE under random
//! mutation batches.
//!
//! Random base graphs (undirected and directed, connected or not) receive
//! random batches mixing edge adds/removes — including whisker
//! attach/detach and articulation-point-creating bridges — and vertex
//! churn. After every batch the engine's scores must match a from-scratch
//! APGRE run on the current graph within 1e-9 relative, and a forced-`Seq`
//! engine must stay bitwise identical to the batch driver replayed on the
//! engine's own maintained decomposition.

use apgre_bc::{bc_from_decomposition, ApgreOptions, KernelPolicy};
use apgre_decomp::PartitionOptions;
use apgre_dynamic::{bc_dynamic, DynamicBc, Mutation, MutationBatch};
use apgre_graph::Graph;
use proptest::prelude::*;

fn assert_close(ctx: &str, got: &[f64], want: &[f64]) {
    assert_eq!(got.len(), want.len(), "{ctx}: length");
    for i in 0..want.len() {
        let (x, y) = (got[i], want[i]);
        assert!(
            (x - y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs())),
            "{ctx}: vertex {i}: got {x}, want {y}"
        );
    }
}

/// Raw mutation descriptor: resolved against the live vertex count at apply
/// time, so batches stay valid as vertex churn grows the graph.
#[derive(Clone, Debug)]
enum RawMut {
    Add(u32, u32),
    Remove(u32, u32),
    AddVertex,
    StripVertex(u32),
}

fn resolve(raw: &[RawMut], n: usize) -> MutationBatch {
    let mut batch = MutationBatch::new();
    let clamp = |v: u32| v % n.max(1) as u32;
    for m in raw {
        batch.push(match *m {
            RawMut::Add(u, v) => Mutation::AddEdge(clamp(u), clamp(v)),
            RawMut::Remove(u, v) => Mutation::RemoveEdge(clamp(u), clamp(v)),
            RawMut::AddVertex => Mutation::AddVertex,
            RawMut::StripVertex(v) => Mutation::RemoveVertex(clamp(v)),
        });
    }
    batch
}

fn raw_mutation() -> impl Strategy<Value = RawMut> {
    // Weighted pick via a roll (the vendored proptest stand-in has no
    // `prop_oneof!`). Edge edits dominate: adds create chords, bridges (new
    // articulation points), and whiskers; removes detach whiskers and split
    // BCCs. Endpoints are drawn wide and clamped at apply time.
    (0u32..11, 0u32..4096, 0u32..4096).prop_map(|(roll, a, b)| match roll {
        0..=4 => RawMut::Add(a, b),
        5..=8 => RawMut::Remove(a, b),
        9 => RawMut::AddVertex,
        _ => RawMut::StripVertex(a),
    })
}

fn scenario(
    n_max: u32,
    m_max: usize,
) -> impl Strategy<Value = (u32, Vec<(u32, u32)>, Vec<Vec<RawMut>>)> {
    (3..n_max).prop_flat_map(move |n| {
        let edge = (0..n, 0..n);
        (
            Just(n),
            proptest::collection::vec(edge, 1..m_max),
            proptest::collection::vec(proptest::collection::vec(raw_mutation(), 1..4), 1..6),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn incremental_matches_scratch_undirected(
        (n, edges, stream) in scenario(40, 90),
        threshold in 0usize..12,
    ) {
        let g = Graph::undirected_from_edges(n as usize, &edges);
        let opts = ApgreOptions {
            partition: PartitionOptions { merge_threshold: threshold, ..Default::default() },
            ..Default::default()
        };
        let mut engine = DynamicBc::new(&g, opts.clone());
        for (k, raw) in stream.iter().enumerate() {
            let batch = resolve(raw, engine.num_vertices());
            engine.apply(&batch);
            let current = engine.current_graph();
            let (scratch, _) = apgre_bc::bc_apgre_with(&current, &opts);
            assert_close(&format!("und n={n} t={threshold} batch {k}"), engine.scores(), &scratch);
        }
    }

    #[test]
    fn incremental_matches_scratch_directed(
        (n, edges, stream) in scenario(32, 80),
        threshold in 0usize..12,
    ) {
        let g = Graph::directed_from_edges(
            n as usize,
            &edges.iter().copied().filter(|&(u, v)| u != v).collect::<Vec<_>>(),
        );
        let opts = ApgreOptions {
            partition: PartitionOptions { merge_threshold: threshold, ..Default::default() },
            ..Default::default()
        };
        let mut engine = DynamicBc::new(&g, opts.clone());
        for (k, raw) in stream.iter().enumerate() {
            let batch = resolve(raw, engine.num_vertices());
            engine.apply(&batch);
            let current = engine.current_graph();
            let (scratch, _) = apgre_bc::bc_apgre_with(&current, &opts);
            assert_close(&format!("dir n={n} t={threshold} batch {k}"), engine.scores(), &scratch);
        }
    }

    #[test]
    fn forced_seq_is_bitwise_vs_own_decomposition(
        (n, edges, stream) in scenario(36, 80),
        threshold in 0usize..12,
    ) {
        let g = Graph::undirected_from_edges(n as usize, &edges);
        let opts = ApgreOptions {
            kernel: KernelPolicy::Seq,
            partition: PartitionOptions { merge_threshold: threshold, ..Default::default() },
            ..Default::default()
        };
        let mut engine = DynamicBc::new(&g, opts.clone());
        for (k, raw) in stream.iter().enumerate() {
            let batch = resolve(raw, engine.num_vertices());
            engine.apply(&batch);
            let current = engine.current_graph();
            let (anchor, _) = bc_from_decomposition(&current, engine.decomposition(), &opts);
            prop_assert_eq!(
                engine.scores(),
                &anchor[..],
                "n={} t={} batch {}: bitwise divergence", n, threshold, k
            );
        }
    }

    #[test]
    fn adaptive_refresh_is_bitwise_vs_scratch_oracle(
        (n, edges, stream) in scenario(34, 80),
        threshold in 0usize..12,
        budget in 4usize..40,
    ) {
        use apgre_approx::{bc_sampled_with_stderr_from_decomposition, SampleOptions};

        let g = Graph::undirected_from_edges(n as usize, &edges);
        let opts = ApgreOptions {
            kernel: KernelPolicy::Seq,
            partition: PartitionOptions { merge_threshold: threshold, ..Default::default() },
            ..Default::default()
        };
        let sopts = SampleOptions::adaptive(budget, 0xAD4B ^ budget as u64);
        let mut engine = DynamicBc::new(&g, opts.clone());
        engine.enable_approx(sopts.clone());
        for (k, raw) in stream.iter().enumerate() {
            let batch = resolve(raw, engine.num_vertices());
            engine.apply(&batch);
            // The incremental refresh re-pilots only dirty sub-graphs and
            // resamples the pending set plus allocation drift; the oracle
            // re-plans everything from scratch. They must agree bitwise —
            // estimates and standard errors.
            let ap = engine.approx_snapshot().expect("estimator enabled");
            let (want, want_err) = bc_sampled_with_stderr_from_decomposition(
                engine.decomposition(), &opts, &sopts);
            let got = ap.estimates.to_vec();
            prop_assert_eq!(got.len(), want.len(), "n={} batch {}: length", n, k);
            for v in 0..want.len() {
                prop_assert_eq!(
                    got[v].to_bits(), want[v].to_bits(),
                    "n={} t={} B={} batch {}: estimate bits diverge at vertex {}",
                    n, threshold, budget, k, v
                );
                prop_assert_eq!(
                    ap.stderr(v).to_bits(), want_err[v].to_bits(),
                    "n={} t={} B={} batch {}: stderr bits diverge at vertex {}",
                    n, threshold, budget, k, v
                );
            }
        }
    }

    #[test]
    fn one_shot_replay_matches_serial(
        (n, edges, stream) in scenario(28, 60),
    ) {
        let g = Graph::undirected_from_edges(n as usize, &edges);
        let opts = ApgreOptions::default();
        // Replay through the engine to learn the final graph, then check the
        // one-shot entry point against serial Brandes on that graph.
        let mut engine = DynamicBc::new(&g, opts.clone());
        let mut batches = Vec::new();
        for raw in &stream {
            let batch = resolve(raw, engine.num_vertices());
            engine.apply(&batch);
            batches.push(batch);
        }
        let got = bc_dynamic(&g, &batches, &opts);
        let want = apgre_bc::bc_serial(&engine.current_graph());
        assert_close(&format!("one-shot n={n}"), &got, &want);
    }
}
