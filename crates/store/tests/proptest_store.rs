//! Property-based tests for the copy-on-write snapshot store.
//!
//! * [`CowGraph`] is driven in lockstep with a [`GraphOverlay`] (the
//!   engine's source of truth) through random mutation streams — edge
//!   churn, vertex growth, vertex stripping — and must stay CSR-identical
//!   to `overlay.to_graph()` after every batch, including immediately
//!   after an explicit `compact()`.
//! * [`FoldStore`] receives random splice sequences (survivor subsets kept
//!   in order, fresh groups appended at the tail, dirty spans rewritten)
//!   and must stay bitwise-identical to a store rebuilt from scratch over
//!   the same spans, for both the flat fold and every per-vertex fold.

use std::sync::Arc;

use apgre_graph::{Graph, GraphOverlay};
use apgre_store::{CowGraph, FoldStore};
use proptest::prelude::*;

/// Raw mutation descriptor, clamped against the live vertex count at apply
/// time (mirrors the dynamic crate's property-test driver).
#[derive(Clone, Debug)]
enum RawMut {
    Add(u32, u32),
    Remove(u32, u32),
    AddVertex,
    StripVertex(u32),
}

fn raw_mutation() -> impl Strategy<Value = RawMut> {
    (0u32..11, 0u32..4096, 0u32..4096).prop_map(|(roll, a, b)| match roll {
        0..=4 => RawMut::Add(a, b),
        5..=8 => RawMut::Remove(a, b),
        9 => RawMut::AddVertex,
        _ => RawMut::StripVertex(a),
    })
}

fn cow_scenario(
    n_max: u32,
    m_max: usize,
) -> impl Strategy<Value = (u32, Vec<(u32, u32)>, Vec<Vec<RawMut>>)> {
    (3..n_max).prop_flat_map(move |n| {
        let edge = (0..n, 0..n);
        (
            Just(n),
            proptest::collection::vec(edge, 1..m_max),
            proptest::collection::vec(proptest::collection::vec(raw_mutation(), 1..6), 1..6),
        )
    })
}

/// Applies one raw mutation to the overlay and mirrors the *effective*
/// outcome into the cow — exactly the engine's phase-1 contract (the cow
/// only ever sees edits that changed the overlay's state).
fn apply_mirrored(overlay: &mut GraphOverlay, cow: &mut CowGraph, m: &RawMut) {
    let n = overlay.num_vertices().max(1) as u32;
    let clamp = |v: u32| v % n;
    match *m {
        RawMut::Add(u, v) => {
            let (u, v) = (clamp(u), clamp(v));
            if overlay.add_edge(u, v) {
                cow.add_edge(u, v);
            }
        }
        RawMut::Remove(u, v) => {
            let (u, v) = (clamp(u), clamp(v));
            if overlay.remove_edge(u, v) {
                cow.remove_edge(u, v);
            }
        }
        RawMut::AddVertex => {
            overlay.add_vertex();
            cow.add_vertex();
        }
        RawMut::StripVertex(v) => {
            let v = clamp(v);
            if overlay.is_directed() {
                return; // undirected-only lowering, like the engine
            }
            let nbrs = overlay.neighbors(v).to_vec();
            if overlay.remove_vertex(v) > 0 {
                for w in nbrs {
                    cow.remove_edge(v, w);
                }
            }
        }
    }
}

/// One sub-graph for the fold-store driver: sorted unique vertex ids with
/// one (exactly representable) contribution value each.
fn group(n: u32) -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0..n, 0u32..1000), 1..12).prop_map(|mut pairs| {
        pairs.sort_by_key(|&(v, _)| v);
        pairs.dedup_by_key(|pair| pair.0);
        pairs
    })
}

type SpliceStep = (Vec<u32>, Vec<Vec<(u32, u32)>>, u32);

fn fold_scenario() -> impl Strategy<Value = (u32, Vec<Vec<(u32, u32)>>, Vec<SpliceStep>)> {
    (4u32..2200).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec(group(n), 1..8),
            // Each step: a keep/dissolve coin per survivor candidate, fresh
            // groups to append, and a seed for rewriting a dirty span.
            proptest::collection::vec(
                (
                    proptest::collection::vec(0u32..2, 1..10),
                    proptest::collection::vec(group(n), 0..4),
                    0u32..1000,
                ),
                1..5,
            ),
        )
    })
}

fn spans_of(groups: &[Vec<(u32, u32)>]) -> Vec<(Arc<[u32]>, Arc<[f64]>)> {
    groups
        .iter()
        .map(|g| {
            let globals: Vec<u32> = g.iter().map(|&(v, _)| v).collect();
            // Halves are exact in binary floating point, so any fold-order
            // bug shows up as a hard bitwise mismatch, not a rounding blur.
            let values: Vec<f64> = g.iter().map(|&(_, x)| x as f64 / 2.0).collect();
            (Arc::from(globals), Arc::from(values))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn cow_stays_csr_identical_undirected(
        (n, edges, stream) in cow_scenario(1500, 160),
    ) {
        let g = Graph::undirected_from_edges(n as usize, &edges);
        let mut overlay = GraphOverlay::from_graph(&g);
        // The engine normalizes through the overlay before seeding the cow.
        let mut cow = CowGraph::from_graph(&overlay.to_graph());
        for (k, batch) in stream.iter().enumerate() {
            for m in batch {
                apply_mirrored(&mut overlay, &mut cow, m);
            }
            let fresh = overlay.to_graph();
            cow.verify_against_fresh(&fresh)
                .unwrap_or_else(|e| panic!("n={n} batch {k}: {e}"));
            prop_assert_eq!(cow.num_edges(), fresh.num_edges());
            // Compaction must be invisible to readers.
            if k % 2 == 1 {
                cow.compact();
                prop_assert_eq!(cow.delta_arcs(), 0);
                cow.verify_against_fresh(&fresh)
                    .unwrap_or_else(|e| panic!("n={n} batch {k} post-compact: {e}"));
            }
        }
    }

    #[test]
    fn cow_stays_csr_identical_directed(
        (n, edges, stream) in cow_scenario(900, 120),
    ) {
        let arcs: Vec<(u32, u32)> = edges.into_iter().filter(|&(u, v)| u != v).collect();
        let g = Graph::directed_from_edges(n as usize, &arcs);
        let mut overlay = GraphOverlay::from_graph(&g);
        let mut cow = CowGraph::from_graph(&overlay.to_graph());
        for (k, batch) in stream.iter().enumerate() {
            for m in batch {
                apply_mirrored(&mut overlay, &mut cow, m);
            }
            let fresh = overlay.to_graph();
            cow.verify_against_fresh(&fresh)
                .unwrap_or_else(|e| panic!("dir n={n} batch {k}: {e}"));
            if k % 2 == 0 {
                cow.compact();
                cow.verify_against_fresh(&fresh)
                    .unwrap_or_else(|e| panic!("dir n={n} batch {k} post-compact: {e}"));
            }
        }
    }

    #[test]
    fn cow_views_survive_later_mutations(
        (n, edges, stream) in cow_scenario(1300, 120),
    ) {
        let g = Graph::undirected_from_edges(n as usize, &edges);
        let mut overlay = GraphOverlay::from_graph(&g);
        let mut cow = CowGraph::from_graph(&overlay.to_graph());
        let frozen = cow.view();
        let want = overlay.to_graph();
        for batch in &stream {
            for m in batch {
                apply_mirrored(&mut overlay, &mut cow, m);
            }
        }
        cow.compact();
        // The pre-mutation view still materializes the pre-mutation CSR.
        let got = frozen.to_graph();
        prop_assert_eq!(got.csr().offsets(), want.csr().offsets());
        prop_assert_eq!(got.csr().targets(), want.csr().targets());
    }

    #[test]
    fn fold_store_matches_fresh_after_random_splices(
        (n, seed_groups, steps) in fold_scenario(),
    ) {
        let mut store = FoldStore::default();
        let mut shadow = seed_groups.clone();
        store.rebuild(n as usize, spans_of(&shadow));
        store
            .verify_against_fresh(n as usize, spans_of(&shadow))
            .unwrap_or_else(|e| panic!("seed: {e}"));

        for (k, (keep, fresh_groups, dirty_seed)) in steps.iter().enumerate() {
            // Survivors keep relative order; fresh groups land at the tail
            // — the maintainer's splice contract.
            let mut old_to_new: Vec<Option<u32>> = Vec::with_capacity(shadow.len());
            let mut survivors: Vec<Vec<(u32, u32)>> = Vec::new();
            for (i, grp) in shadow.iter().enumerate() {
                if keep[i % keep.len()] == 1 {
                    old_to_new.push(Some(survivors.len() as u32));
                    survivors.push(grp.clone());
                } else {
                    old_to_new.push(None);
                }
            }
            let mut next = survivors;
            next.extend(fresh_groups.iter().cloned());
            let spans = spans_of(&next);
            let new_globals: Vec<&[u32]> =
                spans.iter().map(|(g, _)| &g[..]).collect();
            let touched = store.apply_splice(n as usize, &old_to_new, &new_globals);
            // Fresh sub-graphs are dirty by construction: give them values.
            let first_fresh = next.len() - fresh_groups.len();
            for (i, (_, values)) in spans.iter().enumerate().skip(first_fresh) {
                store.set_values(i, Arc::clone(values));
            }
            // Rewrite one survivor's span too (a patched-in-place block).
            if first_fresh > 0 {
                let i = (*dirty_seed as usize) % first_fresh;
                let patched: Vec<f64> =
                    next[i].iter().map(|&(_, x)| (x + dirty_seed) as f64 / 2.0).collect();
                next[i] = next[i]
                    .iter()
                    .map(|&(v, x)| (v, x + dirty_seed))
                    .collect();
                store.set_values(i, Arc::from(patched));
            }
            shadow = next;
            store
                .verify_against_fresh(n as usize, spans_of(&shadow))
                .unwrap_or_else(|e| panic!("step {k}: {e}"));
            // The snapshot folds bitwise-identically, flat and per vertex.
            let snap = store.chunks();
            let flat = store.to_flat();
            prop_assert_eq!(snap.to_vec(), flat.clone());
            for &v in &touched {
                prop_assert_eq!(
                    snap.score(v as usize).to_bits(),
                    flat[v as usize].to_bits()
                );
            }
        }
    }
}
