//! The chunked copy-on-write graph: base CSR adjacency split into
//! fixed-arity vertex chunks behind `Arc`s, with a thin sorted add/remove
//! arc delta per chunk.
//!
//! Invariants (per chunk):
//! * `added` and `removed` are sorted by `(local, target)` and disjoint,
//! * `added` arcs are absent from the base CSR, `removed` arcs present,
//! * undirected graphs store every edge as two arcs (one in each
//!   endpoint's chunk), exactly like the CSR they mirror.
//!
//! Mutations copy only the chunk(s) of the edited endpoints (and only when
//! the chunk is shared with a live snapshot — `Arc::make_mut`); a snapshot
//! ([`CowGraph::view`]) is O(#chunks) pointer clones.

use std::collections::HashSet;
use std::sync::Arc;

use apgre_graph::{Graph, VertexId};

/// Vertices per adjacency chunk. Fixed arity keeps `vertex -> chunk` a
/// shift and bounds the deep-copy a single edit can trigger.
pub const GRAPH_CHUNK_SIZE: usize = 1024;
const CHUNK_BITS: u32 = GRAPH_CHUNK_SIZE.trailing_zeros();

/// Per-chunk delta budget: past this many outstanding add/remove arcs the
/// chunk folds its deltas into the base CSR on the next mutation. The
/// budget trades merge work per read (deltas scanned on every `neighbors`)
/// against compaction churn; 256 keeps the delta scan trivially small next
/// to a 1024-vertex base segment.
const COMPACT_BUDGET: usize = 256;

/// One chunk of adjacency: base CSR rows for `len` consecutive vertices
/// starting at `first`, plus the outstanding arc deltas.
#[derive(Clone, Debug)]
struct AdjChunk {
    /// First vertex id covered by this chunk.
    first: VertexId,
    /// Vertices covered (the tail chunk may be partial).
    len: u32,
    /// CSR row offsets into `targets`; `len + 1` entries.
    offsets: Vec<u32>,
    /// Base arc targets, in the order the source graph stored them
    /// (ascending for materialized undirected graphs).
    targets: Vec<VertexId>,
    /// Arcs added since the last compaction, sorted by `(local, target)`.
    added: Vec<(u32, VertexId)>,
    /// Base arcs removed since the last compaction, sorted likewise.
    removed: Vec<(u32, VertexId)>,
}

/// The delta entries of one local vertex (both delta lists are sorted by
/// `(local, target)`, so the row is a contiguous range).
fn delta_row(list: &[(u32, VertexId)], local: u32) -> &[(u32, VertexId)] {
    let lo = list.partition_point(|&(l, _)| l < local);
    let hi = lo + list[lo..].partition_point(|&(l, _)| l == local);
    &list[lo..hi]
}

impl AdjChunk {
    fn empty(first: VertexId) -> Self {
        AdjChunk {
            first,
            len: 0,
            offsets: vec![0],
            targets: Vec::new(),
            added: Vec::new(),
            removed: Vec::new(),
        }
    }

    fn base_row(&self, local: u32) -> &[VertexId] {
        let lo = self.offsets[local as usize] as usize;
        let hi = self.offsets[local as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    fn degree(&self, local: u32) -> usize {
        self.base_row(local).len() + delta_row(&self.added, local).len()
            - delta_row(&self.removed, local).len()
    }

    /// The merged adjacency row: base minus `removed` plus `added`. For a
    /// base row in ascending target order (every materialized undirected
    /// CSR) the merge is ascending too; with empty deltas it is the base
    /// row verbatim in either case.
    fn neighbors(&self, local: u32) -> Vec<VertexId> {
        let base = self.base_row(local);
        let add = delta_row(&self.added, local);
        let rem = delta_row(&self.removed, local);
        if add.is_empty() && rem.is_empty() {
            return base.to_vec();
        }
        let mut out = Vec::with_capacity(base.len() + add.len() - rem.len());
        let mut ai = 0;
        let mut ri = 0;
        for &t in base {
            if ri < rem.len() && rem[ri].1 == t {
                ri += 1;
                continue;
            }
            while ai < add.len() && add[ai].1 < t {
                out.push(add[ai].1);
                ai += 1;
            }
            out.push(t);
        }
        while ai < add.len() {
            out.push(add[ai].1);
            ai += 1;
        }
        out
    }

    fn arc_count(&self) -> usize {
        self.targets.len() + self.added.len() - self.removed.len()
    }

    /// Folds the deltas into the base CSR (no-op when there are none).
    fn compact(&mut self) {
        if self.added.is_empty() && self.removed.is_empty() {
            return;
        }
        let mut offsets = Vec::with_capacity(self.len as usize + 1);
        let mut targets = Vec::with_capacity(self.arc_count());
        offsets.push(0u32);
        for local in 0..self.len {
            targets.extend_from_slice(&self.neighbors(local));
            offsets.push(targets.len() as u32);
        }
        self.offsets = offsets;
        self.targets = targets;
        self.added.clear();
        self.removed.clear();
    }
}

/// The mutable, chunked copy-on-write graph owned by the engine. Mirrors
/// the engine's [`apgre_graph::GraphOverlay`] edge-for-edge; the engine
/// feeds it the same effective edits it feeds the decomposition
/// maintainer.
#[derive(Clone, Debug)]
pub struct CowGraph {
    directed: bool,
    num_vertices: usize,
    num_arcs: usize,
    chunks: Vec<Arc<AdjChunk>>,
    /// Chunks mutated since the last [`CowGraph::take_copied`] — exactly
    /// the chunks the next snapshot cannot share with the previous one.
    touched: HashSet<u32>,
}

impl CowGraph {
    /// Builds the chunked representation from a materialized graph.
    pub fn from_graph(g: &Graph) -> Self {
        let mut cow = CowGraph {
            directed: g.is_directed(),
            num_vertices: 0,
            num_arcs: 0,
            chunks: Vec::new(),
            touched: HashSet::new(),
        };
        cow.reset_from(g);
        cow
    }

    /// Replaces the entire contents from a materialized graph (the engine's
    /// from-scratch rebuild path). Every chunk is rebuilt, so the next
    /// snapshot shares nothing — which is exactly what a full rebuild
    /// costs.
    pub fn reset_from(&mut self, g: &Graph) {
        self.directed = g.is_directed();
        self.num_vertices = g.num_vertices();
        self.num_arcs = g.num_arcs();
        self.chunks.clear();
        let n = g.num_vertices();
        let num_chunks = n.div_ceil(GRAPH_CHUNK_SIZE);
        for c in 0..num_chunks {
            let first = c * GRAPH_CHUNK_SIZE;
            let len = GRAPH_CHUNK_SIZE.min(n - first);
            let mut chunk = AdjChunk::empty(first as VertexId);
            chunk.len = len as u32;
            for v in first..first + len {
                chunk.targets.extend_from_slice(g.out_neighbors(v as VertexId));
                chunk.offsets.push(chunk.targets.len() as u32);
            }
            self.chunks.push(Arc::new(chunk));
        }
        self.touched = (0..num_chunks as u32).collect();
    }

    /// Whether the graph is directed.
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Edges: arcs for directed graphs, undirected edges otherwise.
    pub fn num_edges(&self) -> usize {
        if self.directed {
            self.num_arcs
        } else {
            self.num_arcs / 2
        }
    }

    /// Outstanding (uncompacted) delta arcs across all chunks.
    pub fn delta_arcs(&self) -> usize {
        self.chunks.iter().map(|c| c.added.len() + c.removed.len()).sum()
    }

    /// Out-degree of `v`.
    pub fn degree(&self, v: VertexId) -> usize {
        let c = (v as usize) >> CHUNK_BITS;
        self.chunks[c].degree(v - self.chunks[c].first)
    }

    /// Out-neighbours of `v` (merged base + deltas).
    pub fn neighbors(&self, v: VertexId) -> Vec<VertexId> {
        let c = (v as usize) >> CHUNK_BITS;
        self.chunks[c].neighbors(v - self.chunks[c].first)
    }

    fn chunk_mut(&mut self, c: usize) -> &mut AdjChunk {
        self.touched.insert(c as u32);
        Arc::make_mut(&mut self.chunks[c])
    }

    /// Appends an isolated vertex and returns its id.
    pub fn add_vertex(&mut self) -> VertexId {
        let v = self.num_vertices as VertexId;
        let c = self.num_vertices >> CHUNK_BITS;
        if c == self.chunks.len() {
            self.chunks.push(Arc::new(AdjChunk::empty((c * GRAPH_CHUNK_SIZE) as VertexId)));
        }
        let chunk = self.chunk_mut(c);
        let end = chunk.offsets[chunk.offsets.len() - 1];
        chunk.offsets.push(end);
        chunk.len += 1;
        self.num_vertices += 1;
        v
    }

    fn add_arc(&mut self, u: VertexId, v: VertexId) {
        let c = (u as usize) >> CHUNK_BITS;
        let local = u - self.chunks[c].first;
        let chunk = self.chunk_mut(c);
        if let Ok(pos) = chunk.removed.binary_search(&(local, v)) {
            // Re-adding a base arc: cancel the pending removal.
            chunk.removed.remove(pos);
        } else if let Err(pos) = chunk.added.binary_search(&(local, v)) {
            chunk.added.insert(pos, (local, v));
        } else {
            debug_assert!(false, "arc {u}->{v} added twice");
        }
        if chunk.added.len() + chunk.removed.len() > COMPACT_BUDGET {
            chunk.compact();
        }
    }

    fn remove_arc(&mut self, u: VertexId, v: VertexId) {
        let c = (u as usize) >> CHUNK_BITS;
        let local = u - self.chunks[c].first;
        let chunk = self.chunk_mut(c);
        if let Ok(pos) = chunk.added.binary_search(&(local, v)) {
            // Removing a not-yet-compacted addition: cancel it.
            chunk.added.remove(pos);
        } else if let Err(pos) = chunk.removed.binary_search(&(local, v)) {
            debug_assert!(chunk.base_row(local).contains(&v), "arc {u}->{v} absent");
            chunk.removed.insert(pos, (local, v));
        } else {
            debug_assert!(false, "arc {u}->{v} removed twice");
        }
        if chunk.added.len() + chunk.removed.len() > COMPACT_BUDGET {
            chunk.compact();
        }
    }

    /// Records an *effective* edge insertion (the caller — the engine's
    /// overlay — has established the edge was absent). Undirected graphs
    /// store the arc in both endpoint chunks.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        debug_assert_ne!(u, v, "self-loops are not representable");
        self.add_arc(u, v);
        self.num_arcs += 1;
        if !self.directed {
            self.add_arc(v, u);
            self.num_arcs += 1;
        }
    }

    /// Records an *effective* edge deletion (the edge was present).
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) {
        self.remove_arc(u, v);
        self.num_arcs -= 1;
        if !self.directed {
            self.remove_arc(v, u);
            self.num_arcs -= 1;
        }
    }

    /// Folds every chunk's deltas into its base CSR. Touches (and thus
    /// un-shares) only chunks that actually had deltas.
    pub fn compact(&mut self) {
        for c in 0..self.chunks.len() {
            if !self.chunks[c].added.is_empty() || !self.chunks[c].removed.is_empty() {
                self.chunk_mut(c).compact();
            }
        }
    }

    /// An immutable snapshot view: O(#chunks) `Arc` clones, no adjacency
    /// copied.
    pub fn view(&self) -> GraphView {
        GraphView {
            directed: self.directed,
            num_vertices: self.num_vertices,
            num_arcs: self.num_arcs,
            chunks: self.chunks.clone(),
        }
    }

    /// Publish accounting: `(chunks touched since the last call, total
    /// chunks)`. Touched chunks are exactly those the next
    /// [`view`](CowGraph::view) cannot share with the previous one;
    /// resets the window.
    pub fn take_copied(&mut self) -> (usize, usize) {
        let copied = self.touched.len().min(self.chunks.len());
        self.touched.clear();
        (copied, self.chunks.len())
    }

    /// Cross-checks the chunked representation against a freshly
    /// materialized graph: same CSR offsets and targets (and reverse CSR
    /// for directed graphs). Used by the engine's `invariants` feature and
    /// the property tests.
    pub fn verify_against_fresh(&self, fresh: &Graph) -> Result<(), String> {
        let mine = self.view().to_graph();
        if mine.is_directed() != fresh.is_directed() {
            return Err("directedness mismatch".to_owned());
        }
        if mine.num_vertices() != fresh.num_vertices() {
            return Err(format!(
                "vertex count mismatch: cow {} vs fresh {}",
                mine.num_vertices(),
                fresh.num_vertices()
            ));
        }
        if mine.csr().offsets() != fresh.csr().offsets()
            || mine.csr().targets() != fresh.csr().targets()
        {
            return Err("forward CSR mismatch between CowGraph and fresh graph".to_owned());
        }
        if fresh.is_directed()
            && (mine.rev_csr().offsets() != fresh.rev_csr().offsets()
                || mine.rev_csr().targets() != fresh.rev_csr().targets())
        {
            return Err("reverse CSR mismatch between CowGraph and fresh graph".to_owned());
        }
        Ok(())
    }
}

/// An immutable, `Send + Sync` snapshot of a [`CowGraph`]: shares every
/// chunk with the store (and with other views) by `Arc`. Mirrors the
/// read-side surface of [`apgre_graph::Graph`] that the query service
/// needs; [`GraphView::to_graph`] materializes a real CSR when one is
/// required (checkpointing).
#[derive(Clone, Debug)]
pub struct GraphView {
    directed: bool,
    num_vertices: usize,
    num_arcs: usize,
    chunks: Vec<Arc<AdjChunk>>,
}

impl GraphView {
    /// Whether the graph is directed.
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Edges: arcs for directed graphs, undirected edges otherwise.
    pub fn num_edges(&self) -> usize {
        if self.directed {
            self.num_arcs
        } else {
            self.num_arcs / 2
        }
    }

    /// Directed arcs stored (`2·E` for undirected graphs).
    pub fn num_arcs(&self) -> usize {
        self.num_arcs
    }

    /// Out-degree of `v`.
    pub fn degree(&self, v: VertexId) -> usize {
        let c = (v as usize) >> CHUNK_BITS;
        self.chunks[c].degree(v - self.chunks[c].first)
    }

    /// Out-neighbours of `v`, merged from the chunk's base row and deltas.
    pub fn neighbors(&self, v: VertexId) -> Vec<VertexId> {
        let c = (v as usize) >> CHUNK_BITS;
        self.chunks[c].neighbors(v - self.chunks[c].first)
    }

    /// Adjacency chunks backing this view.
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Whether this view and `other` share the backing storage of the
    /// chunk covering vertex `v` (test/metrics introspection).
    pub fn shares_chunk(&self, other: &GraphView, v: VertexId) -> bool {
        let c = (v as usize) >> CHUNK_BITS;
        match (self.chunks.get(c), other.chunks.get(c)) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Materializes a real CSR [`Graph`]. For undirected graphs the result
    /// is CSR-identical to `GraphOverlay::to_graph` on the same edge set
    /// (both normalize through [`Graph::undirected_from_edges`], which
    /// sorts and symmetrizes); for directed graphs arcs are emitted in
    /// stored order, so a delta-free view reproduces its source CSR
    /// verbatim.
    pub fn to_graph(&self) -> Graph {
        if self.directed {
            let mut arcs: Vec<(VertexId, VertexId)> = Vec::with_capacity(self.num_arcs);
            for chunk in &self.chunks {
                for local in 0..chunk.len {
                    let u = chunk.first + local;
                    for t in chunk.neighbors(local) {
                        arcs.push((u, t));
                    }
                }
            }
            Graph::directed_from_edges(self.num_vertices, &arcs)
        } else {
            let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(self.num_arcs / 2);
            for chunk in &self.chunks {
                for local in 0..chunk.len {
                    let u = chunk.first + local;
                    for t in chunk.neighbors(local) {
                        if u < t {
                            edges.push((u, t));
                        }
                    }
                }
            }
            Graph::undirected_from_edges(self.num_vertices, &edges)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        Graph::undirected_from_edges(n, &edges)
    }

    #[test]
    fn round_trip_is_csr_identical() {
        let g = path(10);
        let cow = CowGraph::from_graph(&g);
        cow.verify_against_fresh(&g).expect("round trip");
        assert_eq!(cow.num_vertices(), 10);
        assert_eq!(cow.num_edges(), 9);
        assert_eq!(cow.neighbors(1), vec![0, 2]);
    }

    #[test]
    fn edits_merge_into_reads_and_to_graph() {
        let g = path(6);
        let mut cow = CowGraph::from_graph(&g);
        cow.take_copied();
        cow.add_edge(0, 3);
        cow.remove_edge(1, 2);
        assert_eq!(cow.neighbors(0), vec![1, 3]);
        assert_eq!(cow.neighbors(1), vec![0]);
        assert_eq!(cow.degree(3), 3);
        assert_eq!(cow.num_edges(), 5);
        let fresh = Graph::undirected_from_edges(6, &[(0, 1), (0, 3), (2, 3), (3, 4), (4, 5)]);
        cow.verify_against_fresh(&fresh).expect("delta merge");
    }

    #[test]
    fn add_then_remove_cancels_and_reverse() {
        let g = path(4);
        let mut cow = CowGraph::from_graph(&g);
        cow.add_edge(0, 2);
        cow.remove_edge(0, 2);
        assert_eq!(cow.delta_arcs(), 0, "add then remove cancels");
        cow.remove_edge(0, 1);
        cow.add_edge(0, 1);
        assert_eq!(cow.delta_arcs(), 0, "remove then re-add cancels");
        cow.verify_against_fresh(&g).expect("back to start");
    }

    #[test]
    fn views_share_untouched_chunks() {
        // Two chunks: 1500 vertices.
        let g = path(1500);
        let mut cow = CowGraph::from_graph(&g);
        let (copied, total) = cow.take_copied();
        assert_eq!((copied, total), (2, 2), "initial build copies everything");
        let before = cow.view();
        cow.add_edge(0, 2); // both endpoints in chunk 0
        let after = cow.view();
        assert!(before.shares_chunk(&after, 1400), "chunk 1 untouched");
        assert!(!before.shares_chunk(&after, 0), "chunk 0 copied");
        assert_eq!(cow.take_copied(), (1, 2));
        assert_eq!(before.neighbors(0), vec![1], "old view unaffected");
        assert_eq!(after.neighbors(0), vec![1, 2]);
    }

    #[test]
    fn compaction_preserves_the_graph() {
        let g = path(8);
        let mut cow = CowGraph::from_graph(&g);
        cow.add_edge(0, 4);
        cow.remove_edge(2, 3);
        assert!(cow.delta_arcs() > 0);
        cow.compact();
        assert_eq!(cow.delta_arcs(), 0);
        let fresh = Graph::undirected_from_edges(
            8,
            &[(0, 1), (0, 4), (1, 2), (3, 4), (4, 5), (5, 6), (6, 7)],
        );
        cow.verify_against_fresh(&fresh).expect("post-compact");
    }

    #[test]
    fn auto_compaction_bounds_deltas() {
        // A star big enough to overflow one chunk's delta budget.
        let g = Graph::undirected_from_edges(600, &[(0, 1)]);
        let mut cow = CowGraph::from_graph(&g);
        for v in 2..600u32 {
            cow.add_edge(0, v);
        }
        assert!(
            cow.delta_arcs() <= 2 * (COMPACT_BUDGET + 1),
            "deltas stay bounded: {}",
            cow.delta_arcs()
        );
        let edges: Vec<(u32, u32)> = (1..600u32).map(|v| (0, v)).collect();
        cow.verify_against_fresh(&Graph::undirected_from_edges(600, &edges)).expect("star");
    }

    #[test]
    fn vertex_growth_spans_chunks() {
        let g = path(GRAPH_CHUNK_SIZE); // exactly one full chunk
        let mut cow = CowGraph::from_graph(&g);
        let v = cow.add_vertex();
        assert_eq!(v as usize, GRAPH_CHUNK_SIZE);
        assert_eq!(cow.view().num_chunks(), 2, "growth opened a new chunk");
        cow.add_edge(v, 0);
        assert_eq!(cow.neighbors(v), vec![0]);
        let mut edges: Vec<(u32, u32)> =
            (0..GRAPH_CHUNK_SIZE as u32 - 1).map(|i| (i, i + 1)).collect();
        edges.push((v, 0));
        cow.verify_against_fresh(&Graph::undirected_from_edges(GRAPH_CHUNK_SIZE + 1, &edges))
            .expect("grown");
    }

    #[test]
    fn directed_reset_reproduces_csr() {
        let g = Graph::directed_from_edges(5, &[(0, 1), (1, 2), (2, 0), (3, 1), (2, 4)]);
        let cow = CowGraph::from_graph(&g);
        assert!(cow.is_directed());
        assert_eq!(cow.num_edges(), 5);
        cow.verify_against_fresh(&g).expect("directed round trip");
    }
}
