//! Per-sub-graph score chunks with a slot-stable layout.
//!
//! The engine's global score vector is the Equation-8 fold of one local
//! contribution vector per sub-graph, added in **ascending sub-graph index
//! order** (the bitwise determinism anchor, DESIGN.md §3.8). This module
//! stores exactly those contributions — one `Arc<[f64]>` span per
//! sub-graph — plus enough indexing to fold any single vertex on demand in
//! the same order:
//!
//! * **Slots.** Sub-graph indices are renumbered by every structural
//!   splice (survivors compact downward, fresh groups append at the tail),
//!   so per-vertex owner entries reference a stable *slot* instead. A
//!   splice then rewrites only the O(S) `order`/`rank` maps, never the
//!   owner entries of untouched vertices.
//! * **Owner index.** `vertex -> [(slot, local)]` lists, chunked
//!   [`INDEX_CHUNK_SIZE`] vertices per `Arc` so a splice deep-copies only
//!   the chunks containing touched vertices. Entries are unordered; folds
//!   sort the (tiny — one per owning sub-graph) list by current rank.
//! * **Fold order.** [`FoldStore::fold_vertex`] and
//!   [`ScoreChunks::score`] start from `0.0` and add owner contributions
//!   in ascending current-index order — the exact float-add sequence of
//!   the full from-zeros refold, hence bitwise-identical results.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use apgre_graph::VertexId;

/// Vertices per owner-index chunk.
pub const INDEX_CHUNK_SIZE: usize = 1024;
const INDEX_CHUNK_BITS: u32 = INDEX_CHUNK_SIZE.trailing_zeros();

/// Owner entries for one run of [`INDEX_CHUNK_SIZE`] consecutive vertices:
/// CSR-style offsets into a flat `(slot, local)` pair list.
#[derive(Clone, Debug)]
struct IndexChunk {
    /// Per-vertex entry ranges; `covered_vertices + 1` offsets. Vertices
    /// past the covered prefix (grown after the chunk was last rebuilt)
    /// implicitly have no entries.
    offsets: Vec<u32>,
    /// `(slot, local)` owner pairs, unordered within a vertex.
    pairs: Vec<(u32, u32)>,
}

impl IndexChunk {
    fn empty() -> Self {
        IndexChunk { offsets: vec![0], pairs: Vec::new() }
    }

    fn entries(&self, local: usize) -> &[(u32, u32)] {
        if local + 1 >= self.offsets.len() {
            return &[];
        }
        &self.pairs[self.offsets[local] as usize..self.offsets[local + 1] as usize]
    }
}

/// Folds one vertex's score from its owner entries, in ascending
/// current-index order, starting from `0.0` — the same float-add sequence
/// as the full refold.
fn fold_at(
    index: &[Arc<IndexChunk>],
    rank: &[u32],
    values: &[Option<Arc<[f64]>>],
    v: usize,
) -> f64 {
    let chunk = v >> INDEX_CHUNK_BITS;
    let entries = match index.get(chunk) {
        Some(c) => c.entries(v & (INDEX_CHUNK_SIZE - 1)),
        None => &[],
    };
    let mut owners: Vec<(u32, u32)> = entries.to_vec();
    if owners.len() > 1 {
        owners.sort_unstable_by_key(|&(slot, _)| rank[slot as usize]);
    }
    let mut acc = 0.0f64;
    for (slot, local) in owners {
        if let Some(vals) = &values[slot as usize] {
            acc += vals[local as usize];
        }
    }
    acc
}

/// The engine-side store: slot-addressed per-sub-graph contribution spans,
/// the `index <-> slot` maps, and the chunked per-vertex owner index.
///
/// The engine is the only mutator; [`FoldStore::chunks`] snapshots the
/// whole store in O(sub-graphs + vertices/[`INDEX_CHUNK_SIZE`]) `Arc`
/// clones.
#[derive(Debug, Default)]
pub struct FoldStore {
    num_vertices: usize,
    /// Per-slot sub-graph vertex lists (`None` = free slot). Retained for
    /// dead slots' vertices at splice time, so the engine never needs the
    /// pre-splice decomposition.
    globals: Vec<Option<Arc<[u32]>>>,
    /// Per-slot contribution spans, aligned with `globals`.
    values: Vec<Option<Arc<[f64]>>>,
    free: Vec<u32>,
    /// Current sub-graph index -> slot (ascending fold order).
    order: Vec<u32>,
    /// Slot -> current sub-graph index (`u32::MAX` when dead).
    rank: Vec<u32>,
    index: Vec<Arc<IndexChunk>>,
    /// Slots whose value span was replaced since the last
    /// [`FoldStore::take_copied`] window.
    copied: HashSet<u32>,
}

impl FoldStore {
    /// Replaces the whole store from a full set of `(vertex list,
    /// contribution)` pairs in sub-graph index order (seed and rebuild
    /// paths — O(V) by nature there).
    pub fn rebuild(&mut self, num_vertices: usize, subgraphs: Vec<(Arc<[u32]>, Arc<[f64]>)>) {
        let count = subgraphs.len();
        self.num_vertices = num_vertices;
        self.free.clear();
        self.globals = Vec::with_capacity(count);
        self.values = Vec::with_capacity(count);
        self.order = (0..count as u32).collect();
        self.rank = (0..count as u32).collect();
        self.copied = (0..count as u32).collect();
        let mut entries: Vec<(u32, (u32, u32))> = Vec::new();
        for (slot, (globals, values)) in subgraphs.into_iter().enumerate() {
            assert_eq!(globals.len(), values.len(), "contribution span mismatch");
            for (local, &v) in globals.iter().enumerate() {
                entries.push((v, (slot as u32, local as u32)));
            }
            self.globals.push(Some(globals));
            self.values.push(Some(values));
        }
        entries.sort_unstable_by_key(|&(v, _)| v);
        let num_chunks = num_vertices.div_ceil(INDEX_CHUNK_SIZE);
        self.index = Vec::with_capacity(num_chunks);
        let mut ei = 0;
        for c in 0..num_chunks {
            let first = c * INDEX_CHUNK_SIZE;
            let len = INDEX_CHUNK_SIZE.min(num_vertices - first);
            let mut chunk = IndexChunk::empty();
            for local in 0..len {
                let v = (first + local) as u32;
                while ei < entries.len() && entries[ei].0 == v {
                    chunk.pairs.push(entries[ei].1);
                    ei += 1;
                }
                chunk.offsets.push(chunk.pairs.len() as u32);
            }
            self.index.push(Arc::new(chunk));
        }
    }

    /// Number of sub-graphs currently stored.
    pub fn num_subgraphs(&self) -> usize {
        self.order.len()
    }

    /// The contribution span of sub-graph `index` (current indexing).
    pub fn values_of(&self, index: usize) -> Arc<[f64]> {
        let slot = self.order[index] as usize;
        match &self.values[slot] {
            Some(v) => Arc::clone(v),
            None => Arc::from(Vec::new()),
        }
    }

    /// All contribution spans in current sub-graph index order (`Arc`
    /// clones; used by the rebuild path's fingerprint carry-forward).
    pub fn values_in_order(&self) -> Vec<Arc<[f64]>> {
        (0..self.order.len()).map(|i| self.values_of(i)).collect()
    }

    /// Replaces the contribution span of sub-graph `index` (current
    /// indexing) after its kernel re-ran.
    pub fn set_values(&mut self, index: usize, values: Arc<[f64]>) {
        let slot = self.order[index] as usize;
        match &self.globals[slot] {
            Some(g) => assert_eq!(g.len(), values.len(), "contribution span mismatch"),
            None => panic!("set_values on a free slot"),
        }
        self.values[slot] = Some(values);
        self.copied.insert(slot as u32);
    }

    /// Applies a structural splice: `old_to_new` maps pre-splice sub-graph
    /// indices to post-splice ones (`None` = dissolved), `new_globals`
    /// lists every post-splice sub-graph's vertex list (only consulted for
    /// fresh ones). Fresh sub-graphs get zeroed placeholder spans — the
    /// engine overwrites them via [`FoldStore::set_values`], since every
    /// fresh sub-graph is dirty by construction.
    ///
    /// Returns the sorted, deduplicated vertices whose owner set changed
    /// (members of dissolved and fresh sub-graphs); the engine refolds
    /// exactly these into its flat score vector. Every other vertex's fold
    /// input sequence is unchanged: survivors keep their relative order
    /// and unchanged spans, so its folded score is bitwise-stable.
    pub fn apply_splice(
        &mut self,
        num_vertices: usize,
        old_to_new: &[Option<u32>],
        new_globals: &[&[u32]],
    ) -> Vec<u32> {
        assert_eq!(old_to_new.len(), self.order.len(), "splice map arity");
        let mut new_order = vec![u32::MAX; new_globals.len()];
        let mut touched: Vec<u32> = Vec::new();
        let mut dead = vec![false; self.globals.len()];

        for (old, &dst) in old_to_new.iter().enumerate() {
            let slot = self.order[old];
            match dst {
                Some(n) => {
                    new_order[n as usize] = slot;
                    debug_assert_eq!(
                        self.globals[slot as usize].as_deref(),
                        Some(new_globals[n as usize]),
                        "survivor {old}->{n} changed its vertex set"
                    );
                }
                None => {
                    dead[slot as usize] = true;
                    if let Some(g) = &self.globals[slot as usize] {
                        touched.extend_from_slice(g);
                    }
                    self.globals[slot as usize] = None;
                    self.values[slot as usize] = None;
                    self.free.push(slot);
                    self.copied.remove(&slot);
                }
            }
        }

        let mut fresh: HashMap<u32, Vec<(u32, u32)>> = HashMap::new();
        for (n, slot) in new_order.iter_mut().enumerate() {
            if *slot != u32::MAX {
                continue;
            }
            let s = match self.free.pop() {
                Some(s) => s,
                None => {
                    self.globals.push(None);
                    self.values.push(None);
                    dead.push(false);
                    (self.globals.len() - 1) as u32
                }
            };
            let g: Arc<[u32]> = Arc::from(new_globals[n]);
            for (local, &v) in g.iter().enumerate() {
                fresh.entry(v).or_default().push((s, local as u32));
                touched.push(v);
            }
            self.values[s as usize] = Some(Arc::from(vec![0.0f64; g.len()]));
            self.globals[s as usize] = Some(g);
            self.copied.insert(s);
            *slot = s;
        }

        self.order = new_order;
        self.rank = vec![u32::MAX; self.globals.len()];
        for (i, &s) in self.order.iter().enumerate() {
            self.rank[s as usize] = i as u32;
        }

        // Vertex growth: cover new ids with (implicitly empty) chunks.
        let num_chunks = num_vertices.div_ceil(INDEX_CHUNK_SIZE);
        while self.index.len() < num_chunks {
            self.index.push(Arc::new(IndexChunk::empty()));
        }
        self.num_vertices = num_vertices;

        touched.sort_unstable();
        touched.dedup();
        // Rebuild the owner lists of touched vertices, one affected chunk
        // at a time; untouched chunks stay shared.
        let mut i = 0;
        while i < touched.len() {
            let c = (touched[i] as usize) >> INDEX_CHUNK_BITS;
            let mut j = i + 1;
            while j < touched.len() && (touched[j] as usize) >> INDEX_CHUNK_BITS == c {
                j += 1;
            }
            self.rebuild_index_chunk(c, &touched[i..j], &dead, &fresh);
            i = j;
        }
        touched
    }

    /// Replaces owner-index chunk `c`, recomputing the entries of
    /// `touched` vertices (all within the chunk) and carrying everything
    /// else over verbatim.
    fn rebuild_index_chunk(
        &mut self,
        c: usize,
        touched: &[u32],
        dead: &[bool],
        fresh: &HashMap<u32, Vec<(u32, u32)>>,
    ) {
        let old = Arc::clone(&self.index[c]);
        let first = c * INDEX_CHUNK_SIZE;
        let len = INDEX_CHUNK_SIZE.min(self.num_vertices - first);
        let mut chunk = IndexChunk {
            offsets: Vec::with_capacity(len + 1),
            pairs: Vec::with_capacity(old.pairs.len()),
        };
        chunk.offsets.push(0);
        let mut ti = 0;
        for local in 0..len {
            let v = (first + local) as u32;
            let is_touched = ti < touched.len() && touched[ti] == v;
            if is_touched {
                ti += 1;
                for &(slot, sl) in old.entries(local) {
                    if !dead[slot as usize] {
                        chunk.pairs.push((slot, sl));
                    }
                }
                if let Some(extra) = fresh.get(&v) {
                    chunk.pairs.extend_from_slice(extra);
                }
            } else {
                chunk.pairs.extend_from_slice(old.entries(local));
            }
            chunk.offsets.push(chunk.pairs.len() as u32);
        }
        debug_assert_eq!(ti, touched.len(), "touched vertex outside chunk {c}");
        self.index[c] = Arc::new(chunk);
    }

    /// Folds one vertex's score (ascending sub-graph index order, from
    /// `0.0`).
    pub fn fold_vertex(&self, v: VertexId) -> f64 {
        fold_at(&self.index, &self.rank, &self.values, v as usize)
    }

    /// The full score vector, folded from zeros in ascending sub-graph
    /// index order — bitwise-identical to the engine's historical
    /// `refold`.
    pub fn to_flat(&self) -> Vec<f64> {
        let mut out = vec![0.0f64; self.num_vertices];
        for &slot in &self.order {
            if let (Some(globals), Some(values)) =
                (&self.globals[slot as usize], &self.values[slot as usize])
            {
                for (local, &v) in globals.iter().enumerate() {
                    out[v as usize] += values[local];
                }
            }
        }
        out
    }

    /// An immutable snapshot of the store: O(sub-graphs +
    /// vertices/[`INDEX_CHUNK_SIZE`]) `Arc` clones.
    pub fn chunks(&self) -> ScoreChunks {
        ScoreChunks {
            num_vertices: self.num_vertices,
            order: self.order.clone(),
            rank: self.rank.clone(),
            globals: self.globals.clone(),
            values: self.values.clone(),
            index: self.index.clone(),
        }
    }

    /// Publish accounting: `(value spans replaced since the last call,
    /// live sub-graphs)`; resets the window.
    pub fn take_copied(&mut self) -> (usize, usize) {
        let copied = self.copied.len().min(self.order.len());
        self.copied.clear();
        (copied, self.order.len())
    }

    /// Cross-checks internal consistency against a freshly-built store
    /// over the same `(vertex list, contribution)` pairs: identical flat
    /// fold (bitwise) and identical per-vertex folds. Used by the engine's
    /// `invariants` feature and the property tests.
    pub fn verify_against_fresh(
        &self,
        num_vertices: usize,
        subgraphs: Vec<(Arc<[u32]>, Arc<[f64]>)>,
    ) -> Result<(), String> {
        let mut fresh = FoldStore::default();
        fresh.rebuild(num_vertices, subgraphs);
        let want = fresh.to_flat();
        let got = self.to_flat();
        if got.len() != want.len() {
            return Err(format!("length mismatch: {} vs {}", got.len(), want.len()));
        }
        for (v, (g, w)) in got.iter().zip(&want).enumerate() {
            if g.to_bits() != w.to_bits() {
                return Err(format!("flat fold diverged at vertex {v}: {g} vs {w}"));
            }
            let single = self.fold_vertex(v as u32);
            if single.to_bits() != w.to_bits() {
                return Err(format!("fold_vertex diverged at vertex {v}: {single} vs {w}"));
            }
        }
        Ok(())
    }
}

/// An immutable, `Send + Sync` snapshot of a [`FoldStore`]: per-sub-graph
/// score spans shared by `Arc`, plus the owner index for per-vertex folds.
/// This is what [`apgre-serve`]'s snapshots hold instead of a flat
/// `Vec<f64>` clone.
///
/// [`apgre-serve`]: index.html
#[derive(Clone, Debug)]
pub struct ScoreChunks {
    num_vertices: usize,
    order: Vec<u32>,
    rank: Vec<u32>,
    globals: Vec<Option<Arc<[u32]>>>,
    values: Vec<Option<Arc<[f64]>>>,
    index: Vec<Arc<IndexChunk>>,
}

impl ScoreChunks {
    /// Number of vertices covered (the length of [`ScoreChunks::to_vec`]).
    pub fn len(&self) -> usize {
        self.num_vertices
    }

    /// Whether the score vector is empty.
    pub fn is_empty(&self) -> bool {
        self.num_vertices == 0
    }

    /// Number of per-sub-graph score spans.
    pub fn num_subgraph_chunks(&self) -> usize {
        self.order.len()
    }

    /// One vertex's score, folded from its owning sub-graphs' spans in
    /// ascending sub-graph index order from `0.0` — bitwise-identical to
    /// `to_vec()[v]`.
    ///
    /// # Panics
    /// Panics when `v >= len()` (use [`ScoreChunks::get`] for checked
    /// access).
    pub fn score(&self, v: usize) -> f64 {
        assert!(v < self.num_vertices, "vertex {v} out of range");
        fold_at(&self.index, &self.rank, &self.values, v)
    }

    /// Checked [`ScoreChunks::score`].
    pub fn get(&self, v: usize) -> Option<f64> {
        if v < self.num_vertices {
            Some(fold_at(&self.index, &self.rank, &self.values, v))
        } else {
            None
        }
    }

    /// The flat score vector, folded from zeros in ascending sub-graph
    /// index order (bitwise-identical to the engine's flat scores).
    pub fn to_vec(&self) -> Vec<f64> {
        let mut out = vec![0.0f64; self.num_vertices];
        for &slot in &self.order {
            if let (Some(globals), Some(values)) =
                (&self.globals[slot as usize], &self.values[slot as usize])
            {
                for (local, &v) in globals.iter().enumerate() {
                    out[v as usize] += values[local];
                }
            }
        }
        out
    }

    /// Whether this snapshot and `other` share the backing span of
    /// sub-graph `index` (test/metrics introspection; both indices are in
    /// the *respective* snapshot's ordering).
    pub fn shares_span(&self, other: &ScoreChunks, index: usize) -> bool {
        match (self.order.get(index), other.order.get(index)) {
            (Some(&a), Some(&b)) => match (&self.values[a as usize], &other.values[b as usize]) {
                (Some(x), Some(y)) => Arc::ptr_eq(x, y),
                _ => false,
            },
            _ => false,
        }
    }
}

/// Incremental top-k ranking over successive [`ScoreChunks`] snapshots.
///
/// A snapshot shares every span and owner-index chunk a batch did not touch
/// with its predecessor, so ranking work should track the dirty set the
/// same way publishing does. The cache therefore keys two artifacts by
/// **span identity** (the `Arc` allocation address, pinned by a held clone
/// so the address cannot be recycled while the entry lives):
///
/// * per score span: a prefix of its vertices ordered by `(value desc,
///   vertex id asc)` — recomputed only when the span was replaced (or a
///   larger prefix is needed),
/// * per owner-index chunk: the vertices with two or more owner entries
///   (articulation points shared by sub-graphs), whose global score is not
///   any single span's value.
///
/// At ranking time multi-owner vertices are folded exactly (there are few —
/// one per shared articulation point) and span prefixes contribute their
/// best `k` *single-owner* vertices; a single-owner vertex's global score
/// is bitwise its span value (folded `0.0 + x`), so span-local order is
/// global order. Caching a prefix of `k + |multi|` entries guarantees at
/// least `k` usable single-owner candidates precede any vertex the prefix
/// cut off, which makes the merge exact. Two cases fall back to ranking the
/// full folded vector: fewer than `k` candidates, and a `k`-th candidate of
/// exactly `0.0` (ownerless vertices — score `0.0` — appear in no span but
/// still rank by the id tie-break).
#[derive(Debug, Default)]
pub struct TopCache {
    /// Span address -> cached prefix.
    spans: HashMap<usize, SpanPrefix>,
    /// Owner-index chunk address -> multi-owner vertices in the chunk.
    multis: HashMap<usize, ChunkMulti>,
}

#[derive(Debug)]
struct SpanPrefix {
    /// Pins the span allocation so the address key stays unambiguous.
    _pin: Arc<[f64]>,
    /// `(value, vertex)` ordered by value desc, vertex asc; covers the
    /// whole span when `entries.len() == span length`.
    entries: Vec<(f64, u32)>,
}

#[derive(Debug)]
struct ChunkMulti {
    /// Pins the chunk allocation (same reasoning as [`SpanPrefix::_pin`]).
    _pin: Arc<IndexChunk>,
    /// Global ids of vertices with >= 2 owner entries, ascending.
    multi: Vec<u32>,
}

/// `(value desc, id asc)` — the ranking order of `/top` and the ranking
/// tests.
fn rank_cmp(a: &(f64, u32), b: &(f64, u32)) -> std::cmp::Ordering {
    b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1))
}

impl TopCache {
    /// An empty cache.
    pub fn new() -> Self {
        TopCache::default()
    }

    /// Cached span prefixes (introspection for reuse tests).
    pub fn cached_spans(&self) -> usize {
        self.spans.len()
    }

    /// The ids of the `k` highest-scoring vertices of `snap`, ordered by
    /// `(value desc, id asc)` — identical to sorting the full folded vector,
    /// but touching only spans that changed since the previous call.
    pub fn top_k(&mut self, snap: &ScoreChunks, k: usize) -> Vec<u32> {
        let k = k.min(snap.num_vertices);
        if k == 0 {
            return Vec::new();
        }

        // Multi-owner vertices, from per-chunk caches (chunk `Arc`s are
        // position-stable: chunk `c` always covers the same vertex range).
        let mut live_chunks: HashSet<usize> = HashSet::with_capacity(snap.index.len());
        let mut multi: Vec<u32> = Vec::new();
        for (c, chunk) in snap.index.iter().enumerate() {
            let key = Arc::as_ptr(chunk) as usize;
            live_chunks.insert(key);
            let entry = self.multis.entry(key).or_insert_with(|| {
                let first = c * INDEX_CHUNK_SIZE;
                let mut m = Vec::new();
                for local in 0..chunk.offsets.len().saturating_sub(1) {
                    if chunk.entries(local).len() >= 2 {
                        m.push((first + local) as u32);
                    }
                }
                ChunkMulti { _pin: Arc::clone(chunk), multi: m }
            });
            multi.extend_from_slice(&entry.multi);
        }
        self.multis.retain(|key, _| live_chunks.contains(key));

        // Per-span prefixes, recomputed only for replaced spans (or when a
        // larger prefix is needed than was cached).
        let cap_target = k + multi.len();
        let mut live_spans: HashSet<usize> = HashSet::with_capacity(snap.order.len());
        let mut cands: Vec<(f64, u32)> = Vec::with_capacity(multi.len() + k * snap.order.len());
        for &slot in &snap.order {
            let (globals, values) =
                match (&snap.globals[slot as usize], &snap.values[slot as usize]) {
                    (Some(g), Some(v)) => (g, v),
                    _ => continue,
                };
            let key = Arc::as_ptr(values) as *const u8 as usize;
            live_spans.insert(key);
            let cap = cap_target.min(globals.len());
            let stale = match self.spans.get(&key) {
                Some(p) => p.entries.len() < cap,
                None => true,
            };
            if stale {
                let mut all: Vec<(f64, u32)> =
                    values.iter().copied().zip(globals.iter().copied()).collect();
                if cap < all.len() {
                    all.select_nth_unstable_by(cap - 1, rank_cmp);
                    all.truncate(cap);
                }
                all.sort_unstable_by(rank_cmp);
                self.spans.insert(key, SpanPrefix { _pin: Arc::clone(values), entries: all });
            }
            let prefix = &self.spans[&key];
            let mut taken = 0usize;
            for &(v, id) in &prefix.entries {
                if taken == k {
                    break;
                }
                if multi.binary_search(&id).is_err() {
                    cands.push((v, id));
                    taken += 1;
                }
            }
        }
        self.spans.retain(|key, _| live_spans.contains(key));

        // Multi-owner vertices enter with their exact fold.
        for &v in &multi {
            cands.push((snap.score(v as usize), v));
        }
        cands.sort_unstable_by(rank_cmp);

        if cands.len() < k || cands[k - 1].0 == 0.0 {
            // Not enough owned vertices, or zero-score ties with ownerless
            // vertices: rank the full folded vector.
            let flat = snap.to_vec();
            let mut all: Vec<(f64, u32)> = flat.into_iter().zip(0u32..).collect();
            all.sort_unstable_by(rank_cmp);
            return all.into_iter().take(k).map(|(_, id)| id).collect();
        }
        cands.truncate(k);
        cands.into_iter().map(|(_, id)| id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arc_u32(v: &[u32]) -> Arc<[u32]> {
        Arc::from(v)
    }

    fn arc_f64(v: &[f64]) -> Arc<[f64]> {
        Arc::from(v)
    }

    /// Two sub-graphs sharing vertex 2 (an articulation point).
    fn seed() -> FoldStore {
        let mut store = FoldStore::default();
        store.rebuild(
            6,
            vec![
                (arc_u32(&[0, 1, 2]), arc_f64(&[1.0, 2.0, 3.0])),
                (arc_u32(&[2, 3, 4]), arc_f64(&[0.5, 6.0, 7.0])),
            ],
        );
        store
    }

    #[test]
    fn flat_and_per_vertex_folds_agree() {
        let store = seed();
        let flat = store.to_flat();
        assert_eq!(flat, vec![1.0, 2.0, 3.5, 6.0, 7.0, 0.0]);
        for v in 0..6 {
            assert_eq!(store.fold_vertex(v).to_bits(), flat[v as usize].to_bits());
        }
        let snap = store.chunks();
        assert_eq!(snap.to_vec(), flat);
        assert_eq!(snap.score(2).to_bits(), flat[2].to_bits());
        assert_eq!(snap.get(6), None);
    }

    #[test]
    fn set_values_updates_only_its_span() {
        let mut store = seed();
        let before = store.chunks();
        store.take_copied();
        store.set_values(1, arc_f64(&[1.5, 1.5, 1.5]));
        let after = store.chunks();
        assert!(before.shares_span(&after, 0), "untouched span shared");
        assert!(!before.shares_span(&after, 1), "dirty span replaced");
        assert_eq!(store.take_copied(), (1, 2));
        assert_eq!(after.score(2), 3.0 + 1.5);
        assert_eq!(before.score(2), 3.5, "old snapshot unaffected");
    }

    #[test]
    fn splice_replaces_dissolved_with_fresh_at_tail() {
        let mut store = seed();
        store.take_copied();
        // Sub-graph 0 survives (now index 0), sub-graph 1 dissolves into
        // two fresh groups appended at the tail.
        let touched = store.apply_splice(7, &[Some(0), None], &[&[0, 1, 2], &[2, 3], &[3, 4, 6]]);
        assert_eq!(touched, vec![2, 3, 4, 6]);
        store.set_values(1, arc_f64(&[0.25, 0.5]));
        store.set_values(2, arc_f64(&[1.0, 2.0, 4.0]));
        assert_eq!(store.num_subgraphs(), 3);
        let flat = store.to_flat();
        assert_eq!(flat, vec![1.0, 2.0, 3.25, 1.5, 2.0, 0.0, 4.0]);
        for v in 0..7 {
            assert_eq!(store.fold_vertex(v).to_bits(), flat[v as usize].to_bits());
        }
        // Survivor's span is still shared with pre-splice snapshots.
        assert_eq!(store.take_copied(), (2, 3), "two fresh spans copied");
        store
            .verify_against_fresh(
                7,
                vec![
                    (arc_u32(&[0, 1, 2]), arc_f64(&[1.0, 2.0, 3.0])),
                    (arc_u32(&[2, 3]), arc_f64(&[0.25, 0.5])),
                    (arc_u32(&[3, 4, 6]), arc_f64(&[1.0, 2.0, 4.0])),
                ],
            )
            .expect("matches a fresh store");
    }

    #[test]
    fn fold_order_is_ascending_index_even_after_slot_reuse() {
        let mut store = seed();
        // Dissolve sub-graph 0; its slot is reused by a fresh group that
        // lands at the *tail* of the order.
        store.apply_splice(6, &[None, Some(0)], &[&[2, 3, 4], &[0, 1, 2]]);
        store.set_values(1, arc_f64(&[10.0, 20.0, 30.0]));
        // Vertex 2 is owned by both; fold order must be index order
        // (survivor first), not slot order.
        let flat = store.to_flat();
        assert_eq!(flat[2].to_bits(), (0.0f64 + 0.5 + 30.0).to_bits());
        assert_eq!(store.fold_vertex(2).to_bits(), flat[2].to_bits());
        let snap = store.chunks();
        assert_eq!(snap.score(2).to_bits(), flat[2].to_bits());
    }

    #[test]
    fn index_chunks_shared_when_untouched() {
        // Vertices split across two index chunks; splice touches only the
        // second chunk's vertices.
        let far = INDEX_CHUNK_SIZE as u32 + 5;
        let mut store = FoldStore::default();
        store.rebuild(
            far as usize + 1,
            vec![
                (arc_u32(&[0, 1]), arc_f64(&[1.0, 2.0])),
                (arc_u32(&[far - 1, far]), arc_f64(&[3.0, 4.0])),
            ],
        );
        let before = store.chunks();
        store.apply_splice(far as usize + 1, &[Some(0), None], &[&[0, 1], &[far - 1, far]]);
        store.set_values(1, arc_f64(&[5.0, 6.0]));
        let after = store.chunks();
        assert!(Arc::ptr_eq(&before.index[0], &after.index[0]), "chunk 0 untouched");
        assert!(!Arc::ptr_eq(&before.index[1], &after.index[1]), "chunk 1 rebuilt");
        assert_eq!(after.score(far as usize), 6.0);
        assert_eq!(before.score(far as usize), 4.0);
    }

    /// Reference ranking: full fold, sorted `(value desc, id asc)`.
    fn ranked_flat(snap: &ScoreChunks, k: usize) -> Vec<u32> {
        let mut all: Vec<(f64, u32)> = snap.to_vec().into_iter().zip(0u32..).collect();
        all.sort_unstable_by(rank_cmp);
        all.into_iter().take(k).map(|(_, id)| id).collect()
    }

    #[test]
    fn top_k_matches_full_sort_including_multi_owner_folds() {
        let store = seed();
        let snap = store.chunks();
        let mut cache = TopCache::new();
        for k in 0..=6 {
            assert_eq!(cache.top_k(&snap, k), ranked_flat(&snap, k), "k={k}");
        }
        // k beyond the vertex count clamps.
        assert_eq!(cache.top_k(&snap, 99).len(), 6);
    }

    #[test]
    fn top_k_reuses_untouched_span_prefixes() {
        let mut store = seed();
        let mut cache = TopCache::new();
        let before = store.chunks();
        assert_eq!(cache.top_k(&before, 3), ranked_flat(&before, 3));
        assert_eq!(cache.cached_spans(), 2);

        // Replace one span: the other's prefix must survive the prune.
        store.set_values(1, arc_f64(&[0.5, 9.0, 8.0]));
        let after = store.chunks();
        let kept: Vec<usize> = cache.spans.keys().copied().collect();
        assert_eq!(cache.top_k(&after, 3), ranked_flat(&after, 3));
        assert_eq!(cache.cached_spans(), 2);
        let survivors = cache.spans.keys().filter(|k| kept.contains(k)).count();
        assert_eq!(survivors, 1, "untouched span prefix reused, dirty one replaced");
    }

    #[test]
    fn top_k_is_exact_when_the_articulation_fold_beats_span_values() {
        // Vertex 2 is owned by both spans with small per-span values whose
        // *sum* tops the ranking — the merge must fold it exactly rather
        // than trust either span-local order.
        let mut store = FoldStore::default();
        store.rebuild(
            5,
            vec![
                (arc_u32(&[0, 1, 2]), arc_f64(&[4.0, 1.0, 3.0])),
                (arc_u32(&[2, 3, 4]), arc_f64(&[3.0, 2.0, 1.0])),
            ],
        );
        let snap = store.chunks();
        let mut cache = TopCache::new();
        assert_eq!(cache.top_k(&snap, 2), vec![2, 0], "2 folds to 6.0");
        assert_eq!(cache.top_k(&snap, 5), ranked_flat(&snap, 5));
    }

    #[test]
    fn top_k_breaks_zero_ties_by_id_with_ownerless_vertices() {
        // Vertices 0..3 are ownerless (score 0.0); the owned vertices also
        // fold to 0.0. Ranking is then purely the id tie-break, which only
        // the fallback path can see.
        let mut store = FoldStore::default();
        store.rebuild(6, vec![(arc_u32(&[4, 5]), arc_f64(&[0.0, 0.0]))]);
        let snap = store.chunks();
        let mut cache = TopCache::new();
        assert_eq!(cache.top_k(&snap, 3), vec![0, 1, 2]);
        assert_eq!(cache.top_k(&snap, 6), ranked_flat(&snap, 6));
    }

    #[test]
    fn top_k_tracks_splices() {
        let mut store = seed();
        let mut cache = TopCache::new();
        let _ = cache.top_k(&store.chunks(), 4);
        store.apply_splice(7, &[Some(0), None], &[&[0, 1, 2], &[2, 3], &[3, 4, 6]]);
        store.set_values(1, arc_f64(&[0.25, 0.5]));
        store.set_values(2, arc_f64(&[1.0, 2.0, 4.0]));
        let snap = store.chunks();
        for k in 1..=7 {
            assert_eq!(cache.top_k(&snap, k), ranked_flat(&snap, k), "k={k}");
        }
    }

    #[test]
    fn vertex_growth_extends_coverage() {
        let mut store = seed();
        let touched = store.apply_splice(9, &[Some(0), Some(1)], &[&[0, 1, 2], &[2, 3, 4]]);
        assert!(touched.is_empty(), "no membership changed");
        assert_eq!(store.to_flat().len(), 9);
        assert_eq!(store.fold_vertex(8), 0.0);
        assert_eq!(store.chunks().get(8), Some(0.0));
    }
}
