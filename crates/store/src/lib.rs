//! Persistent, structurally-shared snapshot storage for the incremental
//! APGRE engine.
//!
//! The incremental engine (`apgre-dynamic`, DESIGN.md §3.8/§3.10) makes
//! *applying* a batch proportional to the dirty region, but every *publish*
//! used to pay O(V+E) anyway: `GraphOverlay::to_graph` materializes a fresh
//! CSR, the score vector is cloned whole, and the global refold restarts
//! from zeros. This crate removes that last full-size cost with two
//! chunked, copy-on-write structures that share everything a batch did not
//! touch (DESIGN.md §3.11):
//!
//! * [`CowGraph`] — the graph, split into fixed-arity chunks of CSR
//!   adjacency behind `Arc`s plus a thin per-chunk delta layer fed by the
//!   same effective edge edits the decomposition maintainer consumes.
//!   [`CowGraph::view`] yields an immutable [`GraphView`] in O(#chunks)
//!   pointer clones; only chunks an edit landed in are deep-copied.
//!   [`CowGraph::compact`] is the escape hatch when deltas accumulate
//!   (each chunk also auto-compacts past a fixed delta budget).
//! * [`FoldStore`] / [`ScoreChunks`] — the score vector, stored as one
//!   `Arc<[f64]>` span per sub-graph (plus a chunked per-vertex owner
//!   index), folded on demand in ascending sub-graph index order — the
//!   exact fold order of the batch pipeline, so served scores stay
//!   **bitwise** equal to a from-scratch run. A snapshot clones only the
//!   spans of dirty sub-graphs; everything else is shared.
//!
//! Both sides report [`PublishStats`] (chunks copied vs reused since the
//! previous snapshot), which `apgre-serve` exposes on `/metrics`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cow;
mod score;

pub use cow::{CowGraph, GraphView, GRAPH_CHUNK_SIZE};
pub use score::{FoldStore, ScoreChunks, TopCache, INDEX_CHUNK_SIZE};

/// Chunk-reuse accounting for one published snapshot: how many chunks the
/// publish had to deep-copy (because a batch since the previous publish
/// touched them) versus how many it shared untouched.
///
/// "Graph chunks" are [`CowGraph`] adjacency chunks
/// ([`GRAPH_CHUNK_SIZE`] vertices each); "score chunks" are per-sub-graph
/// [`ScoreChunks`] value spans.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PublishStats {
    /// Per-sub-graph score spans re-allocated since the previous snapshot.
    pub score_chunks_copied: usize,
    /// Per-sub-graph score spans shared with the previous snapshot.
    pub score_chunks_reused: usize,
    /// Graph adjacency chunks deep-copied since the previous snapshot.
    pub graph_chunks_copied: usize,
    /// Graph adjacency chunks shared with the previous snapshot.
    pub graph_chunks_reused: usize,
}
